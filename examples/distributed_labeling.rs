//! The labeling procedure as a running distributed protocol.
//!
//! Every node knows only whether its four neighbors answer; label
//! announcements propagate hop by hop on the discrete-event simulator.
//! The run must converge to exactly the global fixpoint — and does, with
//! message counts proportional to the region growth, not the mesh size.
//!
//! ```text
//! cargo run -p meshpath --release --example distributed_labeling
//! ```

use meshpath::fault::distributed::run_distributed;
use meshpath::fault::{BorderPolicy, Labeling};
use meshpath::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mesh = Mesh::square(48);
    let mut rng = StdRng::seed_from_u64(7);

    println!("faults  unsafe  filled  messages  rounds  agrees");
    for fault_count in [0usize, 50, 150, 300, 500, 700] {
        let faults = FaultSet::random(mesh, fault_count, FaultInjection::Uniform, &mut rng);
        let global = Labeling::compute(&faults, Orientation::IDENTITY, BorderPolicy::Open);
        let dist = run_distributed(&faults, Orientation::IDENTITY, BorderPolicy::Open);
        println!(
            "{fault_count:6}  {:6}  {:6}  {:8}  {:6}  {}",
            global.unsafe_count(),
            global.healthy_unsafe_count(),
            dist.stats.messages,
            dist.stats.finish_time,
            dist.agrees_with(&global),
        );
    }
    println!("\n'filled' = healthy nodes the MCC closure swallowed;");
    println!("'rounds' = virtual time to convergence (unit-latency hops).");
}
