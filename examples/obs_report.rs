//! Observability tour: run one healthy traffic load with full tracing
//! and render the merged [`ObsReport`] — link/escape heatmaps, stall
//! and occupancy histograms, per-shard phase profile — then force the
//! `tests/escape.rs` wedge (escape VCs off, 10% faults) and dump the
//! deadlock flight recorder with its VC wait-for graph.
//!
//! Run with `cargo run --release --example obs_report`; pass `--quick`
//! for the CI smoke configuration (shorter windows, same exhibits) or
//! `--json` to emit the reports as a JSONL document instead of text.
//!
//! [`ObsReport`]: meshpath::obs::ObsReport

use meshpath::analysis::traffic::{run_load_sweep, LoadSweepConfig};
use meshpath::prelude::*;
use meshpath::traffic::{run_traffic_observed, DrainStallObserver, PathTable};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let quick = std::env::args().skip(1).any(|a| a == "--quick");
    let json = std::env::args().skip(1).any(|a| a == "--json");

    // ---- exhibit 1: a healthy run under full tracing -----------------
    let mesh = Mesh::square(16);
    let mut rng = StdRng::seed_from_u64(2007);
    let net = NetView::build(FaultSet::random(mesh, 8, FaultInjection::Uniform, &mut rng));
    let sim = if quick {
        SimConfig { rate: 0.02, ..SimConfig::smoke() }
    } else {
        SimConfig { rate: 0.02, warmup: 300, measure: 1500, drain: 4000, ..SimConfig::default() }
    };
    let cfg = sim.clone().with_obs(ObsLevel::Trace);
    let mut paths = PathTable::new(&net, RoutingKind::Rb2);
    let (stats, report) = run_traffic_observed(&mut paths, &cfg, &mut ());
    let report = report.expect("tracing enabled");
    if !json {
        println!(
            "healthy 16x16 @ rate {:.3}, 8 faults — stop: {}, {} injected / {} delivered, \
             mean latency {:.1} cycles (p50 {} p95 {} p99 {})\n",
            cfg.rate,
            report.stop.name(),
            report.injected,
            report.delivered,
            stats.mean_latency(),
            stats.p50_latency(),
            stats.p95_latency(),
            stats.p99_latency(),
        );
        println!("{}", report.link_heatmap());
        println!("{}", report.escape_heatmap());
        println!(
            "stall ages at grant: {} grants, mean {:.1} cycles, p95 {}, max {}",
            report.stall_cycles.count(),
            report.stall_cycles.mean(),
            report.stall_cycles.percentile(0.95),
            report.stall_cycles.max(),
        );
        println!(
            "VC occupancy per active node: mean {:.2}, p95 {}",
            report.vc_occupancy.mean(),
            report.vc_occupancy.percentile(0.95),
        );
        for s in &report.shards {
            println!(
                "shard {} (nodes {}..{}): plan {:.1}ms boundary {:.1}ms commit {:.1}ms, \
                 {} events, boundary msgs {}/{}",
                s.shard,
                s.node_start,
                s.node_end,
                s.phases.get(meshpath::obs::Phase::Plan) as f64 / 1e6,
                s.phases.get(meshpath::obs::Phase::Boundary) as f64 / 1e6,
                s.phases.get(meshpath::obs::Phase::Commit) as f64 / 1e6,
                s.events_seen,
                s.boundary_to_prev,
                s.boundary_to_next,
            );
        }
        println!();
    }
    assert_eq!(report.stop, StopKind::Clean, "the healthy exhibit must not wedge");

    // ---- exhibit 2: a forced wedge and its post-mortem ---------------
    let mut rng = StdRng::seed_from_u64(2007);
    let wedge_net =
        NetView::build(FaultSet::random(Mesh::square(16), 26, FaultInjection::Uniform, &mut rng));
    let wedge_cfg = SimConfig { rate: 0.04, warmup: 150, measure: 500, drain: 1200, ..sim.clone() }
        .without_escape()
        .with_obs(ObsLevel::Trace);
    let mut paths = PathTable::new(&wedge_net, RoutingKind::Rb2);
    let mut stall = DrainStallObserver::new(4);
    let (_, wedged) = run_traffic_observed(&mut paths, &wedge_cfg, &mut stall);
    let wedged = wedged.expect("tracing enabled");
    assert!(wedged.stop.is_wedged(), "escape VCs off at 10% faults must wedge");
    let pm = wedged.postmortem.as_ref().expect("wedged stops dump a post-mortem");
    if !json {
        println!(
            "forced wedge (escape VCs disabled, 26 faults, rate {:.3}) — stop: {}\n",
            wedge_cfg.rate,
            wedged.stop.name()
        );
        println!("{}", pm.render());
        println!(
            "flight recorder: {} recent events of {} seen",
            pm.recent_events.len(),
            wedged.shards.iter().map(|s| s.events_seen).sum::<u64>()
        );
    }

    // ---- optional: the same exhibits through the JSONL exporter ------
    if json {
        let sweep = LoadSweepConfig {
            mesh: 16,
            fault_counts: vec![8],
            rates: vec![0.02],
            routers: vec![RoutingKind::Rb2],
            sim: sim.with_obs(ObsLevel::Metrics),
            early_exit: false,
            ..Default::default()
        };
        print!("{}", run_load_sweep(&sweep).to_json());
    }
}
