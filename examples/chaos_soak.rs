//! Online chaos soak: live fault/repair churn against a **running,
//! sharded** wormhole simulation.
//!
//! Unlike `fault_churn` (a schedule fixed before the run starts), every
//! epoch here is invented while traffic is in flight: a seeded
//! [`ChaosConfig`] draws random failures and repairs at churn-quantum
//! boundaries, and a [`ChurnInjector`] handle pokes in two unscheduled
//! API events from a window observer mid-measurement. The coordinator
//! publishes each event to the shard workers through the epoch
//! mechanism — CI runs this under `MESHPATH_THREADS=3`, so the
//! publication path crosses real worker threads — with incremental
//! escape-forest re-provisioning, so repaired nodes rejoin the escape
//! tree.
//!
//! The soak gates the robustness contract:
//!
//! * **zero deadlocks** — stranded traffic is replanned or killed
//!   (`churn_killed`), never wedged;
//! * **≥ 4 live epochs** — the chaos schedule really fired;
//! * **epoch accounting** — one `epoch_delivered` bucket per published
//!   epoch, and every generated packet is delivered or explained by a
//!   churn drop/kill (nothing leaks).
//!
//! Usage: `chaos_soak [--quick] [--json]` (CI runs `--quick --json`).

use meshpath::analysis::jsonl::{document, JsonObject};
use meshpath::prelude::*;
use meshpath::traffic::{PathTable, TrafficSim, WindowControl, WindowObserver, WindowSample};

/// Unscheduled mid-run events: the injector handle is poked from the
/// run's own window callback, so the events land while flits are in
/// flight — nothing about them is known at configuration time.
struct MidRunPokes {
    injector: ChurnInjector,
    at: Coord,
}

impl WindowObserver for MidRunPokes {
    fn on_window(&mut self, s: &WindowSample) -> WindowControl {
        if s.end == 250 {
            self.injector.fail(self.at);
        } else if s.end == 500 {
            self.injector.repair(self.at);
        }
        WindowControl::Continue
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let quick = argv.iter().any(|a| a == "--quick");
    let json = argv.iter().any(|a| a == "--json");

    let mesh = Mesh::square(16);
    let net = NetView::build(FaultSet::from_coords(mesh, [Coord::new(3, 11), Coord::new(12, 4)]));

    let base = if quick { SimConfig::smoke() } else { SimConfig::default() };
    let cfg = base.with_rate(0.02);
    let chaos = ChaosConfig {
        seed: 0x50AC,
        fail_prob: 0.5,
        repair_prob: 0.35,
        start: 150,
        stop: if quick { 450 } else { 1200 },
        max_faults: 6,
    };

    let routers =
        if quick { vec![RoutingKind::Rb2] } else { vec![RoutingKind::Rb2, RoutingKind::Rb3] };
    let mut rows: Vec<JsonObject> = Vec::new();
    for kind in &routers {
        let injector = ChurnInjector::new();
        let churn = OnlineChurn { chaos: Some(chaos), ..OnlineChurn::new(injector.clone()) };
        let mut paths = PathTable::new(&net, *kind);
        let sim = TrafficSim::new(&mut paths, cfg.clone()).with_online_churn(churn);
        let mut obs = MidRunPokes { injector, at: Coord::new(8, 8) };
        let stats = sim.try_run_with(&mut obs).unwrap_or_else(|e| {
            panic!("{}: chaos soak lost a worker: {e}", kind.name());
        });

        // The robustness contract this soak exists to gate.
        assert!(!stats.deadlocked, "{}: chaos run deadlocked: {stats:?}", kind.name());
        assert!(
            stats.online_events.len() >= 4,
            "{}: the soak needs >= 4 live epochs, got {:?}",
            kind.name(),
            stats.online_events
        );
        assert_eq!(
            stats.epoch_delivered.len(),
            stats.online_events.len() + 1,
            "{}: one delivery bucket per published epoch",
            kind.name()
        );
        // Full-drain accounting: every generated packet either ejected
        // normally (some epoch's bucket) or is explained by churn — an
        // NI discard at decommission, a killed stranded worm, or a TTL
        // drop. Nothing vanishes, nothing is double-counted.
        let delivered: u64 = stats.epoch_delivered.iter().sum();
        assert_eq!(
            delivered + stats.churn_dropped + stats.churn_killed + stats.ttl_dropped,
            stats.generated,
            "{}: epoch accounting must close: {stats:?}",
            kind.name()
        );

        if json {
            let mut row = JsonObject::new();
            row.string("router", kind.name())
                .field("live_epochs", stats.online_events.len())
                .array_u64("epoch_delivered", &stats.epoch_delivered)
                .field("churn_dropped", stats.churn_dropped)
                .field("churn_killed", stats.churn_killed)
                .field("churn_rejected", stats.churn_rejected)
                .field("generated", stats.generated)
                .field("measured_delivered", stats.measured_delivered)
                .float("mean_latency", stats.mean_latency(), 3)
                .field("cycles", stats.cycles)
                .field("deadlocked", stats.deadlocked);
            rows.push(row);
        } else {
            println!(
                "{:7}  {} live epochs  delivered {:?}  killed {}  dropped {}  ({} cycles)",
                kind.name(),
                stats.online_events.len(),
                stats.epoch_delivered,
                stats.churn_killed,
                stats.churn_dropped,
                stats.cycles,
            );
        }
    }

    if json {
        let mut config = JsonObject::new();
        config
            .field("mesh", 16)
            .field("rate", cfg.rate)
            .field("chaos_seed", chaos.seed)
            .string("scenario", "chaos_soak");
        print!("{}", document(&config, &rows));
    } else {
        println!("chaos soak survived: zero deadlocks under live churn");
    }
}
