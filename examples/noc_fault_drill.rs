//! Network-on-chip fault drill: a chip accumulates faulty routers over
//! its lifetime while the same traffic flows keep running. The drill
//! shows how the routings degrade — E-cube detours grow, RB2 stays on
//! the true shortest path — and when the MCC model declares regions of
//! the chip unusable.
//!
//! ```text
//! cargo run -p meshpath --release --example noc_fault_drill
//! ```

use meshpath::fault::stats::config_stats;
use meshpath::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SIDE: u32 = 32;
const FLOWS: usize = 12;

fn main() {
    let mesh = Mesh::square(SIDE);
    let mut rng = StdRng::seed_from_u64(0xC01D);

    // Long-lived traffic flows between random safe endpoints, chosen on
    // the pristine chip.
    let flows: Vec<(Coord, Coord)> = (0..FLOWS)
        .map(|_| {
            let s = Coord::new(rng.gen_range(0..SIDE as i32), rng.gen_range(0..SIDE as i32));
            let mut d = s;
            while d.manhattan(s) < SIDE {
                d = Coord::new(rng.gen_range(0..SIDE as i32), rng.gen_range(0..SIDE as i32));
            }
            (s, d)
        })
        .collect();

    let mut faults = FaultSet::none(mesh);
    println!("wave  faults  disabled%  MCCs  | flows-ok  ecube-hops  rb2-hops  optimal");
    for wave in 0..8 {
        // Each wave kills a handful of random routers (aging / wearout).
        for _ in 0..wave * 6 {
            let c = Coord::new(rng.gen_range(0..SIDE as i32), rng.gen_range(0..SIDE as i32));
            faults.inject(c);
        }
        let net = NetView::build(faults.clone());
        let stats = config_stats(net.faults(), Orientation::IDENTITY);

        let mut ok = 0usize;
        let mut ecube_hops = 0u64;
        let mut rb2_hops = 0u64;
        let mut opt_hops = 0u64;
        for &(s, d) in &flows {
            if !net.faults().is_healthy(s) || !net.faults().is_healthy(d) {
                continue; // the endpoint itself died
            }
            let oracle = DistanceField::healthy(net.faults(), d);
            if !oracle.reachable(s) {
                continue; // flow severed
            }
            let e = ECube.route(&net, s, d);
            let r = Rb2::default().route(&net, s, d);
            if e.delivered && r.delivered {
                ok += 1;
                ecube_hops += u64::from(e.hops());
                rb2_hops += u64::from(r.hops());
                opt_hops += u64::from(oracle.dist(s));
            }
        }
        println!(
            "{wave:4}  {:6}  {:8.1}  {:4}  | {ok:8}  {ecube_hops:10}  {rb2_hops:8}  {opt_hops:7}",
            faults.count(),
            stats.disabled_pct(),
            stats.mcc_count,
        );
    }
    println!("\nRB2 tracks the optimal column exactly; E-cube pays detour hops.");
}
