//! Mid-run fault injection on a live wormhole fabric: the
//! `fault_churn` scenario end to end.
//!
//! A 16x16 mesh starts with a small fault population, and **two more
//! nodes fail while traffic is in flight** (plus, in the full mode, a
//! later repair). Each event advances the run to a new epoch snapshot
//! — published by the incremental `NetState` update path — and the
//! run must finish with **zero deadlocks**: packets admitted before a
//! failure complete on their compiled routes (announced-decommission
//! semantics), new packets route around the failure, and the escape
//! classes are provisioned against the union of every scheduled
//! epoch's faults so their acyclicity argument is epoch-invariant.
//!
//! Usage: `fault_churn [--quick] [--json]`.
//!
//! `--json` emits one machine-readable document with the per-epoch
//! delivered counts per router; the default prints a small table. The
//! run asserts its own liveness claims either way (CI runs `--quick
//! --json`).

use meshpath::analysis::jsonl::{document, JsonObject};
use meshpath::prelude::*;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let quick = argv.iter().any(|a| a == "--quick");
    let json = argv.iter().any(|a| a == "--json");

    let mesh = Mesh::square(16);
    let initial = [Coord::new(3, 11), Coord::new(12, 4)];
    let net = NetView::build(FaultSet::from_coords(mesh, initial));

    // Two failures mid-measurement; the full mode adds a repair during
    // the drain so all three epoch transitions are exercised.
    let mut churn =
        vec![ChurnEvent::fail(250, Coord::new(8, 8)), ChurnEvent::fail(450, Coord::new(6, 9))];
    if !quick {
        churn.push(ChurnEvent::repair(700, Coord::new(8, 8)));
    }
    let base = if quick { SimConfig::smoke() } else { SimConfig::default() };
    let cfg = base.with_rate(0.02).with_fault_churn(churn.clone());

    let routers =
        if quick { vec![RoutingKind::Rb2] } else { vec![RoutingKind::Rb2, RoutingKind::Rb3] };
    let mut rows: Vec<JsonObject> = Vec::new();
    for kind in &routers {
        let stats = run_traffic(&net, *kind, &cfg);

        // The liveness contract this example exists to demonstrate.
        assert!(!stats.deadlocked, "{}: churn run deadlocked: {stats:?}", kind.name());
        assert!(!stats.saturated, "{}: low-load churn run saturated: {stats:?}", kind.name());
        assert_eq!(stats.epoch_delivered.len(), churn.len() + 1);
        assert!(
            stats.epoch_delivered.iter().all(|&n| n > 0),
            "{}: every epoch must deliver: {:?}",
            kind.name(),
            stats.epoch_delivered
        );
        assert!(
            stats.measured_generated - stats.measured_delivered <= stats.churn_dropped,
            "{}: undelivered measured packets must be churn drops",
            kind.name()
        );

        if json {
            let mut row = JsonObject::new();
            row.string("router", kind.name())
                .field("epochs", stats.epoch_delivered.len())
                .array_u64("epoch_delivered", &stats.epoch_delivered)
                .field("churn_dropped", stats.churn_dropped)
                .field("generated", stats.generated)
                .field("measured_delivered", stats.measured_delivered)
                .float("mean_latency", stats.mean_latency(), 3)
                .field("cycles", stats.cycles)
                .field("deadlocked", stats.deadlocked)
                .field("saturated", stats.saturated);
            rows.push(row);
        } else {
            println!(
                "{:7}  epochs {:?}  dropped {}  mean latency {:.1} cycles  ({} cycles simulated)",
                kind.name(),
                stats.epoch_delivered,
                stats.churn_dropped,
                stats.mean_latency(),
                stats.cycles,
            );
        }
    }

    if json {
        let mut config = JsonObject::new();
        config
            .field("mesh", 16)
            .field("rate", cfg.rate)
            .field("churn_events", churn.len())
            .string("scenario", "fault_churn");
        print!("{}", document(&config, &rows));
    } else {
        println!("fault churn survived: zero deadlocks across {} epochs", churn.len() + 1);
    }
}
