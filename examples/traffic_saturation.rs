//! Latency-vs-injection-rate tables for XY, E-cube, RB1, RB2 and RB3 on
//! a 16x16 wormhole mesh at several fault densities.
//!
//! Run with `cargo run --release --example traffic_saturation`.
//!
//! What to look for:
//!
//! * at **zero faults** every router is minimal, so low-load latency is
//!   identical and the curves only separate near saturation;
//! * **under faults**, XY starts dropping traffic (it is
//!   fault-oblivious — see the delivery table), E-cube pays detour hops
//!   around rectangular fault blocks, and RB2/RB3 stay at (or near) the
//!   shortest-path latency — the paper's Fig. 5(d)/(e) story retold in
//!   cycles instead of hops;
//! * past the saturation rate the mean latency is dominated by source
//!   queueing and the table reports `sat` instead of a misleading
//!   number.

use meshpath::analysis::traffic::{run_load_sweep, LoadSweepConfig};
use meshpath::mesh::derive_seed;
use meshpath::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let cfg = LoadSweepConfig {
        mesh: 16,
        fault_counts: vec![8, 25],
        rates: vec![0.002, 0.005, 0.01, 0.02, 0.05],
        routers: RoutingKind::ALL.to_vec(),
        sim: SimConfig { warmup: 300, measure: 1500, drain: 4000, ..SimConfig::default() },
        ..Default::default()
    };

    println!(
        "wormhole traffic on a {n}x{n} mesh — {vcs} VCs x {depth} flits, {len}-flit packets\n",
        n = cfg.mesh,
        vcs = cfg.sim.vcs,
        depth = cfg.sim.vc_depth,
        len = cfg.sim.packet_len,
    );

    let res = run_load_sweep(&cfg);
    for t in res.latency_tables() {
        println!("{}", t.to_text());
    }
    for t in res.throughput_tables() {
        println!("{}", t.to_text());
    }

    println!(
        "  sat  = measured packets still undelivered after the drain budget\n\
         \x20 dead = no flit moved for 1000+ cycles: a wormhole cyclic wait\n\
         \x20        (escape VCs are a tracked follow-up; see ROADMAP.md)\n"
    );

    // Delivery rates at the highest swept load. `delivered` counts only
    // *generated* packets — XY additionally refuses pairs whose row/
    // column path crosses a fault (`unroutable`), so its 100% hides
    // traffic the others carry; both numbers are shown.
    let top_rate = *cfg.rates.last().expect("rates nonempty");
    for &fc in &cfg.fault_counts {
        print!("rate {top_rate:.3}, {fc} faults — delivered% (unroutable+ttl-dropped): ");
        for &r in &cfg.routers {
            let p = res.point(r, fc, top_rate).expect("swept");
            print!(
                "{} {:.1}% ({})  ",
                r.name(),
                p.stats.delivered_pct(),
                p.stats.unroutable + p.stats.ttl_dropped
            );
        }
        println!();
    }
    println!();

    // The paper's claim, measured in cycles: at low load under faults,
    // shortest-path routing (RB2) is no slower than the E-cube baseline.
    // The check runs with the route TTL disabled so both routers carry
    // the identical generated workload (with the TTL, E-cube sheds
    // exactly its worst pairs at the NI, biasing its mean downward) —
    // the tables above keep the default TTL because that is the
    // operationally sensible configuration.
    let low_rate = cfg.rates[0];
    for (fi, &fc) in cfg.fault_counts.iter().enumerate() {
        let mut frng = StdRng::seed_from_u64(derive_seed(cfg.seed, fi as u64, 0));
        let net = Network::build(FaultSet::random(
            Mesh::square(cfg.mesh),
            fc,
            FaultInjection::Uniform,
            &mut frng,
        ));
        let paired =
            SimConfig { rate: low_rate, route_ttl: Some(u32::MAX), drain: 8000, ..cfg.sim.clone() };
        let rb2 = run_traffic(&net, RoutingKind::Rb2, &paired);
        let ecube = run_traffic(&net, RoutingKind::ECube, &paired);
        let (l2, le) = (rb2.mean_latency(), ecube.mean_latency());
        println!(
            "check (paired, no TTL): RB2 mean latency {l2:.1} <= E-cube {le:.1} at rate \
             {low_rate:.3}, {fc} faults: {}",
            if l2 <= le + 1e-9 { "OK" } else { "VIOLATED" }
        );
        assert!(l2 <= le + 1e-9, "RB2 must not be slower than E-cube at low load under faults");
    }
}
