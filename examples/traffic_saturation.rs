//! Latency-vs-injection-rate tables for XY, E-cube, RB1, RB2 and RB3 on
//! a 16x16 wormhole mesh at several fault densities, with Duato-style
//! escape VCs keeping the adaptive routers live past the old interlock
//! onset.
//!
//! Run with `cargo run --release --example traffic_saturation`; pass
//! `--quick` for the CI smoke configuration (8x8 mesh, short windows —
//! exercises the full sweep path in seconds).
//!
//! What to look for:
//!
//! * at **zero faults** every router is minimal, so low-load latency is
//!   identical and the curves only separate near saturation;
//! * **under faults**, XY starts dropping traffic (it is
//!   fault-oblivious — see the delivery table), E-cube pays detour hops
//!   around rectangular fault blocks, and RB2/RB3 stay at (or near) the
//!   shortest-path latency — the paper's Fig. 5(d)/(e) story retold in
//!   cycles instead of hops;
//! * past the saturation rate the mean latency is dominated by source
//!   queueing and the table reports `sat` instead of a misleading
//!   number — but never `dead`: the escape classes (dimension-order XY
//!   plus the up*/down* spanning tree) give every blocked head a
//!   draining way out, where the source-routed fabric of PR 1 wedged
//!   at ~2% injection under 10% faults.

use meshpath::analysis::traffic::{run_load_sweep, LoadSweepConfig};
use meshpath::mesh::derive_seed;
use meshpath::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let quick = std::env::args().skip(1).any(|a| a == "--quick");
    let cfg = if quick {
        // CI smoke: small mesh, short windows, all five routers.
        LoadSweepConfig {
            mesh: 8,
            fault_counts: vec![0, 5],
            rates: vec![0.005, 0.02, 0.04],
            routers: RoutingKind::ALL.to_vec(),
            sim: SimConfig::smoke(),
            // This example *is* the honest-saturation exhibit: the
            // post-saturation rows must be measured, not inferred from
            // the ladder, so the sweep's early exit stays off.
            early_exit: false,
            ..Default::default()
        }
    } else {
        LoadSweepConfig {
            mesh: 16,
            fault_counts: vec![8, 25],
            // 0.04+ is past the old interlock onset (~0.02): the point
            // of the escape classes is that these rows say `sat`, not
            // `dead`.
            rates: vec![0.002, 0.005, 0.01, 0.02, 0.04, 0.05],
            routers: RoutingKind::ALL.to_vec(),
            sim: SimConfig { warmup: 300, measure: 1500, drain: 4000, ..SimConfig::default() },
            early_exit: false,
            ..Default::default()
        }
    };

    println!(
        "wormhole traffic on a {n}x{n} mesh — {vcs} VCs x {depth} flits ({esc} reserved for \
         escape), {len}-flit packets\n",
        n = cfg.mesh,
        vcs = cfg.sim.vcs,
        depth = cfg.sim.vc_depth,
        esc = cfg.sim.escape_vcs,
        len = cfg.sim.packet_len,
    );

    let res = run_load_sweep(&cfg);
    for t in res.latency_tables() {
        println!("{}", t.to_text());
    }
    for t in res.throughput_tables() {
        println!("{}", t.to_text());
    }

    println!(
        "  sat  = measured packets still undelivered after the drain budget\n\
         \x20 dead = no flit moved for 1000+ cycles: a wormhole cyclic wait\n\
         \x20        (must never appear with escape VCs enabled)\n"
    );

    // Liveness acceptance: with escape VCs, no grid point may deadlock
    // — including the rates past the source-routed fabric's interlock
    // onset — and every blocked router must keep delivering.
    let mut escapes_seen = 0u64;
    for p in &res.points {
        assert!(
            !p.stats.deadlocked,
            "{} at rate {} / {} faults deadlocked despite escape VCs: {:?}",
            p.router.name(),
            p.rate,
            p.faults,
            p.stats
        );
        escapes_seen += p.stats.escape_packets;
    }
    let top_rate = *cfg.rates.last().expect("rates nonempty");
    println!(
        "check: zero deadlocks across {} grid points (escape packets total: {escapes_seen})",
        res.points.len()
    );
    if !quick {
        // Past saturation the within-window delivered fraction is
        // bounded by capacity/offered, so the liveness floor is on
        // *accepted throughput*: a wedged fabric accepts ~nothing
        // (<0.003 flits/node/cycle in the source-routed runs), a live
        // one keeps draining at its capacity.
        for &fc in &cfg.fault_counts {
            for r in [RoutingKind::Rb1, RoutingKind::Rb2, RoutingKind::Rb3] {
                let p = res.point(r, fc, top_rate).expect("swept");
                let acc = p.stats.accepted_flits_per_node_cycle();
                assert!(
                    acc >= 0.015,
                    "{} at rate {top_rate} / {fc} faults all but stopped \
                     (accepted {acc:.4} flits/node/cycle): {:?}",
                    r.name(),
                    p.stats
                );
            }
        }
        println!(
            "check: RB1/RB2/RB3 keep accepting >= 0.015 flits/node/cycle at rate \
             {top_rate:.3} (2.5x the old interlock onset) at every fault density\n"
        );
    }

    // Delivery rates at the highest swept load. `delivered` counts only
    // *generated* packets — XY additionally refuses pairs whose row/
    // column path crosses a fault (`unroutable`), so its 100% hides
    // traffic the others carry; both numbers are shown.
    for &fc in &cfg.fault_counts {
        print!("rate {top_rate:.3}, {fc} faults — delivered% (unroutable+ttl-dropped): ");
        for &r in &cfg.routers {
            let p = res.point(r, fc, top_rate).expect("swept");
            print!(
                "{} {:.1}% ({})  ",
                r.name(),
                p.stats.delivered_pct(),
                p.stats.unroutable + p.stats.ttl_dropped
            );
        }
        println!();
    }
    println!();

    if quick {
        return;
    }

    // The paper's claim, measured in cycles: at low load under faults,
    // shortest-path routing (RB2) is no slower than the E-cube baseline.
    // The check runs with the route TTL disabled so both routers carry
    // the identical generated workload (with the TTL, E-cube sheds
    // exactly its worst pairs at the NI, biasing its mean downward) —
    // the tables above keep the default TTL because that is the
    // operationally sensible configuration.
    let low_rate = cfg.rates[0];
    for (fi, &fc) in cfg.fault_counts.iter().enumerate() {
        let mut frng = StdRng::seed_from_u64(derive_seed(cfg.seed, fi as u64, 0));
        let net = NetView::build(FaultSet::random(
            Mesh::square(cfg.mesh),
            fc,
            FaultInjection::Uniform,
            &mut frng,
        ));
        let paired =
            SimConfig { rate: low_rate, route_ttl: Some(u32::MAX), drain: 8000, ..cfg.sim.clone() };
        let rb2 = run_traffic(&net, RoutingKind::Rb2, &paired);
        let ecube = run_traffic(&net, RoutingKind::ECube, &paired);
        let (l2, le) = (rb2.mean_latency(), ecube.mean_latency());
        println!(
            "check (paired, no TTL): RB2 mean latency {l2:.1} <= E-cube {le:.1} at rate \
             {low_rate:.3}, {fc} faults: {}",
            if l2 <= le + 1e-9 { "OK" } else { "VIOLATED" }
        );
        assert!(l2 <= le + 1e-9, "RB2 must not be slower than E-cube at low load under faults");
    }
}
