//! Quickstart: build a faulty mesh, route with every algorithm, and
//! compare against the BFS ground truth.
//!
//! ```text
//! cargo run -p meshpath --release --example quickstart
//! ```

use meshpath::prelude::*;

fn main() {
    // A 20x20 mesh with a staircase cluster and a lone fault.
    let mesh = Mesh::square(20);
    let faults = FaultSet::from_coords(
        mesh,
        [
            Coord::new(9, 11),
            Coord::new(10, 10),
            Coord::new(11, 9),
            Coord::new(10, 11),
            Coord::new(4, 15),
        ],
    );
    let net = NetView::build(faults);

    let (s, d) = (Coord::new(10, 2), Coord::new(10, 18));
    let oracle = DistanceField::healthy(net.faults(), d);
    println!("mesh 20x20, 5 faults; routing {s} -> {d}");
    println!("Manhattan distance : {}", s.manhattan(d));
    println!("true shortest path : {} hops (BFS)", oracle.dist(s));
    println!();

    let routers: [&dyn Router; 4] = [&ECube, &Rb1::default(), &Rb2::default(), &Rb3::default()];
    let mut best: Option<(&str, RouteResult)> = None;
    for router in routers {
        let res = router.route(&net, s, d);
        validate_path(&net, s, d, &res).expect("route must be a valid walk");
        println!(
            "{:7} delivered={} hops={:3} detour_hops={:3} shortest={}",
            router.name(),
            res.delivered,
            res.hops(),
            res.detour_hops,
            res.hops() == oracle.dist(s),
        );
        if best.as_ref().is_none_or(|(_, b)| res.hops() < b.hops()) {
            best = Some((router.name(), res));
        }
    }

    // Render the best route.
    let (name, res) = best.expect("at least one router ran");
    println!("\nbest route ({name}):");
    let art = GridRender::new(mesh)
        .layer('#', |c| net.faults().is_faulty(c))
        .path('*', &res.path)
        .mark('S', s)
        .mark('D', d)
        .to_string();
    for line in art.lines() {
        println!("  {line}");
    }
}
