//! Barrier-synchronised all-to-all phases on a 16x16 mesh: the
//! collective-workload path end to end, RB2 vs the XY baseline, with
//! and without faults.
//!
//! Each round every healthy node sends one packet to a shifted peer
//! and the next round is released only when the previous one fully
//! resolves (the workload's phase barrier). The run asserts both
//! routers finish every phase with zero deadlocks, that the
//! fault-tolerant RB2 delivers **every** flow even with faults in the
//! mesh, and prints the per-phase completion-time ratio XY / RB2 —
//! the cost of detouring around faults at the collective level.
//!
//! Usage: `allreduce_phase [--quick] [--json]`.
//!
//! `--json` emits one machine-readable document with a row per
//! `(fault count, router)` including the phase completion cycles (the
//! format CI records as the `BENCH/<sha>-workload.json` artifact);
//! the default prints a small table. The run asserts its own claims
//! either way (CI runs `--quick --json`).

use meshpath::analysis::jsonl::{document, JsonObject};
use meshpath::prelude::*;
use meshpath::traffic::{PathTable, TrafficSim};
use meshpath::workload::WorkloadSpec;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let quick = argv.iter().any(|a| a == "--quick");
    let json = argv.iter().any(|a| a == "--json");

    let mesh = Mesh::square(16);
    let rounds: u32 = if quick { 2 } else { 4 };
    let len: u32 = 4;
    let spec = WorkloadSpec::AllToAll { rounds, len };
    let cfg = if quick { SimConfig::smoke() } else { SimConfig::default() };

    // A scattered fault population that keeps every healthy pair
    // RB2-routable; XY has no detours, so some of its flows abort.
    let fault_sets: [&[Coord]; 2] =
        [&[], &[Coord::new(4, 4), Coord::new(5, 4), Coord::new(11, 9), Coord::new(8, 12)]];

    let mut rows: Vec<JsonObject> = Vec::new();
    for faults in fault_sets {
        let net = NetView::build(FaultSet::from_coords(mesh, faults.iter().copied()));
        let mut phase_means = Vec::new();
        for kind in [RoutingKind::Rb2, RoutingKind::Xy] {
            let mut paths = PathTable::new(&net, kind);
            let out = TrafficSim::new(&mut paths, cfg.clone())
                .with_workload(spec.build(&net))
                .run_full(&mut ());
            let wl = out.workload.expect("workload runs always report an outcome");

            // The claims this example exists to demonstrate: the phase
            // barrier resolves every round (no wedged collective), and
            // the fault-tolerant router loses nothing to the faults.
            assert!(!out.stats.deadlocked, "{}: collective run deadlocked", kind.name());
            assert_eq!(
                wl.phases.len(),
                rounds as usize,
                "{}: every phase must complete",
                kind.name()
            );
            assert!(
                wl.phases.iter().all(|p| p.completed_at >= p.released_at && p.delivered > 0),
                "{}: phases must resolve in order with deliveries: {:?}",
                kind.name(),
                wl.phases
            );
            if kind == RoutingKind::Rb2 || faults.is_empty() {
                assert_eq!(
                    wl.flows_aborted,
                    0,
                    "{}: no flow may abort ({} faults)",
                    kind.name(),
                    faults.len()
                );
            }

            let cycles = wl.phase_cycles();
            let mean = cycles.iter().sum::<u64>() as f64 / cycles.len() as f64;
            phase_means.push(mean);

            if json {
                let mut row = JsonObject::new();
                row.string("router", kind.name())
                    .field("faults", faults.len())
                    .field("released", wl.released)
                    .field("flows_delivered", wl.flows_delivered)
                    .field("flows_aborted", wl.flows_aborted)
                    .array_u64("phase_cycles", &cycles)
                    .float("phase_mean", mean, 2)
                    .field("flow_p50", wl.flow_p50())
                    .field("flow_p99", wl.flow_p99())
                    .field("makespan", wl.makespan)
                    .field("deadlocked", out.stats.deadlocked);
                rows.push(row);
            } else {
                println!(
                    "{:7}  faults {}  phases {:?}  delivered {}  aborted {}  p99 {} cycles",
                    kind.name(),
                    faults.len(),
                    cycles,
                    wl.flows_delivered,
                    wl.flows_aborted,
                    wl.flow_p99(),
                );
            }
        }
        let ratio = phase_means[1] / phase_means[0];
        if !json {
            println!("  -> phase completion ratio XY / RB2 = {ratio:.3} ({} faults)", faults.len());
        }
    }

    if json {
        let mut config = JsonObject::new();
        config
            .field("mesh", 16)
            .field("rounds", rounds)
            .field("packet_len", len)
            .string("workload", spec.name())
            .string("scenario", "allreduce_phase");
        print!("{}", document(&config, &rows));
    } else {
        println!("all-to-all collective survived: every phase resolved on both routers");
    }
}
