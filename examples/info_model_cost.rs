//! Information-model cost: who must store a fault region's triple?
//!
//! Renders, for one fault cluster, the carrier sets of the three models
//! (B1 boundary lines, B2 forbidden-region broadcast, B3 boundaries plus
//! relation records) — the trade-off behind the paper's Fig. 5(c).
//!
//! ```text
//! cargo run -p meshpath --release --example info_model_cost
//! ```

use meshpath::fault::{BorderPolicy, MccSet};
use meshpath::info::{InfoModel, ModelKind};
use meshpath::prelude::*;

fn main() {
    let mesh = Mesh::square(24);
    // A staircase cluster mid-mesh plus a second blocker below-left, so
    // the boundary walks have something to merge around.
    let faults = FaultSet::from_coords(
        mesh,
        [
            Coord::new(12, 14),
            Coord::new(13, 14),
            Coord::new(13, 15),
            Coord::new(14, 15),
            Coord::new(11, 7),
            Coord::new(12, 7),
        ],
    );
    let set = MccSet::build(&faults, Orientation::IDENTITY, BorderPolicy::Open);
    let main_mcc = set.iter().max_by_key(|m| m.cell_count()).expect("clusters exist").id();

    for kind in ModelKind::ALL {
        let model = InfoModel::build(&set, kind);
        let stats = model.stats();
        println!(
            "{}: {} of {} safe nodes involved ({:.1}%), ~{} messages",
            kind.name(),
            stats.involved_nodes,
            stats.safe_nodes,
            stats.involved_pct(),
            stats.messages
        );
        println!("carriers of the large cluster's triple ('k'), faults '#':");
        for y in (0..24).rev() {
            let mut row = String::new();
            for x in 0..24 {
                let c = Coord::new(x, y);
                row.push(if faults.is_faulty(c) {
                    '#'
                } else if set.labeling().status(c).is_unsafe() {
                    'u'
                } else if model.knows(c, main_mcc) {
                    'k'
                } else {
                    '.'
                });
            }
            println!("  {row}");
        }
        println!();
    }
    println!("B1: two boundary lines. B3: four lines + splits. B2: the whole region.");
}
