//! Workspace-root crate: re-exports the [`meshpath`] facade so the
//! top-level `examples/` and `tests/` have a package to live in.
//!
//! Use the [`meshpath`] crate directly from library code; this crate
//! exists only to anchor the repository-level integration suite.

#![forbid(unsafe_code)]

pub use meshpath::*;
