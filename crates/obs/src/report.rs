//! The merged run report: [`ObsReport`] assembly from per-shard
//! accumulators, plus text heatmap renderers.
//!
//! Assembly is deterministic: per-node arrays merge additively at each
//! shard's node offset (every node is recorded by exactly one shard,
//! but the flat *bounding* intervals of rectangular tiles may overlap,
//! so the merge adds rather than copies), scalars are sums, histograms
//! merge commutatively, and event streams concatenate in shard-index
//! order.
//! Running the same simulation at any thread count therefore produces
//! the same simulation statistics, while the report's per-shard section
//! reflects the actual partitioning used.

use crate::metrics::LogHistogram;
use crate::postmortem::{find_cycle, Postmortem, WaitEdge};
use crate::probe::ShardObs;
use crate::profile::PhaseProfile;
use crate::trace::{StopKind, TraceEvent};

/// How much the simulator records.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ObsLevel {
    /// Nothing: the probe is compiled out ([`NoProbe`]).
    ///
    /// [`NoProbe`]: crate::probe::NoProbe
    #[default]
    Off,
    /// Counters and histograms only (no per-event trace ring).
    Metrics,
    /// Metrics plus the packet-lifecycle flight recorder.
    Trace,
}

impl ObsLevel {
    /// Stable lower-case name for reports and JSON.
    pub fn name(self) -> &'static str {
        match self {
            ObsLevel::Off => "off",
            ObsLevel::Metrics => "metrics",
            ObsLevel::Trace => "trace",
        }
    }
}

/// Flat id of the node fed by the link out of `node` toward `dir`
/// (`Dir::ALL` order: +x, -x, +y, -y), if it stays inside the mesh.
fn neighbor(width: usize, height: usize, node: u32, dir: u8) -> Option<u32> {
    let w = width as u32;
    let (x, y) = (node % w, node / w);
    match dir {
        0 if x + 1 < w => Some(node + 1),
        1 if x > 0 => Some(node - 1),
        2 if y + 1 < height as u32 => Some(node + w),
        3 if y > 0 => Some(node - w),
        _ => None,
    }
}

/// Per-shard slice of the report (partitioning-dependent data).
#[derive(Clone, Debug)]
pub struct ShardReport {
    /// Shard index (tile order: columns fastest, bottom rows first).
    pub shard: usize,
    /// Start of the flat *bounding* node interval the shard owned.
    /// For rectangular tiles narrower than the mesh this interval
    /// also spans other tiles' columns; it brackets, not partitions.
    pub node_start: u32,
    /// End of the bounding node interval (exclusive).
    pub node_end: u32,
    /// Boundary messages sent toward lower-indexed neighbor tiles
    /// (`-x` and `-y`).
    pub boundary_to_prev: u64,
    /// Boundary messages sent toward higher-indexed neighbor tiles
    /// (`+x` and `+y`).
    pub boundary_to_next: u64,
    /// Coordinator barriers this shard's worker synchronized on (one
    /// per granted lease; lockstep transports grant one cycle per
    /// barrier, so `cycles / barriers` is the realized lease factor).
    pub barriers: u64,
    /// Accumulated wall-clock per worker phase.
    pub phases: PhaseProfile,
    /// Trace events offered to this shard's flight recorder.
    pub events_seen: u64,
}

/// The merged observability report for one simulation run.
#[derive(Clone, Debug)]
pub struct ObsReport {
    /// Mesh width (nodes per row).
    pub width: usize,
    /// Mesh height (rows).
    pub height: usize,
    /// Recording level the run used.
    pub level: ObsLevel,
    /// Why the run stopped.
    pub stop: StopKind,
    /// Cycle the run stopped on.
    pub stopped_at: u64,
    /// Packets injected into the fabric.
    pub injected: u64,
    /// Packets whose tail ejected at a destination.
    pub delivered: u64,
    /// Packets dropped at sources by fault churn.
    pub dropped: u64,
    /// Flits sent per (node, direction): index `node*4 + dir`,
    /// `Dir::ALL` order (+x, -x, +y, -y).
    pub link_flits: Vec<u64>,
    /// Escape-class entries per node.
    pub escape_entries: Vec<u64>,
    /// Histogram of parked-head stall ages at grant time (cycles).
    pub stall_cycles: LogHistogram,
    /// Histogram of busy input VCs per active node, sampled at
    /// `stats_window` boundaries.
    pub vc_occupancy: LogHistogram,
    /// Per-shard partitioning-dependent data, in shard order.
    pub shards: Vec<ShardReport>,
    /// Flight-recorder contents, concatenated in shard order.
    pub recent_events: Vec<TraceEvent>,
    /// Present when the run stopped wedged
    /// ([`StopKind::is_wedged`]): the deadlock post-mortem.
    pub postmortem: Option<Postmortem>,
}

impl ObsReport {
    /// Merges per-shard accumulators (given in shard-index order) into
    /// the run report.
    pub fn assemble(width: usize, height: usize, shards: Vec<ShardObs>) -> ObsReport {
        assert!(!shards.is_empty(), "a report needs at least one shard");
        let nodes = width * height;
        let level = shards[0].level;
        let stop = shards.iter().find_map(|s| s.stop).unwrap_or(StopKind::Clean);
        let stopped_at = shards.iter().map(|s| s.stop_cycle).max().unwrap_or(0);
        let mut link_flits = vec![0u64; nodes * 4];
        let mut escape_entries = vec![0u64; nodes];
        let mut stall_cycles = LogHistogram::new();
        let mut vc_occupancy = LogHistogram::new();
        let (mut injected, mut delivered, mut dropped) = (0u64, 0u64, 0u64);
        let mut reports = Vec::with_capacity(shards.len());
        let mut recent_events = Vec::new();
        let mut stalled = Vec::new();
        let mut wait_edges = Vec::new();
        for s in &shards {
            // Additive merge at the shard's offset: tile bounding
            // intervals can overlap, but each node is recorded by
            // exactly one shard, so adding is exact.
            let a = s.start as usize;
            for (i, v) in s.link_flits.iter().enumerate() {
                link_flits[a * 4 + i] += v;
            }
            for (i, v) in s.escape_entries.iter().enumerate() {
                escape_entries[a + i] += v;
            }
            stall_cycles.merge(&s.stall_cycles);
            vc_occupancy.merge(&s.vc_occupancy);
            injected += s.injected;
            delivered += s.delivered;
            dropped += s.dropped;
            reports.push(ShardReport {
                shard: s.shard,
                node_start: s.start,
                node_end: s.end,
                boundary_to_prev: s.boundary_to_prev,
                boundary_to_next: s.boundary_to_next,
                barriers: s.barriers,
                phases: s.phases,
                events_seen: s.ring.seen(),
            });
            recent_events.extend(s.ring.events().copied());
            stalled.extend(s.stalled.iter().copied());
            wait_edges.extend(s.wait_edges.iter().copied());
        }
        // Resolve credit-starved waits: the holder of an unowned but
        // starved channel is the packet at the front of the downstream
        // input VC it feeds — possibly recorded by a different shard,
        // which is why resolution happens here and not in the fabric.
        let fronts: std::collections::HashMap<(u32, u8, u8), u32> = shards
            .iter()
            .flat_map(|s| s.fronts.iter())
            .map(|f| ((f.node, f.port, f.vc), f.packet))
            .collect();
        for b in shards.iter().flat_map(|s| s.blocked.iter()) {
            let Some(next) = neighbor(width, height, b.node, b.dir) else { continue };
            // The incoming port at the neighbor is the opposite
            // direction (`Dir::ALL` pairs +x/-x and +y/-y: xor 1).
            if let Some(&holder) = fronts.get(&(next, b.dir ^ 1, b.vc)) {
                if holder != b.waiter {
                    wait_edges.push(WaitEdge {
                        waiter: b.waiter,
                        holder,
                        node: b.node,
                        dir: b.dir,
                        vc: b.vc,
                    });
                }
            }
        }
        let postmortem = if stop.is_wedged() {
            let cycle_packets = find_cycle(&wait_edges);
            Some(Postmortem {
                cycle: stopped_at,
                reason: Some(stop),
                stalled,
                wait_edges,
                cycle_packets,
                recent_events: recent_events.clone(),
            })
        } else {
            None
        };
        ObsReport {
            width,
            height,
            level,
            stop,
            stopped_at,
            injected,
            delivered,
            dropped,
            link_flits,
            escape_entries,
            stall_cycles,
            vc_occupancy,
            shards: reports,
            recent_events,
            postmortem,
        }
    }

    /// Total flits sent over the links out of `node`.
    pub fn node_link_flits(&self, node: usize) -> u64 {
        self.link_flits[node * 4..node * 4 + 4].iter().sum()
    }

    /// Text heatmap of per-node link utilization (sum over the four
    /// outgoing links), highest mesh row first.
    pub fn link_heatmap(&self) -> String {
        let values: Vec<u64> =
            (0..self.width * self.height).map(|n| self.node_link_flits(n)).collect();
        self.heatmap("link flits per node", &values)
    }

    /// Text heatmap of per-node escape-class entries.
    pub fn escape_heatmap(&self) -> String {
        self.heatmap("escape entries per node", &self.escape_entries)
    }

    fn heatmap(&self, title: &str, values: &[u64]) -> String {
        const RAMP: [char; 10] = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
        let max = values.iter().copied().max().unwrap_or(0);
        let mut out =
            format!("{title} (max {max}, ramp \"{}\")\n", RAMP.iter().collect::<String>());
        for y in (0..self.height).rev() {
            for x in 0..self.width {
                let v = values[y * self.width + x];
                let i = if max == 0 {
                    0
                } else {
                    ((v as u128 * (RAMP.len() - 1) as u128) / max as u128) as usize
                };
                out.push(RAMP[i]);
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::{FabricProbe, GrantInfo};

    fn grant(node: u32, packet: u32, stalled: u32) -> GrantInfo {
        GrantInfo { node, packet, dir: 0, vc: 0, class: 0, fresh_vc: true, stalled }
    }

    #[test]
    fn assembly_merges_disjoint_bands_deterministically() {
        // 4x4 mesh split into two row bands of 8 nodes each.
        let mut lo = ShardObs::new(0, 0, 8, ObsLevel::Trace);
        let mut hi = ShardObs::new(1, 8, 16, ObsLevel::Trace);
        lo.cycle_start(1);
        hi.cycle_start(1);
        lo.inject(2, 10);
        lo.head_grant(grant(2, 10, 0));
        lo.link_flit(2, 2);
        hi.escape_entered(9, 11, 1);
        hi.head_grant(grant(9, 11, 5));
        hi.delivered(9, 11);
        hi.boundary_out(3, 0);
        let report = ObsReport::assemble(4, 4, vec![lo, hi]);
        assert_eq!(report.injected, 1);
        assert_eq!(report.delivered, 1);
        assert_eq!(report.node_link_flits(2), 1);
        assert_eq!(report.escape_entries[9], 1);
        assert_eq!(report.stall_cycles.count(), 2);
        assert_eq!(report.stall_cycles.max(), 5);
        assert_eq!(report.shards.len(), 2);
        assert_eq!(report.shards[1].boundary_to_prev, 3);
        assert_eq!(report.stop, StopKind::Clean);
        assert!(report.postmortem.is_none());
        // Events concatenate in shard order: lo emits Inject +
        // HopGranted + VcAllocated, hi emits EscapeEntered +
        // HopGranted + VcAllocated + Delivered.
        assert_eq!(report.recent_events.len(), 7);
    }

    #[test]
    fn wedged_stops_produce_a_postmortem_with_a_cycle() {
        use crate::postmortem::{StalledPacket, WaitEdge};
        let mut s = ShardObs::new(0, 0, 16, ObsLevel::Trace);
        s.run_stopped(500, StopKind::Deadlock);
        for (w, h) in [(1u32, 2u32), (2, 1)] {
            s.wait_edge(WaitEdge { waiter: w, holder: h, node: 0, dir: 0, vc: 0 });
            s.stalled_packet(StalledPacket {
                packet: w,
                node: 0,
                src: (0, 0),
                dst: (3, 3),
                class: 0,
                stalled: 0,
                generated_at: 1,
            });
        }
        let report = ObsReport::assemble(4, 4, vec![s]);
        assert_eq!(report.stop, StopKind::Deadlock);
        let pm = report.postmortem.expect("wedged stop dumps a post-mortem");
        assert_eq!(pm.cycle, 500);
        assert_eq!(pm.stalled.len(), 2);
        assert_eq!(pm.cycle_packets, vec![1, 2]);
    }

    #[test]
    fn credit_starved_waits_resolve_against_the_downstream_vc_front() {
        use crate::postmortem::{BlockedWait, VcFront};
        // 4x4 mesh, two row bands. Packet 7, parked at node 2 in the
        // lower shard, is starved on its +y channel (dir 2); the
        // downstream buffer at node 6 — owned by the upper shard — has
        // packet 9 at the front of the -y input port (dir 2 ^ 1 = 3).
        let mut lo = ShardObs::new(0, 0, 8, ObsLevel::Metrics);
        let mut hi = ShardObs::new(1, 8, 16, ObsLevel::Metrics);
        lo.run_stopped(100, StopKind::Deadlock);
        lo.wait_blocked(BlockedWait { waiter: 7, node: 2, dir: 2, vc: 0 });
        // An off-mesh starve (node 12 has no +y neighbor on 4x4) and a
        // self-wait must both resolve to nothing.
        hi.wait_blocked(BlockedWait { waiter: 8, node: 12, dir: 2, vc: 0 });
        hi.wait_blocked(BlockedWait { waiter: 9, node: 10, dir: 0, vc: 0 });
        hi.vc_front(VcFront { node: 6, port: 3, vc: 0, packet: 9 });
        hi.vc_front(VcFront { node: 11, port: 1, vc: 0, packet: 9 });
        let report = ObsReport::assemble(4, 4, vec![lo, hi]);
        let pm = report.postmortem.expect("deadlock stop dumps a post-mortem");
        assert_eq!(pm.wait_edges, vec![WaitEdge { waiter: 7, holder: 9, node: 2, dir: 2, vc: 0 }]);
    }

    #[test]
    fn heatmaps_render_row_major_top_down() {
        let mut s = ShardObs::new(0, 0, 4, ObsLevel::Metrics);
        // Node 3 = (x=1, y=1) on a 2x2 mesh: top-right cell.
        s.link_flit(3, 0);
        let report = ObsReport::assemble(2, 2, vec![s]);
        let map = report.link_heatmap();
        let lines: Vec<&str> = map.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[1], " @");
        assert_eq!(lines[2], "  ");
    }
}
