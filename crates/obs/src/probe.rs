//! The fabric instrumentation hook: [`FabricProbe`], its disabled
//! implementation [`NoProbe`], and the per-shard accumulator
//! [`ShardObs`].
//!
//! The simulator's allocator hot path is generic over `P: FabricProbe`.
//! [`NoProbe`] has `ACTIVE = false` and empty methods, so the
//! `P = NoProbe` monomorphization — the default for every plain
//! `run()` — contains no instrumentation code at all: no branches, no
//! `Option` checks, no clock reads. With [`ShardObs`] substituted, each
//! shard records into its own lock-free plain-`u64` accumulators (no
//! sharing, no atomics on the hot path); the coordinator collects the
//! probes at run end and merges them in shard-index order.
//!
//! Probe methods only **observe**: they draw no randomness, mutate no
//! simulator state and return nothing, which is what makes the
//! instrumented run bit-identical to the bare one.

use crate::metrics::LogHistogram;
use crate::postmortem::{BlockedWait, StalledPacket, VcFront, WaitEdge};
use crate::profile::{Phase, PhaseProfile};
use crate::report::ObsLevel;
use crate::trace::{FlightRecorder, StopKind, TraceEvent, TraceEventKind, TraceSink};

/// One head-flit switch grant, as seen by the probe.
#[derive(Clone, Copy, Debug)]
pub struct GrantInfo {
    /// Flat node id where the grant happened.
    pub node: u32,
    /// Packet id of the granted head.
    pub packet: u32,
    /// Output direction index (0..4).
    pub dir: u8,
    /// Downstream virtual-channel index.
    pub vc: u8,
    /// VC class discriminant of the downstream VC.
    pub class: u8,
    /// True when the grant allocated a fresh downstream VC (head
    /// entering a new worm hold), false when continuing an owned one.
    pub fresh_vc: bool,
    /// Consecutive cycles the head was parked before this grant.
    pub stalled: u32,
}

/// Compile-time-dispatched instrumentation hooks for the wormhole
/// fabric and shard worker.
///
/// Every method has an empty default; implementations override what
/// they record. `ACTIVE` lets call sites skip *preparation* work
/// (clock reads, occupancy walks) entirely when disabled.
pub trait FabricProbe {
    /// Whether this probe records anything at all.
    const ACTIVE: bool;

    /// A new simulation cycle begins (timestamp for later events).
    #[inline]
    fn cycle_start(&mut self, _cycle: u64) {}
    /// A packet's head flit entered the fabric at `node`.
    #[inline]
    fn inject(&mut self, _node: u32, _packet: u32) {}
    /// One flit crossed the link out of `node` toward `dir`.
    #[inline]
    fn link_flit(&mut self, _node: u32, _dir: u8) {}
    /// A head flit won switch allocation.
    #[inline]
    fn head_grant(&mut self, _grant: GrantInfo) {}
    /// A packet committed to an escape class at `node`.
    #[inline]
    fn escape_entered(&mut self, _node: u32, _packet: u32, _class: u8) {}
    /// A packet's tail flit ejected at `node`.
    #[inline]
    fn delivered(&mut self, _node: u32, _packet: u32) {}
    /// A queued packet was dropped at its source by fault churn.
    #[inline]
    fn dropped(&mut self, _node: u32, _packet: u32) {}
    /// A parked head aged to `cycles` consecutive stalled cycles.
    #[inline]
    fn head_stalled(&mut self, _node: u32, _packet: u32, _cycles: u32) {}
    /// Window-boundary sample: `occupied` input VCs are busy at `node`.
    #[inline]
    fn occupancy_sample(&mut self, _node: u32, _occupied: u32) {}
    /// Boundary messages sent to the neighbor shards this cycle.
    #[inline]
    fn boundary_out(&mut self, _to_prev: u64, _to_next: u64) {}
    /// One coordinator barrier reached: the worker received a lease
    /// covering `cycles` cycles. Lockstep transports grant one cycle
    /// per barrier; the free-running lease transport amortizes the
    /// round trip, so `barriers * lease ~= cycles run`.
    #[inline]
    fn barrier(&mut self, _cycles: u64) {}
    /// Adds wall-clock nanoseconds to a worker phase.
    #[inline]
    fn phase_ns(&mut self, _phase: Phase, _ns: u64) {}
    /// The run stopped; emitted once per shard at shutdown.
    #[inline]
    fn run_stopped(&mut self, _cycle: u64, _reason: StopKind) {}
    /// Post-mortem: a parked head present at stop time.
    #[inline]
    fn stalled_packet(&mut self, _packet: StalledPacket) {}
    /// Post-mortem: one VC wait-for edge.
    #[inline]
    fn wait_edge(&mut self, _edge: WaitEdge) {}
    /// Post-mortem: a wait on an unowned but credit-starved VC, to be
    /// resolved against the downstream [`VcFront`] at assembly.
    #[inline]
    fn wait_blocked(&mut self, _blocked: BlockedWait) {}
    /// Post-mortem: the packet at the front of one occupied
    /// directional input VC.
    #[inline]
    fn vc_front(&mut self, _front: VcFront) {}
}

/// The disabled probe: `ACTIVE = false`, every hook a no-op.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoProbe;

impl FabricProbe for NoProbe {
    const ACTIVE: bool = false;
}

/// Default flight-recorder capacity per shard.
pub const DEFAULT_RING_CAPACITY: usize = 256;

/// Per-shard metrics and trace accumulator.
///
/// Owned exclusively by one shard worker for the whole run (lock-free
/// by construction); collected and merged by
/// [`ObsReport::assemble`](crate::report::ObsReport::assemble).
#[derive(Clone, Debug)]
pub struct ShardObs {
    pub(crate) shard: usize,
    pub(crate) start: u32,
    pub(crate) end: u32,
    pub(crate) level: ObsLevel,
    pub(crate) cycle: u64,
    /// Flits sent per (local node, direction): `(node-start)*4 + dir`.
    pub(crate) link_flits: Vec<u64>,
    /// Escape-class entries per local node.
    pub(crate) escape_entries: Vec<u64>,
    pub(crate) stall_cycles: LogHistogram,
    pub(crate) vc_occupancy: LogHistogram,
    pub(crate) injected: u64,
    pub(crate) delivered: u64,
    pub(crate) dropped: u64,
    pub(crate) boundary_to_prev: u64,
    pub(crate) boundary_to_next: u64,
    pub(crate) barriers: u64,
    pub(crate) phases: PhaseProfile,
    pub(crate) ring: FlightRecorder,
    pub(crate) stalled: Vec<StalledPacket>,
    pub(crate) wait_edges: Vec<WaitEdge>,
    pub(crate) blocked: Vec<BlockedWait>,
    pub(crate) fronts: Vec<VcFront>,
    pub(crate) stop: Option<StopKind>,
    pub(crate) stop_cycle: u64,
}

impl ShardObs {
    /// An accumulator for shard `shard` owning flat nodes
    /// `[start, end)`, recording at `level` (must not be
    /// [`ObsLevel::Off`]).
    pub fn new(shard: usize, start: u32, end: u32, level: ObsLevel) -> Self {
        assert!(level != ObsLevel::Off, "an off-level probe should be NoProbe");
        let nodes = (end - start) as usize;
        let ring_cap = if level == ObsLevel::Trace { DEFAULT_RING_CAPACITY } else { 0 };
        ShardObs {
            shard,
            start,
            end,
            level,
            cycle: 0,
            link_flits: vec![0; nodes * 4],
            escape_entries: vec![0; nodes],
            stall_cycles: LogHistogram::new(),
            vc_occupancy: LogHistogram::new(),
            injected: 0,
            delivered: 0,
            dropped: 0,
            boundary_to_prev: 0,
            boundary_to_next: 0,
            barriers: 0,
            phases: PhaseProfile::new(),
            ring: FlightRecorder::new(ring_cap),
            stalled: Vec::new(),
            wait_edges: Vec::new(),
            blocked: Vec::new(),
            fronts: Vec::new(),
            stop: None,
            stop_cycle: 0,
        }
    }

    /// The shard index this accumulator belongs to.
    pub fn shard(&self) -> usize {
        self.shard
    }

    #[inline]
    fn trace(&mut self, packet: u32, node: u32, kind: TraceEventKind) {
        if self.level == ObsLevel::Trace {
            self.ring.record(TraceEvent { cycle: self.cycle, packet, node, kind });
        }
    }

    #[inline]
    fn local(&self, node: u32) -> usize {
        debug_assert!(node >= self.start && node < self.end, "node {node} outside shard band");
        (node - self.start) as usize
    }
}

impl FabricProbe for ShardObs {
    const ACTIVE: bool = true;

    #[inline]
    fn cycle_start(&mut self, cycle: u64) {
        self.cycle = cycle;
    }

    #[inline]
    fn inject(&mut self, node: u32, packet: u32) {
        self.injected += 1;
        self.trace(packet, node, TraceEventKind::Inject);
    }

    #[inline]
    fn link_flit(&mut self, node: u32, dir: u8) {
        let i = self.local(node) * 4 + dir as usize;
        self.link_flits[i] += 1;
    }

    #[inline]
    fn head_grant(&mut self, g: GrantInfo) {
        self.stall_cycles.record(u64::from(g.stalled));
        self.trace(g.packet, g.node, TraceEventKind::HopGranted { dir: g.dir });
        if g.fresh_vc {
            self.trace(
                g.packet,
                g.node,
                TraceEventKind::VcAllocated { dir: g.dir, vc: g.vc, class: g.class },
            );
        }
    }

    #[inline]
    fn escape_entered(&mut self, node: u32, packet: u32, class: u8) {
        let i = self.local(node);
        self.escape_entries[i] += 1;
        self.trace(packet, node, TraceEventKind::EscapeEntered { class });
    }

    #[inline]
    fn delivered(&mut self, node: u32, packet: u32) {
        self.delivered += 1;
        self.trace(packet, node, TraceEventKind::Delivered);
    }

    #[inline]
    fn dropped(&mut self, node: u32, packet: u32) {
        self.dropped += 1;
        self.trace(packet, node, TraceEventKind::Dropped);
    }

    #[inline]
    fn head_stalled(&mut self, node: u32, packet: u32, cycles: u32) {
        // Power-of-two backoff keeps long stalls from flooding the ring
        // while still marking that the stall is ongoing.
        if cycles.is_power_of_two() {
            self.trace(packet, node, TraceEventKind::Stalled { cycles });
        }
    }

    #[inline]
    fn occupancy_sample(&mut self, _node: u32, occupied: u32) {
        self.vc_occupancy.record(u64::from(occupied));
    }

    #[inline]
    fn boundary_out(&mut self, to_prev: u64, to_next: u64) {
        self.boundary_to_prev += to_prev;
        self.boundary_to_next += to_next;
    }

    #[inline]
    fn barrier(&mut self, _cycles: u64) {
        self.barriers += 1;
    }

    #[inline]
    fn phase_ns(&mut self, phase: Phase, ns: u64) {
        self.phases.add(phase, ns);
    }

    fn run_stopped(&mut self, cycle: u64, reason: StopKind) {
        self.cycle = cycle;
        self.stop = Some(reason);
        self.stop_cycle = cycle;
        self.trace(TraceEvent::NO_PACKET, self.start, TraceEventKind::RunStopped { reason });
    }

    fn stalled_packet(&mut self, packet: StalledPacket) {
        self.stalled.push(packet);
    }

    fn wait_edge(&mut self, edge: WaitEdge) {
        self.wait_edges.push(edge);
    }

    fn wait_blocked(&mut self, blocked: BlockedWait) {
        self.blocked.push(blocked);
    }

    fn vc_front(&mut self, front: VcFront) {
        self.fronts.push(front);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_obs_accumulates_and_traces() {
        let mut obs = ShardObs::new(0, 8, 16, ObsLevel::Trace);
        obs.cycle_start(5);
        obs.inject(9, 100);
        obs.link_flit(9, 2);
        obs.link_flit(9, 2);
        obs.head_grant(GrantInfo {
            node: 9,
            packet: 100,
            dir: 2,
            vc: 1,
            class: 0,
            fresh_vc: true,
            stalled: 3,
        });
        obs.escape_entered(10, 100, 2);
        obs.delivered(12, 100);
        assert_eq!(obs.injected, 1);
        assert_eq!(obs.delivered, 1);
        let lnode = 9 - 8; // node 9 in a shard starting at 8
        assert_eq!(obs.link_flits[lnode * 4 + 2], 2);
        assert_eq!(obs.escape_entries[10 - 8], 1);
        assert_eq!(obs.stall_cycles.count(), 1);
        assert_eq!(obs.stall_cycles.max(), 3);
        // Inject + HopGranted + VcAllocated + EscapeEntered + Delivered.
        assert_eq!(obs.ring.seen(), 5);
        assert!(obs.ring.events().all(|e| e.cycle == 5));
    }

    #[test]
    fn metrics_level_counts_without_tracing() {
        let mut obs = ShardObs::new(0, 0, 4, ObsLevel::Metrics);
        obs.inject(1, 7);
        obs.head_stalled(1, 7, 4);
        assert_eq!(obs.injected, 1);
        assert_eq!(obs.ring.seen(), 0);
    }

    #[test]
    fn stall_trace_backs_off_to_powers_of_two() {
        let mut obs = ShardObs::new(0, 0, 4, ObsLevel::Trace);
        for c in 1..=9u32 {
            obs.head_stalled(0, 3, c);
        }
        // 1, 2, 4, 8.
        assert_eq!(obs.ring.seen(), 4);
    }
}
