//! Application-flow lifecycle events and completion accounting.
//!
//! Workload sources (trace replay, flow DAGs, collective phases — see
//! the `meshpath-workload` crate) identify packets by a `u32` flow id.
//! The run coordinator records one [`FlowEvent`] per lifecycle
//! transition into a [`FlowLog`]; the log stays deterministic under
//! sharding because events are sorted by `(cycle, kind, flow)` before
//! they are read — within one cycle the coordinator merges shard
//! reports in arrival order, which thread scheduling may permute.
//!
//! Like the rest of this crate the module speaks only in primitives,
//! so the simulator can depend on it without a layering inversion.

use crate::log::{enabled, LogLevel};

/// What happened to a flow.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum FlowEventKind {
    /// The flow's message was released to the fabric (injection
    /// scheduled at the event cycle).
    Released,
    /// The flow's packet completed delivery (tail ejected; the event
    /// cycle is the delivery cycle).
    Delivered,
    /// The flow was aborted: its packet was unroutable, dropped, or
    /// killed by churn — or a predecessor flow aborted and the
    /// scheduler cascaded the abort (a dependent flow can never become
    /// injectable once a predecessor is gone).
    Aborted,
}

impl FlowEventKind {
    /// Short lowercase name (log lines, JSON).
    pub fn name(self) -> &'static str {
        match self {
            FlowEventKind::Released => "released",
            FlowEventKind::Delivered => "delivered",
            FlowEventKind::Aborted => "aborted",
        }
    }
}

/// One flow lifecycle transition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlowEvent {
    /// Cycle at which the transition happened.
    pub cycle: u64,
    /// The flow id (workload-source scoped).
    pub flow: u32,
    /// The transition.
    pub kind: FlowEventKind,
}

/// An append-only flow lifecycle log with deterministic read order and
/// `MESHPATH_LOG=debug` echo.
#[derive(Clone, Debug, Default)]
pub struct FlowLog {
    events: Vec<FlowEvent>,
}

impl FlowLog {
    /// An empty log.
    pub fn new() -> Self {
        FlowLog::default()
    }

    /// Records one lifecycle event (echoed to stderr under
    /// `MESHPATH_LOG=debug`).
    pub fn record(&mut self, cycle: u64, flow: u32, kind: FlowEventKind) {
        if enabled(LogLevel::Debug) {
            eprintln!("[flow] cycle {cycle}: flow {flow} {}", kind.name());
        }
        self.events.push(FlowEvent { cycle, flow, kind });
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The events sorted by `(cycle, kind, flow)` — the canonical,
    /// shard-count-independent order (same-cycle events may have been
    /// recorded in shard-arrival order).
    pub fn into_sorted(mut self) -> Vec<FlowEvent> {
        self.events.sort_by_key(|e| (e.cycle, e.kind, e.flow));
        self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_sort_canonically() {
        let mut log = FlowLog::new();
        log.record(5, 2, FlowEventKind::Delivered);
        log.record(1, 9, FlowEventKind::Released);
        log.record(5, 1, FlowEventKind::Delivered);
        log.record(5, 1, FlowEventKind::Released);
        assert_eq!(log.len(), 4);
        let sorted = log.into_sorted();
        assert_eq!(
            sorted,
            vec![
                FlowEvent { cycle: 1, flow: 9, kind: FlowEventKind::Released },
                FlowEvent { cycle: 5, flow: 1, kind: FlowEventKind::Released },
                FlowEvent { cycle: 5, flow: 1, kind: FlowEventKind::Delivered },
                FlowEvent { cycle: 5, flow: 2, kind: FlowEventKind::Delivered },
            ]
        );
    }

    #[test]
    fn empty_log_reads_empty() {
        let log = FlowLog::new();
        assert!(log.is_empty());
        assert!(log.into_sorted().is_empty());
    }
}
