//! Phase profiler: coarse scoped timing of the simulator's per-cycle
//! phases, accumulated per shard.
//!
//! The shard worker brackets each phase with `Instant` reads **only
//! when a probe is active** (`P::ACTIVE`), so the disabled fast path
//! never touches a clock. Wall-clock nanoseconds are inherently
//! non-deterministic; they live in the [`ObsReport`] only and never
//! feed back into simulation state, so determinism of the simulation
//! itself is untouched.
//!
//! [`ObsReport`]: crate::report::ObsReport

/// A per-cycle phase of the shard worker (or the route service).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Injection, routing decisions and switch allocation
    /// (`plan_and_grant`).
    Plan,
    /// Boundary-message exchange with neighbor shards.
    Boundary,
    /// Cycle commit: arrival/credit application and stats accounting.
    Commit,
}

impl Phase {
    /// All phases, in fixed report order.
    pub const ALL: [Phase; 3] = [Phase::Plan, Phase::Boundary, Phase::Commit];

    /// Stable lower-case name for reports and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Plan => "plan",
            Phase::Boundary => "boundary_sync",
            Phase::Commit => "commit",
        }
    }
}

/// Accumulated nanoseconds per phase for one shard.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseProfile {
    ns: [u64; 3],
}

impl PhaseProfile {
    /// An empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `ns` nanoseconds to a phase.
    #[inline]
    pub fn add(&mut self, phase: Phase, ns: u64) {
        self.ns[phase as usize] += ns;
    }

    /// Accumulated nanoseconds for a phase.
    pub fn get(&self, phase: Phase) -> u64 {
        self.ns[phase as usize]
    }

    /// Total nanoseconds across all phases.
    pub fn total(&self) -> u64 {
        self.ns.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_accumulate_independently() {
        let mut p = PhaseProfile::new();
        p.add(Phase::Plan, 10);
        p.add(Phase::Plan, 5);
        p.add(Phase::Commit, 7);
        assert_eq!(p.get(Phase::Plan), 15);
        assert_eq!(p.get(Phase::Boundary), 0);
        assert_eq!(p.get(Phase::Commit), 7);
        assert_eq!(p.total(), 22);
        assert_eq!(Phase::Boundary.name(), "boundary_sync");
    }
}
