//! Packet-lifecycle trace layer: typed events, the [`TraceSink`]
//! consumer trait, and the bounded per-shard [`FlightRecorder`].
//!
//! Events are small `Copy` records keyed by `(cycle, packet, node)`;
//! the fabric emits one at each lifecycle transition (injection, switch
//! grant, VC allocation, escape commitment, stall aging, ejection,
//! drop). The flight recorder keeps the most recent `capacity` events
//! per shard so that when a run wedges, the post-mortem can show what
//! the fabric was doing *right before* it stopped — without unbounded
//! memory growth on healthy runs.

use std::collections::VecDeque;

/// Why a simulation run ended, as derived by the run loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopKind {
    /// Everything generated was delivered and the fabric drained.
    Clean,
    /// A window observer stopped the run while the drain phase was
    /// delivering nothing with packets still outstanding — the
    /// `DrainStallObserver` signature.
    DrainStall,
    /// A window observer stopped the run outside the drain-stall
    /// signature (e.g. a saturation detector during measurement).
    Observer,
    /// The fabric idled with flits in flight: wormhole deadlock.
    Deadlock,
    /// The cycle deadline expired with the fabric still live.
    Deadline,
}

impl StopKind {
    /// Stable lower-case name for reports and JSON.
    pub fn name(self) -> &'static str {
        match self {
            StopKind::Clean => "clean",
            StopKind::DrainStall => "drain_stall",
            StopKind::Observer => "observer_stop",
            StopKind::Deadlock => "deadlock",
            StopKind::Deadline => "deadline",
        }
    }

    /// True for the reasons that warrant a deadlock post-mortem (the
    /// fabric stopped making progress with packets still inside).
    pub fn is_wedged(self) -> bool {
        matches!(self, StopKind::DrainStall | StopKind::Deadlock)
    }
}

/// What happened to a packet at one lifecycle transition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEventKind {
    /// Head flit entered the fabric at its source node.
    Inject,
    /// A head flit won switch allocation toward `dir`.
    HopGranted {
        /// Output direction index (0..4, `Dir::ALL` order).
        dir: u8,
    },
    /// A head flit acquired a fresh downstream virtual channel.
    VcAllocated {
        /// Output direction index.
        dir: u8,
        /// Virtual-channel index within the output port.
        vc: u8,
        /// VC class discriminant (0 adaptive, 1 escape-XY, 2 escape-tree).
        class: u8,
    },
    /// The packet committed to an escape class (it will never return
    /// to the adaptive class).
    EscapeEntered {
        /// VC class discriminant of the escape class entered.
        class: u8,
    },
    /// A parked head's stall clock reached a power of two (events are
    /// emitted at 1, 2, 4, ... parked cycles to bound trace volume).
    Stalled {
        /// Consecutive cycles parked without a grant.
        cycles: u32,
    },
    /// Tail flit ejected at the destination.
    Delivered,
    /// The packet was dropped at its source by fault churn.
    Dropped,
    /// The run loop stopped; emitted once per shard at shutdown.
    RunStopped {
        /// The derived stop classification.
        reason: StopKind,
    },
}

/// One typed packet-lifecycle event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulation cycle the event occurred on.
    pub cycle: u64,
    /// Packet id (`u32::MAX` for events not tied to one packet).
    pub packet: u32,
    /// Flat node id where the event occurred.
    pub node: u32,
    /// The transition.
    pub kind: TraceEventKind,
}

impl TraceEvent {
    /// Sentinel packet id for events not tied to a packet.
    pub const NO_PACKET: u32 = u32::MAX;
}

/// A consumer of trace events.
///
/// The fabric probe forwards events here; implementations decide
/// retention policy. [`FlightRecorder`] is the bounded default.
pub trait TraceSink {
    /// Accepts one event.
    fn record(&mut self, event: TraceEvent);
}

/// A bounded ring buffer of the most recent trace events.
#[derive(Clone, Debug, Default)]
pub struct FlightRecorder {
    capacity: usize,
    buf: VecDeque<TraceEvent>,
    seen: u64,
}

impl FlightRecorder {
    /// A recorder retaining at most `capacity` events (0 disables
    /// retention but still counts).
    pub fn new(capacity: usize) -> Self {
        FlightRecorder { capacity, buf: VecDeque::with_capacity(capacity.min(1024)), seen: 0 }
    }

    /// Total events offered, including evicted ones.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Events currently retained, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

impl TraceSink for FlightRecorder {
    fn record(&mut self, event: TraceEvent) {
        self.seen += 1;
        if self.capacity == 0 {
            return;
        }
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
        }
        self.buf.push_back(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64) -> TraceEvent {
        TraceEvent { cycle, packet: 7, node: 3, kind: TraceEventKind::Inject }
    }

    #[test]
    fn recorder_keeps_the_most_recent_events() {
        let mut r = FlightRecorder::new(3);
        for c in 0..5 {
            r.record(ev(c));
        }
        assert_eq!(r.seen(), 5);
        assert_eq!(r.len(), 3);
        let cycles: Vec<u64> = r.events().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![2, 3, 4]);
    }

    #[test]
    fn zero_capacity_counts_without_retaining() {
        let mut r = FlightRecorder::new(0);
        r.record(ev(1));
        assert_eq!(r.seen(), 1);
        assert!(r.is_empty());
    }

    #[test]
    fn stop_kinds_classify_wedges() {
        assert!(StopKind::Deadlock.is_wedged());
        assert!(StopKind::DrainStall.is_wedged());
        assert!(!StopKind::Clean.is_wedged());
        assert!(!StopKind::Deadline.is_wedged());
        assert_eq!(StopKind::DrainStall.name(), "drain_stall");
    }
}
