//! Log-bucketed histograms: the workhorse accumulator of the metrics
//! registry.
//!
//! A [`LogHistogram`] buckets `u64` samples by bit length — bucket 0
//! holds the value 0, bucket `b >= 1` holds values in
//! `[2^(b-1), 2^b)` — so it covers the full `u64` range in 65 fixed
//! buckets with O(1) recording and a commutative, associative
//! [`merge`](LogHistogram::merge). That merge law is what makes
//! per-shard accumulation deterministic: shards record independently
//! and the coordinator folds them in shard-index order, but *any*
//! order would report the same totals (pinned by a proptest below).
//!
//! [`AtomicLogHistogram`] is the same shape with relaxed atomics, for
//! concurrent writers that cannot take `&mut self` (the `RouteService`
//! query path); [`snapshot`](AtomicLogHistogram::snapshot) extracts a
//! plain histogram for reporting.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: one for zero plus one per `u64` bit length.
pub const LOG_BUCKETS: usize = 65;

/// Bucket index for a sample: 0 for 0, else the sample's bit length.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// Inclusive upper bound of a bucket (the largest value it can hold).
#[inline]
pub fn bucket_upper(index: usize) -> u64 {
    match index {
        0 => 0,
        64 => u64::MAX,
        b => (1u64 << b) - 1,
    }
}

/// A fixed-size power-of-two-bucketed histogram with exact count, sum
/// and max.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogHistogram {
    buckets: [u64; LOG_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram { buckets: [0; LOG_BUCKETS], count: 0, sum: 0, max: 0 }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
        self.sum += value;
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of the recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The raw bucket counts (index by [`bucket_index`]).
    pub fn buckets(&self) -> &[u64; LOG_BUCKETS] {
        &self.buckets
    }

    /// An upper bound on the `p`-quantile (`p` in `[0, 1]`): the
    /// inclusive upper edge of the bucket holding the `ceil(count*p)`-th
    /// smallest sample, clamped to the exact recorded maximum.
    ///
    /// Bucketing makes this a bound, not an exact order statistic; the
    /// error is under 2x by construction (power-of-two buckets).
    ///
    /// # Panics
    ///
    /// If `p` is outside `[0, 1]`.
    pub fn percentile(&self, p: f64) -> u64 {
        assert!((0.0..=1.0).contains(&p), "percentile {p} outside [0, 1]");
        if self.count == 0 {
            return 0;
        }
        let target = ((self.count as f64) * p).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Folds another histogram into this one. Commutative and
    /// associative: any merge order yields identical contents.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

/// A [`LogHistogram`] with relaxed-atomic recording, for concurrent
/// writers behind a shared reference.
///
/// All operations use `Ordering::Relaxed`: each counter is independent
/// and the consumer only reads a [`snapshot`](Self::snapshot) after the
/// writers quiesce (or tolerates a momentarily torn view, as a metrics
/// reader does).
#[derive(Debug)]
pub struct AtomicLogHistogram {
    buckets: [AtomicU64; LOG_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for AtomicLogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomicLogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0); // array-init seed, not shared state
        AtomicLogHistogram {
            buckets: [ZERO; LOG_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Extracts a plain [`LogHistogram`] of the current contents.
    pub fn snapshot(&self) -> LogHistogram {
        let mut out = LogHistogram::new();
        for (i, b) in self.buckets.iter().enumerate() {
            out.buckets[i] = b.load(Ordering::Relaxed);
        }
        out.count = self.count.load(Ordering::Relaxed);
        out.sum = self.sum.load(Ordering::Relaxed);
        out.max = self.max.load(Ordering::Relaxed);
        out
    }
}

/// A relaxed-atomic hit/miss counter pair — the standard cache
/// instrument (route-cache hits in `meshpath`'s `RouteService`, or any
/// other memoized fast path). Concurrent writers never contend beyond
/// the two cache lines; readers snapshot with ordinary loads.
#[derive(Debug, Default)]
pub struct HitMiss {
    hits: AtomicU64,
    misses: AtomicU64,
}

impl HitMiss {
    /// A zeroed counter pair.
    pub fn new() -> Self {
        HitMiss::default()
    }

    /// Records one hit.
    #[inline]
    pub fn hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one miss.
    #[inline]
    pub fn miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` hits at once (batch amortization).
    #[inline]
    pub fn hit_n(&self, n: u64) {
        self.hits.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` misses at once (batch amortization).
    #[inline]
    pub fn miss_n(&self, n: u64) {
        self.misses.fetch_add(n, Ordering::Relaxed);
    }

    /// Hits recorded so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Misses recorded so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Total lookups recorded.
    pub fn total(&self) -> u64 {
        self.hits() + self.misses()
    }

    /// Hit fraction in `[0, 1]`; `0.0` when nothing was recorded (never
    /// `NaN`, so the value is always JSON-renderable).
    pub fn hit_rate(&self) -> f64 {
        let (h, t) = (self.hits(), self.total());
        if t == 0 {
            0.0
        } else {
            h as f64 / t as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn hit_miss_counts_and_rate() {
        let hm = HitMiss::new();
        assert_eq!(hm.hit_rate(), 0.0, "empty pair must not be NaN");
        hm.hit();
        hm.miss();
        hm.hit_n(2);
        hm.miss_n(0);
        assert_eq!(hm.hits(), 3);
        assert_eq!(hm.misses(), 1);
        assert_eq!(hm.total(), 4);
        assert!((hm.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn bucket_edges_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(3), 7);
        assert_eq!(bucket_upper(64), u64::MAX);
        // Every value lands in the bucket whose bounds contain it.
        for v in [0u64, 1, 2, 3, 4, 5, 127, 128, 129, 1 << 40, u64::MAX] {
            let b = bucket_index(v);
            assert!(v <= bucket_upper(b));
            if b > 0 {
                assert!(v > bucket_upper(b - 1));
            }
        }
    }

    #[test]
    fn count_sum_max_mean_and_percentiles() {
        let mut h = LogHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.percentile(0.5), 0);
        for v in [0u64, 1, 2, 3, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 106);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 21.2).abs() < 1e-9);
        // 5 samples: p=0.2 targets the 1st (value 0, bucket 0).
        assert_eq!(h.percentile(0.2), 0);
        // p=1.0 is clamped to the exact max, not the bucket edge (127).
        assert_eq!(h.percentile(1.0), 100);
        // The median sample is 2 (bucket [2,3], upper edge 3).
        assert_eq!(h.percentile(0.5), 3);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn percentile_rejects_out_of_range() {
        LogHistogram::new().percentile(1.5);
    }

    #[test]
    fn merge_is_exact() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut whole = LogHistogram::new();
        for v in [5u64, 9, 1000] {
            a.record(v);
            whole.record(v);
        }
        for v in [0u64, 70_000] {
            b.record(v);
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn atomic_histogram_snapshots_match_plain_recording() {
        let h = AtomicLogHistogram::new();
        let mut plain = LogHistogram::new();
        for v in [0u64, 3, 3, 900, 1 << 50] {
            h.record(v);
            plain.record(v);
        }
        assert_eq!(h.snapshot(), plain);
        assert_eq!(h.count(), 5);
    }

    proptest! {
        // The deterministic-merge claim: folding per-shard histograms
        // in any order yields byte-identical contents.
        #[test]
        fn merge_order_never_changes_the_result(
            draw in (
                collection::vec(collection::vec(0u64..1_000_000, 0..32), 1..6),
                0usize..6,
            )
        ) {
            let (shards, rotate) = draw;
            let parts: Vec<LogHistogram> = shards
                .iter()
                .map(|vals| {
                    let mut h = LogHistogram::new();
                    for &v in vals {
                        h.record(v);
                    }
                    h
                })
                .collect();
            let fold = |order: &[usize]| {
                let mut acc = LogHistogram::new();
                for &i in order {
                    acc.merge(&parts[i]);
                }
                acc
            };
            let forward: Vec<usize> = (0..parts.len()).collect();
            let mut rotated = forward.clone();
            rotated.rotate_left(rotate % parts.len());
            let mut reversed = forward.clone();
            reversed.reverse();
            let base = fold(&forward);
            prop_assert_eq!(&fold(&rotated), &base);
            prop_assert_eq!(&fold(&reversed), &base);
        }
    }
}
