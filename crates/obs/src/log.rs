//! `MESHPATH_LOG` gating for ad-hoc diagnostic output.
//!
//! Progress and "wrote file" chatter across the workspace's binaries
//! and stress tests goes through [`enabled`] so that test and CI output
//! stays clean by default. Set `MESHPATH_LOG=info` (or `debug`,
//! `trace`; numbers `1`–`3` work too) to turn it on:
//!
//! ```sh
//! MESHPATH_LOG=info cargo run --release --bin traffic_sweep -- --quick
//! ```
//!
//! The level is read from the environment once and cached for the
//! process lifetime.

use std::sync::OnceLock;

/// Diagnostic verbosity, ordered: `Off < Info < Debug < Trace`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    /// No diagnostic output (the default).
    Off,
    /// Progress lines and output-file notices.
    Info,
    /// Per-phase details.
    Debug,
    /// Everything.
    Trace,
}

fn parse(raw: &str) -> LogLevel {
    match raw.trim().to_ascii_lowercase().as_str() {
        "" | "0" | "off" | "none" => LogLevel::Off,
        "1" | "info" => LogLevel::Info,
        "2" | "debug" => LogLevel::Debug,
        "3" | "trace" => LogLevel::Trace,
        // An unrecognized value means the user wants *something*.
        _ => LogLevel::Info,
    }
}

/// The process-wide level from `MESHPATH_LOG`, cached on first use.
pub fn level() -> LogLevel {
    static LEVEL: OnceLock<LogLevel> = OnceLock::new();
    *LEVEL.get_or_init(|| match std::env::var("MESHPATH_LOG") {
        Ok(v) => parse(&v),
        Err(_) => LogLevel::Off,
    })
}

/// True when output at `at` should be emitted.
///
/// ```
/// if meshpath_obs::enabled(meshpath_obs::LogLevel::Info) {
///     eprintln!("wrote report.json");
/// }
/// ```
pub fn enabled(at: LogLevel) -> bool {
    at <= level()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_parse_and_order() {
        assert_eq!(parse("off"), LogLevel::Off);
        assert_eq!(parse("0"), LogLevel::Off);
        assert_eq!(parse(""), LogLevel::Off);
        assert_eq!(parse("info"), LogLevel::Info);
        assert_eq!(parse("2"), LogLevel::Debug);
        assert_eq!(parse("TRACE"), LogLevel::Trace);
        assert_eq!(parse("yes"), LogLevel::Info);
        assert!(LogLevel::Off < LogLevel::Info);
        assert!(LogLevel::Info < LogLevel::Debug);
        assert!(LogLevel::Debug < LogLevel::Trace);
    }
}
