//! Deadlock post-mortem: the VC wait-for graph and its cycle witness.
//!
//! When a run stops wedged ([`StopKind::is_wedged`]), each shard walks
//! its input VCs: every *parked head* (a head flit with no allocated
//! route) re-asks its router for candidates and reports what each
//! candidate virtual channel is blocked on. Two flavors exist:
//!
//! * the VC is **owned** by another worm — a direct [`WaitEdge`]
//!   `waiter -> holder`;
//! * the VC is unowned but **credit-starved** — the previous worm's
//!   tail has passed, yet the downstream input buffer the channel
//!   feeds is still full. The shard emits a [`BlockedWait`] naming the
//!   channel plus [`VcFront`] occupancy records for its own input VCs;
//!   report assembly resolves each `BlockedWait` against the
//!   *downstream* VC front (which may live in a different shard) into
//!   a `WaitEdge` whose holder is the packet at that front.
//!
//! A directed cycle among the resolved edges is the wormhole-deadlock
//! witness — the packets on it each hold buffer space the next one
//! needs — and [`find_cycle`] names them.
//!
//! The graph uses *waits-on-any* semantics: a head with several
//! candidate VCs emits one edge per blocked candidate, so a cycle is
//! evidence of a circular wait among those candidates (the classic
//! single-candidate deterministic-routing case makes it exact).
//!
//! [`StopKind::is_wedged`]: crate::trace::StopKind::is_wedged

use crate::trace::{StopKind, TraceEvent};

/// A parked head flit at the moment the run stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StalledPacket {
    /// Packet id.
    pub packet: u32,
    /// Flat node id where the head is parked.
    pub node: u32,
    /// Source coordinate `(x, y)`.
    pub src: (i32, i32),
    /// Destination coordinate `(x, y)`.
    pub dst: (i32, i32),
    /// VC class discriminant the packet is committed to.
    pub class: u8,
    /// Consecutive cycles parked (0 under deterministic policies,
    /// whose fabric does not age stall clocks).
    pub stalled: u32,
    /// Cycle the packet was generated on.
    pub generated_at: u64,
}

/// One edge of the VC wait-for graph: `waiter`'s parked head wants a
/// virtual channel owned by `holder`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitEdge {
    /// The blocked packet.
    pub waiter: u32,
    /// The packet owning the wanted VC.
    pub holder: u32,
    /// Flat node id where the waiter is parked.
    pub node: u32,
    /// Output direction index of the wanted VC.
    pub dir: u8,
    /// Virtual-channel index of the wanted VC.
    pub vc: u8,
}

/// A parked head blocked on a candidate VC that is *credit-starved*
/// while unowned: the previous worm's tail released ownership, but the
/// downstream input buffer the channel feeds is still full, so no
/// credits return. Resolved into a [`WaitEdge`] during report assembly
/// using the downstream [`VcFront`] as the holder.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockedWait {
    /// The blocked packet.
    pub waiter: u32,
    /// Flat node id where the waiter is parked.
    pub node: u32,
    /// Output direction index of the starved VC.
    pub dir: u8,
    /// Virtual-channel index of the starved VC.
    pub vc: u8,
}

/// The packet at the front of one occupied directional input VC at
/// stop time — the occupancy side of [`BlockedWait`] resolution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VcFront {
    /// Flat node id owning the input VC.
    pub node: u32,
    /// Input port index (`Dir as usize` of the incoming link).
    pub port: u8,
    /// Virtual-channel index within the port.
    pub vc: u8,
    /// Packet whose flit is at the queue front.
    pub packet: u32,
}

/// The assembled post-mortem dumped when deadlock or drain-stall
/// detection fires.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Postmortem {
    /// Cycle the run stopped on.
    pub cycle: u64,
    /// Why it stopped.
    pub reason: Option<StopKind>,
    /// Every parked head at stop time, in shard then node order.
    pub stalled: Vec<StalledPacket>,
    /// The VC wait-for graph, in shard then node order.
    pub wait_edges: Vec<WaitEdge>,
    /// Packet ids on one directed cycle of the wait-for graph (empty
    /// when the graph is acyclic — e.g. a drain stall caused by
    /// congestion rather than deadlock).
    pub cycle_packets: Vec<u32>,
    /// The merged flight-recorder contents (most recent events per
    /// shard, concatenated in shard order).
    pub recent_events: Vec<TraceEvent>,
}

impl Postmortem {
    /// Renders a human-readable dump.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let reason = self.reason.map_or("unknown", |r| r.name());
        out.push_str(&format!(
            "post-mortem @ cycle {}: {} ({} parked heads, {} wait-for edges)\n",
            self.cycle,
            reason,
            self.stalled.len(),
            self.wait_edges.len()
        ));
        if self.cycle_packets.is_empty() {
            out.push_str("no cycle in the wait-for graph\n");
        } else {
            out.push_str("cyclic wait: ");
            for (i, p) in self.cycle_packets.iter().enumerate() {
                if i > 0 {
                    out.push_str(" -> ");
                }
                out.push_str(&format!("#{p}"));
            }
            out.push_str(&format!(" -> #{}\n", self.cycle_packets[0]));
        }
        for s in &self.stalled {
            out.push_str(&format!(
                "  parked #{} at node {} ({},{})->({},{}) class {} stalled {} born @{}\n",
                s.packet,
                s.node,
                s.src.0,
                s.src.1,
                s.dst.0,
                s.dst.1,
                s.class,
                s.stalled,
                s.generated_at
            ));
        }
        for e in &self.wait_edges {
            out.push_str(&format!(
                "  wait #{} -> #{} (node {} dir {} vc {})\n",
                e.waiter, e.holder, e.node, e.dir, e.vc
            ));
        }
        out
    }
}

/// Finds one directed cycle in the wait-for graph and returns the
/// packet ids on it (empty if the graph is acyclic).
///
/// Deterministic: vertices are visited in ascending packet-id order
/// and edges in input order, so the same graph always yields the same
/// witness.
pub fn find_cycle(edges: &[WaitEdge]) -> Vec<u32> {
    let mut verts: Vec<u32> = edges.iter().flat_map(|e| [e.waiter, e.holder]).collect();
    verts.sort_unstable();
    verts.dedup();
    let index = |p: u32| verts.binary_search(&p).expect("vertex indexed");
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); verts.len()];
    for e in edges {
        adj[index(e.waiter)].push(index(e.holder));
    }
    // Iterative DFS with tricolor marking; a back edge to a vertex on
    // the current stack closes a cycle.
    const WHITE: u8 = 0;
    const GRAY: u8 = 1;
    const BLACK: u8 = 2;
    let mut color = vec![WHITE; verts.len()];
    let mut stack: Vec<(usize, usize)> = Vec::new();
    for start in 0..verts.len() {
        if color[start] != WHITE {
            continue;
        }
        color[start] = GRAY;
        stack.push((start, 0));
        while let Some(top) = stack.len().checked_sub(1) {
            let (v, next) = stack[top];
            if next < adj[v].len() {
                stack[top].1 += 1;
                let w = adj[v][next];
                match color[w] {
                    WHITE => {
                        color[w] = GRAY;
                        stack.push((w, 0));
                    }
                    GRAY => {
                        // Unwind the stack from w to the top: that
                        // path plus the back edge is the cycle.
                        let pos = stack
                            .iter()
                            .position(|&(u, _)| u == w)
                            .expect("gray vertex is on the stack");
                        return stack[pos..].iter().map(|&(u, _)| verts[u]).collect();
                    }
                    _ => {}
                }
            } else {
                color[v] = BLACK;
                stack.pop();
            }
        }
    }
    Vec::new()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge(waiter: u32, holder: u32) -> WaitEdge {
        WaitEdge { waiter, holder, node: 0, dir: 0, vc: 0 }
    }

    #[test]
    fn acyclic_graphs_have_no_witness() {
        assert!(find_cycle(&[]).is_empty());
        assert!(find_cycle(&[edge(1, 2), edge(2, 3), edge(1, 3)]).is_empty());
    }

    #[test]
    fn a_two_cycle_is_found() {
        let cycle = find_cycle(&[edge(5, 9), edge(9, 5)]);
        assert_eq!(cycle, vec![5, 9]);
    }

    #[test]
    fn the_cycle_is_reported_not_the_tail_leading_into_it() {
        // 1 -> 2 -> 3 -> 4 -> 2: the witness is [2, 3, 4], not [1, ...].
        let cycle = find_cycle(&[edge(1, 2), edge(2, 3), edge(3, 4), edge(4, 2)]);
        assert_eq!(cycle, vec![2, 3, 4]);
    }

    #[test]
    fn self_loops_count_as_cycles() {
        assert_eq!(find_cycle(&[edge(3, 3)]), vec![3]);
    }

    #[test]
    fn render_names_the_cycle() {
        let pm = Postmortem {
            cycle: 1234,
            reason: Some(StopKind::Deadlock),
            stalled: vec![StalledPacket {
                packet: 5,
                node: 10,
                src: (0, 0),
                dst: (3, 3),
                class: 0,
                stalled: 44,
                generated_at: 100,
            }],
            wait_edges: vec![edge(5, 9), edge(9, 5)],
            cycle_packets: vec![5, 9],
            recent_events: Vec::new(),
        };
        let text = pm.render();
        assert!(text.contains("deadlock"));
        assert!(text.contains("#5 -> #9 -> #5"));
        assert!(text.contains("parked #5 at node 10"));
    }
}
