//! # meshpath-obs
//!
//! Observability substrate for the meshpath workspace: a metrics
//! registry with per-shard lock-free accumulators, a packet-lifecycle
//! trace layer with a bounded flight recorder, a deadlock post-mortem
//! (VC wait-for graph), and a coarse phase profiler.
//!
//! The crate is deliberately **dependency-free** and speaks only in
//! primitives (`u32` node ids, `u8` directions and VC classes), so it
//! can sit *below* every simulator crate: `meshpath-traffic` threads a
//! [`FabricProbe`] through its allocator hot path, `meshpath`'s
//! `RouteService` records query/update latencies into an
//! [`AtomicLogHistogram`], and `meshpath-analysis` renders the merged
//! [`ObsReport`] as JSON.
//!
//! ## Zero cost when disabled
//!
//! Instrumentation is compile-time dispatched: the probe parameter is a
//! generic `P: FabricProbe` and the disabled implementation, [`NoProbe`],
//! has `ACTIVE = false` with empty inlineable methods, so the
//! monomorphized fast path contains no branches, no `Option` checks and
//! no timer reads. The enabled path is *non-perturbing by construction*
//! — probes only observe (no RNG draws, no control-flow feedback) — and
//! that claim is enforced by the golden-equivalence proptest in
//! `meshpath-traffic`, which asserts bit-identical `TrafficStats` with
//! observability on and off at 1, 2 and 4 shards.
//!
//! ## Determinism
//!
//! Per-shard accumulators are merged in shard-index order at run end;
//! every aggregate is a sum, max or shard-ordered concatenation, so the
//! merged report never depends on thread scheduling. The histogram
//! merge-order proptest in [`metrics`] pins this down.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flow;
pub mod log;
pub mod metrics;
pub mod postmortem;
pub mod probe;
pub mod profile;
pub mod report;
pub mod trace;

pub use flow::{FlowEvent, FlowEventKind, FlowLog};
pub use log::{enabled, LogLevel};
pub use metrics::{AtomicLogHistogram, HitMiss, LogHistogram};
pub use postmortem::{BlockedWait, Postmortem, StalledPacket, VcFront, WaitEdge};
pub use probe::{FabricProbe, GrantInfo, NoProbe, ShardObs};
pub use profile::{Phase, PhaseProfile};
pub use report::{ObsLevel, ObsReport, ShardReport};
pub use trace::{FlightRecorder, StopKind, TraceEvent, TraceEventKind, TraceSink};
