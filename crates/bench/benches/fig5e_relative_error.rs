//! Fig. 5(e) pipeline: relative error of each routing (incl. the E-cube
//! baseline) against the optimum, over a pair batch.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use meshpath::prelude::*;
use meshpath_bench::{fixture_network, fixture_pairs};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5e_relative_error");
    g.sample_size(20);
    let net = fixture_network(240, 6);
    let pairs = fixture_pairs(&net, 16, 7);
    let routers: [&dyn Router; 4] = [&ECube, &Rb1::default(), &Rb2::default(), &Rb3::default()];
    for router in routers {
        g.bench_with_input(BenchmarkId::from_parameter(router.name()), &pairs, |b, pairs| {
            b.iter(|| {
                let mut err = 0.0f64;
                for &(s, d) in pairs {
                    let oracle = DistanceField::healthy(net.faults(), d);
                    let res = router.route(&net, s, d);
                    if res.delivered {
                        let opt = f64::from(oracle.dist(s)).max(1.0);
                        err += (f64::from(res.hops()) - opt) / opt;
                    }
                }
                black_box(err)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
