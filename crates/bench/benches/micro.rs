//! Microbenchmarks of the hot primitives: labeling fixpoint, distributed
//! labeling protocol, boundary walks, oracle BFS, and network build.

use criterion::{criterion_group, criterion_main, Criterion};
use meshpath::fault::distributed::run_distributed;
use meshpath::fault::{BorderPolicy, Labeling, MccSet};
use meshpath::info::BoundarySet;
use meshpath::prelude::*;
use meshpath_bench::{fixture_faults, fixture_network};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let fs = fixture_faults(240, 8);

    c.bench_function("labeling_fixpoint_40x40_240f", |b| {
        b.iter(|| {
            let lab = Labeling::compute(black_box(&fs), Orientation::IDENTITY, BorderPolicy::Open);
            black_box(lab.unsafe_count())
        })
    });

    c.bench_function("distributed_labeling_40x40_240f", |b| {
        b.iter(|| {
            let d = run_distributed(black_box(&fs), Orientation::IDENTITY, BorderPolicy::Open);
            black_box(d.stats.messages)
        })
    });

    let set = MccSet::build(&fs, Orientation::IDENTITY, BorderPolicy::Open);
    c.bench_function("boundary_walks_40x40_240f", |b| {
        b.iter(|| {
            let bounds = BoundarySet::build(black_box(&set));
            black_box(bounds.iter().count())
        })
    });

    c.bench_function("oracle_bfs_40x40", |b| {
        b.iter(|| {
            let f = DistanceField::healthy(black_box(&fs), Coord::new(39, 39));
            black_box(f.dist(Coord::new(0, 0)))
        })
    });

    c.bench_function("network_build_40x40_240f", |b| {
        b.iter(|| {
            let net = NetView::build(black_box(fs.clone()));
            black_box(net.mccs(Orientation::IDENTITY).len())
        })
    });

    let net = fixture_network(240, 8);
    c.bench_function("rb2_route_40x40", |b| {
        b.iter(|| {
            let res = Rb2::default().route(black_box(&net), Coord::new(1, 1), Coord::new(38, 36));
            black_box(res.hops())
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
