//! Fig. 5(b) pipeline: MCC extraction (component count) over densities.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use meshpath::fault::{BorderPolicy, MccSet};
use meshpath::prelude::*;
use meshpath_bench::fixture_faults;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5b_mcc_count");
    for faults in [40usize, 160, 320, 480] {
        let fs = fixture_faults(faults, 2);
        g.bench_with_input(BenchmarkId::from_parameter(faults), &fs, |b, fs| {
            b.iter(|| {
                let set = MccSet::build(black_box(fs), Orientation::IDENTITY, BorderPolicy::Open);
                black_box(set.len())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
