//! `RouteService` query throughput at 1, 2 and 4 threads: the
//! micro-level counterpart of the `route_bench` binary (which records
//! the committed `BENCH_route.json` trajectory). CI runs this bench in
//! `--test` smoke mode so it cannot rot.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use meshpath::prelude::*;
use meshpath_bench::{fixture_faults, fixture_pairs};

fn bench_route_query(c: &mut Criterion) {
    let service = RouteService::new(fixture_faults(36, 7));
    let net = service.view();
    let pairs = fixture_pairs(&net, 64, 11);
    assert!(pairs.len() >= 32, "fixture must yield routable pairs");

    let mut group = c.benchmark_group("route_query");
    group.sample_size(20);
    for threads in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &threads| {
            b.iter(|| {
                let total: usize = std::thread::scope(|scope| {
                    (0..threads)
                        .map(|t| {
                            let service = &service;
                            let pairs = &pairs;
                            scope.spawn(move || {
                                let mut hops = 0usize;
                                for (s, d) in pairs.iter().skip(t).step_by(threads) {
                                    hops += service
                                        .route(*s, *d)
                                        .expect("fixture pairs are routable")
                                        .hops()
                                        as usize;
                                }
                                hops
                            })
                        })
                        .collect::<Vec<_>>()
                        .into_iter()
                        .map(|h| h.join().expect("bench thread"))
                        .sum()
                });
                criterion::black_box(total)
            });
        });
    }
    group.finish();

    // Batched serving: the whole fixture set through route_many — one
    // snapshot resolution and one scratch allocation per iteration —
    // against the same pairs routed one query at a time.
    let mut group = c.benchmark_group("route_many");
    group.sample_size(20);
    group.bench_function("batch", |b| {
        b.iter(|| {
            let replies = service.route_many(&pairs);
            criterion::black_box(replies.len())
        });
    });
    group.bench_function("per_query", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for &(s, d) in &pairs {
                n += usize::from(service.route(s, d).is_ok());
            }
            criterion::black_box(n)
        });
    });
    group.finish();

    // The epoch-mutation path (incremental add + remove).
    c.bench_function("route_query/epoch_update", |b| {
        let service = RouteService::new(fixture_faults(36, 7));
        let view = service.view();
        let spot = view
            .mesh()
            .iter()
            .find(|&c| view.faults().is_healthy(c))
            .expect("a healthy node exists");
        b.iter(|| {
            service.add_fault(spot).expect("healthy spot");
            service.remove_fault(spot).expect("repair");
        });
    });
}

criterion_group!(benches, bench_route_query);
criterion_main!(benches);
