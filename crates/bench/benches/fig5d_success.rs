//! Fig. 5(d) pipeline: route a pair batch with RB1/RB2/RB3 and score
//! shortest-path success against the BFS oracle.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use meshpath::prelude::*;
use meshpath_bench::{fixture_network, fixture_pairs};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5d_success");
    g.sample_size(20);
    let net = fixture_network(240, 4);
    let pairs = fixture_pairs(&net, 16, 5);
    let routers: [(&str, &dyn Router); 3] = [
        ("RB1", &Rb1 { policy: Default::default(), scope: KnowledgeScope::Local }),
        ("RB2", &Rb2 { policy: Default::default(), scope: KnowledgeScope::Local }),
        ("RB3", &Rb3 { policy: Default::default(), scope: KnowledgeScope::Local }),
    ];
    for (name, router) in routers {
        g.bench_with_input(BenchmarkId::from_parameter(name), &pairs, |b, pairs| {
            b.iter(|| {
                let mut shortest = 0u32;
                for &(s, d) in pairs {
                    let oracle = DistanceField::healthy(net.faults(), d);
                    let res = router.route(&net, s, d);
                    if res.delivered && res.hops() == oracle.dist(s) {
                        shortest += 1;
                    }
                }
                black_box(shortest)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
