//! Traffic-simulator hot loop: cycles of wormhole switching under load,
//! per routing function, plus the path-compilation cost in isolation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use meshpath::prelude::*;
use meshpath::traffic::{run_traffic, PathTable, RoutingKind, SimConfig};
use meshpath_bench::fixture_network;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    // A 16x16 mesh at ~3% faults: the example's operating point.
    let net = fixture_network_16(8, 21);

    let cfg =
        SimConfig { rate: 0.02, warmup: 50, measure: 300, drain: 600, ..SimConfig::default() };

    let mut g = c.benchmark_group("traffic_sim");
    g.sample_size(10);
    for kind in [RoutingKind::Xy, RoutingKind::Rb2] {
        g.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, &kind| {
            b.iter(|| {
                let stats = run_traffic(black_box(&net), kind, &cfg);
                black_box(stats.measured_delivered)
            })
        });
    }
    g.finish();

    let mut g = c.benchmark_group("path_compile");
    g.sample_size(10);
    let big = fixture_network(240, 9);
    for kind in [RoutingKind::ECube, RoutingKind::Rb2, RoutingKind::Rb3] {
        g.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, &kind| {
            b.iter(|| {
                let mut t = PathTable::new(black_box(&big), kind);
                let mut delivered = 0u32;
                for x in 0..8 {
                    let s = Coord::new(x, 0);
                    let d = Coord::new(39 - x, 39);
                    delivered += u32::from(t.path(s, d).is_some());
                }
                black_box(delivered)
            })
        });
    }
    g.finish();
}

/// A 16x16 network (the standard fixtures are 40x40).
fn fixture_network_16(faults: usize, seed: u64) -> Network {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mesh = Mesh::square(16);
    let mut rng = StdRng::seed_from_u64(seed);
    Network::build(FaultSet::random(mesh, faults, FaultInjection::Uniform, &mut rng))
}

criterion_group!(benches, bench);
criterion_main!(benches);
