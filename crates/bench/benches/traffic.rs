//! Traffic-simulator hot loop: cycles of wormhole switching under load,
//! per routing function; the per-hop decision path (route-table lookup
//! + VC-class choice) in isolation; and the path-compilation cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use meshpath::prelude::*;
use meshpath::traffic::{
    run_traffic, EscapeHop, HopRouter, PacketState, PathTable, ReplayHop, RoutingKind, SimConfig,
};
use meshpath_bench::fixture_network;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    // A 16x16 mesh at ~3% faults: the example's operating point.
    let net = fixture_network_16(8, 21);

    let cfg =
        SimConfig { rate: 0.02, warmup: 50, measure: 300, drain: 600, ..SimConfig::default() };

    let mut g = c.benchmark_group("traffic_sim");
    g.sample_size(10);
    for kind in [RoutingKind::Xy, RoutingKind::Rb2] {
        g.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, &kind| {
            b.iter(|| {
                let stats = run_traffic(black_box(&net), kind, &cfg);
                black_box(stats.measured_delivered)
            })
        });
    }
    g.finish();

    // The per-hop decision path: what the fabric pays per parked head
    // per cycle since routing moved from source-route playback to
    // router consultation. Three variants: deterministic replay
    // (table lookup + index), escape-adaptive with a fresh head
    // (adaptive candidate only), and escape-adaptive with a stalled
    // head (adds the memoized XY-clearance check and the tree next-hop
    // derivation).
    let mut g = c.benchmark_group("hop_decision");
    let pairs: Vec<(Coord, Coord)> =
        (0..16).map(|i| (Coord::new(i % 4, i % 16), Coord::new(15 - i % 3, 15 - i % 5))).collect();
    let mk_packets = |router: &mut dyn HopRouter| -> Vec<PacketState> {
        let faults = net.faults();
        pairs
            .iter()
            .filter(|&&(s, d)| {
                s != d
                    && faults.is_healthy(s)
                    && faults.is_healthy(d)
                    && router.admit(s, d).is_some()
            })
            .map(|&(s, d)| {
                let mut pk = PacketState::new(s, d, 0, 4);
                pk.head_hop = 1; // mid-route, as the allocator sees it
                pk
            })
            .collect()
    };
    g.bench_function("replay", |b| {
        let mut paths = PathTable::new(&net, RoutingKind::Rb2);
        let mut hop = ReplayHop::new(&mut paths);
        let packets = mk_packets(&mut hop);
        b.iter(|| {
            let mut acc = 0u32;
            for pk in &packets {
                let here = pk.src; // head parked one hop in; src still routes
                let mut pk = *pk;
                acc ^= match hop.decide(black_box(here), black_box(&mut pk)) {
                    meshpath::traffic::HopDecision::Route(c) => c.len() as u32,
                    meshpath::traffic::HopDecision::Eject => 0,
                };
            }
            black_box(acc)
        })
    });
    for (name, stalled) in [("escape_fresh", 0u32), ("escape_stalled", 100)] {
        g.bench_function(name, |b| {
            let mut paths = PathTable::new(&net, RoutingKind::Rb2);
            let mut hop = EscapeHop::new(&mut paths, 4, true);
            let mut packets = mk_packets(&mut hop);
            for pk in &mut packets {
                pk.stalled = stalled;
            }
            b.iter(|| {
                let mut acc = 0u32;
                for pk in &packets {
                    let here = pk.src;
                    let mut pk = *pk;
                    acc ^= match hop.decide(black_box(here), black_box(&mut pk)) {
                        meshpath::traffic::HopDecision::Route(c) => c.len() as u32,
                        meshpath::traffic::HopDecision::Eject => 0,
                    };
                }
                black_box(acc)
            })
        });
    }
    g.finish();

    let mut g = c.benchmark_group("path_compile");
    g.sample_size(10);
    let big = fixture_network(240, 9);
    for kind in [RoutingKind::ECube, RoutingKind::Rb2, RoutingKind::Rb3] {
        g.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, &kind| {
            b.iter(|| {
                let mut t = PathTable::new(black_box(&big), kind);
                let mut delivered = 0u32;
                for x in 0..8 {
                    let s = Coord::new(x, 0);
                    let d = Coord::new(39 - x, 39);
                    delivered += u32::from(t.path(s, d).is_some());
                }
                black_box(delivered)
            })
        });
    }
    g.finish();
}

/// A 16x16 network (the standard fixtures are 40x40).
fn fixture_network_16(faults: usize, seed: u64) -> NetView {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mesh = Mesh::square(16);
    let mut rng = StdRng::seed_from_u64(seed);
    NetView::build(FaultSet::random(mesh, faults, FaultInjection::Uniform, &mut rng))
}

criterion_group!(benches, bench);
criterion_main!(benches);
