//! Fig. 5(a) pipeline: fault injection + MCC labeling + disabled-area
//! statistics, swept over fault densities.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use meshpath::fault::stats::config_stats;
use meshpath::prelude::*;
use meshpath_bench::fixture_faults;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5a_disabled_area");
    for faults in [40usize, 160, 320, 480] {
        let fs = fixture_faults(faults, 1);
        g.bench_with_input(BenchmarkId::from_parameter(faults), &fs, |b, fs| {
            b.iter(|| {
                let s = config_stats(black_box(fs), Orientation::IDENTITY);
                black_box(s.disabled_pct())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
