//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * hybrid vs strict Eq.-3 planning (quality-affecting; here we measure
//!   the planning-time cost),
//! * local vs global knowledge scope,
//! * adaptive tie-break policies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use meshpath::info::ModelKind;
use meshpath::prelude::*;
use meshpath::route::seq::Planner;
use meshpath_bench::{fixture_network, fixture_pairs};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let net = fixture_network(240, 9);
    let pairs = fixture_pairs(&net, 12, 10);

    let mut g = c.benchmark_group("planner_variants");
    g.sample_size(20);
    g.bench_function("hybrid", |b| {
        let p = Planner::new(&net, ModelKind::B2, KnowledgeScope::Local);
        b.iter(|| {
            for &(s, d) in &pairs {
                black_box(p.plan(s, d, &Default::default()));
            }
        })
    });
    g.bench_function("strict_eq3", |b| {
        let p = Planner::new_strict(&net, ModelKind::B2, KnowledgeScope::Local);
        b.iter(|| {
            for &(s, d) in &pairs {
                black_box(p.plan(s, d, &Default::default()));
            }
        })
    });
    g.finish();

    let mut g = c.benchmark_group("knowledge_scope");
    g.sample_size(20);
    for (name, scope) in [("local", KnowledgeScope::Local), ("global", KnowledgeScope::Global)] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &scope, |b, &scope| {
            let router = Rb2 { scope, ..Default::default() };
            b.iter(|| {
                for &(s, d) in &pairs {
                    black_box(router.route(&net, s, d).hops());
                }
            })
        });
    }
    g.finish();

    let mut g = c.benchmark_group("adaptive_policy");
    g.sample_size(20);
    for (name, policy) in [
        ("longer_first", AdaptivePolicy::LongerFirst),
        ("prefer_x", AdaptivePolicy::PreferX),
        ("prefer_y", AdaptivePolicy::PreferY),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &policy, |b, &policy| {
            let router = Rb2 { policy, ..Default::default() };
            b.iter(|| {
                for &(s, d) in &pairs {
                    black_box(router.route(&net, s, d).hops());
                }
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
