//! Fig. 5(c) pipeline: boundary construction + information propagation
//! for each model B1/B2/B3.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use meshpath::fault::{BorderPolicy, MccSet};
use meshpath::info::{InfoModel, ModelKind};
use meshpath::prelude::*;
use meshpath_bench::fixture_faults;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5c_propagation");
    let fs = fixture_faults(240, 3);
    let set = MccSet::build(&fs, Orientation::IDENTITY, BorderPolicy::Open);
    for kind in ModelKind::ALL {
        g.bench_with_input(BenchmarkId::from_parameter(kind.name()), &set, |b, set| {
            b.iter(|| {
                let m = InfoModel::build(black_box(set), kind);
                black_box(m.stats().involved_nodes)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
