//! The fabric stepping hot loop in isolation: cycles/second of
//! `Fabric::step` on a 16x16 mesh at three occupancy regimes —
//! near-idle (the paper-relevant ~2% injection, where the event-driven
//! worklist pays off most), mid-load, and saturated (worst case: every
//! router stays active, so the bitmask allocator carries the load) —
//! plus a 64x64 group comparing sequential stepping against the
//! sharded runner at 2 and 4 worker threads (`SimConfig::threads`),
//! the single-run multi-core scaling path.
//!
//! Each iteration is one full warmup/measure/drain run over a shared
//! pre-compiled path table, so the timing is stepping + injection, not
//! route compilation. A per-regime header line reports the cycle and
//! flit-hop count of one run; divide by the reported time per
//! iteration for cycles/sec and flit-hops/sec.

use criterion::{criterion_group, criterion_main, Criterion};
use meshpath::prelude::*;
use meshpath::traffic::{run_traffic_reusing, PathTable, RoutingKind, SimConfig};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    // A 16x16 mesh at ~3% faults: the load sweep's operating point.
    let net = fixture_network(16, 8, 21);

    let mut g = c.benchmark_group("fabric_step");
    g.sample_size(10);
    // Injection rates spanning the occupancy regimes. 0.02 is the top
    // of the default low-load sweep; 0.30 is far past saturation, so
    // the fabric runs with every VC contended until the drain deadline.
    for (name, rate) in [("low_2pct", 0.02), ("mid_4pct", 0.04), ("saturated_30pct", 0.30)] {
        let mut paths = PathTable::new(&net, RoutingKind::Rb2);
        let cfg = SimConfig { rate, warmup: 100, measure: 400, drain: 500, ..SimConfig::default() };
        let probe = run_traffic_reusing(&mut paths, &cfg);
        println!(
            "fabric_step/{name}: {} cycles, {} flit-hops per run{}",
            probe.cycles,
            probe.flits_moved,
            if probe.saturated || probe.deadlocked { " (saturated)" } else { "" },
        );
        g.bench_function(name, |b| {
            b.iter(|| {
                let stats = run_traffic_reusing(&mut paths, black_box(&cfg));
                black_box(stats.cycles)
            })
        });
    }
    g.finish();

    // 64x64 sharded vs sequential: the same seeded run at 1, 2 and 4
    // worker threads — bit-identical statistics (asserted below). The
    // time delta is stepping parallelism + per-cycle barrier overhead
    // + per-run construction of the extra shards' route tables (only
    // shard 0 reuses `paths` across iterations; workers compile their
    // own tables each run, so the threads > 1 bars include that setup
    // — unlike the 16x16 group above, this is not pure stepping).
    let net64 = fixture_network(64, 32, 21);
    let mut g = c.benchmark_group("fabric_step_64");
    g.sample_size(10);
    let base =
        SimConfig { rate: 0.02, warmup: 100, measure: 300, drain: 400, ..SimConfig::default() };
    let mut reference = None;
    for threads in [1usize, 2, 4] {
        let mut paths = PathTable::new(&net64, RoutingKind::Rb2);
        let cfg = SimConfig { threads, ..base.clone() };
        let probe = run_traffic_reusing(&mut paths, &cfg);
        println!(
            "fabric_step_64/threads_{threads}: {} cycles, {} flit-hops per run",
            probe.cycles, probe.flits_moved,
        );
        match &reference {
            None => reference = Some(probe),
            Some(r) => assert_eq!(r, &probe, "sharded stepping must be bit-identical"),
        }
        g.bench_function(format!("threads_{threads}"), |b| {
            b.iter(|| {
                let stats = run_traffic_reusing(&mut paths, black_box(&cfg));
                black_box(stats.cycles)
            })
        });
    }
    g.finish();
}

/// An `n`x`n` network (the standard fixtures are 40x40).
fn fixture_network(n: u32, faults: usize, seed: u64) -> NetView {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mesh = Mesh::square(n);
    let mut rng = StdRng::seed_from_u64(seed);
    NetView::build(FaultSet::random(mesh, faults, FaultInjection::Uniform, &mut rng))
}

criterion_group!(benches, bench);
criterion_main!(benches);
