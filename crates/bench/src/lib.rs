//! Shared fixtures for the Criterion benchmarks.
//!
//! Every `fig5*` bench exercises the exact pipeline that regenerates the
//! corresponding figure of the paper (at a reduced scale, so `cargo
//! bench` finishes in minutes); the `micro` bench isolates the hot
//! primitives and `ablation` compares design variants called out in
//! DESIGN.md.

use meshpath::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Mesh side used by the benchmark fixtures.
pub const SIDE: u32 = 40;

/// A deterministic fault set at roughly the paper's mid-sweep density.
pub fn fixture_faults(count: usize, seed: u64) -> FaultSet {
    let mesh = Mesh::square(SIDE);
    let mut rng = StdRng::seed_from_u64(seed);
    FaultSet::random(mesh, count, FaultInjection::Uniform, &mut rng)
}

/// A fully analyzed network snapshot over [`fixture_faults`].
pub fn fixture_network(count: usize, seed: u64) -> NetView {
    NetView::build(fixture_faults(count, seed))
}

/// Deterministic routable pairs (safe endpoints, connected).
pub fn fixture_pairs(net: &NetView, count: usize, seed: u64) -> Vec<(Coord, Coord)> {
    let n = SIDE as i32;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    let mut attempts = 0;
    while out.len() < count && attempts < 50_000 {
        attempts += 1;
        let s = Coord::new(rng.gen_range(0..n), rng.gen_range(0..n));
        let d = Coord::new(rng.gen_range(0..n), rng.gen_range(0..n));
        let o = Orientation::normalizing(s, d);
        let lab = net.mccs(o).labeling();
        if s == d || lab.status_real(s).is_unsafe() || lab.status_real(d).is_unsafe() {
            continue;
        }
        if DistanceField::healthy(net.faults(), d).reachable(s) {
            out.push((s, d));
        }
    }
    out
}
