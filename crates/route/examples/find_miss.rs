//! Development search harness: scans random configurations for routing
//! anomalies (suboptimal RB2-global or undelivered RB1) and prints the
//! smallest found grid for debugging.

use meshpath_mesh::{Coord, FaultInjection, FaultSet, Mesh, Orientation};
use meshpath_route::{oracle::DistanceField, KnowledgeScope, NetView, Rb1, Rb2, Router};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = 14;
    let mesh = Mesh::square(n as u32);
    'outer: for seed in 0..3000u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let faults = FaultSet::random(mesh, 36, FaultInjection::Uniform, &mut rng);
        let net = NetView::build(faults);
        let safe_for = |c: Coord, s: Coord, d: Coord| {
            let o = Orientation::normalizing(s, d);
            net.mccs(o).labeling().status_real(c).is_safe()
        };
        for sx in 0..n {
            for sy in 0..n {
                for dx in 0..n {
                    for dy in 0..n {
                        let s = Coord::new(sx, sy);
                        let d = Coord::new(dx, dy);
                        if s == d || !safe_for(s, s, d) || !safe_for(d, s, d) {
                            continue;
                        }
                        let field = DistanceField::healthy(net.faults(), d);
                        if !field.reachable(s) {
                            continue;
                        }
                        let rb1 = Rb1::default().route(&net, s, d);
                        let rb2g = Rb2 { scope: KnowledgeScope::Global, ..Default::default() }
                            .route(&net, s, d);
                        let bad_rb1 = !rb1.delivered;
                        let bad_rb2 = !rb2g.delivered || rb2g.hops() != field.dist(s);
                        if bad_rb1 || bad_rb2 {
                            println!(
                    "seed={seed} s={s:?} d={d:?} rb1(del={} hops={}) rb2g(del={} hops={}) opt={}",
                    rb1.delivered, rb1.hops(), rb2g.delivered, rb2g.hops(), field.dist(s)
                );
                            let shown = if bad_rb1 { &rb1 } else { &rb2g };
                            for y in (0..n).rev() {
                                let mut row = String::new();
                                for x in 0..n {
                                    let c = Coord::new(x, y);
                                    let ch = if net.faults().is_faulty(c) {
                                        '#'
                                    } else if c == s {
                                        'S'
                                    } else if c == d {
                                        'D'
                                    } else if shown.path.contains(&c) {
                                        '*'
                                    } else {
                                        '.'
                                    };
                                    row.push(ch);
                                }
                                println!("{y:2} {row}");
                            }
                            println!(
                                "tail of path: {:?}",
                                &shown.path[shown.path.len().saturating_sub(30)..]
                            );
                            break 'outer;
                        }
                    }
                }
            }
        }
    }
    println!("search done");
}
