//! Verification run: RB2 with idealized global knowledge against the BFS
//! oracle at paper scale (100x100, high fault counts). Referenced by
//! EXPERIMENTS.md.

use meshpath_mesh::{Coord, FaultInjection, FaultSet, Mesh, Orientation};
use meshpath_route::{oracle::DistanceField, KnowledgeScope, NetView, Rb2, Router};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let n = 100;
    let mesh = Mesh::square(n as u32);
    let mut grand_total = 0u32;
    let mut grand_opt = 0u32;
    for faults in [1000usize, 2000, 3000] {
        let mut total = 0u32;
        let mut optimal = 0u32;
        for seed in 0..4u64 {
            let mut rng = StdRng::seed_from_u64(seed * 7919 + faults as u64);
            let fs = FaultSet::random(mesh, faults, FaultInjection::Uniform, &mut rng);
            let net = NetView::build(fs);
            let router = Rb2 { scope: KnowledgeScope::Global, ..Default::default() };
            let mut routed = 0;
            let mut attempts = 0;
            while routed < 40 && attempts < 40_000 {
                attempts += 1;
                let s = Coord::new(rng.gen_range(0..n), rng.gen_range(0..n));
                let d = Coord::new(rng.gen_range(0..n), rng.gen_range(0..n));
                let o = Orientation::normalizing(s, d);
                let lab = net.mccs(o).labeling();
                if s == d || lab.status_real(s).is_unsafe() || lab.status_real(d).is_unsafe() {
                    continue;
                }
                let field = DistanceField::healthy(net.faults(), d);
                if !field.reachable(s) {
                    continue;
                }
                routed += 1;
                total += 1;
                let res = router.route(&net, s, d);
                if res.delivered && res.hops() == field.dist(s) {
                    optimal += 1;
                }
            }
        }
        grand_total += total;
        grand_opt += optimal;
        println!(
            "faults={faults}: RB2(global) optimal {optimal}/{total} ({:.1}%)",
            100.0 * f64::from(optimal) / f64::from(total)
        );
    }
    println!(
        "overall: {grand_opt}/{grand_total} ({:.2}%)",
        100.0 * f64::from(grand_opt) / f64::from(grand_total)
    );
}
