//! Ablation: shortest-path success of the planner variants.
//!
//! * `strict`  — the paper's literal Eq. 1-5 machinery only;
//! * `hybrid`  — Eq. 1-5 plus the BFS-over-known-faults refinement
//!   (the default);
//! * `global`  — hybrid with idealized global knowledge.
//!
//! Results are quoted in EXPERIMENTS.md.

use meshpath_info::ModelKind;
use meshpath_mesh::{Coord, FaultInjection, FaultSet, FxHashSet, Mesh, Orientation};
use meshpath_route::oracle::DistanceField;
use meshpath_route::seq::{Plan, Planner};
use meshpath_route::{KnowledgeScope, NetView, Rb2, Router};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let n = 40;
    let mesh = Mesh::square(n as u32);
    println!("faults  pairs  strict-plan-opt%  hybrid-walk-opt%  global-walk-opt%");
    for faults in [80usize, 160, 240, 320, 400] {
        let mut pairs_n = 0u32;
        let mut strict_opt = 0u32;
        let mut hybrid_opt = 0u32;
        let mut global_opt = 0u32;
        for seed in 0..6u64 {
            let mut rng = StdRng::seed_from_u64(seed + faults as u64 * 31);
            let fs = FaultSet::random(mesh, faults, FaultInjection::Uniform, &mut rng);
            let net = NetView::build(fs);
            let strict = Planner::new_strict(&net, ModelKind::B2, KnowledgeScope::Global);
            let mut routed = 0;
            let mut attempts = 0;
            while routed < 20 && attempts < 20_000 {
                attempts += 1;
                let s = Coord::new(rng.gen_range(0..n), rng.gen_range(0..n));
                let d = Coord::new(rng.gen_range(0..n), rng.gen_range(0..n));
                let o = Orientation::normalizing(s, d);
                let lab = net.mccs(o).labeling();
                if s == d || lab.status_real(s).is_unsafe() || lab.status_real(d).is_unsafe() {
                    continue;
                }
                let field = DistanceField::healthy(net.faults(), d);
                if !field.reachable(s) {
                    continue;
                }
                routed += 1;
                pairs_n += 1;
                let opt = u64::from(field.dist(s));
                // Strict: does the Eq.1-5 *estimate* equal the optimum?
                let (_, stats) = strict.plan(s, d, &FxHashSet::default());
                let est = match strict.plan(s, d, &FxHashSet::default()).0 {
                    Plan::Direct => Some(u64::from(s.manhattan(d))),
                    _ => stats.estimate,
                };
                if est == Some(opt) {
                    strict_opt += 1;
                }
                let hy = Rb2::default().route(&net, s, d);
                if hy.delivered && u64::from(hy.hops()) == opt {
                    hybrid_opt += 1;
                }
                let gl =
                    Rb2 { scope: KnowledgeScope::Global, ..Default::default() }.route(&net, s, d);
                if gl.delivered && u64::from(gl.hops()) == opt {
                    global_opt += 1;
                }
            }
        }
        println!(
            "{faults:6}  {pairs_n:5}  {:16.1}  {:16.1}  {:16.1}",
            100.0 * f64::from(strict_opt) / f64::from(pairs_n),
            100.0 * f64::from(hybrid_opt) / f64::from(pairs_n),
            100.0 * f64::from(global_opt) / f64::from(pairs_n),
        );
    }
}
