//! Algorithm 2: the Manhattan routing decision.
//!
//! At the current node `u` with target `t` (both in the oriented frame
//! where `t` lies in the `(+X, +Y)` quadrant):
//!
//! 1. add `+X` (`+Y`) to the candidate set `P` when the target is strictly
//!    east (north) and the neighbor is a safe node;
//! 2. for each triple `(F, R(F), R'(F))` known at `u`, exclude a candidate
//!    whose step would enter the forbidden region `R(F)` while
//!    `t ∈ R'(F)` — with `R(F)` the union of the shadows of every MCC
//!    merged into `F`'s region (boundary-hit closure) and `R'(F)` the
//!    critical region of `F` itself (see DESIGN.md §3);
//! 3. pick any remaining direction with a fully adaptive policy.
//!
//! Neighbor *safety* (not just non-faultiness) is local knowledge: the
//! distributed labeling protocol works by neighbor status exchange, so
//! every node knows the converged status of its four neighbors.

use meshpath_fault::MccSet;
use meshpath_info::InfoModel;
use meshpath_mesh::{Coord, Dir};

use crate::seq::KnowledgeScope;

/// Tie-break policy for step 3's "any fully adaptive routing".
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum AdaptivePolicy {
    /// Move along the axis with the larger remaining distance (default;
    /// keeps the walk near the rectangle's diagonal, which maximizes
    /// later adaptivity).
    #[default]
    LongerFirst,
    /// Prefer `+X` when available (dimension-ordered flavour).
    PreferX,
    /// Prefer `+Y` when available.
    PreferY,
}

impl AdaptivePolicy {
    fn pick(self, ou: Coord, ot: Coord, p: [bool; 2]) -> Option<Dir> {
        let (px, py) = (p[0], p[1]);
        match (px, py) {
            (false, false) => None,
            (true, false) => Some(Dir::PlusX),
            (false, true) => Some(Dir::PlusY),
            (true, true) => Some(match self {
                AdaptivePolicy::PreferX => Dir::PlusX,
                AdaptivePolicy::PreferY => Dir::PlusY,
                AdaptivePolicy::LongerFirst => {
                    if ot.x - ou.x >= ot.y - ou.y {
                        Dir::PlusX
                    } else {
                        Dir::PlusY
                    }
                }
            }),
        }
    }
}

/// One routing decision.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Decision {
    /// Forward along this (oriented-frame) direction.
    Step(Dir),
    /// Current node is the target.
    Arrived,
    /// Candidate set is empty: the routing is blocked here.
    Blocked,
}

/// The per-phase decision context (one orientation).
pub struct PhaseCtx<'a> {
    /// MCC analysis for the phase orientation.
    pub set: &'a MccSet,
    /// Information model queried for triples.
    pub model: &'a InfoModel,
    /// Whether knowledge is restricted to what the model stored at `u`.
    pub scope: KnowledgeScope,
}

impl PhaseCtx<'_> {
    /// True when node `ou` holds the triple of `f` under the scope.
    #[inline]
    pub fn knows(&self, ou: Coord, f: meshpath_fault::MccId) -> bool {
        match self.scope {
            KnowledgeScope::Global => true,
            KnowledgeScope::Local => self.model.knows(ou, f),
        }
    }
}

/// The Algorithm 2 decision at oriented node `ou` toward oriented target
/// `ot`. `avoid` (the preceding node, Algorithm 3 step 1) is excluded from
/// the candidates when given.
pub fn decide(
    ctx: &PhaseCtx<'_>,
    ou: Coord,
    ot: Coord,
    policy: AdaptivePolicy,
    avoid: Option<Coord>,
) -> Decision {
    debug_assert!(ot.x >= ou.x && ot.y >= ou.y, "target not in oriented quadrant");
    if ou == ot {
        return Decision::Arrived;
    }
    let labeling = ctx.set.labeling();

    // Step 1: candidate directions.
    let mut p = [false; 2]; // [+X, +Y]
    if ot.x > ou.x {
        let v = ou.step(Dir::PlusX);
        p[0] = labeling.is_safe_node(v) && Some(v) != avoid;
    }
    if ot.y > ou.y {
        let v = ou.step(Dir::PlusY);
        p[1] = labeling.is_safe_node(v) && Some(v) != avoid;
    }

    // Step 2: exclusions from the triples known here.
    if p[0] || p[1] {
        for f in ctx.set.iter() {
            if !ctx.knows(ou, f.id()) {
                continue;
            }
            // Y-type triple: d in the critical region above F while the
            // step would *enter* a shadow merged into F's forbidden
            // region. A node already inside the region is past the guard
            // (the pair is blocked; detours handle it), so the exclusion
            // only fires from outside.
            if f.critical_y(ot) {
                let merged = ctx.model.merged_y(f.id());
                let inside = |c: Coord| merged.iter().any(|&g| ctx.set.get(g).shadow_y(c));
                if !inside(ou) {
                    for (slot, dir) in [(0, Dir::PlusX), (1, Dir::PlusY)] {
                        if p[slot] && inside(ou.step(dir)) {
                            p[slot] = false;
                        }
                    }
                }
            }
            // X-type triple.
            if f.critical_x(ot) {
                let merged = ctx.model.merged_x(f.id());
                let inside = |c: Coord| merged.iter().any(|&g| ctx.set.get(g).shadow_x(c));
                if !inside(ou) {
                    for (slot, dir) in [(0, Dir::PlusX), (1, Dir::PlusY)] {
                        if p[slot] && inside(ou.step(dir)) {
                            p[slot] = false;
                        }
                    }
                }
            }
            if !p[0] && !p[1] {
                break;
            }
        }
    }

    // Step 3: fully adaptive selection.
    match policy.pick(ou, ot, p) {
        Some(dir) => Decision::Step(dir),
        None => Decision::Blocked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meshpath_fault::{BorderPolicy, MccSet};
    use meshpath_info::{InfoModel, ModelKind};
    use meshpath_mesh::{FaultSet, Mesh, Orientation};

    fn ctx_for(faults: &[(i32, i32)], kind: ModelKind) -> (MccSet, InfoModel) {
        let mesh = Mesh::square(10);
        let fs = FaultSet::from_coords(mesh, faults.iter().map(|&(x, y)| Coord::new(x, y)));
        let set = MccSet::build(&fs, Orientation::IDENTITY, BorderPolicy::Open);
        let model = InfoModel::build(&set, kind);
        (set, model)
    }

    #[test]
    fn fault_free_decision_moves_toward_target() {
        let (set, model) = ctx_for(&[], ModelKind::B1);
        let ctx = PhaseCtx { set: &set, model: &model, scope: KnowledgeScope::Local };
        let d = decide(&ctx, Coord::new(0, 0), Coord::new(3, 1), AdaptivePolicy::LongerFirst, None);
        assert_eq!(d, Decision::Step(Dir::PlusX)); // larger X remainder
        let d = decide(&ctx, Coord::new(0, 0), Coord::new(1, 3), AdaptivePolicy::LongerFirst, None);
        assert_eq!(d, Decision::Step(Dir::PlusY));
        let d = decide(&ctx, Coord::new(3, 1), Coord::new(3, 1), AdaptivePolicy::LongerFirst, None);
        assert_eq!(d, Decision::Arrived);
    }

    #[test]
    fn faulty_neighbor_is_not_a_candidate() {
        let (set, model) = ctx_for(&[(1, 0)], ModelKind::B1);
        let ctx = PhaseCtx { set: &set, model: &model, scope: KnowledgeScope::Local };
        let d = decide(&ctx, Coord::new(0, 0), Coord::new(3, 3), AdaptivePolicy::PreferX, None);
        assert_eq!(d, Decision::Step(Dir::PlusY));
    }

    #[test]
    fn exclusion_guards_the_shadow_at_the_boundary() {
        // Fault at (5,5); u sits on the -X boundary column at (4,2) with
        // the destination in the critical region (5,9): stepping +X into
        // the shadow must be excluded.
        let (set, model) = ctx_for(&[(5, 5)], ModelKind::B1);
        let ctx = PhaseCtx { set: &set, model: &model, scope: KnowledgeScope::Local };
        let d = decide(&ctx, Coord::new(4, 2), Coord::new(5, 9), AdaptivePolicy::PreferX, None);
        assert_eq!(d, Decision::Step(Dir::PlusY), "+X into the shadow must be excluded");
        // With a destination NOT in the critical region, +X is fine.
        let d = decide(&ctx, Coord::new(4, 2), Coord::new(6, 9), AdaptivePolicy::PreferX, None);
        assert_eq!(d, Decision::Step(Dir::PlusX));
    }

    #[test]
    fn no_knowledge_means_no_exclusion() {
        // Same geometry, but u = (4,2) under B1 *knows* (it is on the
        // boundary); a node east of the shadow like (7,2) does not, and
        // a doomed target makes it walk in anyway (that is RB1's miss,
        // repaired by detours).
        let (set, model) = ctx_for(&[(5, 5)], ModelKind::B1);
        let ctx = PhaseCtx { set: &set, model: &model, scope: KnowledgeScope::Local };
        // (5,2) is inside the shadow and holds no triple under B1.
        let d = decide(&ctx, Coord::new(5, 2), Coord::new(5, 9), AdaptivePolicy::PreferY, None);
        // +X not a candidate (target.x == u.x); +Y is taken blindly toward
        // the fault; at (5,4) the +Y neighbor is faulty and P empties.
        assert_eq!(d, Decision::Step(Dir::PlusY));
        let d = decide(&ctx, Coord::new(5, 4), Coord::new(5, 9), AdaptivePolicy::PreferY, None);
        assert_eq!(d, Decision::Blocked);
    }

    #[test]
    fn exclusion_only_fires_on_entry() {
        let (set, model) = ctx_for(&[(5, 5)], ModelKind::B1);
        let ctx = PhaseCtx { set: &set, model: &model, scope: KnowledgeScope::Global };
        // (5,2) is already inside the shadow: the guard is past, and the
        // exclusion must NOT fire (the pair is blocked; RB1's detour or
        // RB2's planning deal with it). The decision keeps +Y until the
        // fault wall itself empties P.
        let d = decide(&ctx, Coord::new(5, 2), Coord::new(5, 9), AdaptivePolicy::PreferY, None);
        assert_eq!(d, Decision::Step(Dir::PlusY));
        // From outside (the boundary column), entry is still excluded.
        let d = decide(&ctx, Coord::new(4, 2), Coord::new(5, 9), AdaptivePolicy::PreferX, None);
        assert_eq!(d, Decision::Step(Dir::PlusY));
    }

    #[test]
    fn avoid_excludes_the_preceding_node() {
        let (set, model) = ctx_for(&[], ModelKind::B1);
        let ctx = PhaseCtx { set: &set, model: &model, scope: KnowledgeScope::Local };
        let d = decide(
            &ctx,
            Coord::new(0, 0),
            Coord::new(1, 1),
            AdaptivePolicy::PreferX,
            Some(Coord::new(1, 0)),
        );
        assert_eq!(d, Decision::Step(Dir::PlusY));
    }
}
