//! Route execution support: results, detour wall-following, validation.
//! The per-hop decision interface itself lives in [`crate::hop`]; this
//! module keeps the shared walk machinery the deciders build on.

use meshpath_mesh::{Coord, Dir, FxHashMap, FxHashSet};

use crate::env::Network;

/// The outcome of routing one message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RouteResult {
    /// Every node visited, source first. Real coordinates.
    pub path: Vec<Coord>,
    /// True when the destination was reached within the hop budget.
    pub delivered: bool,
    /// Number of re-planning events (blocked phases, observed obstacles).
    pub replans: u32,
    /// Number of BFS-fallback plans (outside the paper's Eq.-3 options).
    pub fallbacks: u32,
    /// Hops spent in wall-following detours.
    pub detour_hops: u32,
}

impl RouteResult {
    /// Path length in hops.
    pub fn hops(&self) -> u32 {
        (self.path.len().saturating_sub(1)) as u32
    }
}

/// Hop budget: generous, but finite (protects the harness from livelock).
pub(crate) fn hop_budget(net: &Network) -> usize {
    net.mesh().len() * 8
}

/// Checks that a delivered result is a real walk: starts at `s`, ends at
/// `d`, every hop joins mesh neighbors, and no visited node is faulty.
pub fn validate_path(net: &Network, s: Coord, d: Coord, res: &RouteResult) -> Result<(), String> {
    if res.path.first() != Some(&s) {
        return Err(format!("path must start at {s:?}"));
    }
    if res.delivered && res.path.last() != Some(&d) {
        return Err(format!("delivered path must end at {d:?}"));
    }
    for w in res.path.windows(2) {
        if !w[0].is_neighbor(w[1]) {
            return Err(format!("non-adjacent hop {:?} -> {:?}", w[0], w[1]));
        }
    }
    for &c in &res.path {
        if !net.mesh().contains(c) {
            return Err(format!("path leaves the mesh at {c:?}"));
        }
        if net.faults().is_faulty(c) {
            return Err(format!("path visits faulty node {c:?}"));
        }
    }
    Ok(())
}

/// Which side the obstacle is kept on during a wall-following detour.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Wall {
    /// Obstacle on the left of the heading.
    Left,
    /// Obstacle on the right.
    Right,
}

impl Wall {
    #[inline]
    fn wall_dir(self, heading: Dir) -> Dir {
        match self {
            Wall::Left => heading.counter_clockwise(),
            Wall::Right => heading.clockwise(),
        }
    }

    #[inline]
    fn anti_dir(self, heading: Dir) -> Dir {
        self.wall_dir(heading).opposite()
    }
}

/// Wall-following detour state (Algorithm 3 step 3, E-cube f-rings).
#[derive(Clone, Debug)]
pub(crate) struct Detour {
    heading: Dir,
    wall: Wall,
    /// `(position, heading)` pairs already taken within this detour; a
    /// repeat means the wall orbit is closed (dead-end pocket) and the
    /// walk escalates to the least-visited escape.
    seen: FxHashSet<(Coord, Dir)>,
    /// Set once the wall orbit closed; the owner should drop this detour
    /// after the current step.
    pub(crate) exhausted: bool,
}

impl Detour {
    /// Starts a detour around an obstacle met while trying to move in
    /// `toward`. Matches the paper's "select `-X` or `-Y` direction to
    /// route around the MCC in clockwise direction": blocked `+Y` turns
    /// `-X` with the obstacle on the right; blocked `+X` turns `-Y` with
    /// the obstacle on the left; negative desired directions (E-cube on
    /// un-normalized frames) mirror those.
    pub(crate) fn around(toward: Dir) -> Detour {
        let (heading, wall) = match toward {
            Dir::PlusY => (Dir::MinusX, Wall::Right),
            Dir::PlusX => (Dir::MinusY, Wall::Left),
            Dir::MinusY => (Dir::PlusX, Wall::Right),
            Dir::MinusX => (Dir::PlusY, Wall::Left),
        };
        Detour { heading, wall, seen: FxHashSet::default(), exhausted: false }
    }

    /// One wall-following step from `pos`. When the wall orbit closes (a
    /// dead-end pocket) the step degrades to the least-visited escape walk
    /// and marks the detour [`exhausted`](Detour::exhausted). Returns
    /// `None` only when every neighbor is blocked.
    pub(crate) fn step(
        &mut self,
        pos: Coord,
        free: impl Fn(Coord) -> bool,
        visited: &Visited,
    ) -> Option<Coord> {
        if !self.exhausted {
            let prefs = [
                self.wall.wall_dir(self.heading),
                self.heading,
                self.wall.anti_dir(self.heading),
                self.heading.opposite(),
            ];
            for d in prefs {
                let v = pos.step(d);
                if free(v) {
                    if self.seen.insert((pos, d)) {
                        self.heading = d;
                        return Some(v);
                    }
                    // Closed orbit: fall through to the escape walk.
                    self.exhausted = true;
                    break;
                }
            }
            if !self.exhausted {
                // All four sides blocked.
                return None;
            }
        }
        least_visited_step(pos, free, visited.counts())
    }
}

/// The last-resort escape walk: steps to the least-visited free neighbor.
///
/// A rotor-router-style walk visits every node of a finite connected
/// region infinitely often, so a route that falls back to it cannot
/// livelock in a dead-end pocket — it pays hops instead (which the
/// relative-error metric reports honestly).
pub(crate) fn least_visited_step(
    pos: Coord,
    free: impl Fn(Coord) -> bool,
    counts: &FxHashMap<Coord, u32>,
) -> Option<Coord> {
    Dir::ALL
        .into_iter()
        .map(|d| pos.step(d))
        .filter(|&v| free(v))
        .min_by_key(|v| counts.get(v).copied().unwrap_or(0))
}

/// Tracks how often each node was visited: used to decide when leaving a
/// detour is safe (re-entering a previously visited node invites a
/// livelock) and to drive the least-visited escape walk.
#[derive(Debug)]
pub(crate) struct Visited {
    counts: FxHashMap<Coord, u32>,
}

impl Visited {
    pub(crate) fn new(start: Coord) -> Self {
        let mut counts = FxHashMap::default();
        counts.insert(start, 1);
        Visited { counts }
    }

    /// Resets to a fresh walk starting at `start`, keeping the map's
    /// allocation (the batch-reuse path; see [`HopState::reset`]).
    ///
    /// [`HopState::reset`]: crate::HopState::reset
    pub(crate) fn reset(&mut self, start: Coord) {
        self.counts.clear();
        self.counts.insert(start, 1);
    }

    pub(crate) fn insert(&mut self, c: Coord) {
        *self.counts.entry(c).or_insert(0) += 1;
    }

    pub(crate) fn contains(&self, c: Coord) -> bool {
        self.counts.contains_key(&c)
    }

    pub(crate) fn counts(&self) -> &FxHashMap<Coord, u32> {
        &self.counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meshpath_mesh::{FaultSet, Mesh};

    #[test]
    fn detour_walks_around_a_block() {
        // Obstacle nodes (3,3),(4,3); walker south of it at (3,2) wants
        // +Y: detour starts heading -X with the wall on the right.
        let blocked = [Coord::new(3, 3), Coord::new(4, 3)];
        let free = |c: Coord| c.x >= 0 && c.y >= 0 && c.x < 8 && c.y < 8 && !blocked.contains(&c);
        let mut det = Detour::around(Dir::PlusY);
        let mut pos = Coord::new(3, 2);
        let visited = Visited::new(pos);
        let mut trail = vec![pos];
        for _ in 0..10 {
            pos = det.step(pos, free, &visited).expect("not trapped");
            trail.push(pos);
            // Stop once north of the obstacle row.
            if pos.y > 3 {
                break;
            }
        }
        assert!(trail.contains(&Coord::new(2, 2)));
        assert!(pos.y > 3, "detour must eventually clear the wall: {trail:?}");
    }

    #[test]
    fn detour_none_when_trapped() {
        let free = |_: Coord| false;
        let mut det = Detour::around(Dir::PlusX);
        let visited = Visited::new(Coord::new(0, 0));
        assert_eq!(det.step(Coord::new(0, 0), free, &visited), None);
    }

    #[test]
    fn closed_orbit_degrades_to_escape_walk() {
        // A 2x2 pocket: the wall-follow orbits it, detects the repeat and
        // switches to least-visited escape instead of returning None.
        let free = |c: Coord| (0..2).contains(&c.x) && (0..2).contains(&c.y);
        let mut det = Detour::around(Dir::PlusY);
        let mut visited = Visited::new(Coord::new(0, 0));
        let mut pos = Coord::new(0, 0);
        let mut steps = 0;
        for _ in 0..12 {
            match det.step(pos, free, &visited) {
                Some(w) => {
                    pos = w;
                    visited.insert(pos);
                    steps += 1;
                }
                None => break,
            }
        }
        assert!(steps >= 6, "escape walk must keep moving inside the pocket");
        assert!(det.exhausted, "orbit detection must have fired");
    }

    #[test]
    fn validate_rejects_broken_paths() {
        let net = Network::build(FaultSet::from_coords(Mesh::square(5), [Coord::new(2, 2)]));
        let s = Coord::new(0, 0);
        let d = Coord::new(4, 4);
        let jump = RouteResult {
            path: vec![s, Coord::new(2, 0), d],
            delivered: true,
            replans: 0,
            fallbacks: 0,
            detour_hops: 0,
        };
        assert!(validate_path(&net, s, d, &jump).is_err());
        let through_fault = RouteResult {
            path: vec![s, Coord::new(1, 0), Coord::new(2, 0), Coord::new(2, 1), Coord::new(2, 2)],
            delivered: false,
            replans: 0,
            fallbacks: 0,
            detour_hops: 0,
        };
        assert!(validate_path(&net, s, Coord::new(2, 2), &through_fault).is_err());
        let ok = RouteResult {
            path: vec![s, Coord::new(1, 0), Coord::new(1, 1)],
            delivered: true,
            replans: 0,
            fallbacks: 0,
            detour_hops: 0,
        };
        assert!(validate_path(&net, s, Coord::new(1, 1), &ok).is_ok());
    }

    #[test]
    fn route_result_hops() {
        let r = RouteResult {
            path: vec![Coord::new(0, 0)],
            delivered: false,
            replans: 0,
            fallbacks: 0,
            detour_hops: 0,
        };
        assert_eq!(r.hops(), 0);
    }
}
