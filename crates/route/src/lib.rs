//! # meshpath-route
//!
//! The routing algorithms of Jiang & Wu (IPDPS 2007) and their baselines:
//!
//! * [`Alg2`](alg2) — *Manhattan routing*: minimal adaptive forwarding
//!   whose candidate directions are pruned by the boundary triples
//!   (enter-forbidden-region exclusion).
//! * [`Rb1`] — Algorithm 3: Manhattan routing over the B1
//!   model with E-cube style clockwise detours when blocked.
//! * [`Rb2`] — Algorithm 5: multi-phase shortest-path
//!   routing over the B2 model; identifies the closest blocking sequence
//!   (Eq. 1), computes the detour distance recursively (Eqs. 2–3), and
//!   forwards through intermediate destinations at MCC corners.
//! * [`Rb3`] — Algorithm 7: the same machinery over the B3
//!   model (boundary knowledge + Eq. 4/5 relation chains).
//! * [`ECube`] — the fault-tolerant dimension-order
//!   baseline of Boppana & Chalasani over rectangular fault blocks.
//! * [`oracle`] — BFS ground truth (the optimum the paper's Fig. 5(d)/(e)
//!   normalize against) and a monotone-path feasibility DP.
//!
//! All routers make **per-hop local decisions**: a node sees its own and
//! its neighbors' labeling status plus whatever the information model
//! stored at it, nothing else (a [`KnowledgeScope`]
//! switch enables idealized global knowledge for reference runs).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alg2;
pub mod engine;
pub mod env;
pub mod hop;
pub mod monotone;
pub mod oracle;
pub mod routers;
pub mod seq;
pub mod view;

pub use alg2::AdaptivePolicy;
pub use engine::{validate_path, RouteResult};
pub use env::Network;
pub use hop::{
    drive, xy_next, xy_path_clear, Decision, HopCtx, HopState, Router, RoutingKind, XyRouter,
};
pub use routers::{ECube, Rb1, Rb2, Rb3};
pub use seq::KnowledgeScope;
pub use view::{NetState, NetView, UpdateError};
