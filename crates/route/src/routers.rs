//! The four routers evaluated in the paper's Fig. 5(d)/(e), phrased as
//! per-hop [`Router::decide`] implementations over [`NetView`]
//! snapshots. Each decide call replays exactly one iteration of the
//! former whole-path loop: the per-message scratch (detours, visit
//! counts, waypoint stacks, learned obstacles) lives in the
//! [`HopState`](crate::HopState) carried by [`HopCtx`], so a single
//! router value serves concurrent queries.

use meshpath_info::ModelKind;
use meshpath_mesh::{Coord, Dir, Orientation};

use crate::alg2::{decide as alg2_decide, AdaptivePolicy, Decision as PhaseDecision, PhaseCtx};
use crate::engine::{least_visited_step, Detour};
use crate::hop::{Decision, HopCtx, Router};
use crate::seq::{KnowledgeScope, Plan, Planner};
use crate::view::NetView;

/// `RB1` — Algorithm 3: Manhattan routing over the B1 boundary model,
/// with clockwise wall-following detours when blocked (no feasibility
/// check, no multi-phase planning).
#[derive(Clone, Copy, Debug)]
pub struct Rb1 {
    /// Adaptive tie-break for Algorithm 2's step 3.
    pub policy: AdaptivePolicy,
    /// Knowledge scope (Local reproduces the paper; Global for reference).
    pub scope: KnowledgeScope,
}

impl Default for Rb1 {
    fn default() -> Self {
        Rb1 { policy: AdaptivePolicy::LongerFirst, scope: KnowledgeScope::Local }
    }
}

impl Router for Rb1 {
    fn name(&self) -> &'static str {
        "RB1"
    }

    fn decide(&self, view: &NetView, ctx: HopCtx<'_>) -> Decision {
        decide_rb1_like(view, ctx, ModelKind::B1, self.scope, self.policy)
    }
}

/// Shared per-hop decider for boundary-model routing with detours (RB1).
fn decide_rb1_like(
    view: &NetView,
    ctx: HopCtx<'_>,
    kind: ModelKind,
    scope: KnowledgeScope,
    policy: AdaptivePolicy,
) -> Decision {
    let HopCtx { dst: d, here: u, state, .. } = ctx;
    if u == d {
        return Decision::Deliver;
    }
    state.clear_exhausted_detour();
    let mesh = *view.mesh();
    // After a full orbit's worth of wall-following, allow stepping onto
    // visited nodes again (breaks rare starvation around big clusters).
    let detour_patience = 4 * (mesh.width() + mesh.height());
    let healthy = |c: Coord| view.faults().is_healthy(c);

    // Thrash guard: heavy revisiting means the local decisions cycle;
    // degrade to the least-visited exploration walk, which covers the
    // connected component and therefore terminates.
    if state.visited.counts().get(&u).copied().unwrap_or(0) > 8 {
        return match least_visited_step(u, healthy, state.visited.counts()) {
            Some(w) => {
                state.detour_hops += 1;
                Decision::Hop(u.dir_to(w).expect("exploration steps to a neighbor"))
            }
            None => Decision::Blocked,
        };
    }

    let o = Orientation::normalizing(u, d);
    let pctx = PhaseCtx { set: view.mccs(o), model: view.model(o, kind), scope };
    let (ou, od) = (o.apply(&mesh, u), o.apply(&mesh, d));
    let oprev = state.prev.map(|p| o.apply(&mesh, p));

    let phase = alg2_decide(&pctx, ou, od, policy, oprev);
    let next = if state.detour.is_none() {
        match phase {
            PhaseDecision::Arrived => unreachable!("u != d was checked"),
            PhaseDecision::Step(dir) => {
                state.detour_run = 0;
                o.apply(&mesh, ou.step(dir))
            }
            PhaseDecision::Blocked => {
                // Algorithm 3 step 3: route around the MCC clockwise.
                let toward = if od.y > ou.y { Dir::PlusY } else { Dir::PlusX };
                let mut det = Detour::around(o.apply_dir(toward));
                match det.step(u, healthy, &state.visited) {
                    Some(w) => {
                        state.detour = Some(det);
                        state.detour_hops += 1;
                        state.detour_run += 1;
                        w
                    }
                    None => return Decision::Blocked,
                }
            }
        }
    } else {
        match phase {
            PhaseDecision::Arrived => unreachable!("u != d was checked"),
            PhaseDecision::Step(dir) => {
                let v = o.apply(&mesh, ou.step(dir));
                if state.visited.contains(v) && state.detour_run < detour_patience {
                    // Keep wall-following; leaving the detour into a
                    // visited node invites a livelock.
                    let det = state.detour.as_mut().expect("checked is_some");
                    match det.step(u, healthy, &state.visited) {
                        Some(w) => {
                            state.detour_hops += 1;
                            state.detour_run += 1;
                            w
                        }
                        None => return Decision::Blocked,
                    }
                } else {
                    state.detour = None;
                    state.detour_run = 0;
                    v
                }
            }
            PhaseDecision::Blocked => {
                let det = state.detour.as_mut().expect("checked is_some");
                match det.step(u, healthy, &state.visited) {
                    Some(w) => {
                        state.detour_hops += 1;
                        state.detour_run += 1;
                        w
                    }
                    None => return Decision::Blocked,
                }
            }
        }
    };
    Decision::Hop(u.dir_to(next).expect("deciders step to a neighbor"))
}

/// `RB2` — Algorithm 5: shortest-path routing over the B2 broadcast model.
#[derive(Clone, Copy, Debug)]
pub struct Rb2 {
    /// Adaptive tie-break for the Manhattan phases.
    pub policy: AdaptivePolicy,
    /// Knowledge scope (Local reproduces the paper; Global for reference).
    pub scope: KnowledgeScope,
}

impl Default for Rb2 {
    fn default() -> Self {
        Rb2 { policy: AdaptivePolicy::LongerFirst, scope: KnowledgeScope::Local }
    }
}

impl Router for Rb2 {
    fn name(&self) -> &'static str {
        "RB2"
    }

    fn decide(&self, view: &NetView, ctx: HopCtx<'_>) -> Decision {
        decide_planned(view, ctx, ModelKind::B2, self.scope, self.policy)
    }
}

/// `RB3` — Algorithm 7: the same multi-phase machinery over the B3
/// boundary + relation-record model.
#[derive(Clone, Copy, Debug)]
pub struct Rb3 {
    /// Adaptive tie-break for the Manhattan phases.
    pub policy: AdaptivePolicy,
    /// Knowledge scope.
    pub scope: KnowledgeScope,
}

impl Default for Rb3 {
    fn default() -> Self {
        Rb3 { policy: AdaptivePolicy::LongerFirst, scope: KnowledgeScope::Local }
    }
}

impl Router for Rb3 {
    fn name(&self) -> &'static str {
        "RB3"
    }

    fn decide(&self, view: &NetView, ctx: HopCtx<'_>) -> Decision {
        decide_planned(view, ctx, ModelKind::B3, self.scope, self.policy)
    }
}

/// Shared per-hop decider for the multi-phase drivers (RB2/RB3,
/// Algorithms 5 and 7).
fn decide_planned(
    view: &NetView,
    ctx: HopCtx<'_>,
    kind: ModelKind,
    scope: KnowledgeScope,
    policy: AdaptivePolicy,
) -> Decision {
    let HopCtx { dst: d, here: u, state, .. } = ctx;
    if u == d {
        return Decision::Deliver;
    }
    state.clear_exhausted_detour();
    let mesh = *view.mesh();
    let planner = Planner::new(view, kind, scope);
    let detour_patience = 4 * (mesh.width() + mesh.height());
    let healthy = |c: Coord| view.faults().is_healthy(c);

    // Thrash guard (see the RB1 decider).
    if state.visited.counts().get(&u).copied().unwrap_or(0) > 8 {
        return match least_visited_step(u, healthy, state.visited.counts()) {
            Some(w) => {
                state.detour_hops += 1;
                state.forced = None;
                state.planned = false;
                Decision::Hop(u.dir_to(w).expect("exploration steps to a neighbor"))
            }
            None => Decision::Blocked,
        };
    }

    // Follow a forced (BFS fallback) path when active.
    if let Some((fpath, idx)) = &mut state.forced {
        let next = fpath[*idx + 1];
        if healthy(next) {
            *idx += 1;
            if *idx + 1 >= fpath.len() {
                state.forced = None;
                state.planned = false;
            }
            return Decision::Hop(u.dir_to(next).expect("forced paths are walks"));
        }
        // The plan crossed an unknown fault: learn and re-plan.
        state.learned.insert(next);
        state.forced = None;
        state.planned = false;
        state.replans += 1;
        return Decision::Replan;
    }

    // Reached the current intermediate destination: re-plan there
    // (Algorithm 5 step 5 "from that intermediate destination, the
    // routing will continue").
    while state.waypoints.last() == Some(&u) {
        state.waypoints.pop();
        state.planned = false;
    }

    if !state.planned {
        let (plan, stats) = planner.plan(u, d, &state.learned);
        state.planned = true;
        match plan {
            Plan::Direct => state.waypoints.clear(),
            Plan::Waypoints(w) => {
                // Keep in visiting order; the stack pops from the back.
                state.waypoints = w;
                state.waypoints.reverse();
            }
            Plan::Forced(p) => {
                state.forced = Some((p, 0));
                state.fallbacks += stats.used_fallback as u32;
                return Decision::Replan;
            }
        }
        if stats.used_fallback {
            state.fallbacks += 1;
        }
    }

    let target = state.waypoints.last().copied().unwrap_or(d);
    let o = Orientation::normalizing(u, target);
    let pctx = PhaseCtx { set: view.mccs(o), model: view.model(o, kind), scope };
    let (ou, ot) = (o.apply(&mesh, u), o.apply(&mesh, target));
    let oprev = state.prev.map(|p| o.apply(&mesh, p));
    if meshpath_obs::enabled(meshpath_obs::LogLevel::Trace) {
        eprintln!(
            "at {u:?} target {target:?} waypoints {:?} detour {}",
            state.waypoints,
            state.detour.is_some()
        );
    }

    let phase = alg2_decide(&pctx, ou, ot, policy, oprev);
    let next = if state.detour.is_none() {
        match phase {
            PhaseDecision::Arrived => {
                // u == target handled above for waypoints; target == d
                // handled at the decider head.
                unreachable!("arrival is handled before deciding")
            }
            PhaseDecision::Step(dir) => {
                state.detour_run = 0;
                o.apply(&mesh, ou.step(dir))
            }
            PhaseDecision::Blocked => {
                // The phase is blocked: re-plan once; if the planner has
                // nothing new, fall back to a BFS plan; as a last resort
                // wall-follow.
                state.replans += 1;
                let o_d = Orientation::normalizing(u, d);
                let (plan, stats) = planner.fallback(u, d, o_d, &state.learned);
                if stats.used_fallback {
                    state.fallbacks += 1;
                }
                if let Plan::Forced(p) = plan {
                    if p.len() > 1 {
                        state.forced = Some((p, 0));
                        return Decision::Replan;
                    }
                }
                let toward = if ot.y > ou.y { Dir::PlusY } else { Dir::PlusX };
                let mut det = Detour::around(o.apply_dir(toward));
                match det.step(u, healthy, &state.visited) {
                    Some(w) => {
                        state.detour = Some(det);
                        state.detour_hops += 1;
                        state.detour_run += 1;
                        w
                    }
                    None => return Decision::Blocked,
                }
            }
        }
    } else {
        match phase {
            PhaseDecision::Arrived => unreachable!("arrival is handled before deciding"),
            PhaseDecision::Step(dir) => {
                let v = o.apply(&mesh, ou.step(dir));
                if state.visited.contains(v) && state.detour_run < detour_patience {
                    let det = state.detour.as_mut().expect("checked is_some");
                    match det.step(u, healthy, &state.visited) {
                        Some(w) => {
                            state.detour_hops += 1;
                            state.detour_run += 1;
                            w
                        }
                        None => return Decision::Blocked,
                    }
                } else {
                    state.detour = None;
                    state.detour_run = 0;
                    v
                }
            }
            PhaseDecision::Blocked => {
                let det = state.detour.as_mut().expect("checked is_some");
                match det.step(u, healthy, &state.visited) {
                    Some(w) => {
                        state.detour_hops += 1;
                        state.detour_run += 1;
                        w
                    }
                    None => return Decision::Blocked,
                }
            }
        }
    };
    Decision::Hop(u.dir_to(next).expect("deciders step to a neighbor"))
}

/// `E-cube` — fault-tolerant dimension-order routing over rectangular
/// fault blocks (Boppana & Chalasani, the paper's reference \[2\]): route
/// `X` first, then `Y`; on meeting a fault block, traverse its f-ring
/// until dimension progress resumes.
#[derive(Clone, Copy, Debug, Default)]
pub struct ECube;

impl Router for ECube {
    fn name(&self) -> &'static str {
        "E-cube"
    }

    fn decide(&self, view: &NetView, ctx: HopCtx<'_>) -> Decision {
        let HopCtx { dst: d, src: s, here: u, state, .. } = ctx;
        if u == d {
            return Decision::Deliver;
        }
        // Once wall-following over enabled nodes exhausts its orbits,
        // the enabled region around the walker is a closed pocket: drop
        // the block constraint and walk healthy nodes (the deactivated
        // ones are physical hardware; the error metric pays for the
        // extra hops).
        if state.clear_exhausted_detour() {
            state.healthy_mode = true;
        }
        let mesh = *view.mesh();
        let blocks = view.blocks();
        let detour_patience = 4 * (mesh.width() + mesh.height());
        // Walk on healthy nodes, but treat block-disabled nodes as
        // obstacles (except the endpoints, which the experiment harness
        // guarantees to be healthy but which the coarser block model may
        // have deactivated).
        let healthy_mode = state.healthy_mode;
        let passable = |c: Coord| {
            mesh.contains(c)
                && view.faults().is_healthy(c)
                && (!blocks.is_disabled(c) || c == d || c == s || healthy_mode)
        };
        let healthy = |c: Coord| view.faults().is_healthy(c);

        // Thrash guard: revisiting any node this often means the
        // dimension-ordered decision cycles; degrade to a pure
        // least-visited exploration walk, which covers the connected
        // component and therefore terminates.
        if state.visited.counts().get(&u).copied().unwrap_or(0) > 8 {
            state.healthy_mode = true;
            return match least_visited_step(u, healthy, state.visited.counts()) {
                Some(w) => {
                    state.detour_hops += 1;
                    Decision::Hop(u.dir_to(w).expect("exploration steps to a neighbor"))
                }
                None => Decision::Blocked,
            };
        }

        let dir = if u.x != d.x {
            if d.x > u.x {
                Dir::PlusX
            } else {
                Dir::MinusX
            }
        } else if d.y > u.y {
            Dir::PlusY
        } else {
            Dir::MinusY
        };
        let straight = u.step(dir);
        let next = if state.detour.is_none() {
            if passable(straight) {
                state.detour_run = 0;
                straight
            } else {
                let mut det = Detour::around(dir);
                match det.step(u, passable, &state.visited) {
                    Some(w) => {
                        state.detour = Some(det);
                        state.detour_hops += 1;
                        state.detour_run += 1;
                        w
                    }
                    // Enabled nodes exhausted: escape over healthy
                    // nodes (block-disabled ones are physically
                    // traversable; the error metric pays for it).
                    None => match least_visited_step(u, healthy, state.visited.counts()) {
                        Some(w) => {
                            state.detour_hops += 1;
                            w
                        }
                        None => return Decision::Blocked,
                    },
                }
            }
        } else if passable(straight)
            && (!state.visited.contains(straight) || state.detour_run >= detour_patience)
        {
            state.detour = None;
            state.detour_run = 0;
            straight
        } else {
            let det = state.detour.as_mut().expect("checked is_some");
            match det.step(u, passable, &state.visited) {
                Some(w) => {
                    state.detour_hops += 1;
                    state.detour_run += 1;
                    w
                }
                None => match least_visited_step(u, healthy, state.visited.counts()) {
                    Some(w) => {
                        state.detour_hops += 1;
                        w
                    }
                    None => return Decision::Blocked,
                },
            }
        };
        Decision::Hop(u.dir_to(next).expect("deciders step to a neighbor"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::validate_path;
    use crate::oracle::DistanceField;
    use meshpath_mesh::{FaultSet, Mesh};

    fn net(mesh: Mesh, faults: &[(i32, i32)]) -> NetView {
        NetView::build(FaultSet::from_coords(mesh, faults.iter().map(|&(x, y)| Coord::new(x, y))))
    }

    fn check_optimal(router: &dyn Router, n: &NetView, s: Coord, d: Coord) {
        let res = router.route(n, s, d);
        assert!(res.delivered, "{} failed {s:?}->{d:?}: {:?}", router.name(), res.path);
        validate_path(n, s, d, &res).expect("valid path");
        let field = DistanceField::healthy(n.faults(), d);
        assert_eq!(
            res.hops(),
            field.dist(s),
            "{} suboptimal {s:?}->{d:?}: {:?}",
            router.name(),
            res.path
        );
    }

    #[test]
    fn all_routers_deliver_on_fault_free_mesh() {
        let n = net(Mesh::square(8), &[]);
        let (s, d) = (Coord::new(1, 1), Coord::new(6, 5));
        for router in [&Rb1::default() as &dyn Router, &Rb2::default(), &Rb3::default(), &ECube] {
            check_optimal(router, &n, s, d);
        }
    }

    #[test]
    fn rb2_takes_the_shortest_detour_around_a_single_fault() {
        let n = net(Mesh::square(10), &[(5, 5)]);
        // Blocked column case: optimal adds exactly 2 hops.
        check_optimal(&Rb2::default(), &n, Coord::new(5, 1), Coord::new(5, 8));
        // Feasible cases stay Manhattan.
        check_optimal(&Rb2::default(), &n, Coord::new(0, 0), Coord::new(9, 9));
        check_optimal(&Rb2::default(), &n, Coord::new(9, 9), Coord::new(0, 0));
        check_optimal(&Rb2::default(), &n, Coord::new(0, 9), Coord::new(9, 0));
    }

    #[test]
    fn rb2_threads_a_two_mcc_chain() {
        let f1: Vec<(i32, i32)> = (0..=5).map(|x| (x, 4)).collect();
        let f2: Vec<(i32, i32)> = (4..=9).map(|x| (x, 7)).collect();
        let all: Vec<(i32, i32)> = f1.into_iter().chain(f2).collect();
        let n = net(Mesh::square(10), &all);
        check_optimal(&Rb2::default(), &n, Coord::new(2, 0), Coord::new(7, 9));
    }

    #[test]
    fn rb1_delivers_with_detours_when_no_manhattan_path() {
        let n = net(Mesh::square(10), &[(5, 5)]);
        let (s, d) = (Coord::new(5, 1), Coord::new(5, 8));
        let res = Rb1::default().route(&n, s, d);
        assert!(res.delivered);
        validate_path(&n, s, d, &res).expect("valid");
        // RB1 is allowed to be suboptimal, but must deliver.
        assert!(res.hops() >= s.manhattan(d));
    }

    #[test]
    fn rb3_matches_rb2_from_boundary_sources() {
        // Theorem 2: from a boundary node the RB3 path is as short as
        // RB2's. (4,1) lies on the -X boundary of the fault at (5,5)...
        // actually on the boundary of column 4 descending from (4,4).
        let n = net(Mesh::square(10), &[(5, 5)]);
        let (s, d) = (Coord::new(4, 1), Coord::new(5, 8));
        let rb2 = Rb2::default().route(&n, s, d);
        let rb3 = Rb3::default().route(&n, s, d);
        assert!(rb2.delivered && rb3.delivered);
        assert_eq!(rb2.hops(), rb3.hops());
    }

    #[test]
    fn ecube_routes_around_blocks() {
        let n = net(Mesh::square(10), &[(4, 4), (4, 5), (5, 4), (5, 5)]);
        let (s, d) = (Coord::new(1, 4), Coord::new(8, 5));
        let res = ECube.route(&n, s, d);
        assert!(res.delivered, "path: {:?}", res.path);
        validate_path(&n, s, d, &res).expect("valid");
        assert!(res.detour_hops > 0, "must have detoured around the block");
    }

    #[test]
    fn routers_survive_dense_random_faults() {
        use meshpath_mesh::FaultInjection;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        let mesh = Mesh::square(16);
        let mut rng = StdRng::seed_from_u64(7);
        for trial in 0..6 {
            let faults = FaultSet::random(mesh, 30, FaultInjection::Uniform, &mut rng);
            if !meshpath_mesh::is_connected(&faults) {
                continue;
            }
            let n = NetView::build(faults);
            let field_ok = |c: Coord| n.faults().is_healthy(c) && n.is_safe_all_orientations(c);
            // Draw safe endpoint pairs.
            let mut pairs = Vec::new();
            while pairs.len() < 8 {
                let s = Coord::new(rng.gen_range(0..16), rng.gen_range(0..16));
                let d = Coord::new(rng.gen_range(0..16), rng.gen_range(0..16));
                if s != d && field_ok(s) && field_ok(d) {
                    pairs.push((s, d));
                }
            }
            for (s, d) in pairs {
                for router in
                    [&Rb1::default() as &dyn Router, &Rb2::default(), &Rb3::default(), &ECube]
                {
                    let res = router.route(&n, s, d);
                    assert!(
                        res.delivered,
                        "{} undelivered {s:?}->{d:?} (trial {trial})",
                        router.name()
                    );
                    validate_path(&n, s, d, &res).expect("valid path");
                }
            }
        }
    }
}
