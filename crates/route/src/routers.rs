//! The four routers evaluated in the paper's Fig. 5(d)/(e).

use meshpath_info::ModelKind;
use meshpath_mesh::{Coord, Dir, FxHashSet, Orientation};

use crate::alg2::{decide, AdaptivePolicy, Decision, PhaseCtx};
use crate::engine::{hop_budget, least_visited_step, Detour, RouteResult, Router, Visited};
use crate::env::Network;
use crate::seq::{KnowledgeScope, Plan, Planner};

/// `RB1` — Algorithm 3: Manhattan routing over the B1 boundary model,
/// with clockwise wall-following detours when blocked (no feasibility
/// check, no multi-phase planning).
#[derive(Clone, Copy, Debug)]
pub struct Rb1 {
    /// Adaptive tie-break for Algorithm 2's step 3.
    pub policy: AdaptivePolicy,
    /// Knowledge scope (Local reproduces the paper; Global for reference).
    pub scope: KnowledgeScope,
}

impl Default for Rb1 {
    fn default() -> Self {
        Rb1 { policy: AdaptivePolicy::LongerFirst, scope: KnowledgeScope::Local }
    }
}

impl Router for Rb1 {
    fn name(&self) -> &'static str {
        "RB1"
    }

    fn route(&self, net: &Network, s: Coord, d: Coord) -> RouteResult {
        route_rb1_like(net, s, d, ModelKind::B1, self.scope, self.policy)
    }
}

/// Shared driver for boundary-model routing with detours (RB1, and the
/// no-info last resort of RB2/RB3).
fn route_rb1_like(
    net: &Network,
    s: Coord,
    d: Coord,
    kind: ModelKind,
    scope: KnowledgeScope,
    policy: AdaptivePolicy,
) -> RouteResult {
    let mesh = *net.mesh();
    let mut path = vec![s];
    let mut u = s;
    let mut prev: Option<Coord> = None;
    let mut visited = Visited::new(s);
    let mut detour: Option<Detour> = None;
    let mut detour_hops = 0u32;
    let mut detour_run = 0u32;
    // After a full orbit's worth of wall-following, allow stepping onto
    // visited nodes again (breaks rare starvation around big clusters).
    let detour_patience = 4 * (mesh.width() + mesh.height());
    let healthy = |c: Coord| net.faults().is_healthy(c);

    for _ in 0..hop_budget(net) {
        if u == d {
            return RouteResult { path, delivered: true, replans: 0, fallbacks: 0, detour_hops };
        }
        // Thrash guard: heavy revisiting means the local decisions cycle;
        // degrade to the least-visited exploration walk, which covers the
        // connected component and therefore terminates.
        if visited.counts().get(&u).copied().unwrap_or(0) > 8 {
            match least_visited_step(u, healthy, visited.counts()) {
                Some(w) => {
                    detour_hops += 1;
                    prev = Some(u);
                    u = w;
                    visited.insert(u);
                    path.push(u);
                    continue;
                }
                None => break,
            }
        }
        let o = Orientation::normalizing(u, d);
        let ctx = PhaseCtx { set: net.mccs(o), model: net.model(o, kind), scope };
        let (ou, od) = (o.apply(&mesh, u), o.apply(&mesh, d));
        let oprev = prev.map(|p| o.apply(&mesh, p));

        let decision = decide(&ctx, ou, od, policy, oprev);
        let next = match (&mut detour, decision) {
            (_, Decision::Arrived) => unreachable!("u != d was checked"),
            (None, Decision::Step(dir)) => {
                detour_run = 0;
                o.apply(&mesh, ou.step(dir))
            }
            (Some(det), Decision::Step(dir)) => {
                let v = o.apply(&mesh, ou.step(dir));
                if visited.contains(v) && detour_run < detour_patience {
                    // Keep wall-following; leaving the detour into a
                    // visited node invites a livelock.
                    match det.step(u, healthy, &visited) {
                        Some(w) => {
                            detour_hops += 1;
                            detour_run += 1;
                            w
                        }
                        None => break,
                    }
                } else {
                    detour = None;
                    detour_run = 0;
                    v
                }
            }
            (None, Decision::Blocked) => {
                // Algorithm 3 step 3: route around the MCC clockwise.
                let toward = if od.y > ou.y { Dir::PlusY } else { Dir::PlusX };
                let mut det = Detour::around(o.apply_dir(toward));
                match det.step(u, healthy, &visited) {
                    Some(w) => {
                        detour = Some(det);
                        detour_hops += 1;
                        detour_run += 1;
                        w
                    }
                    None => break,
                }
            }
            (Some(det), Decision::Blocked) => match det.step(u, healthy, &visited) {
                Some(w) => {
                    detour_hops += 1;
                    detour_run += 1;
                    w
                }
                None => break,
            },
        };
        prev = Some(u);
        u = next;
        visited.insert(u);
        path.push(u);
        if detour.as_ref().is_some_and(|d| d.exhausted) {
            detour = None;
            detour_run = 0;
        }
    }
    RouteResult { path, delivered: u == d, replans: 0, fallbacks: 0, detour_hops }
}

/// `RB2` — Algorithm 5: shortest-path routing over the B2 broadcast model.
#[derive(Clone, Copy, Debug)]
pub struct Rb2 {
    /// Adaptive tie-break for the Manhattan phases.
    pub policy: AdaptivePolicy,
    /// Knowledge scope (Local reproduces the paper; Global for reference).
    pub scope: KnowledgeScope,
}

impl Default for Rb2 {
    fn default() -> Self {
        Rb2 { policy: AdaptivePolicy::LongerFirst, scope: KnowledgeScope::Local }
    }
}

impl Router for Rb2 {
    fn name(&self) -> &'static str {
        "RB2"
    }

    fn route(&self, net: &Network, s: Coord, d: Coord) -> RouteResult {
        route_planned(net, s, d, ModelKind::B2, self.scope, self.policy)
    }
}

/// `RB3` — Algorithm 7: the same multi-phase machinery over the B3
/// boundary + relation-record model.
#[derive(Clone, Copy, Debug)]
pub struct Rb3 {
    /// Adaptive tie-break for the Manhattan phases.
    pub policy: AdaptivePolicy,
    /// Knowledge scope.
    pub scope: KnowledgeScope,
}

impl Default for Rb3 {
    fn default() -> Self {
        Rb3 { policy: AdaptivePolicy::LongerFirst, scope: KnowledgeScope::Local }
    }
}

impl Router for Rb3 {
    fn name(&self) -> &'static str {
        "RB3"
    }

    fn route(&self, net: &Network, s: Coord, d: Coord) -> RouteResult {
        route_planned(net, s, d, ModelKind::B3, self.scope, self.policy)
    }
}

/// Shared multi-phase driver for RB2/RB3 (Algorithms 5 and 7).
fn route_planned(
    net: &Network,
    s: Coord,
    d: Coord,
    kind: ModelKind,
    scope: KnowledgeScope,
    policy: AdaptivePolicy,
) -> RouteResult {
    let mesh = *net.mesh();
    let planner = Planner::new(net, kind, scope);
    let mut path = vec![s];
    let mut u = s;
    let mut prev: Option<Coord> = None;
    let mut visited = Visited::new(s);
    let mut learned: FxHashSet<Coord> = FxHashSet::default();
    let mut waypoints: Vec<Coord> = Vec::new(); // stack, next target last
    let mut forced: Option<(Vec<Coord>, usize)> = None;
    let mut planned = false;
    let mut detour: Option<Detour> = None;
    let mut replans = 0u32;
    let mut fallbacks = 0u32;
    let mut detour_hops = 0u32;
    let mut detour_run = 0u32;
    let detour_patience = 4 * (mesh.width() + mesh.height());
    let healthy = |c: Coord| net.faults().is_healthy(c);

    for _ in 0..hop_budget(net) {
        if u == d {
            return RouteResult { path, delivered: true, replans, fallbacks, detour_hops };
        }
        // Thrash guard (see the RB1 driver).
        if visited.counts().get(&u).copied().unwrap_or(0) > 8 {
            match least_visited_step(u, healthy, visited.counts()) {
                Some(w) => {
                    detour_hops += 1;
                    prev = Some(u);
                    u = w;
                    visited.insert(u);
                    path.push(u);
                    forced = None;
                    planned = false;
                    continue;
                }
                None => break,
            }
        }

        // Follow a forced (BFS fallback) path when active.
        if let Some((ref fpath, ref mut idx)) = forced {
            let next = fpath[*idx + 1];
            if healthy(next) {
                *idx += 1;
                prev = Some(u);
                u = next;
                visited.insert(u);
                path.push(u);
                if *idx + 1 >= fpath.len() {
                    forced = None;
                    planned = false;
                }
                continue;
            }
            // The plan crossed an unknown fault: learn and re-plan.
            learned.insert(next);
            forced = None;
            planned = false;
            replans += 1;
            continue;
        }

        // Reached the current intermediate destination: re-plan there
        // (Algorithm 5 step 5 "from that intermediate destination, the
        // routing will continue").
        while waypoints.last() == Some(&u) {
            waypoints.pop();
            planned = false;
        }

        if !planned {
            let (plan, stats) = planner.plan(u, d, &learned);
            planned = true;
            match plan {
                Plan::Direct => waypoints.clear(),
                Plan::Waypoints(w) => {
                    // Keep in visiting order; the stack pops from the back.
                    waypoints = w;
                    waypoints.reverse();
                }
                Plan::Forced(p) => {
                    forced = Some((p, 0));
                    fallbacks += stats.used_fallback as u32;
                    continue;
                }
            }
            if stats.used_fallback {
                fallbacks += 1;
            }
        }

        let target = waypoints.last().copied().unwrap_or(d);
        let o = Orientation::normalizing(u, target);
        let ctx = PhaseCtx { set: net.mccs(o), model: net.model(o, kind), scope };
        let (ou, ot) = (o.apply(&mesh, u), o.apply(&mesh, target));
        let oprev = prev.map(|p| o.apply(&mesh, p));
        if std::env::var_os("MESHPATH_TRACE").is_some() {
            eprintln!(
                "at {u:?} target {target:?} waypoints {waypoints:?} detour {}",
                detour.is_some()
            );
        }

        let next = match (&mut detour, decide(&ctx, ou, ot, policy, oprev)) {
            (_, Decision::Arrived) => {
                // u == target handled above for waypoints; target == d
                // handled at the loop head.
                unreachable!("arrival is handled before deciding")
            }
            (None, Decision::Step(dir)) => {
                detour_run = 0;
                o.apply(&mesh, ou.step(dir))
            }
            (Some(det), Decision::Step(dir)) => {
                let v = o.apply(&mesh, ou.step(dir));
                if visited.contains(v) && detour_run < detour_patience {
                    match det.step(u, healthy, &visited) {
                        Some(w) => {
                            detour_hops += 1;
                            detour_run += 1;
                            w
                        }
                        None => break,
                    }
                } else {
                    detour = None;
                    detour_run = 0;
                    v
                }
            }
            (None, Decision::Blocked) => {
                // The phase is blocked: re-plan once; if the planner has
                // nothing new, fall back to a BFS plan; as a last resort
                // wall-follow.
                replans += 1;
                let o_d = Orientation::normalizing(u, d);
                let (plan, stats) = planner.fallback(u, d, o_d, &learned);
                if stats.used_fallback {
                    fallbacks += 1;
                }
                if let Plan::Forced(p) = plan {
                    if p.len() > 1 {
                        forced = Some((p, 0));
                        continue;
                    }
                }
                let toward = if ot.y > ou.y { Dir::PlusY } else { Dir::PlusX };
                let mut det = Detour::around(o.apply_dir(toward));
                match det.step(u, healthy, &visited) {
                    Some(w) => {
                        detour = Some(det);
                        detour_hops += 1;
                        detour_run += 1;
                        w
                    }
                    None => break,
                }
            }
            (Some(det), Decision::Blocked) => match det.step(u, healthy, &visited) {
                Some(w) => {
                    detour_hops += 1;
                    detour_run += 1;
                    w
                }
                None => break,
            },
        };
        prev = Some(u);
        u = next;
        visited.insert(u);
        path.push(u);
        if detour.as_ref().is_some_and(|d| d.exhausted) {
            detour = None;
            detour_run = 0;
        }
    }
    RouteResult { path, delivered: u == d, replans, fallbacks, detour_hops }
}

/// `E-cube` — fault-tolerant dimension-order routing over rectangular
/// fault blocks (Boppana & Chalasani, the paper's reference \[2\]): route
/// `X` first, then `Y`; on meeting a fault block, traverse its f-ring
/// until dimension progress resumes.
#[derive(Clone, Copy, Debug, Default)]
pub struct ECube;

impl Router for ECube {
    fn name(&self) -> &'static str {
        "E-cube"
    }

    fn route(&self, net: &Network, s: Coord, d: Coord) -> RouteResult {
        let mesh = *net.mesh();
        let blocks = net.blocks();
        // Walk on healthy nodes, but treat block-disabled nodes as
        // obstacles (except the endpoints, which the experiment harness
        // guarantees to be healthy but which the coarser block model may
        // have deactivated).
        // Once wall-following over enabled nodes exhausts its orbits
        // repeatedly, the enabled region around the walker is a closed
        // pocket: drop the block constraint and walk healthy nodes (the
        // deactivated ones are physical hardware; the error metric pays
        // for the extra hops).
        let healthy_mode = std::cell::Cell::new(false);
        let passable = |c: Coord| {
            mesh.contains(c)
                && net.faults().is_healthy(c)
                && (!blocks.is_disabled(c) || c == d || c == s || healthy_mode.get())
        };
        let healthy = |c: Coord| net.faults().is_healthy(c);
        let desired = |u: Coord| -> Dir {
            if u.x != d.x {
                if d.x > u.x {
                    Dir::PlusX
                } else {
                    Dir::MinusX
                }
            } else if d.y > u.y {
                Dir::PlusY
            } else {
                Dir::MinusY
            }
        };

        let mut path = vec![s];
        let mut u = s;
        let mut visited = Visited::new(s);
        let mut detour: Option<Detour> = None;
        let mut detour_hops = 0u32;
        let mut detour_run = 0u32;
        let detour_patience = 4 * (mesh.width() + mesh.height());

        for _ in 0..hop_budget(net) {
            if u == d {
                return RouteResult {
                    path,
                    delivered: true,
                    replans: 0,
                    fallbacks: 0,
                    detour_hops,
                };
            }
            // Thrash guard: revisiting any node this often means the
            // dimension-ordered decision cycles; degrade to a pure
            // least-visited exploration walk, which covers the connected
            // component and therefore terminates.
            if visited.counts().get(&u).copied().unwrap_or(0) > 8 {
                healthy_mode.set(true);
                match least_visited_step(u, healthy, visited.counts()) {
                    Some(w) => {
                        detour_hops += 1;
                        u = w;
                        visited.insert(u);
                        path.push(u);
                        continue;
                    }
                    None => break,
                }
            }
            let dir = desired(u);
            let straight = u.step(dir);
            let next = match &mut detour {
                None => {
                    if passable(straight) {
                        detour_run = 0;
                        straight
                    } else {
                        let mut det = Detour::around(dir);
                        match det.step(u, passable, &visited) {
                            Some(w) => {
                                detour = Some(det);
                                detour_hops += 1;
                                detour_run += 1;
                                w
                            }
                            // Enabled nodes exhausted: escape over healthy
                            // nodes (block-disabled ones are physically
                            // traversable; the error metric pays for it).
                            None => match least_visited_step(u, healthy, visited.counts()) {
                                Some(w) => {
                                    detour_hops += 1;
                                    w
                                }
                                None => break,
                            },
                        }
                    }
                }
                Some(det) => {
                    if passable(straight)
                        && (!visited.contains(straight) || detour_run >= detour_patience)
                    {
                        detour = None;
                        detour_run = 0;
                        straight
                    } else {
                        match det.step(u, passable, &visited) {
                            Some(w) => {
                                detour_hops += 1;
                                detour_run += 1;
                                w
                            }
                            None => match least_visited_step(u, healthy, visited.counts()) {
                                Some(w) => {
                                    detour_hops += 1;
                                    w
                                }
                                None => break,
                            },
                        }
                    }
                }
            };
            u = next;
            visited.insert(u);
            path.push(u);
            if detour.as_ref().is_some_and(|d| d.exhausted) {
                detour = None;
                detour_run = 0;
                healthy_mode.set(true);
            }
        }
        RouteResult { path, delivered: u == d, replans: 0, fallbacks: 0, detour_hops }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::validate_path;
    use crate::oracle::DistanceField;
    use meshpath_mesh::{FaultSet, Mesh};

    fn net(mesh: Mesh, faults: &[(i32, i32)]) -> Network {
        Network::build(FaultSet::from_coords(mesh, faults.iter().map(|&(x, y)| Coord::new(x, y))))
    }

    fn check_optimal(router: &dyn Router, n: &Network, s: Coord, d: Coord) {
        let res = router.route(n, s, d);
        assert!(res.delivered, "{} failed {s:?}->{d:?}: {:?}", router.name(), res.path);
        validate_path(n, s, d, &res).expect("valid path");
        let field = DistanceField::healthy(n.faults(), d);
        assert_eq!(
            res.hops(),
            field.dist(s),
            "{} suboptimal {s:?}->{d:?}: {:?}",
            router.name(),
            res.path
        );
    }

    #[test]
    fn all_routers_deliver_on_fault_free_mesh() {
        let n = net(Mesh::square(8), &[]);
        let (s, d) = (Coord::new(1, 1), Coord::new(6, 5));
        for router in [&Rb1::default() as &dyn Router, &Rb2::default(), &Rb3::default(), &ECube] {
            check_optimal(router, &n, s, d);
        }
    }

    #[test]
    fn rb2_takes_the_shortest_detour_around_a_single_fault() {
        let n = net(Mesh::square(10), &[(5, 5)]);
        // Blocked column case: optimal adds exactly 2 hops.
        check_optimal(&Rb2::default(), &n, Coord::new(5, 1), Coord::new(5, 8));
        // Feasible cases stay Manhattan.
        check_optimal(&Rb2::default(), &n, Coord::new(0, 0), Coord::new(9, 9));
        check_optimal(&Rb2::default(), &n, Coord::new(9, 9), Coord::new(0, 0));
        check_optimal(&Rb2::default(), &n, Coord::new(0, 9), Coord::new(9, 0));
    }

    #[test]
    fn rb2_threads_a_two_mcc_chain() {
        let f1: Vec<(i32, i32)> = (0..=5).map(|x| (x, 4)).collect();
        let f2: Vec<(i32, i32)> = (4..=9).map(|x| (x, 7)).collect();
        let all: Vec<(i32, i32)> = f1.into_iter().chain(f2).collect();
        let n = net(Mesh::square(10), &all);
        check_optimal(&Rb2::default(), &n, Coord::new(2, 0), Coord::new(7, 9));
    }

    #[test]
    fn rb1_delivers_with_detours_when_no_manhattan_path() {
        let n = net(Mesh::square(10), &[(5, 5)]);
        let (s, d) = (Coord::new(5, 1), Coord::new(5, 8));
        let res = Rb1::default().route(&n, s, d);
        assert!(res.delivered);
        validate_path(&n, s, d, &res).expect("valid");
        // RB1 is allowed to be suboptimal, but must deliver.
        assert!(res.hops() >= s.manhattan(d));
    }

    #[test]
    fn rb3_matches_rb2_from_boundary_sources() {
        // Theorem 2: from a boundary node the RB3 path is as short as
        // RB2's. (4,1) lies on the -X boundary of the fault at (5,5)...
        // actually on the boundary of column 4 descending from (4,4).
        let n = net(Mesh::square(10), &[(5, 5)]);
        let (s, d) = (Coord::new(4, 1), Coord::new(5, 8));
        let rb2 = Rb2::default().route(&n, s, d);
        let rb3 = Rb3::default().route(&n, s, d);
        assert!(rb2.delivered && rb3.delivered);
        assert_eq!(rb2.hops(), rb3.hops());
    }

    #[test]
    fn ecube_routes_around_blocks() {
        let n = net(Mesh::square(10), &[(4, 4), (4, 5), (5, 4), (5, 5)]);
        let (s, d) = (Coord::new(1, 4), Coord::new(8, 5));
        let res = ECube.route(&n, s, d);
        assert!(res.delivered, "path: {:?}", res.path);
        validate_path(&n, s, d, &res).expect("valid");
        assert!(res.detour_hops > 0, "must have detoured around the block");
    }

    #[test]
    fn routers_survive_dense_random_faults() {
        use meshpath_mesh::FaultInjection;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        let mesh = Mesh::square(16);
        let mut rng = StdRng::seed_from_u64(7);
        for trial in 0..6 {
            let faults = FaultSet::random(mesh, 30, FaultInjection::Uniform, &mut rng);
            if !meshpath_mesh::is_connected(&faults) {
                continue;
            }
            let n = Network::build(faults);
            let field_ok = |c: Coord| n.faults().is_healthy(c) && n.is_safe_all_orientations(c);
            // Draw safe endpoint pairs.
            let mut pairs = Vec::new();
            while pairs.len() < 8 {
                let s = Coord::new(rng.gen_range(0..16), rng.gen_range(0..16));
                let d = Coord::new(rng.gen_range(0..16), rng.gen_range(0..16));
                if s != d && field_ok(s) && field_ok(d) {
                    pairs.push((s, d));
                }
            }
            for (s, d) in pairs {
                for router in
                    [&Rb1::default() as &dyn Router, &Rb2::default(), &Rb3::default(), &ECube]
                {
                    let res = router.route(&n, s, d);
                    assert!(
                        res.delivered,
                        "{} undelivered {s:?}->{d:?} (trial {trial})",
                        router.name()
                    );
                    validate_path(&n, s, d, &res).expect("valid path");
                }
            }
        }
    }
}
