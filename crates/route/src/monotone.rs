//! Monotone (Manhattan) path feasibility.
//!
//! A *monotone* path in the oriented frame uses only `+X`/`+Y` moves, so
//! its length equals the Manhattan distance — the paper's "path with the
//! Manhattan distance". Feasibility between two points is a simple dynamic
//! program over the spanning rectangle; this module provides it over
//! arbitrary blockage predicates (safe-node labelings, known-MCC cell
//! unions, raw fault sets).
//!
//! The MCC model's minimality manifests here as a testable theorem: for
//! safe endpoints, monotone feasibility over *safe* nodes equals monotone
//! feasibility over *healthy* nodes (property-tested in the crate's
//! integration suite).

use meshpath_mesh::Coord;

/// True when a monotone (`+X`/`+Y` only) path from `s` to `d` exists
/// through nodes where `blocked` is false. Requires `d` to be in the
/// `(+X, +Y)` quadrant of `s` (oriented frame); returns `false` otherwise.
///
/// Endpoints must themselves be unblocked.
pub fn monotone_feasible(s: Coord, d: Coord, blocked: impl Fn(Coord) -> bool) -> bool {
    if d.x < s.x || d.y < s.y || blocked(s) || blocked(d) {
        return false;
    }
    let w = (d.x - s.x + 1) as usize;
    let h = (d.y - s.y + 1) as usize;
    // reach[i] for the current row: reachable at x = s.x + i.
    let mut reach = vec![false; w];
    for j in 0..h {
        let y = s.y + j as i32;
        let mut from_left = false;
        for (i, slot) in reach.iter_mut().enumerate() {
            let c = Coord::new(s.x + i as i32, y);
            let from_below = *slot; // value from the previous row
            let start = i == 0 && j == 0;
            *slot = (start || from_left || from_below) && !blocked(c);
            from_left = *slot;
        }
    }
    reach[w - 1]
}

/// Like [`monotone_feasible`], but additionally returns one monotone path
/// (as coordinates `s..=d`) when feasible.
pub fn monotone_path(s: Coord, d: Coord, blocked: impl Fn(Coord) -> bool) -> Option<Vec<Coord>> {
    if d.x < s.x || d.y < s.y || blocked(s) || blocked(d) {
        return None;
    }
    let w = (d.x - s.x + 1) as usize;
    let h = (d.y - s.y + 1) as usize;
    let mut reach = vec![false; w * h];
    for j in 0..h {
        for i in 0..w {
            let c = Coord::new(s.x + i as i32, s.y + j as i32);
            if blocked(c) {
                continue;
            }
            let start = i == 0 && j == 0;
            let from_left = i > 0 && reach[j * w + i - 1];
            let from_below = j > 0 && reach[(j - 1) * w + i];
            reach[j * w + i] = start || from_left || from_below;
        }
    }
    if !reach[w * h - 1] {
        return None;
    }
    // Walk back from d, preferring +Y predecessors (deterministic).
    let mut rev = vec![d];
    let (mut i, mut j) = (w - 1, h - 1);
    while i != 0 || j != 0 {
        if j > 0 && reach[(j - 1) * w + i] {
            j -= 1;
        } else {
            debug_assert!(i > 0 && reach[j * w + i - 1], "broken DP backtrack");
            i -= 1;
        }
        rev.push(Coord::new(s.x + i as i32, s.y + j as i32));
    }
    rev.reverse();
    Some(rev)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blocked_set(cells: &[(i32, i32)]) -> impl Fn(Coord) -> bool + '_ {
        move |c| cells.contains(&(c.x, c.y))
    }

    #[test]
    fn empty_grid_is_feasible() {
        assert!(monotone_feasible(Coord::new(0, 0), Coord::new(5, 3), |_| false));
        assert!(monotone_feasible(Coord::new(2, 2), Coord::new(2, 2), |_| false));
    }

    #[test]
    fn wrong_quadrant_is_infeasible() {
        assert!(!monotone_feasible(Coord::new(3, 3), Coord::new(2, 5), |_| false));
        assert!(!monotone_feasible(Coord::new(3, 3), Coord::new(5, 2), |_| false));
    }

    #[test]
    fn single_blocker_on_a_line() {
        // Degenerate rectangle: any blocker on the segment kills it.
        let b = [(3, 0)];
        assert!(!monotone_feasible(Coord::new(0, 0), Coord::new(5, 0), blocked_set(&b)));
        assert!(monotone_feasible(Coord::new(0, 1), Coord::new(5, 1), blocked_set(&b)));
    }

    #[test]
    fn diagonal_wall_blocks() {
        // Anti-diagonal wall across the rectangle blocks every staircase.
        let b = [(0, 2), (1, 1), (2, 0)];
        assert!(!monotone_feasible(Coord::new(0, 0), Coord::new(2, 2), blocked_set(&b)));
        // Removing one brick opens a path.
        let b2 = [(0, 2), (2, 0)];
        assert!(monotone_feasible(Coord::new(0, 0), Coord::new(2, 2), blocked_set(&b2)));
    }

    #[test]
    fn path_is_monotone_and_avoids_blocks() {
        let b = [(1, 1), (2, 3), (3, 0)];
        let s = Coord::new(0, 0);
        let d = Coord::new(4, 4);
        let p = monotone_path(s, d, blocked_set(&b)).expect("feasible");
        assert_eq!(p.first(), Some(&s));
        assert_eq!(p.last(), Some(&d));
        assert_eq!(p.len() as u32, s.manhattan(d) + 1);
        for w in p.windows(2) {
            let (dx, dy) = w[1] - w[0];
            assert!((dx == 1 && dy == 0) || (dx == 0 && dy == 1), "non-monotone step");
            assert!(!blocked_set(&b)(w[1]));
        }
    }

    #[test]
    fn feasible_and_path_agree() {
        // Exhaustive 4x4 blockage patterns over a small rectangle.
        let s = Coord::new(0, 0);
        let d = Coord::new(3, 3);
        for mask in 0u32..(1 << 14) {
            let blocked = |c: Coord| {
                let idx = (c.y * 4 + c.x) as u32;
                // Never block the endpoints (bits 0 and 15 unused).
                idx != 0 && idx != 15 && (mask >> (idx - 1)) & 1 == 1
            };
            assert_eq!(
                monotone_feasible(s, d, blocked),
                monotone_path(s, d, blocked).is_some(),
                "mask {mask:#x}"
            );
        }
    }
}
