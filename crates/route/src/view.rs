//! Epoch-versioned network snapshots: [`NetView`] (the immutable,
//! cheaply-shareable analysis of one fault configuration) and
//! [`NetState`] (the owner that applies incremental fault updates and
//! publishes a fresh snapshot per mutation).
//!
//! ## Why snapshots
//!
//! The paper's B1/B2/B3 structures are *distributed, locally
//! maintained* fault information: real deployments add and remove
//! faults while routing continues. A bare `&Network` cannot express
//! that — every borrower pins one immutable configuration forever.
//! [`NetView`] wraps the analysis in an [`Arc`] with an `epoch`
//! counter, so:
//!
//! * any number of threads can route against the current snapshot
//!   without locks (cloning a view is one atomic increment);
//! * a mutation never disturbs in-flight queries — they keep their
//!   epoch's snapshot; new queries see the new epoch;
//! * consumers that cache per-configuration data (compiled route
//!   tables, escape forests) key it by `epoch` instead of guessing.
//!
//! ## Incremental updates
//!
//! [`NetState::add_fault`] / [`NetState::remove_fault`] patch the
//! labeling with a delta-seeded fixpoint, re-extract components, and
//! rebuild boundary walks only for components the delta touched
//! (footprint or interaction); the update falls back to a full
//! [`Network::build`] when the touched region merges or splits
//! components. Either way the published snapshot is bit-identical to a
//! from-scratch build of the final fault set — pinned by the
//! `incremental` equivalence proptest in the workspace test suite.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

use meshpath_mesh::{Coord, FaultSet};

use crate::env::{FaultChange, Network};

/// An immutable, epoch-versioned snapshot of one analyzed fault
/// configuration. Cloning is O(1) (`Arc`); all [`Network`] accessors
/// are available through `Deref`.
#[derive(Clone)]
pub struct NetView {
    net: Arc<Network>,
    epoch: u64,
}

impl NetView {
    /// Wraps an analyzed network as the epoch-0 snapshot.
    pub fn new(net: Network) -> Self {
        NetView { net: Arc::new(net), epoch: 0 }
    }

    /// Analyzes `faults` and wraps the result (epoch 0) — the usual
    /// entry point: `NetView::build(faults)` replaces the former
    /// `Network::build(faults)` at call sites that route.
    pub fn build(faults: FaultSet) -> Self {
        NetView::new(Network::build(faults))
    }

    /// The snapshot's epoch: 0 for a fresh build, incremented by every
    /// [`NetState`] mutation that published this view.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The underlying analysis (also reachable via `Deref`).
    #[inline]
    pub fn network(&self) -> &Network {
        &self.net
    }
}

impl Deref for NetView {
    type Target = Network;

    #[inline]
    fn deref(&self) -> &Network {
        &self.net
    }
}

impl fmt::Debug for NetView {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NetView")
            .field("epoch", &self.epoch)
            .field("mesh", self.mesh())
            .field("faults", &self.faults().count())
            .finish()
    }
}

/// Why a [`NetState`] mutation was rejected.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum UpdateError {
    /// The coordinate lies outside the mesh.
    OffMesh(Coord),
    /// `add_fault` on a node that is already faulty.
    AlreadyFaulty(Coord),
    /// `remove_fault` on a node that is not faulty.
    NotFaulty(Coord),
}

impl fmt::Display for UpdateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UpdateError::OffMesh(c) => write!(f, "{c:?} lies outside the mesh"),
            UpdateError::AlreadyFaulty(c) => write!(f, "{c:?} is already faulty"),
            UpdateError::NotFaulty(c) => write!(f, "{c:?} is not faulty"),
        }
    }
}

impl std::error::Error for UpdateError {}

/// The mutable owner of a network: applies fault injections/repairs
/// **incrementally** and publishes a new [`NetView`] snapshot (epoch +1)
/// per mutation. Existing views are never disturbed.
pub struct NetState {
    view: NetView,
    /// Whether the last successful mutation took the incremental path
    /// (`false` = merge/split forced a full rebuild).
    last_incremental: bool,
}

impl NetState {
    /// Analyzes `faults` as epoch 0.
    pub fn new(faults: FaultSet) -> Self {
        NetState { view: NetView::build(faults), last_incremental: false }
    }

    /// Adopts an existing snapshot (keeping its epoch) without
    /// re-analyzing — e.g. to continue mutating a view that a
    /// simulation or service already built.
    pub fn adopt(view: NetView) -> Self {
        NetState { view, last_incremental: false }
    }

    /// The current snapshot (cheap clone; hand it to readers).
    #[inline]
    pub fn view(&self) -> NetView {
        self.view.clone()
    }

    /// The current epoch.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.view.epoch()
    }

    /// Whether the last successful mutation was applied incrementally
    /// (as opposed to the merge/split full-rebuild fallback).
    #[inline]
    pub fn last_update_was_incremental(&self) -> bool {
        self.last_incremental
    }

    /// Marks `c` faulty and publishes the new snapshot. Incremental:
    /// only the labeling delta and the touched components' boundary
    /// structures are recomputed, unless the new fault merges existing
    /// components (then a full rebuild runs). Returns the new view.
    pub fn add_fault(&mut self, c: Coord) -> Result<NetView, UpdateError> {
        if !self.view.mesh().contains(c) {
            return Err(UpdateError::OffMesh(c));
        }
        if self.view.faults().is_faulty(c) {
            return Err(UpdateError::AlreadyFaulty(c));
        }
        let mut faults = self.view.faults().clone();
        faults.inject(c);
        self.publish(faults, FaultChange::Added(c));
        Ok(self.view())
    }

    /// Repairs the fault at `c` and publishes the new snapshot
    /// (incremental, with a full-rebuild fallback when the repair
    /// splits a component). Returns the new view.
    pub fn remove_fault(&mut self, c: Coord) -> Result<NetView, UpdateError> {
        if !self.view.mesh().contains(c) {
            return Err(UpdateError::OffMesh(c));
        }
        if !self.view.faults().is_faulty(c) {
            return Err(UpdateError::NotFaulty(c));
        }
        let mut faults = self.view.faults().clone();
        faults.repair(c);
        self.publish(faults, FaultChange::Removed(c));
        Ok(self.view())
    }

    fn publish(&mut self, faults: FaultSet, change: FaultChange) {
        let (net, incremental) = match self.view.network().incrementally_updated(&faults, change) {
            Some(net) => (net, true),
            None => (Network::build(faults), false),
        };
        self.last_incremental = incremental;
        self.view = NetView { net: Arc::new(net), epoch: self.view.epoch() + 1 };
    }
}

impl fmt::Debug for NetState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NetState").field("view", &self.view).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meshpath_mesh::{Mesh, Orientation};

    /// Structural equality of two networks: labels, component count,
    /// model stats — the cheap projection the unit tests use (the full
    /// equivalence lives in the workspace proptest).
    fn assert_net_eq(a: &Network, b: &Network) {
        for o in Orientation::ALL {
            assert_eq!(a.mccs(o).len(), b.mccs(o).len());
            for oc in a.mesh().iter() {
                assert_eq!(
                    a.mccs(o).labeling().status(oc),
                    b.mccs(o).labeling().status(oc),
                    "status mismatch at {oc:?} orientation {o:?}"
                );
                assert_eq!(a.mccs(o).mcc_at(oc), b.mccs(o).mcc_at(oc), "mcc id at {oc:?}");
            }
            for kind in meshpath_info::ModelKind::ALL {
                assert_eq!(a.model(o, kind).stats(), b.model(o, kind).stats());
            }
        }
        assert_eq!(a.blocks().disabled_count(), b.blocks().disabled_count());
    }

    #[test]
    fn add_and_remove_track_full_rebuild() {
        let mesh = Mesh::square(12);
        let mut state = NetState::new(FaultSet::from_coords(mesh, [Coord::new(3, 3)]));
        assert_eq!(state.epoch(), 0);
        let steps = [Coord::new(8, 8), Coord::new(7, 9), Coord::new(1, 1)];
        let mut faults = FaultSet::from_coords(mesh, [Coord::new(3, 3)]);
        for (i, &c) in steps.iter().enumerate() {
            let v = state.add_fault(c).expect("valid add");
            faults.inject(c);
            assert_eq!(v.epoch(), i as u64 + 1);
            assert_net_eq(v.network(), &Network::build(faults.clone()));
        }
        let v = state.remove_fault(Coord::new(8, 8)).expect("valid remove");
        faults.repair(Coord::new(8, 8));
        assert_net_eq(v.network(), &Network::build(faults.clone()));
        assert_eq!(v.epoch(), 4);
    }

    #[test]
    fn merge_falls_back_to_full_rebuild() {
        // Two separate faults; injecting the bridge cell merges their
        // MCCs (anti-diagonal fill), forcing the fallback path — which
        // must still produce the exact from-scratch analysis.
        let mesh = Mesh::square(10);
        let mut state =
            NetState::new(FaultSet::from_coords(mesh, [Coord::new(4, 5), Coord::new(6, 5)]));
        let v = state.add_fault(Coord::new(5, 5)).expect("valid add");
        assert!(!state.last_update_was_incremental(), "a merge must trigger the fallback");
        let full = Network::build(FaultSet::from_coords(
            mesh,
            [Coord::new(4, 5), Coord::new(5, 5), Coord::new(6, 5)],
        ));
        assert_net_eq(v.network(), &full);
        assert_eq!(v.mccs(Orientation::IDENTITY).len(), 1);
    }

    #[test]
    fn isolated_updates_stay_incremental() {
        let mesh = Mesh::square(16);
        let mut state = NetState::new(FaultSet::from_coords(mesh, [Coord::new(2, 2)]));
        state.add_fault(Coord::new(12, 12)).expect("valid");
        assert!(state.last_update_was_incremental(), "an isolated fault needs no rebuild");
        state.remove_fault(Coord::new(12, 12)).expect("valid");
        assert!(state.last_update_was_incremental(), "an isolated repair needs no rebuild");
    }

    #[test]
    fn update_errors_are_typed() {
        let mesh = Mesh::square(8);
        let mut state = NetState::new(FaultSet::from_coords(mesh, [Coord::new(2, 2)]));
        assert_eq!(
            state.add_fault(Coord::new(99, 0)).err(),
            Some(UpdateError::OffMesh(Coord::new(99, 0)))
        );
        assert_eq!(
            state.add_fault(Coord::new(2, 2)).err(),
            Some(UpdateError::AlreadyFaulty(Coord::new(2, 2)))
        );
        assert_eq!(
            state.remove_fault(Coord::new(3, 3)).err(),
            Some(UpdateError::NotFaulty(Coord::new(3, 3)))
        );
        assert_eq!(state.epoch(), 0, "failed mutations must not publish");
    }

    #[test]
    fn views_are_immutable_snapshots() {
        let mesh = Mesh::square(8);
        let mut state = NetState::new(FaultSet::none(mesh));
        let v0 = state.view();
        state.add_fault(Coord::new(4, 4)).expect("valid");
        let v1 = state.view();
        assert_eq!(v0.epoch(), 0);
        assert_eq!(v1.epoch(), 1);
        assert!(v0.faults().is_healthy(Coord::new(4, 4)), "old snapshots never change");
        assert!(v1.faults().is_faulty(Coord::new(4, 4)));
    }
}
