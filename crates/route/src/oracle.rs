//! Ground-truth shortest paths (BFS) over the healthy sub-mesh.
//!
//! The paper's Fig. 5(d) success rate and Fig. 5(e) relative error are
//! normalized against "the length of the shortest-path" in the existing
//! network configuration — i.e. BFS over all non-faulty nodes, which may
//! include useless/can't-reach nodes (they are healthy hardware).

use meshpath_mesh::{Coord, FaultSet, Grid, Mesh};

/// Distance field from a destination over non-faulty nodes.
///
/// `dist[c]` is the hop count of the shortest healthy path from `c` to
/// the destination, or `u32::MAX` when disconnected.
pub struct DistanceField {
    dist: Grid<u32>,
    dest: Coord,
}

/// Marker distance for unreachable nodes.
pub const UNREACHABLE: u32 = u32::MAX;

impl DistanceField {
    /// BFS from `dest` over all healthy nodes.
    ///
    /// # Panics
    /// Panics if `dest` is faulty or outside the mesh.
    pub fn healthy(faults: &FaultSet, dest: Coord) -> Self {
        assert!(faults.is_healthy(dest), "destination {dest:?} is not a healthy node");
        Self::bfs(*faults.mesh(), dest, |c| faults.is_healthy(c))
    }

    /// BFS from `dest` over an arbitrary passability predicate
    /// (`passable(dest)` must hold).
    pub fn with_predicate(mesh: Mesh, dest: Coord, passable: impl Fn(Coord) -> bool) -> Self {
        assert!(passable(dest), "destination {dest:?} is not passable");
        Self::bfs(mesh, dest, passable)
    }

    fn bfs(mesh: Mesh, dest: Coord, passable: impl Fn(Coord) -> bool) -> Self {
        let mut dist = Grid::new(mesh, UNREACHABLE);
        let mut queue = std::collections::VecDeque::new();
        dist[dest] = 0;
        queue.push_back(dest);
        while let Some(u) = queue.pop_front() {
            let du = dist[u];
            for v in mesh.neighbors(u) {
                if dist[v] == UNREACHABLE && passable(v) {
                    dist[v] = du + 1;
                    queue.push_back(v);
                }
            }
        }
        DistanceField { dist, dest }
    }

    /// The destination this field was computed from.
    pub fn dest(&self) -> Coord {
        self.dest
    }

    /// Distance from `c` to the destination ([`UNREACHABLE`] when
    /// disconnected or `c` is faulty/outside).
    #[inline]
    pub fn dist(&self, c: Coord) -> u32 {
        match self.dist.get(c) {
            Some(&d) => d,
            None => UNREACHABLE,
        }
    }

    /// True when a healthy path from `c` to the destination exists.
    #[inline]
    pub fn reachable(&self, c: Coord) -> bool {
        self.dist(c) != UNREACHABLE
    }

    /// Extracts one shortest path from `s` to the destination by gradient
    /// descent on the field (deterministic tie-break: `+X, -X, +Y, -Y`).
    pub fn shortest_path(&self, s: Coord) -> Option<Vec<Coord>> {
        if !self.reachable(s) {
            return None;
        }
        let mesh = *self.dist.mesh();
        let mut path = vec![s];
        let mut u = s;
        while u != self.dest {
            let du = self.dist(u);
            let next = mesh
                .neighbors(u)
                .find(|&v| self.dist(v) == du - 1)
                .expect("gradient step must exist on a reachable field");
            path.push(next);
            u = next;
        }
        Some(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_distance_is_manhattan() {
        let mesh = Mesh::square(9);
        let f = FaultSet::none(mesh);
        let d = Coord::new(7, 6);
        let field = DistanceField::healthy(&f, d);
        for c in mesh.iter() {
            assert_eq!(field.dist(c), c.manhattan(d), "at {c:?}");
        }
    }

    #[test]
    fn wall_forces_detour() {
        let mesh = Mesh::square(7);
        // Wall on column 3 with a gap at the top row.
        let f = FaultSet::from_coords(mesh, (0..6).map(|y| Coord::new(3, y)));
        let field = DistanceField::healthy(&f, Coord::new(6, 0));
        let s = Coord::new(0, 0);
        // Manhattan distance is 6; the only path climbs to row 6 and back.
        assert_eq!(field.dist(s), 6 + 2 * 6);
        let path = field.shortest_path(s).expect("reachable");
        assert_eq!(path.len() as u32, field.dist(s) + 1);
        assert_eq!(path[0], s);
        assert_eq!(*path.last().expect("nonempty"), Coord::new(6, 0));
        for w in path.windows(2) {
            assert!(w[0].is_neighbor(w[1]));
            assert!(f.is_healthy(w[1]));
        }
    }

    #[test]
    fn disconnected_region_is_unreachable() {
        let mesh = Mesh::square(5);
        let f = FaultSet::from_coords(mesh, (0..5).map(|y| Coord::new(2, y)));
        let field = DistanceField::healthy(&f, Coord::new(4, 2));
        assert!(!field.reachable(Coord::new(0, 0)));
        assert_eq!(field.shortest_path(Coord::new(0, 0)), None);
        assert!(field.reachable(Coord::new(3, 4)));
    }

    #[test]
    fn faulty_cells_are_unreachable() {
        let mesh = Mesh::square(5);
        let f = FaultSet::from_coords(mesh, [Coord::new(2, 2)]);
        let field = DistanceField::healthy(&f, Coord::new(0, 0));
        assert!(!field.reachable(Coord::new(2, 2)));
    }
}
