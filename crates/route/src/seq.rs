//! Blocking sequences and the recursive shortest-path distance.
//!
//! When no Manhattan path exists, Algorithm 5 identifies the *closest
//! blocking sequence* `F1, ..., Fn` (Eq. 1): a staircase chain of MCCs
//! that together bar every monotone path from the current node to the
//! destination. The routing then detours around the sequence through one
//! of `n+1` pivots (Eq. 3) —
//!
//! * `P0`: through `c1`, the initialization corner of the first MCC,
//! * `Pi`: between two consecutive MCCs, via `c'_i` then `c_{i+1}`,
//! * `Pn`: through `c'_n`, the opposite corner of the last MCC —
//!
//! picking the option minimizing the recursively-defined distance `D`
//! (Eq. 2). This module implements the chain search (both the type-I/+Y
//! and type-II/+X variants), the memoized recursion, and a BFS-over-known-
//! obstacles fallback used when the paper's enumeration comes up empty
//! (counted and reported by the experiment harness; expected rare).

use meshpath_fault::{Mcc, MccId, MccSet};
use meshpath_info::ModelKind;
use meshpath_mesh::{Coord, FxHashMap, FxHashSet, Orientation};

use crate::env::Network;

/// Whether routing decisions may use triples not stored at the deciding
/// node (idealized reference runs) or only local knowledge.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum KnowledgeScope {
    /// Only triples the information model stored at the deciding node.
    #[default]
    Local,
    /// All triples (idealized global knowledge; reference/testing).
    Global,
}

/// Axis of a blocking sequence.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SeqAxis {
    /// Type-I: blocks `+Y` progress.
    TypeI,
    /// Type-II: blocks `+X` progress.
    TypeII,
}

/// The plan produced at a decision point.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Plan {
    /// No blocking sequence: Manhattan-route straight to the target.
    Direct,
    /// Detour through these intermediate destinations (real coordinates),
    /// re-planning at the last one.
    Waypoints(Vec<Coord>),
    /// Follow this explicit path (BFS-over-known-obstacles fallback).
    Forced(Vec<Coord>),
}

/// Outcome statistics of one planning call.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlanStats {
    /// The Eq.-3 enumeration failed and the BFS fallback was used.
    pub used_fallback: bool,
    /// Estimated remaining length (`D(u, d)`), when computable.
    pub estimate: Option<u64>,
}

/// Distance value for infeasible options.
const INF: u64 = u64::MAX / 4;

/// The sequence/distance planner bound to one network and model.
pub struct Planner<'a> {
    net: &'a Network,
    kind: ModelKind,
    scope: KnowledgeScope,
    strict: bool,
}

impl<'a> Planner<'a> {
    /// Creates a planner over `net` using the `kind` information model.
    pub fn new(net: &'a Network, kind: ModelKind, scope: KnowledgeScope) -> Self {
        Planner { net, kind, scope, strict: false }
    }

    /// A planner restricted to the paper's literal Eq.-3 pivot options
    /// (no hybrid fallback refinement) — the ablation configuration.
    pub fn new_strict(net: &'a Network, kind: ModelKind, scope: KnowledgeScope) -> Self {
        Planner { net, kind, scope, strict: true }
    }

    /// True when `anchor` (real coordinates) holds `f`'s triple in the
    /// orientation-`o` model.
    fn knows(&self, anchor: Coord, o: Orientation, f: MccId) -> bool {
        match self.scope {
            KnowledgeScope::Global => true,
            KnowledgeScope::Local => {
                let oa = o.apply(self.net.mesh(), anchor);
                self.net.model(o, self.kind).knows(oa, f)
            }
        }
    }

    /// True when a Manhattan path from `u` to `d` exists as far as the
    /// knowledge stored at `anchor` can tell (monotone DP over the cells
    /// of known MCCs). This is the exact feasibility test: the Eq.-1
    /// chain conditions alone over-approximate blockage in marginal
    /// geometries (two chained MCCs with `xc_{i+1} = xc'_i` leave a
    /// one-column gap a monotone path can thread; see DESIGN.md §3).
    pub fn manhattan_feasible(&self, anchor: Coord, u: Coord, d: Coord) -> bool {
        let o = Orientation::normalizing(u, d);
        let mesh = self.net.mesh();
        let (ou, od) = (o.apply(mesh, u), o.apply(mesh, d));
        let set = self.net.mccs(o);
        let blocked = |oc: Coord| match set.mcc_at(oc) {
            Some(id) => self.knows(anchor, o, id),
            None => false,
        };
        crate::monotone::monotone_feasible(ou, od, blocked)
    }

    /// Finds the closest blocking sequence from `u` toward `d` (real
    /// coordinates), using the knowledge stored at `anchor`.
    ///
    /// Returns `None` when a Manhattan path exists (no blocking). When
    /// blocked, returns the Eq.-1 chain when one can be enumerated; a
    /// blocked pair with no enumerable chain returns an empty chain
    /// (callers fall back to BFS planning).
    pub fn closest_sequence(
        &self,
        anchor: Coord,
        u: Coord,
        d: Coord,
    ) -> Option<(SeqAxis, Vec<MccId>, Orientation)> {
        if self.manhattan_feasible(anchor, u, d) {
            return None;
        }
        let o = Orientation::normalizing(u, d);
        let mesh = self.net.mesh();
        let (ou, od) = (o.apply(mesh, u), o.apply(mesh, d));
        let set = self.net.mccs(o);

        let type_i = self.chain(anchor, o, set, ou, od, SeqAxis::TypeI);
        let type_ii = self.chain(anchor, o, set, ou, od, SeqAxis::TypeII);
        match (type_i, type_ii) {
            (Some(a), None) => Some((SeqAxis::TypeI, a, o)),
            (None, Some(b)) => Some((SeqAxis::TypeII, b, o)),
            // The paper proves safe endpoints cannot see both kinds; if
            // local knowledge disagrees, prefer the shorter chain.
            (Some(a), Some(b)) => {
                if a.len() <= b.len() {
                    Some((SeqAxis::TypeI, a, o))
                } else {
                    Some((SeqAxis::TypeII, b, o))
                }
            }
            // Blocked, but the greedy chain enumeration found nothing:
            // signal with an empty chain.
            (None, None) => Some((SeqAxis::TypeI, Vec::new(), o)),
        }
    }

    /// Greedy Eq.-1 chain construction for one axis.
    fn chain(
        &self,
        anchor: Coord,
        o: Orientation,
        set: &MccSet,
        ou: Coord,
        od: Coord,
        axis: SeqAxis,
    ) -> Option<Vec<MccId>> {
        let model = self.net.model(o, self.kind);
        let known = |f: &Mcc| self.knows(anchor, o, f.id());

        // F1: the closest MCC whose shadow contains u.
        let start = set
            .iter()
            .filter(|f| known(f))
            .filter(|f| match axis {
                SeqAxis::TypeI => f.shadow_y(ou),
                SeqAxis::TypeII => f.shadow_x(ou),
            })
            .min_by_key(|f| match axis {
                SeqAxis::TypeI => f.col(ou.x).map(|s| s.lo).unwrap_or(i32::MAX),
                SeqAxis::TypeII => f.row_range(ou.y).map(|(w, _)| w).unwrap_or(i32::MAX),
            })?;

        let terminal = |f: &Mcc| match axis {
            SeqAxis::TypeI => f.critical_y(od),
            SeqAxis::TypeII => f.critical_x(od),
        };
        // Eq.-1 pairwise chain condition (corner coordinates).
        let chainable = |f: &Mcc, g: &Mcc| match axis {
            SeqAxis::TypeI => {
                f.corner().x <= g.corner().x
                    && g.corner().x <= f.opposite().x
                    && f.opposite().y < g.opposite().y
            }
            SeqAxis::TypeII => {
                f.corner().y <= g.corner().y
                    && g.corner().y <= f.opposite().y
                    && f.opposite().x < g.opposite().x
            }
        };
        let closeness = |g: &Mcc| match axis {
            SeqAxis::TypeI => g.opposite().y,
            SeqAxis::TypeII => g.opposite().x,
        };

        let mut chain = vec![start.id()];
        let mut cur = start;
        let mut guard = set.len() + 1;
        while !terminal(cur) {
            guard = guard.checked_sub(1)?;
            // Eq. 4 (B3): the recorded relation resolves the successor;
            // otherwise scan the known set.
            let by_relation = model
                .succ_y(cur.id())
                .filter(|_| axis == SeqAxis::TypeI)
                .or_else(|| model.succ_x(cur.id()).filter(|_| axis == SeqAxis::TypeII))
                .map(|id| set.get(id))
                .filter(|g| chainable(cur, g));
            let next = by_relation.or_else(|| {
                set.iter()
                    .filter(|g| known(g) && !chain.contains(&g.id()))
                    .filter(|g| chainable(cur, g))
                    .min_by_key(|g| closeness(g))
            })?;
            chain.push(next.id());
            cur = next;
        }
        Some(chain)
    }

    /// The recursive shortest-path distance `D(u, d)` of Eq. 2, using the
    /// knowledge stored at `anchor`. Returns `None` when every option is
    /// infeasible within the known information.
    pub fn distance(&self, anchor: Coord, u: Coord, d: Coord) -> Option<u64> {
        let mut memo = FxHashMap::default();
        let mut in_progress = FxHashSet::default();
        let v = self.dist_rec(anchor, u, d, &mut memo, &mut in_progress, 0);
        (v < INF).then_some(v)
    }

    fn dist_rec(
        &self,
        anchor: Coord,
        u: Coord,
        d: Coord,
        memo: &mut FxHashMap<Coord, u64>,
        in_progress: &mut FxHashSet<Coord>,
        depth: usize,
    ) -> u64 {
        if u == d {
            return 0;
        }
        if let Some(&v) = memo.get(&u) {
            return v;
        }
        if depth > 4 * self.net.mccs(Orientation::IDENTITY).len() + 16 {
            return INF;
        }
        if !in_progress.insert(u) {
            return INF; // cycle in the pivot graph
        }
        let value = match self.closest_sequence(anchor, u, d) {
            None => u64::from(u.manhattan(d)),
            Some((_, chain, _)) if chain.is_empty() => {
                // Blocked with no enumerable chain: price the leg with a
                // BFS over the known obstacles (model-consistent).
                self.known_bfs_distance(anchor, u, d).unwrap_or(INF)
            }
            Some((_, chain, o)) => {
                let set = self.net.mccs(o);
                let mesh = self.net.mesh();
                let usable = |oc: Coord| set.labeling().is_safe_node(oc);
                let real = |oc: Coord| o.apply(mesh, oc);
                // A leg is priced at Manhattan distance only when it is
                // actually Manhattan-feasible within the knowledge; the
                // paper assumes this (Eq. 1 property 5), the greedy chain
                // does not guarantee it.
                let leg = |a: Coord, b: Coord| {
                    if self.manhattan_feasible(anchor, a, b) {
                        u64::from(a.manhattan(b))
                    } else {
                        INF
                    }
                };
                let mut best = INF;
                let n = chain.len();
                // P0: through c1.
                let c1 = set.get(chain[0]).corner();
                if usable(c1) {
                    let c1r = real(c1);
                    let tail = self.dist_rec(anchor, c1r, d, memo, in_progress, depth + 1);
                    best = best.min(leg(u, c1r).saturating_add(tail));
                }
                // Pi: between consecutive MCCs.
                for i in 0..n.saturating_sub(1) {
                    let ci_op = set.get(chain[i]).opposite();
                    let cn = set.get(chain[i + 1]).corner();
                    if usable(ci_op) && usable(cn) {
                        let (a, b) = (real(ci_op), real(cn));
                        let tail = self.dist_rec(anchor, b, d, memo, in_progress, depth + 1);
                        let cost = leg(u, a).saturating_add(leg(a, b)).saturating_add(tail);
                        best = best.min(cost);
                    }
                }
                // Pn: through c'_n.
                let cn_op = set.get(chain[n - 1]).opposite();
                if usable(cn_op) {
                    let cr = real(cn_op);
                    let tail = self.dist_rec(anchor, cr, d, memo, in_progress, depth + 1);
                    best = best.min(leg(u, cr).saturating_add(tail));
                }
                best
            }
        };
        in_progress.remove(&u);
        memo.insert(u, value);
        value
    }

    /// Passability used by the BFS fallback: a node is an obstacle when it
    /// is a *faulty* cell of an MCC known at `anchor` (or in `learned`).
    ///
    /// Healthy-but-unsafe cells stay passable: the triples describe region
    /// shapes, and the true shortest path may legitimately thread useless
    /// or can't-reach nodes when the blocking geometry degenerates (e.g.
    /// an MCC whose initialization corner is itself faulty) — a case
    /// Theorem 1's safe-nodes-suffice argument overlooks near corners and
    /// borders; see DESIGN.md §3. Unknown faults remain passable too: the
    /// route re-plans when local fault detection meets them.
    fn fallback_passable(
        &self,
        anchor: Coord,
        o: Orientation,
        learned: &FxHashSet<Coord>,
    ) -> impl Fn(Coord) -> bool + '_ {
        let mesh = *self.net.mesh();
        let set = self.net.mccs(o);
        let kind = self.kind;
        let scope = self.scope;
        let learned = learned.clone();
        move |c: Coord| {
            if learned.contains(&c) {
                return false;
            }
            if !self.net.faults().is_faulty(c) {
                return true;
            }
            let oc = o.apply(&mesh, c);
            match set.mcc_at(oc) {
                Some(id) => match scope {
                    KnowledgeScope::Global => false,
                    KnowledgeScope::Local => {
                        !self.net.model(o, kind).knows(o.apply(&mesh, anchor), id)
                    }
                },
                None => true,
            }
        }
    }

    /// Model-consistent BFS distance over the fallback obstacle set.
    fn known_bfs_distance(&self, anchor: Coord, u: Coord, d: Coord) -> Option<u64> {
        let mesh = *self.net.mesh();
        let o = Orientation::normalizing(u, d);
        let passable = self.fallback_passable(anchor, o, &FxHashSet::default());
        if !passable(d) || !passable(u) {
            return None;
        }
        let field = crate::oracle::DistanceField::with_predicate(mesh, d, passable);
        let dist = field.dist(u);
        (dist != crate::oracle::UNREACHABLE).then_some(u64::from(dist))
    }

    /// Produces the routing plan at `u` toward `d` (Algorithm 5 steps
    /// 2-5). `learned` holds nodes the route has locally observed to be
    /// unsafe (excluded from the fallback BFS).
    pub fn plan(&self, u: Coord, d: Coord, learned: &FxHashSet<Coord>) -> (Plan, PlanStats) {
        match self.closest_sequence(u, u, d) {
            None => (Plan::Direct, PlanStats { used_fallback: false, estimate: None }),
            Some((_, chain, o)) if chain.is_empty() => self.fallback(u, d, o, learned),
            Some((_, chain, o)) => {
                let set = self.net.mccs(o);
                let mesh = self.net.mesh();
                let usable = |oc: Coord| set.labeling().is_safe_node(oc);
                let real = |oc: Coord| o.apply(mesh, oc);
                let n = chain.len();

                let mut best: Option<(u64, Vec<Coord>)> = None;
                let mut consider = |cost: u64, wp: Vec<Coord>| {
                    if cost < INF && best.as_ref().is_none_or(|(c, _)| cost < *c) {
                        best = Some((cost, wp));
                    }
                };

                let leg = |a: Coord, b: Coord| {
                    if self.manhattan_feasible(u, a, b) {
                        u64::from(a.manhattan(b))
                    } else {
                        INF
                    }
                };
                let mut memo = FxHashMap::default();
                let mut ip = FxHashSet::default();
                let c1 = set.get(chain[0]).corner();
                if usable(c1) {
                    let c1r = real(c1);
                    let tail = self.dist_rec(u, c1r, d, &mut memo, &mut ip, 1);
                    consider(leg(u, c1r).saturating_add(tail), vec![c1r]);
                }
                for i in 0..n.saturating_sub(1) {
                    let a = set.get(chain[i]).opposite();
                    let b = set.get(chain[i + 1]).corner();
                    if usable(a) && usable(b) {
                        let (ar, br) = (real(a), real(b));
                        let tail = self.dist_rec(u, br, d, &mut memo, &mut ip, 1);
                        let cost = leg(u, ar).saturating_add(leg(ar, br)).saturating_add(tail);
                        consider(cost, vec![ar, br]);
                    }
                }
                let cn = set.get(chain[n - 1]).opposite();
                if usable(cn) {
                    let cr = real(cn);
                    let tail = self.dist_rec(u, cr, d, &mut memo, &mut ip, 1);
                    consider(leg(u, cr).saturating_add(tail), vec![cr]);
                }

                match best {
                    Some((cost, wp)) => {
                        // Hybrid refinement: the Eq.-3 pivots only visit
                        // safe nodes of the current frame, but degenerate
                        // geometries (faulty corners, border-pressed
                        // clusters) can make the true shortest path thread
                        // healthy-but-unsafe cells. When the fallback BFS
                        // over known faults beats every pivot option, take
                        // it (disabled under `strict` for the ablation
                        // study; see DESIGN.md §3).
                        if !self.strict {
                            if let (Plan::Forced(p), stats) = self.fallback(u, d, o, learned) {
                                if stats.estimate.is_some_and(|e| e < cost) {
                                    return (Plan::Forced(p), stats);
                                }
                            }
                        }
                        (
                            Plan::Waypoints(wp),
                            PlanStats { used_fallback: false, estimate: Some(cost) },
                        )
                    }
                    None => self.fallback(u, d, o, learned),
                }
            }
        }
    }

    /// BFS over known obstacles: the model-consistent last resort.
    pub fn fallback(
        &self,
        u: Coord,
        d: Coord,
        o: Orientation,
        learned: &FxHashSet<Coord>,
    ) -> (Plan, PlanStats) {
        let mesh = *self.net.mesh();
        let passable = self.fallback_passable(u, o, learned);
        if !passable(d) || !passable(u) {
            return (Plan::Direct, PlanStats { used_fallback: true, estimate: None });
        }
        let field = crate::oracle::DistanceField::with_predicate(mesh, d, passable);
        match field.shortest_path(u) {
            Some(path) => {
                let est = Some((path.len() - 1) as u64);
                (Plan::Forced(path), PlanStats { used_fallback: true, estimate: est })
            }
            None => (Plan::Direct, PlanStats { used_fallback: true, estimate: None }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meshpath_mesh::{FaultSet, Mesh};

    fn net(mesh: Mesh, faults: &[(i32, i32)]) -> Network {
        Network::build(FaultSet::from_coords(mesh, faults.iter().map(|&(x, y)| Coord::new(x, y))))
    }

    #[test]
    fn no_faults_means_direct_plans() {
        let n = net(Mesh::square(10), &[]);
        let p = Planner::new(&n, ModelKind::B2, KnowledgeScope::Global);
        let (plan, stats) = p.plan(Coord::new(0, 0), Coord::new(7, 7), &FxHashSet::default());
        assert_eq!(plan, Plan::Direct);
        assert!(!stats.used_fallback);
        assert_eq!(p.distance(Coord::new(0, 0), Coord::new(0, 0), Coord::new(7, 7)), Some(14));
    }

    #[test]
    fn single_blocker_on_column_yields_sequence() {
        // Fault at (5,5), s below at (5,1), d above at (5,8): blocked in
        // +Y by a one-element sequence; the detour options are the two
        // corners (4,4) and (6,6), both costing +2 over Manhattan.
        let n = net(Mesh::square(10), &[(5, 5)]);
        let p = Planner::new(&n, ModelKind::B2, KnowledgeScope::Global);
        let (s, d) = (Coord::new(5, 1), Coord::new(5, 8));
        let seq = p.closest_sequence(s, s, d).expect("blocked");
        assert_eq!(seq.0, SeqAxis::TypeI);
        assert_eq!(seq.1.len(), 1);
        assert_eq!(p.distance(s, s, d), Some(u64::from(s.manhattan(d)) + 2));
        let (plan, stats) = p.plan(s, d, &FxHashSet::default());
        assert!(matches!(plan, Plan::Waypoints(ref w) if w.len() == 1));
        assert_eq!(stats.estimate, Some(9));
    }

    #[test]
    fn row_blocker_is_a_type_ii_sequence() {
        let n = net(Mesh::square(10), &[(5, 5)]);
        let p = Planner::new(&n, ModelKind::B2, KnowledgeScope::Global);
        let (s, d) = (Coord::new(1, 5), Coord::new(8, 5));
        let seq = p.closest_sequence(s, s, d).expect("blocked");
        assert_eq!(seq.0, SeqAxis::TypeII);
        assert_eq!(p.distance(s, s, d), Some(u64::from(s.manhattan(d)) + 2));
    }

    #[test]
    fn two_mcc_chain_offers_the_gap() {
        // Two staircase-chained blockers spanning the corridor: F1 covers
        // columns 0..=5 on row 4 (via cells), F2 covers columns 4..=9 on
        // row 7. A route from (2,0) to (7,9) must either slip between
        // them (via F1's opposite corner then F2's corner) or go around.
        let f1: Vec<(i32, i32)> = (0..=5).map(|x| (x, 4)).collect();
        let f2: Vec<(i32, i32)> = (4..=9).map(|x| (x, 7)).collect();
        let all: Vec<(i32, i32)> = f1.iter().chain(f2.iter()).copied().collect();
        let n = net(Mesh::square(10), &all);
        let p = Planner::new(&n, ModelKind::B2, KnowledgeScope::Global);
        let (s, d) = (Coord::new(2, 0), Coord::new(7, 9));
        let seq = p.closest_sequence(s, s, d).expect("blocked");
        assert_eq!(seq.0, SeqAxis::TypeI);
        assert_eq!(seq.1.len(), 2, "chain must contain both MCCs");
        // The optimum: BFS ground truth.
        let field = crate::oracle::DistanceField::healthy(n.faults(), d);
        assert_eq!(p.distance(s, s, d), Some(u64::from(field.dist(s))));
    }

    #[test]
    fn fallback_fires_when_corners_are_unusable() {
        // A blocker pressed against the west mesh edge: its corner is out
        // of mesh, and a destination due north forces P0 to be skipped.
        let cells: Vec<(i32, i32)> = (0..=6).map(|x| (x, 5)).collect();
        let n = net(Mesh::square(10), &cells);
        let p = Planner::new(&n, ModelKind::B2, KnowledgeScope::Global);
        let (s, d) = (Coord::new(0, 1), Coord::new(0, 9));
        let (plan, _) = p.plan(s, d, &FxHashSet::default());
        // P0 unusable (corner at (-1,4)); Pn via the opposite corner
        // (7,6) remains and must be chosen -- no fallback needed.
        match plan {
            Plan::Waypoints(w) => assert_eq!(w, vec![Coord::new(7, 6)]),
            other => panic!("expected waypoint plan, got {other:?}"),
        }
        // Fully walled-in destination triggers the BFS fallback: block
        // both ends with the mesh edge.
        let wall: Vec<(i32, i32)> = (0..10).map(|x| (x, 5)).collect();
        let n2 = net(Mesh::square(10), &wall);
        let p2 = Planner::new(&n2, ModelKind::B2, KnowledgeScope::Global);
        let (plan2, stats2) = p2.plan(s, d, &FxHashSet::default());
        // The mesh is split: no plan can exist; fallback reports Direct
        // with no estimate.
        assert!(stats2.used_fallback);
        assert_eq!(plan2, Plan::Direct);
    }

    #[test]
    fn local_scope_restricts_knowledge() {
        // Under B1 + Local, a node far from any boundary knows nothing
        // and plans Direct even though it is blocked.
        let n = net(Mesh::square(12), &[(5, 5)]);
        let p = Planner::new(&n, ModelKind::B1, KnowledgeScope::Local);
        let s = Coord::new(5, 1); // in the shadow; B1 stores nothing there
        let d = Coord::new(5, 9);
        assert!(p.closest_sequence(s, s, d).is_none());
        // The same node under Global sees the sequence.
        let pg = Planner::new(&n, ModelKind::B1, KnowledgeScope::Global);
        assert!(pg.closest_sequence(s, s, d).is_some());
        // And under B2 + Local the shadow interior holds the triple.
        let pb2 = Planner::new(&n, ModelKind::B2, KnowledgeScope::Local);
        assert!(pb2.closest_sequence(s, s, d).is_some());
    }
}
