//! The unified per-hop routing interface: one [`Router`] trait —
//! `fn decide(&self, view, ctx) -> Decision` — implemented by
//! RB1/RB2/RB3, fault-tolerant E-cube and the XY baseline, and consumed
//! by *both* the offline engine (which derives a [`RouteResult`] by
//! iterating hops — see [`drive`]) and the wormhole traffic fabric
//! (whose route tables compile paths by driving the same decisions).
//!
//! ## Why per-hop
//!
//! The paper's algorithms are distributed: every node makes a local
//! forwarding decision from its own labeling status and stored triples.
//! The workspace used to encode that as whole-path `route()` calls
//! (route crate) *plus* an incompatible per-hop replay trait (traffic
//! crate). This module is the single seam: a [`Decision`] is one local
//! step; per-packet algorithm scratch (detour walls, visited counts,
//! waypoint stacks — state the paper carries in the message header)
//! travels in the [`HopState`] inside [`HopCtx`], so `decide` itself is
//! `&self` and one router instance can serve any number of concurrent
//! queries over a shared [`NetView`] snapshot.

use meshpath_mesh::{Coord, Dir, FaultSet, FxHashSet};
use serde::{Deserialize, Serialize};

use crate::engine::{hop_budget, Detour, RouteResult, Visited};
use crate::view::NetView;

/// One per-hop routing decision.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Decision {
    /// The message is at its destination: eject.
    Deliver,
    /// Forward one hop in this direction.
    Hop(Dir),
    /// An internal zero-hop transition (plan refresh, learned obstacle):
    /// decide again from the same node. Consumes hop budget, so cyclic
    /// replanning cannot livelock the engine.
    Replan,
    /// No legal move exists within the router's knowledge: the message
    /// is undeliverable from here.
    Blocked,
}

/// Everything a [`Router`] sees for one decision: the message's
/// endpoints, its position and progress, and its mutable per-message
/// scratch state.
#[derive(Debug)]
pub struct HopCtx<'a> {
    /// Source node (real coordinates).
    pub src: Coord,
    /// Destination node.
    pub dst: Coord,
    /// The node currently holding the message.
    pub here: Coord,
    /// Hops taken so far.
    pub hops: u32,
    /// Per-message routing scratch (travels with the message).
    pub state: &'a mut HopState,
}

/// Per-message routing scratch: the state the paper's algorithms carry
/// in the message header — detour walls, visit counts, the multi-phase
/// waypoint stack, locally learned obstacles. Opaque to callers; create
/// one per message with [`HopState::new`] and hand it to every
/// [`Router::decide`] call for that message.
#[derive(Debug)]
pub struct HopState {
    pub(crate) prev: Option<Coord>,
    pub(crate) visited: Visited,
    pub(crate) detour: Option<Detour>,
    pub(crate) detour_run: u32,
    pub(crate) detour_hops: u32,
    pub(crate) replans: u32,
    pub(crate) fallbacks: u32,
    pub(crate) learned: FxHashSet<Coord>,
    pub(crate) waypoints: Vec<Coord>,
    pub(crate) forced: Option<(Vec<Coord>, usize)>,
    pub(crate) planned: bool,
    pub(crate) healthy_mode: bool,
}

impl HopState {
    /// Fresh scratch for a message injected at `src`.
    pub fn new(src: Coord) -> Self {
        HopState {
            prev: None,
            visited: Visited::new(src),
            detour: None,
            detour_run: 0,
            detour_hops: 0,
            replans: 0,
            fallbacks: 0,
            learned: FxHashSet::default(),
            waypoints: Vec::new(),
            forced: None,
            planned: false,
            healthy_mode: false,
        }
    }

    /// Resets to fresh scratch for a new message injected at `src`,
    /// keeping the heap allocations (visited map, learned set, waypoint
    /// stack) of the previous message. This is the batch entry point:
    /// [`Router::route_with`] resets one `HopState` per query so a
    /// `route_many`-style caller pays the scratch allocations once per
    /// batch instead of once per message.
    pub fn reset(&mut self, src: Coord) {
        self.prev = None;
        self.visited.reset(src);
        self.detour = None;
        self.detour_run = 0;
        self.detour_hops = 0;
        self.replans = 0;
        self.fallbacks = 0;
        self.learned.clear();
        self.waypoints.clear();
        self.forced = None;
        self.planned = false;
        self.healthy_mode = false;
    }

    /// Hops spent in wall-following detours so far.
    pub fn detour_hops(&self) -> u32 {
        self.detour_hops
    }

    /// Re-planning events so far.
    pub fn replans(&self) -> u32 {
        self.replans
    }

    /// BFS-fallback plans so far.
    pub fn fallbacks(&self) -> u32 {
        self.fallbacks
    }

    /// Drops an exhausted wall-following detour (owner bookkeeping
    /// shared by every detouring router).
    pub(crate) fn clear_exhausted_detour(&mut self) -> bool {
        if self.detour.as_ref().is_some_and(|d| d.exhausted) {
            self.detour = None;
            self.detour_run = 0;
            true
        } else {
            false
        }
    }
}

/// A routing algorithm making per-hop local decisions against an
/// epoch-versioned network snapshot.
///
/// `decide` is `&self`: router instances are stateless per call (all
/// per-message state lives in [`HopCtx::state`]), so one instance can
/// serve concurrent queries from many threads over shared [`NetView`]s.
pub trait Router {
    /// Display name used in tables (matches the paper's labels).
    fn name(&self) -> &'static str;

    /// The decision for the message described by `ctx`, parked at
    /// `ctx.here`, against the `view` snapshot.
    fn decide(&self, view: &NetView, ctx: HopCtx<'_>) -> Decision;

    /// Routes one message from `s` to `d` by iterating [`decide`]
    /// (see [`drive`]): the offline engine.
    ///
    /// [`decide`]: Router::decide
    fn route(&self, view: &NetView, s: Coord, d: Coord) -> RouteResult {
        self.route_with(view, s, d, &mut HopState::new(s))
    }

    /// [`route`](Router::route) reusing caller-provided scratch: the
    /// state is [`reset`](HopState::reset) for `s` and driven to `d`,
    /// so batched callers amortize the per-message heap allocations
    /// across a whole batch.
    fn route_with(&self, view: &NetView, s: Coord, d: Coord, state: &mut HopState) -> RouteResult {
        state.reset(s);
        drive(view, s, d, state, |view, ctx| self.decide(view, ctx))
    }
}

/// The offline engine: iterates a decision function from `s` until it
/// delivers, blocks, or exhausts the hop budget, assembling the visited
/// path and the per-message statistics into a [`RouteResult`].
pub fn drive(
    view: &NetView,
    s: Coord,
    d: Coord,
    state: &mut HopState,
    mut decide: impl FnMut(&NetView, HopCtx<'_>) -> Decision,
) -> RouteResult {
    let mut path = vec![s];
    let mut u = s;
    let mut delivered = false;
    for _ in 0..hop_budget(view) {
        let ctx =
            HopCtx { src: s, dst: d, here: u, hops: (path.len() - 1) as u32, state: &mut *state };
        match decide(view, ctx) {
            Decision::Deliver => {
                delivered = true;
                break;
            }
            Decision::Hop(dir) => {
                let v = u.step(dir);
                debug_assert!(view.mesh().contains(v), "hop {dir:?} from {u:?} leaves the mesh");
                state.prev = Some(u);
                u = v;
                state.visited.insert(u);
                path.push(u);
            }
            Decision::Replan => {}
            Decision::Blocked => break,
        }
    }
    RouteResult {
        path,
        delivered: delivered || u == d,
        replans: state.replans,
        fallbacks: state.fallbacks,
        detour_hops: state.detour_hops,
    }
}

/// The routing functions the workspace evaluates (offline engine,
/// traffic simulator, route service).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum RoutingKind {
    /// Dimension-order XY: minimal and deadlock-free, but fault-oblivious
    /// (packets whose row/column path hits a fault are unroutable). The
    /// sanity baseline.
    Xy,
    /// Fault-tolerant E-cube over rectangular fault blocks
    /// (Boppana & Chalasani).
    ECube,
    /// Algorithm 3 over the B1 information model.
    Rb1,
    /// Algorithm 5 over the B2 model (the paper's shortest-path routing).
    Rb2,
    /// Algorithm 7 over the B3 model.
    Rb3,
}

impl RoutingKind {
    /// All routing functions, in reporting order.
    pub const ALL: [RoutingKind; 5] =
        [RoutingKind::Xy, RoutingKind::ECube, RoutingKind::Rb1, RoutingKind::Rb2, RoutingKind::Rb3];

    /// Display name used in tables.
    pub fn name(self) -> &'static str {
        match self {
            RoutingKind::Xy => "XY",
            RoutingKind::ECube => "E-cube",
            RoutingKind::Rb1 => "RB1",
            RoutingKind::Rb2 => "RB2",
            RoutingKind::Rb3 => "RB3",
        }
    }

    /// Instantiates the underlying router (default policies). The box
    /// is `Send + Sync`: every router is a stateless value type, so the
    /// same instance serves concurrent queries.
    pub fn router(self) -> Box<dyn Router + Send + Sync> {
        match self {
            RoutingKind::Xy => Box::new(XyRouter),
            RoutingKind::ECube => Box::new(crate::routers::ECube),
            RoutingKind::Rb1 => Box::new(crate::routers::Rb1::default()),
            RoutingKind::Rb2 => Box::new(crate::routers::Rb2::default()),
            RoutingKind::Rb3 => Box::new(crate::routers::Rb3::default()),
        }
    }
}

/// Deterministic dimension-order routing: correct X first, then Y.
///
/// Fault-oblivious: the walk stops (undeliverable) at the first faulty
/// node on the dimension-ordered path. In a fault-free mesh this is the
/// textbook minimal deadlock-free routing, which is why it serves as
/// the simulator's sanity baseline.
#[derive(Clone, Copy, Debug, Default)]
pub struct XyRouter;

impl Router for XyRouter {
    fn name(&self) -> &'static str {
        "XY"
    }

    fn decide(&self, view: &NetView, ctx: HopCtx<'_>) -> Decision {
        if ctx.here == ctx.dst {
            return Decision::Deliver;
        }
        let dir = xy_next(ctx.here, ctx.dst);
        if view.faults().is_healthy(ctx.here.step(dir)) {
            Decision::Hop(dir)
        } else {
            Decision::Blocked
        }
    }
}

/// The dimension-order next hop from `here` towards `dst`: correct X
/// first, then Y. The traffic fabric's XY escape class routes
/// exclusively with this function, so every escape hop strictly
/// decreases the lexicographic potential `(|dx|, |dy|)` — the invariant
/// the escape property tests pin.
///
/// # Panics
/// Panics when `here == dst` (a delivered packet has no next hop).
#[inline]
pub fn xy_next(here: Coord, dst: Coord) -> Dir {
    if here.x != dst.x {
        if dst.x > here.x {
            Dir::PlusX
        } else {
            Dir::MinusX
        }
    } else if dst.y > here.y {
        Dir::PlusY
    } else {
        assert!(dst.y < here.y, "xy_next called at the destination");
        Dir::MinusY
    }
}

/// Whether the dimension-order XY walk from `here` to `dst` crosses
/// only healthy nodes — the escape-entry precondition of the traffic
/// fabric. `here == dst` is trivially clear.
pub fn xy_path_clear(faults: &FaultSet, here: Coord, dst: Coord) -> bool {
    let mut cur = here;
    while cur != dst {
        cur = cur.step(xy_next(cur, dst));
        if !faults.is_healthy(cur) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use meshpath_mesh::{FaultSet, Mesh};

    #[test]
    fn xy_routes_dimension_ordered() {
        let net = NetView::build(FaultSet::none(Mesh::square(8)));
        let res = XyRouter.route(&net, Coord::new(1, 1), Coord::new(4, 6));
        assert!(res.delivered);
        assert_eq!(res.hops(), 3 + 5);
        // X corrections strictly precede Y corrections.
        let dirs: Vec<Dir> = res.path.windows(2).map(|w| w[0].dir_to(w[1]).unwrap()).collect();
        let first_y = dirs.iter().position(|d| d.axis() == meshpath_mesh::Axis::Y).unwrap();
        assert!(dirs[..first_y].iter().all(|d| d.axis() == meshpath_mesh::Axis::X));
        assert!(dirs[first_y..].iter().all(|d| d.axis() == meshpath_mesh::Axis::Y));
    }

    #[test]
    fn xy_blocks_on_faults() {
        let mesh = Mesh::square(8);
        let net = NetView::build(FaultSet::from_coords(mesh, [Coord::new(3, 1)]));
        let res = XyRouter.route(&net, Coord::new(1, 1), Coord::new(6, 1));
        assert!(!res.delivered);
        // RB2 routes the same pair around the fault.
        let res2 = crate::routers::Rb2::default().route(&net, Coord::new(1, 1), Coord::new(6, 1));
        assert!(res2.delivered);
    }

    #[test]
    fn xy_next_decreases_dimension_order_distance() {
        let (s, d) = (Coord::new(7, 2), Coord::new(1, 6));
        let mut cur = s;
        while cur != d {
            let dir = xy_next(cur, d);
            let next = cur.step(dir);
            // X is corrected to completion before any Y move.
            if cur.x != d.x {
                assert_eq!(dir.axis(), meshpath_mesh::Axis::X);
                assert!((next.x - d.x).abs() < (cur.x - d.x).abs());
            } else {
                assert_eq!(dir.axis(), meshpath_mesh::Axis::Y);
                assert!((next.y - d.y).abs() < (cur.y - d.y).abs());
            }
            cur = next;
        }
    }

    #[test]
    fn xy_clear_matches_the_xy_router() {
        let mesh = Mesh::square(8);
        let net = NetView::build(FaultSet::from_coords(mesh, [Coord::new(3, 1), Coord::new(5, 5)]));
        for (s, d) in [
            (Coord::new(1, 1), Coord::new(6, 1)), // crosses (3,1)
            (Coord::new(1, 1), Coord::new(1, 6)), // clear column
            (Coord::new(0, 5), Coord::new(7, 5)), // crosses (5,5)
            (Coord::new(2, 0), Coord::new(6, 7)), // clear L
        ] {
            let walked = XyRouter.route(&net, s, d).delivered;
            assert_eq!(xy_path_clear(net.faults(), s, d), walked, "{s:?}->{d:?}");
        }
    }

    #[test]
    fn decide_is_callable_through_a_shared_dyn_router() {
        // The concurrency contract: &self decide over a shared view,
        // per-message state outside the router.
        let net = NetView::build(FaultSet::none(Mesh::square(6)));
        let router: Box<dyn Router + Send + Sync> = RoutingKind::Rb2.router();
        let (s, d) = (Coord::new(0, 0), Coord::new(5, 5));
        let mut st = HopState::new(s);
        let mut here = s;
        for _ in 0..10 {
            match router.decide(&net, HopCtx { src: s, dst: d, here, hops: 0, state: &mut st }) {
                Decision::Hop(dir) => here = here.step(dir),
                Decision::Deliver => break,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(here, d);
    }

    #[test]
    fn route_with_reused_scratch_matches_fresh_state() {
        let mesh = Mesh::square(10);
        let net = NetView::build(FaultSet::from_coords(mesh, [Coord::new(4, 4), Coord::new(5, 4)]));
        let pairs = [
            (Coord::new(0, 0), Coord::new(9, 9)),
            (Coord::new(4, 0), Coord::new(4, 9)), // detours around the wall
            (Coord::new(9, 2), Coord::new(0, 7)),
        ];
        for kind in RoutingKind::ALL {
            let router = kind.router();
            let mut state = HopState::new(pairs[0].0);
            for (s, d) in pairs {
                let reused = router.route_with(&net, s, d, &mut state);
                assert_eq!(reused, router.route(&net, s, d), "{} {s:?}->{d:?}", kind.name());
            }
        }
    }

    #[test]
    fn all_kinds_instantiate_and_deliver() {
        let mesh = Mesh::square(10);
        let net = NetView::build(FaultSet::from_coords(mesh, [Coord::new(4, 4)]));
        for kind in RoutingKind::ALL {
            let router = kind.router();
            let res = router.route(&net, Coord::new(0, 0), Coord::new(9, 9));
            assert!(res.delivered, "{} must route around one fault", kind.name());
            crate::engine::validate_path(&net, Coord::new(0, 0), Coord::new(9, 9), &res)
                .expect("valid path");
        }
    }
}
