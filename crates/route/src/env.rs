//! The routing environment: one fault configuration, fully analyzed,
//! plus the incremental per-fault update machinery behind
//! [`NetState`](crate::NetState).

use meshpath_fault::{BlockSet, BorderPolicy, MccId, MccSet};
use meshpath_info::{BoundarySet, InfoModel, ModelKind};
use meshpath_mesh::{Coord, FaultSet, FxHashSet, Mesh, Orientation};

/// Everything the routers need about one fault configuration:
///
/// * the fault set itself (local fault detection),
/// * the MCC labeling and components for all four orientations,
/// * the B1/B2/B3 information models for all four orientations
///   (with their boundary walks retained for incremental updates),
/// * the rectangular fault blocks (E-cube baseline).
///
/// Building a `Network` is the per-configuration setup cost; routing any
/// number of source/destination pairs afterwards reuses it. Programs
/// normally hold a `Network` through an epoch-versioned
/// [`NetView`](crate::NetView) snapshot.
pub struct Network {
    faults: FaultSet,
    mccs: Vec<MccSet>,
    /// `models[orientation_index][model_kind_index]`.
    models: Vec<[InfoModel; 3]>,
    /// Boundary walks per orientation (the substrate of `models`,
    /// retained so incremental updates can reuse untouched walks).
    bounds: Vec<BoundarySet>,
    blocks: BlockSet,
}

/// One single-fault delta applied by the incremental update path.
#[derive(Clone, Copy, Debug)]
pub(crate) enum FaultChange {
    /// The coordinate was injected (newly faulty).
    Added(Coord),
    /// The coordinate was repaired (newly healthy).
    Removed(Coord),
}

impl Network {
    /// Analyzes `faults` under all orientations and models.
    pub fn build(faults: FaultSet) -> Self {
        let mut mccs = Vec::with_capacity(4);
        let mut models = Vec::with_capacity(4);
        let mut bounds = Vec::with_capacity(4);
        for o in Orientation::ALL {
            let set = MccSet::build(&faults, o, BorderPolicy::Open);
            let b = BoundarySet::build(&set);
            models.push([
                InfoModel::build_with(&set, &b, ModelKind::B1),
                InfoModel::build_with(&set, &b, ModelKind::B2),
                InfoModel::build_with(&set, &b, ModelKind::B3),
            ]);
            bounds.push(b);
            mccs.push(set);
        }
        let blocks = BlockSet::build(&faults);
        Network { faults, mccs, models, bounds, blocks }
    }

    /// The incremental single-fault update: relabels only the delta
    /// (seeded fixpoint for injections, component-scoped recompute for
    /// repairs), re-extracts components, and rebuilds boundary walks
    /// only for components whose footprint or interaction set the delta
    /// touched. Returns `None` when the delta **merges** existing
    /// components (injection) or **splits** one (repair) in any
    /// orientation — the caller then falls back to a full
    /// [`Network::build`]. The result is bit-identical to a
    /// from-scratch build (pinned by the equivalence proptest).
    pub(crate) fn incrementally_updated(
        &self,
        new_faults: &FaultSet,
        change: FaultChange,
    ) -> Option<Network> {
        let mesh = *self.mesh();
        let mut mccs = Vec::with_capacity(4);
        let mut models = Vec::with_capacity(4);
        let mut bounds = Vec::with_capacity(4);
        for o in Orientation::ALL {
            let old_set = self.mccs(o);
            let old_bounds = &self.bounds[o.index()];

            // 1. Patch the labeling and collect the relabeled cells
            //    (oriented frame) plus the old components they touch.
            let (new_lab, changed, affected_old) = match change {
                FaultChange::Added(c) => {
                    let (lab, changed) = old_set.labeling().with_fault_added(new_faults, c);
                    let mut affected: Vec<MccId> = Vec::new();
                    let mut note = |id: Option<MccId>| {
                        if let Some(id) = id {
                            if !affected.contains(&id) {
                                affected.push(id);
                            }
                        }
                    };
                    for &cc in &changed {
                        note(old_set.mcc_at(cc));
                        for nb in cc.neighbors() {
                            note(old_set.mcc_at(nb));
                        }
                    }
                    if affected.len() >= 2 {
                        return None; // components merged: full rebuild
                    }
                    (lab, changed, affected)
                }
                FaultChange::Removed(c) => {
                    let oc = o.apply(&mesh, c);
                    let id = old_set.mcc_at(oc).expect("a faulty cell is always in an MCC");
                    let comp: Vec<Coord> = old_set.get(id).cells().collect();
                    let (lab, changed) =
                        old_set.labeling().with_fault_removed(new_faults, c, &comp);
                    (lab, changed, vec![id])
                }
            };

            // 2. Re-extract components (cheap scan; identical ids and
            //    shapes to a from-scratch build by construction).
            let new_set = MccSet::from_labeling(new_lab, new_faults);

            // 3. Map surviving old components to their new ids via a
            //    representative cell; detect repair-induced splits.
            let mut remap: Vec<Option<MccId>> = vec![None; old_set.len()];
            for old in old_set.iter() {
                if let FaultChange::Removed(_) = change {
                    if old.id() == affected_old[0] {
                        let mut survivors: Vec<MccId> = Vec::new();
                        for cc in old.cells() {
                            if let Some(nid) = new_set.mcc_at(cc) {
                                if !survivors.contains(&nid) {
                                    survivors.push(nid);
                                }
                            }
                        }
                        if survivors.len() > 1 {
                            return None; // component split: full rebuild
                        }
                        remap[old.id().index()] = survivors.first().copied();
                        continue;
                    }
                }
                let rep = old.cells().next().expect("components are non-empty");
                let nid = new_set.mcc_at(rep).expect("untouched cells stay unsafe");
                remap[old.id().index()] = Some(nid);
            }
            let mut inverse: Vec<Option<MccId>> = vec![None; new_set.len()];
            for (oi, nid) in remap.iter().enumerate() {
                if let Some(nid) = nid {
                    inverse[nid.index()] = Some(MccId(oi as u32));
                }
            }

            // 4. Dirty test: a component's boundary record is reusable
            //    only when its stored footprint stays clear of every
            //    relabeled cell (walks re-read those labels) and no
            //    component it interacted with (merge lists cover walk
            //    hits and corner absorptions) is the affected one
            //    (their shapes feed the walk geometry).
            let mut poison: FxHashSet<Coord> = FxHashSet::default();
            for &cc in &changed {
                for dx in -2..=2 {
                    for dy in -2..=2 {
                        poison.insert(Coord::new(cc.x + dx, cc.y + dy));
                    }
                }
            }
            let dirty_new: Option<MccId> = match change {
                FaultChange::Added(c) => new_set.mcc_at(o.apply(&mesh, c)),
                FaultChange::Removed(_) => remap[affected_old[0].index()],
            };
            let dirty = |old_id: MccId| -> bool {
                let b = old_bounds.get(old_id);
                affected_old.iter().any(|a| b.merged_y.contains(a) || b.merged_x.contains(a))
                    || b.footprint().any(|n| poison.contains(&n))
            };
            let new_bounds = BoundarySet::build_reusing(&new_set, |new_id| {
                if Some(new_id) == dirty_new {
                    return None;
                }
                let old_id = inverse[new_id.index()]?;
                if affected_old.contains(&old_id) || dirty(old_id) {
                    return None;
                }
                old_bounds.get(old_id).remapped(new_id, |v| remap[v.index()])
            });

            models.push([
                InfoModel::build_with(&new_set, &new_bounds, ModelKind::B1),
                InfoModel::build_with(&new_set, &new_bounds, ModelKind::B2),
                InfoModel::build_with(&new_set, &new_bounds, ModelKind::B3),
            ]);
            bounds.push(new_bounds);
            mccs.push(new_set);
        }
        let blocks = BlockSet::build(new_faults);
        Some(Network { faults: new_faults.clone(), mccs, models, bounds, blocks })
    }

    /// The mesh.
    #[inline]
    pub fn mesh(&self) -> &Mesh {
        self.faults.mesh()
    }

    /// The fault set.
    #[inline]
    pub fn faults(&self) -> &FaultSet {
        &self.faults
    }

    /// MCC analysis for one orientation.
    #[inline]
    pub fn mccs(&self, o: Orientation) -> &MccSet {
        &self.mccs[o.index()]
    }

    /// Information model of `kind` for one orientation.
    #[inline]
    pub fn model(&self, o: Orientation, kind: ModelKind) -> &InfoModel {
        let k = match kind {
            ModelKind::B1 => 0,
            ModelKind::B2 => 1,
            ModelKind::B3 => 2,
        };
        &self.models[o.index()][k]
    }

    /// Rectangular fault blocks (E-cube baseline).
    #[inline]
    pub fn blocks(&self) -> &BlockSet {
        &self.blocks
    }

    /// True when `c` is a safe node in the orientation normalizing `s -> d`
    /// routings (used by the experiment harness to filter endpoint picks:
    /// the paper assumes "the source and the destination are safe nodes").
    pub fn is_safe_for(&self, c: Coord, s: Coord, d: Coord) -> bool {
        let o = Orientation::normalizing(s, d);
        self.mccs(o).labeling().status_real(c).is_safe()
    }

    /// True when `c` is safe under **every** orientation (the strictest
    /// endpoint filter).
    pub fn is_safe_all_orientations(&self, c: Coord) -> bool {
        Orientation::ALL.iter().all(|&o| self.mccs(o).labeling().status_real(c).is_safe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_populates_all_orientations() {
        let mesh = Mesh::square(12);
        let faults =
            FaultSet::from_coords(mesh, [Coord::new(4, 4), Coord::new(5, 3), Coord::new(8, 9)]);
        let net = Network::build(faults);
        for o in Orientation::ALL {
            assert!(net.mccs(o).len() >= 2);
            for kind in ModelKind::ALL {
                // Models exist and carry consistent safe-node counts.
                assert_eq!(
                    net.model(o, kind).stats().safe_nodes,
                    net.mccs(o).labeling().safe_count()
                );
            }
        }
        assert!(net.blocks().disabled_count() >= 3);
    }

    #[test]
    fn safety_filters() {
        let mesh = Mesh::square(10);
        let faults = FaultSet::from_coords(mesh, [Coord::new(4, 5), Coord::new(5, 4)]);
        let net = Network::build(faults);
        // (4,4) is useless in the identity orientation but safe in others.
        assert!(!net.is_safe_for(Coord::new(4, 4), Coord::new(0, 0), Coord::new(9, 9)));
        assert!(!net.is_safe_all_orientations(Coord::new(4, 4)));
        assert!(net.is_safe_all_orientations(Coord::new(0, 0)));
    }
}
