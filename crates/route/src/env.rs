//! The routing environment: one fault configuration, fully analyzed.

use meshpath_fault::{BlockSet, BorderPolicy, MccSet};
use meshpath_info::{BoundarySet, InfoModel, ModelKind};
use meshpath_mesh::{Coord, FaultSet, Mesh, Orientation};

/// Everything the routers need about one fault configuration:
///
/// * the fault set itself (local fault detection),
/// * the MCC labeling and components for all four orientations,
/// * the B1/B2/B3 information models for all four orientations,
/// * the rectangular fault blocks (E-cube baseline).
///
/// Building a `Network` is the per-configuration setup cost; routing any
/// number of source/destination pairs afterwards reuses it.
pub struct Network {
    faults: FaultSet,
    mccs: Vec<MccSet>,
    /// `models[orientation_index][model_kind_index]`.
    models: Vec<[InfoModel; 3]>,
    blocks: BlockSet,
}

impl Network {
    /// Analyzes `faults` under all orientations and models.
    pub fn build(faults: FaultSet) -> Self {
        let mut mccs = Vec::with_capacity(4);
        let mut models = Vec::with_capacity(4);
        for o in Orientation::ALL {
            let set = MccSet::build(&faults, o, BorderPolicy::Open);
            let bounds = BoundarySet::build(&set);
            models.push([
                InfoModel::build_with(&set, &bounds, ModelKind::B1),
                InfoModel::build_with(&set, &bounds, ModelKind::B2),
                InfoModel::build_with(&set, &bounds, ModelKind::B3),
            ]);
            mccs.push(set);
        }
        let blocks = BlockSet::build(&faults);
        Network { faults, mccs, models, blocks }
    }

    /// The mesh.
    #[inline]
    pub fn mesh(&self) -> &Mesh {
        self.faults.mesh()
    }

    /// The fault set.
    #[inline]
    pub fn faults(&self) -> &FaultSet {
        &self.faults
    }

    /// MCC analysis for one orientation.
    #[inline]
    pub fn mccs(&self, o: Orientation) -> &MccSet {
        &self.mccs[o.index()]
    }

    /// Information model of `kind` for one orientation.
    #[inline]
    pub fn model(&self, o: Orientation, kind: ModelKind) -> &InfoModel {
        let k = match kind {
            ModelKind::B1 => 0,
            ModelKind::B2 => 1,
            ModelKind::B3 => 2,
        };
        &self.models[o.index()][k]
    }

    /// Rectangular fault blocks (E-cube baseline).
    #[inline]
    pub fn blocks(&self) -> &BlockSet {
        &self.blocks
    }

    /// True when `c` is a safe node in the orientation normalizing `s -> d`
    /// routings (used by the experiment harness to filter endpoint picks:
    /// the paper assumes "the source and the destination are safe nodes").
    pub fn is_safe_for(&self, c: Coord, s: Coord, d: Coord) -> bool {
        let o = Orientation::normalizing(s, d);
        self.mccs(o).labeling().status_real(c).is_safe()
    }

    /// True when `c` is safe under **every** orientation (the strictest
    /// endpoint filter).
    pub fn is_safe_all_orientations(&self, c: Coord) -> bool {
        Orientation::ALL.iter().all(|&o| self.mccs(o).labeling().status_real(c).is_safe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_populates_all_orientations() {
        let mesh = Mesh::square(12);
        let faults =
            FaultSet::from_coords(mesh, [Coord::new(4, 4), Coord::new(5, 3), Coord::new(8, 9)]);
        let net = Network::build(faults);
        for o in Orientation::ALL {
            assert!(net.mccs(o).len() >= 2);
            for kind in ModelKind::ALL {
                // Models exist and carry consistent safe-node counts.
                assert_eq!(
                    net.model(o, kind).stats().safe_nodes,
                    net.mccs(o).labeling().safe_count()
                );
            }
        }
        assert!(net.blocks().disabled_count() >= 3);
    }

    #[test]
    fn safety_filters() {
        let mesh = Mesh::square(10);
        let faults = FaultSet::from_coords(mesh, [Coord::new(4, 5), Coord::new(5, 4)]);
        let net = Network::build(faults);
        // (4,4) is useless in the identity orientation but safe in others.
        assert!(!net.is_safe_for(Coord::new(4, 4), Coord::new(0, 0), Coord::new(9, 9)));
        assert!(!net.is_safe_all_orientations(Coord::new(4, 4)));
        assert!(net.is_safe_all_orientations(Coord::new(0, 0)));
    }
}
