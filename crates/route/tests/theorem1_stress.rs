//! Stress check of Theorem 1 (RB2 finds the true shortest path) against
//! the BFS oracle, on random dense configurations.
//!
//! Pair filtering follows the paper's methodology reading: endpoints are
//! safe nodes and "the source has the path to the destination" (same
//! healthy component) — whole-mesh connectivity is hopeless at high fault
//! densities (isolated pockets are near-certain), so the per-pair filter
//! is the only reading under which the paper's 3000-fault sweep is
//! non-empty.

use meshpath_mesh::{Coord, FaultInjection, FaultSet, Mesh, Orientation};
use meshpath_route::{oracle::DistanceField, KnowledgeScope, NetView, Rb1, Rb2, Rb3, Router};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn rb2_matches_bfs_on_random_meshes() {
    let n = 24;
    let mesh = Mesh::square(n as u32);
    let mut rng = StdRng::seed_from_u64(20070325);
    let mut total = 0u32;
    let mut rb2_opt = 0u32;
    let mut rb2_global_opt = 0u32;
    let mut rb3_opt = 0u32;
    let mut rb1_opt = 0u32;
    let mut rb1_delivered = 0u32;
    let mut examples: Vec<String> = Vec::new();

    for trial in 0..12 {
        // Sweep up to ~25% faults, mirroring the paper's 0..3000 on 100x100.
        let fault_count = 10 + trial * 12;
        let faults = FaultSet::random(mesh, fault_count, FaultInjection::Uniform, &mut rng);
        let net = NetView::build(faults);
        let safe_for = |c: Coord, s: Coord, d: Coord| {
            let o = Orientation::normalizing(s, d);
            net.mccs(o).labeling().status_real(c).is_safe()
        };
        let mut pairs = Vec::new();
        let mut attempts = 0;
        while pairs.len() < 30 && attempts < 20_000 {
            attempts += 1;
            let s = Coord::new(rng.gen_range(0..n), rng.gen_range(0..n));
            let d = Coord::new(rng.gen_range(0..n), rng.gen_range(0..n));
            if s != d && safe_for(s, s, d) && safe_for(d, s, d) {
                pairs.push((s, d));
            }
        }
        for (s, d) in pairs {
            let field = DistanceField::healthy(net.faults(), d);
            if !field.reachable(s) {
                continue; // source has no path to the destination
            }
            let opt = field.dist(s);
            total += 1;
            let rb2 = Rb2::default().route(&net, s, d);
            assert!(rb2.delivered, "RB2 undelivered {s:?}->{d:?} trial {trial}");
            if rb2.hops() == opt {
                rb2_opt += 1;
            } else if examples.len() < 8 {
                examples.push(format!(
                    "trial {trial} ({fault_count} faults) {s:?}->{d:?}: RB2 {} vs opt {opt} \
                     (replans {}, fallbacks {})",
                    rb2.hops(),
                    rb2.replans,
                    rb2.fallbacks
                ));
            }
            let rb2g =
                Rb2 { scope: KnowledgeScope::Global, ..Default::default() }.route(&net, s, d);
            if rb2g.delivered && rb2g.hops() == opt {
                rb2_global_opt += 1;
            } else if examples.len() < 8 {
                examples.push(format!(
                    "GLOBAL trial {trial} ({fault_count} faults) {s:?}->{d:?}: RB2g {} vs opt {opt}",
                    rb2g.hops(),
                ));
            }
            let rb3 = Rb3::default().route(&net, s, d);
            if rb3.delivered && rb3.hops() == opt {
                rb3_opt += 1;
            }
            let rb1 = Rb1::default().route(&net, s, d);
            if rb1.delivered {
                rb1_delivered += 1;
                if rb1.hops() == opt {
                    rb1_opt += 1;
                }
            }
        }
    }
    // Summary chatter is MESHPATH_LOG=info opt-in; the assertions
    // below are what the test is for.
    if meshpath_obs::enabled(meshpath_obs::LogLevel::Info) {
        eprintln!(
            "pairs={total} RB2 opt={rb2_opt} ({:.1}%) RB2-global opt={rb2_global_opt} ({:.1}%) \
             RB3 opt={rb3_opt} ({:.1}%) RB1 opt={rb1_opt} ({:.1}%) RB1 delivered={rb1_delivered}",
            100.0 * rb2_opt as f64 / total as f64,
            100.0 * rb2_global_opt as f64 / total as f64,
            100.0 * rb3_opt as f64 / total as f64,
            100.0 * rb1_opt as f64 / total as f64,
        );
        for e in &examples {
            eprintln!("  miss: {e}");
        }
    }
    assert!(total > 200, "pair filter too strict: only {total} pairs");
    // Paper's Fig. 5(d): RB2 = 100%, RB3 > 95%, RB1 > 75%.
    assert_eq!(rb2_global_opt, total, "RB2 with global knowledge must be optimal");
    assert!(
        rb2_opt as f64 >= 0.99 * total as f64,
        "local-knowledge RB2 must be (near-)optimal: {rb2_opt}/{total}"
    );
}
