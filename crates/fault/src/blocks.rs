//! The classic rectangular fault block model.
//!
//! Used by the fault-tolerant E-cube baseline (Boppana & Chalasani, paper
//! reference \[2\]). A healthy node is *deactivated* when it has a
//! faulty-or-deactivated neighbor in each dimension; iterating to fixpoint
//! grows every fault cluster into its minimal bounding set of disjoint
//! rectangles. Compared with the MCC model this disables strictly more
//! healthy nodes — the gap is exactly what Fig. 5 of the paper quantifies.

use serde::{Deserialize, Serialize};

use meshpath_mesh::{BitGrid, Coord, Dir, FaultSet, Mesh, Rect};

/// The rectangular fault blocks of a fault configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BlockSet {
    mesh: Mesh,
    /// Faulty or deactivated nodes.
    disabled: BitGrid,
    /// The maximal rectangles (one per 4-connected disabled component).
    rects: Vec<Rect>,
}

impl BlockSet {
    /// Computes the rectangular-block closure of `faults`.
    pub fn build(faults: &FaultSet) -> Self {
        let mesh = *faults.mesh();
        let mut disabled = BitGrid::new(mesh);
        for c in faults.iter() {
            disabled.insert(c);
        }

        // Fixpoint: deactivate any healthy node with a blocked neighbor in
        // both dimensions (border does not block: a fault-free mesh stays
        // fully active). The deactivation rule is a least fixpoint, so
        // seeding the worklist with the faults' in-mesh neighbors — the
        // only cells that can deactivate before any propagation — reaches
        // the same closure as scanning every node, in O(faults) instead of
        // O(nodes) on the fault-free bulk.
        let blocked = |g: &BitGrid, c: Coord| g.contains(c);
        let mut work: Vec<Coord> = Vec::new();
        for c in faults.iter() {
            work.extend(mesh.neighbors(c));
        }
        while let Some(u) = work.pop() {
            if disabled.contains(u) {
                continue;
            }
            let x_blocked =
                blocked(&disabled, u.step(Dir::PlusX)) || blocked(&disabled, u.step(Dir::MinusX));
            let y_blocked =
                blocked(&disabled, u.step(Dir::PlusY)) || blocked(&disabled, u.step(Dir::MinusY));
            if x_blocked && y_blocked {
                disabled.insert(u);
                for v in mesh.neighbors(u) {
                    if !disabled.contains(v) {
                        work.push(v);
                    }
                }
            }
        }

        // Extract one bounding rectangle per 4-connected disabled
        // component. At the fixpoint each component is exactly its
        // bounding rectangle (checked in debug builds). `BitGrid::iter`
        // is row-major, so discovery order matches a full mesh scan while
        // visiting only the disabled cells.
        let mut rects = Vec::new();
        let mut seen = BitGrid::new(mesh);
        let mut stack = Vec::new();
        for start in disabled.iter() {
            if seen.contains(start) {
                continue;
            }
            let mut bbox = Rect::point(start);
            seen.insert(start);
            stack.push(start);
            let mut count = 0usize;
            while let Some(u) = stack.pop() {
                count += 1;
                bbox.expand(u);
                for v in mesh.neighbors(u) {
                    if disabled.contains(v) && seen.insert(v) {
                        stack.push(v);
                    }
                }
            }
            debug_assert_eq!(
                count as u64,
                bbox.area(),
                "rectangular block closure produced a non-rectangle at {bbox:?}"
            );
            rects.push(bbox);
        }

        BlockSet { mesh, disabled, rects }
    }

    /// The mesh.
    #[inline]
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// True when the node at `c` is faulty or deactivated. Out-of-mesh
    /// coordinates report `false`.
    #[inline]
    pub fn is_disabled(&self, c: Coord) -> bool {
        self.disabled.contains(c)
    }

    /// Number of disabled nodes (faulty + deactivated).
    #[inline]
    pub fn disabled_count(&self) -> usize {
        self.disabled.count()
    }

    /// The maximal fault rectangles.
    #[inline]
    pub fn rects(&self) -> &[Rect] {
        &self.rects
    }

    /// The rectangle containing `c`, if any.
    pub fn rect_at(&self, c: Coord) -> Option<Rect> {
        if !self.is_disabled(c) {
            return None;
        }
        self.rects.iter().copied().find(|r| r.contains(c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(mesh: Mesh, faults: &[(i32, i32)]) -> BlockSet {
        let fs = FaultSet::from_coords(mesh, faults.iter().map(|&(x, y)| Coord::new(x, y)));
        BlockSet::build(&fs)
    }

    #[test]
    fn no_faults_no_blocks() {
        let b = build(Mesh::square(6), &[]);
        assert_eq!(b.disabled_count(), 0);
        assert!(b.rects().is_empty());
    }

    #[test]
    fn single_fault_is_a_unit_rectangle() {
        let b = build(Mesh::square(6), &[(2, 3)]);
        assert_eq!(b.disabled_count(), 1);
        assert_eq!(b.rects(), &[Rect::point(Coord::new(2, 3))]);
    }

    #[test]
    fn l_shape_fills_to_rectangle() {
        // Faults in an L: (2,2),(3,2),(2,3). Node (3,3) has a faulty -X
        // neighbor and a faulty -Y neighbor => deactivated.
        let b = build(Mesh::square(8), &[(2, 2), (3, 2), (2, 3)]);
        assert_eq!(b.disabled_count(), 4);
        assert!(b.is_disabled(Coord::new(3, 3)));
        assert_eq!(b.rects(), &[Rect::new(Coord::new(2, 2), Coord::new(3, 3))]);
    }

    #[test]
    fn diagonal_faults_merge_into_one_rectangle() {
        // Unlike the MCC model, the rectangular model merges diagonal
        // neighbors: (2,2) and (3,3) both see a blocked node per dimension
        // once (3,2)/(2,3) are deactivated.
        let b = build(Mesh::square(8), &[(2, 2), (3, 3)]);
        assert_eq!(b.rects().len(), 1);
        assert_eq!(b.rects()[0], Rect::new(Coord::new(2, 2), Coord::new(3, 3)));
        assert_eq!(b.disabled_count(), 4);
    }

    #[test]
    fn block_model_disables_at_least_as_much_as_mcc() {
        use crate::labeling::{BorderPolicy, Labeling};
        use meshpath_mesh::Orientation;
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let mesh = Mesh::square(24);
        let mut rng = StdRng::seed_from_u64(42);
        for trial in 0..12 {
            let fs = FaultSet::random(
                mesh,
                20 + trial * 6,
                meshpath_mesh::FaultInjection::Uniform,
                &mut rng,
            );
            let blocks = BlockSet::build(&fs);
            for o in Orientation::ALL {
                let lab = Labeling::compute(&fs, o, BorderPolicy::Open);
                assert!(
                    blocks.disabled_count() >= lab.unsafe_count(),
                    "MCC must be the finer model (trial {trial})"
                );
            }
        }
    }

    #[test]
    fn rect_at_lookup() {
        let b = build(Mesh::square(8), &[(2, 2), (3, 3)]);
        assert_eq!(
            b.rect_at(Coord::new(3, 2)),
            Some(Rect::new(Coord::new(2, 2), Coord::new(3, 3)))
        );
        assert_eq!(b.rect_at(Coord::new(0, 0)), None);
    }
}
