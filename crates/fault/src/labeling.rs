//! The useless / can't-reach labeling fixpoint (paper Section 2).
//!
//! All labeling happens in *oriented* coordinates: the fault set is viewed
//! through an [`Orientation`] so that the destination quadrant is always
//! `(+X, +Y)` and the two labeling rules keep their canonical form. The
//! [`Labeling`] keeps the orientation so callers can query in either frame.
//!
//! **Dual labels.** The paper treats *useless* and *can't-reach* as
//! exclusive statuses, but a node can satisfy both definitions at once
//! (e.g. the center of a plus-shaped fault). Which label such a node gets
//! would then depend on evaluation order — and the choice changes what
//! propagates, because useless feeds only the `+X/+Y` rule and can't-reach
//! only the `-X/-Y` rule. To keep the fixpoint order-independent (and the
//! distributed protocol convergent to the same answer), this implementation
//! computes the two predicates *independently* as least fixpoints; a node
//! may carry both flags. [`NodeStatus`] reports `Useless` for dual-flagged
//! nodes; the exact predicates are exposed via [`Labeling::is_useless`] and
//! [`Labeling::is_cant_reach`].

use serde::{Deserialize, Serialize};

use meshpath_mesh::{Coord, Dir, FaultSet, FxHashMap, Grid, Mesh, NodeId, Orientation};

/// Bit flags of the labeling predicates.
pub(crate) const FAULTY: u8 = 1;
pub(crate) const USELESS: u8 = 2;
pub(crate) const CANT_REACH: u8 = 4;

/// Node-count threshold above which labelings keep their predicate masks
/// sparsely (keyed by node id) instead of in a dense per-node grid.
///
/// Faults are rare at scale, so on a large mesh the mask is zero almost
/// everywhere; storing only the nonzero cells makes a labeling cost
/// O(unsafe nodes) instead of O(nodes). Below the threshold the dense grid
/// wins on both speed and footprint. Both representations produce
/// bit-identical labelings (pinned by the `sparse_matches_dense` proptest).
pub const SPARSE_NODES: usize = 1 << 17;

/// Predicate-mask storage: dense per-node bytes on small meshes, a hash map
/// keyed by node id (absent = 0, i.e. safe) on large ones.
#[derive(Clone, Debug)]
struct MaskStore {
    mesh: Mesh,
    repr: MaskRepr,
}

#[derive(Clone, Debug)]
enum MaskRepr {
    Dense(Grid<u8>),
    Sparse(FxHashMap<u32, u8>),
}

impl MaskStore {
    fn new(mesh: Mesh, sparse: bool) -> Self {
        let repr = if sparse {
            MaskRepr::Sparse(FxHashMap::default())
        } else {
            MaskRepr::Dense(Grid::new(mesh, 0))
        };
        MaskStore { mesh, repr }
    }

    /// Mask at `oc`, or `None` when `oc` lies outside the mesh.
    #[inline]
    fn get(&self, oc: Coord) -> Option<u8> {
        self.mesh.contains(oc).then(|| self.load(oc))
    }

    /// Mask at an in-mesh coordinate (absent sparse entries read 0).
    #[inline]
    fn load(&self, oc: Coord) -> u8 {
        match &self.repr {
            MaskRepr::Dense(g) => g[oc],
            MaskRepr::Sparse(m) => m.get(&self.mesh.id(oc).0).copied().unwrap_or(0),
        }
    }

    #[inline]
    fn store(&mut self, oc: Coord, v: u8) {
        let id = self.mesh.id(oc).0;
        match &mut self.repr {
            MaskRepr::Dense(g) => g[oc] = v,
            MaskRepr::Sparse(m) => {
                if v == 0 {
                    m.remove(&id);
                } else {
                    m.insert(id, v);
                }
            }
        }
    }

    fn is_sparse(&self) -> bool {
        matches!(self.repr, MaskRepr::Sparse(_))
    }

    /// Oriented coordinates of all nonzero cells, sorted row-major so that
    /// iteration order never depends on the representation (hash-map order
    /// must not be observable anywhere).
    fn nonzero_sorted(&self) -> Vec<Coord> {
        match &self.repr {
            MaskRepr::Dense(g) => self.mesh.iter().filter(|&oc| g[oc] != 0).collect(),
            MaskRepr::Sparse(m) => {
                let mut ids: Vec<u32> = m.keys().copied().collect();
                ids.sort_unstable();
                ids.into_iter().map(|id| self.mesh.coord(NodeId(id))).collect()
            }
        }
    }
}

/// Status of a node under the MCC labeling.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum NodeStatus {
    /// Non-faulty and usable on some shortest (monotone) path.
    Safe,
    /// Hardware fault.
    Faulty,
    /// Non-faulty, but once a routing enters it the next move must take a
    /// `-X`/`-Y` direction (its `+X` and `+Y` neighbors are blocked).
    /// Also reported for nodes that are *both* useless and can't-reach.
    Useless,
    /// Non-faulty, but entering it requires a `-X`/`-Y` move (its `-X` and
    /// `-Y` neighbors are blocked).
    CantReach,
}

impl NodeStatus {
    /// Faulty, useless or can't-reach — i.e. a member of an MCC.
    #[inline]
    pub fn is_unsafe(self) -> bool {
        !matches!(self, NodeStatus::Safe)
    }

    /// The complement of [`NodeStatus::is_unsafe`].
    #[inline]
    pub fn is_safe(self) -> bool {
        matches!(self, NodeStatus::Safe)
    }

    pub(crate) fn from_mask(mask: u8) -> NodeStatus {
        if mask & FAULTY != 0 {
            NodeStatus::Faulty
        } else if mask & USELESS != 0 {
            NodeStatus::Useless
        } else if mask & CANT_REACH != 0 {
            NodeStatus::CantReach
        } else {
            NodeStatus::Safe
        }
    }
}

/// How a missing (out-of-mesh) neighbor is treated by the labeling rules.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub enum BorderPolicy {
    /// A missing neighbor never blocks (default). Under this policy the
    /// labeling equals the unbounded-mesh labeling restricted to the mesh,
    /// and every MCC is a rising staircase (see `mcc` module docs).
    #[default]
    Open,
    /// A missing neighbor counts as blocked, treating the mesh border as a
    /// fault wall. Exploratory only: a fault-free mesh then labels its
    /// north-east border unsafe, which is intentionally conservative.
    Blocking,
}

/// The fixpoint labeling of a fault configuration under one orientation.
#[derive(Clone, Debug)]
pub struct Labeling {
    mesh: Mesh,
    orientation: Orientation,
    border: BorderPolicy,
    /// Predicate mask per node, indexed by oriented coordinates.
    mask: MaskStore,
    unsafe_count: usize,
    faulty_count: usize,
}

impl Labeling {
    /// Runs the iterative labeling procedure to fixpoint.
    ///
    /// `faults` is given in real coordinates; `orientation` maps real to
    /// oriented coordinates (the frame where the destination quadrant is
    /// `(+X, +Y)`).
    pub fn compute(faults: &FaultSet, orientation: Orientation, border: BorderPolicy) -> Self {
        Self::compute_in(faults, orientation, border, faults.mesh().len() > SPARSE_NODES)
    }

    /// Testing hook: forces dense or sparse mask storage regardless of the
    /// [`SPARSE_NODES`] threshold. The labeling is identical either way.
    #[doc(hidden)]
    pub fn compute_forced(
        faults: &FaultSet,
        orientation: Orientation,
        border: BorderPolicy,
        sparse: bool,
    ) -> Self {
        Self::compute_in(faults, orientation, border, sparse)
    }

    fn compute_in(
        faults: &FaultSet,
        orientation: Orientation,
        border: BorderPolicy,
        sparse: bool,
    ) -> Self {
        let mesh = *faults.mesh();
        let mut mask = MaskStore::new(mesh, sparse);
        // `Orientation::apply` is an involution, so it maps real
        // coordinates to oriented ones just as well.
        for c in faults.iter() {
            mask.store(orientation.apply(&mesh, c), FAULTY);
        }

        // Independent least fixpoints for the two predicates, driven by a
        // shared worklist. Flags only ever get added, so the iteration
        // terminates after at most 2n insertions. The least fixpoint is
        // unique, so any seed containing every cell that can gain a flag
        // *before* propagation starts converges to the same labeling as
        // seeding with every cell: a first gain needs both relevant
        // neighbors blocked, and pre-propagation a neighbor is blocked
        // only by being faulty or (under `BorderPolicy::Blocking`) out of
        // mesh. The faulty cells' in-mesh neighbors — plus the mesh rim
        // when the border blocks — are therefore a sufficient seed,
        // keeping the fault-free bulk untouched.
        let mut work: Vec<Coord> = Vec::new();
        for c in faults.iter() {
            let oc = orientation.apply(&mesh, c);
            work.extend(Dir::ALL.into_iter().map(|d| oc.step(d)).filter(|&v| mesh.contains(v)));
        }
        if border == BorderPolicy::Blocking {
            let (w, h) = (mesh.width() as i32, mesh.height() as i32);
            work.extend((0..w).flat_map(|x| [Coord::new(x, 0), Coord::new(x, h - 1)]));
            work.extend((0..h).flat_map(|y| [Coord::new(0, y), Coord::new(w - 1, y)]));
        }
        let mut unsafe_count = faults.count();
        run_fixpoint(&mesh, border, &mut mask, work, &mut unsafe_count, None);

        Labeling { mesh, orientation, border, mask, unsafe_count, faulty_count: faults.count() }
    }

    /// Incrementally relabels after one fault is **injected** at real
    /// coordinate `c` (`faults` is the *new* fault set, already
    /// containing `c`). Returns the new labeling plus the oriented
    /// coordinates whose predicate mask changed (the fault cell first).
    ///
    /// The labeling rules are monotone in the fault set, so the old
    /// fixpoint remains consistent everywhere except where propagation
    /// newly starts at `c`: re-running the worklist seeded with `c`'s
    /// neighbors converges to exactly the from-scratch least fixpoint
    /// (uniqueness), touching only the delta.
    pub fn with_fault_added(&self, faults: &FaultSet, c: Coord) -> (Labeling, Vec<Coord>) {
        debug_assert!(faults.is_faulty(c), "with_fault_added wants the new fault set");
        let mesh = self.mesh;
        let oc = self.orientation.apply(&mesh, c);
        let mut mask = self.mask.clone();
        let old = mask.load(oc);
        debug_assert_eq!(old & FAULTY, 0, "node {oc:?} was already faulty");
        let mut unsafe_count = self.unsafe_count + usize::from(old == 0);
        mask.store(oc, FAULTY);
        let mut changed = vec![oc];
        let work: Vec<Coord> =
            Dir::ALL.into_iter().map(|d| oc.step(d)).filter(|&v| mesh.contains(v)).collect();
        run_fixpoint(&mesh, self.border, &mut mask, work, &mut unsafe_count, Some(&mut changed));
        let labeling = Labeling {
            mesh,
            orientation: self.orientation,
            border: self.border,
            mask,
            unsafe_count,
            faulty_count: faults.count(),
        };
        (labeling, changed)
    }

    /// Incrementally relabels after the fault at real coordinate `c` is
    /// **repaired** (`faults` is the new fault set, without `c`).
    /// `component` must list the oriented cells of the MCC that
    /// contained `c` under the old labeling: repairs can only change
    /// labels inside that component (flag derivations never cross
    /// between 4-connected unsafe components), so the fixpoint is
    /// re-run over those cells alone. Returns the new labeling plus the
    /// oriented coordinates whose mask changed.
    pub fn with_fault_removed(
        &self,
        faults: &FaultSet,
        c: Coord,
        component: &[Coord],
    ) -> (Labeling, Vec<Coord>) {
        debug_assert!(!faults.is_faulty(c), "with_fault_removed wants the new fault set");
        let mesh = self.mesh;
        let oc = self.orientation.apply(&mesh, c);
        debug_assert!(component.contains(&oc), "component must contain the repaired cell");
        let mut mask = self.mask.clone();
        let mut unsafe_count = self.unsafe_count;
        // Reset the component to its fault skeleton (the repaired cell
        // becomes plain healthy) and re-derive the healthy flags from
        // scratch within it.
        for &cc in component {
            debug_assert_ne!(self.mask.load(cc), 0, "component cells are unsafe");
            let keep = if cc == oc { 0 } else { mask.load(cc) & FAULTY };
            mask.store(cc, keep);
            if keep == 0 {
                unsafe_count -= 1;
            }
        }
        run_fixpoint(&mesh, self.border, &mut mask, component.to_vec(), &mut unsafe_count, None);
        let changed: Vec<Coord> =
            component.iter().copied().filter(|&cc| mask.load(cc) != self.mask.load(cc)).collect();
        let labeling = Labeling {
            mesh,
            orientation: self.orientation,
            border: self.border,
            mask,
            unsafe_count,
            faulty_count: faults.count(),
        };
        (labeling, changed)
    }

    /// The raw predicate mask at an oriented coordinate (testing hook
    /// for the incremental-equality assertions).
    #[doc(hidden)]
    pub fn raw_mask(&self, oc: Coord) -> u8 {
        self.mask_at(oc)
    }

    /// The mesh being labeled.
    #[inline]
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// The orientation this labeling was computed for.
    #[inline]
    pub fn orientation(&self) -> Orientation {
        self.orientation
    }

    /// The border policy used.
    #[inline]
    pub fn border_policy(&self) -> BorderPolicy {
        self.border
    }

    #[inline]
    fn mask_at(&self, oc: Coord) -> u8 {
        match self.mask.get(oc) {
            Some(m) => m,
            None => match self.border {
                BorderPolicy::Open => 0,
                BorderPolicy::Blocking => FAULTY,
            },
        }
    }

    /// Whether the predicate mask is held sparsely (testing hook for the
    /// [`SPARSE_NODES`] threshold).
    #[doc(hidden)]
    pub fn mask_is_sparse(&self) -> bool {
        self.mask.is_sparse()
    }

    /// Status of the node at *oriented* coordinate `oc`. Out-of-mesh
    /// coordinates report `Safe` under [`BorderPolicy::Open`] and `Faulty`
    /// under [`BorderPolicy::Blocking`], mirroring the labeling rules.
    #[inline]
    pub fn status(&self, oc: Coord) -> NodeStatus {
        NodeStatus::from_mask(self.mask_at(oc))
    }

    /// Status of the node at *real* coordinate `c`.
    #[inline]
    pub fn status_real(&self, c: Coord) -> NodeStatus {
        self.status(self.orientation.apply(&self.mesh, c))
    }

    /// The exact useless predicate (oriented coordinate).
    #[inline]
    pub fn is_useless(&self, oc: Coord) -> bool {
        self.mask_at(oc) & USELESS != 0
    }

    /// The exact can't-reach predicate (oriented coordinate).
    #[inline]
    pub fn is_cant_reach(&self, oc: Coord) -> bool {
        self.mask_at(oc) & CANT_REACH != 0
    }

    /// True when the node at oriented coordinate `oc` is safe **and**
    /// inside the mesh.
    #[inline]
    pub fn is_safe_node(&self, oc: Coord) -> bool {
        self.mesh.contains(oc) && self.mask_at(oc) == 0
    }

    /// Total unsafe nodes (faulty + useless + can't-reach).
    #[inline]
    pub fn unsafe_count(&self) -> usize {
        self.unsafe_count
    }

    /// Number of faulty nodes.
    #[inline]
    pub fn faulty_count(&self) -> usize {
        self.faulty_count
    }

    /// Non-faulty nodes swallowed by MCCs (useless + can't-reach).
    #[inline]
    pub fn healthy_unsafe_count(&self) -> usize {
        self.unsafe_count - self.faulty_count
    }

    /// Number of safe nodes.
    #[inline]
    pub fn safe_count(&self) -> usize {
        self.mesh.len() - self.unsafe_count
    }

    /// Iterator over oriented coordinates of all unsafe nodes, in
    /// row-major order under both mask representations. Costs
    /// O(unsafe nodes log unsafe nodes) on sparse labelings rather than a
    /// full mesh scan.
    pub fn unsafe_nodes(&self) -> impl Iterator<Item = Coord> + '_ {
        self.mask.nonzero_sorted().into_iter()
    }
}

/// The shared worklist fixpoint: applies the two labeling rules until
/// stable, starting from `work`. `unsafe_count` is kept current;
/// `changed`, when given, records every cell that gained a flag (cells
/// may appear once per distinct gain).
fn run_fixpoint(
    mesh: &Mesh,
    border: BorderPolicy,
    mask: &mut MaskStore,
    mut work: Vec<Coord>,
    unsafe_count: &mut usize,
    mut changed: Option<&mut Vec<Coord>>,
) {
    let blocked = |mask: &MaskStore, c: Coord, bit: u8| -> bool {
        match mask.get(c) {
            Some(m) => m & (FAULTY | bit) != 0,
            None => border == BorderPolicy::Blocking,
        }
    };
    while let Some(u) = work.pop() {
        let m = mask.load(u);
        if m & FAULTY != 0 {
            continue;
        }
        let mut gained = 0u8;
        if m & USELESS == 0
            && blocked(mask, u.step(Dir::PlusX), USELESS)
            && blocked(mask, u.step(Dir::PlusY), USELESS)
        {
            gained |= USELESS;
        }
        if m & CANT_REACH == 0
            && blocked(mask, u.step(Dir::MinusX), CANT_REACH)
            && blocked(mask, u.step(Dir::MinusY), CANT_REACH)
        {
            gained |= CANT_REACH;
        }
        if gained != 0 {
            if m == 0 {
                *unsafe_count += 1;
            }
            mask.store(u, m | gained);
            if let Some(changed) = changed.as_deref_mut() {
                changed.push(u);
            }
            if gained & USELESS != 0 {
                for d in [Dir::MinusX, Dir::MinusY] {
                    let v = u.step(d);
                    if mesh.contains(v) {
                        work.push(v);
                    }
                }
            }
            if gained & CANT_REACH != 0 {
                for d in [Dir::PlusX, Dir::PlusY] {
                    let v = u.step(d);
                    if mesh.contains(v) {
                        work.push(v);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meshpath_mesh::FaultSet;

    fn label(mesh: Mesh, faults: &[(i32, i32)]) -> Labeling {
        let fs = FaultSet::from_coords(mesh, faults.iter().map(|&(x, y)| Coord::new(x, y)));
        Labeling::compute(&fs, Orientation::IDENTITY, BorderPolicy::Open)
    }

    #[test]
    fn fault_free_mesh_is_all_safe() {
        let l = label(Mesh::square(8), &[]);
        assert_eq!(l.unsafe_count(), 0);
        assert_eq!(l.safe_count(), 64);
    }

    #[test]
    fn single_fault_adds_no_labels() {
        let l = label(Mesh::square(8), &[(3, 3)]);
        assert_eq!(l.unsafe_count(), 1);
        assert_eq!(l.status(Coord::new(3, 3)), NodeStatus::Faulty);
        assert_eq!(l.status(Coord::new(2, 2)), NodeStatus::Safe);
    }

    #[test]
    fn anti_diagonal_pair_fills_to_block() {
        // Faults at (0,1) and (1,0): the paper's canonical example.
        // (0,0) becomes useless (its +X and +Y neighbors are faulty);
        // (1,1) becomes can't-reach (its -X and -Y neighbors are faulty).
        let l = label(Mesh::square(8), &[(0, 1), (1, 0)]);
        assert_eq!(l.status(Coord::new(0, 0)), NodeStatus::Useless);
        assert_eq!(l.status(Coord::new(1, 1)), NodeStatus::CantReach);
        assert_eq!(l.unsafe_count(), 4);
    }

    #[test]
    fn plus_shaped_fault_center_is_dual_labeled() {
        // Faults at the four arms of a plus: the center is simultaneously
        // useless (+X/+Y faulty) and can't-reach (-X/-Y faulty).
        let l = label(Mesh::square(9), &[(4, 5), (4, 3), (3, 4), (5, 4)]);
        let center = Coord::new(4, 4);
        assert!(l.is_useless(center));
        assert!(l.is_cant_reach(center));
        assert_eq!(l.status(center), NodeStatus::Useless);
        // Besides the center, (3,3) becomes useless (+X/+Y arms faulty)
        // and (5,5) can't-reach (-X/-Y arms faulty): 4 faults + 3 labels.
        assert!(l.is_useless(Coord::new(3, 3)));
        assert!(l.is_cant_reach(Coord::new(5, 5)));
        assert_eq!(l.unsafe_count(), 7);
    }

    #[test]
    fn dual_label_propagates_both_rules() {
        // A dual-labeled node must feed BOTH rules: its -X/-Y neighbors
        // can become useless through it, and its +X/+Y neighbors
        // can't-reach through it. Build a chain that only closes if the
        // dual node propagates as useless.
        let l = label(Mesh::square(9), &[(4, 5), (4, 3), (3, 4), (5, 4), (3, 5), (5, 3)]);
        // (3,3): +X neighbor (4,3) faulty; +Y neighbor (3,4) faulty =>
        // useless regardless. (4,4) center is dual. Now (3,4) is faulty...
        // Check a node depending on the center's uselessness: (3,3)?
        // Instead verify directly: (5,5) has -X=(4,5) faulty, -Y=(5,4)
        // faulty => can't-reach; and (4,4) dual still counts for both.
        assert!(l.is_useless(Coord::new(4, 4)));
        assert!(l.is_cant_reach(Coord::new(4, 4)));
        assert!(l.is_cant_reach(Coord::new(5, 5)));
        assert!(l.is_useless(Coord::new(3, 3)));
    }

    #[test]
    fn descending_staircase_fills_to_rectangle() {
        // Faults on the NW-SE descending diagonal of a 3x3 box: the
        // closure must fill the whole box (any monotone path through it is
        // blocked).
        let l = label(Mesh::square(10), &[(2, 4), (3, 3), (4, 2)]);
        for x in 2..=4 {
            for y in 2..=4 {
                assert!(l.status(Coord::new(x, y)).is_unsafe(), "({x},{y}) should be unsafe");
            }
        }
        assert_eq!(l.unsafe_count(), 9);
    }

    #[test]
    fn ascending_staircase_is_stable() {
        // Faults on a SW-NE ascending staircase do not block monotone
        // paths; no extra labels appear.
        let l = label(Mesh::square(10), &[(2, 2), (3, 2), (3, 3), (4, 3), (4, 4)]);
        assert_eq!(l.unsafe_count(), 5);
    }

    #[test]
    fn open_border_keeps_borders_safe() {
        let l = label(Mesh::square(5), &[]);
        assert_eq!(l.status(Coord::new(4, 4)), NodeStatus::Safe);
        // Out-of-mesh coordinates read Safe under the Open policy.
        assert_eq!(l.status(Coord::new(5, 4)), NodeStatus::Safe);
    }

    #[test]
    fn blocking_border_labels_ne_corner() {
        let fs = FaultSet::none(Mesh::square(5));
        let l = Labeling::compute(&fs, Orientation::IDENTITY, BorderPolicy::Blocking);
        // With the border acting as a fault wall, the NE corner node has
        // both +X and +Y missing => useless, and the labels cascade along
        // the whole north-east rim.
        assert_eq!(l.status(Coord::new(4, 4)), NodeStatus::Useless);
        assert!(l.unsafe_count() > 0);
    }

    #[test]
    fn orientation_relabels_the_quadrant() {
        // Fault pattern blocking the NE quadrant of the identity frame
        // behaves like the NW quadrant once X is flipped.
        let mesh = Mesh::square(8);
        let fs = FaultSet::from_coords(mesh, [Coord::new(6, 1), Coord::new(7, 0)]);
        let id = Labeling::compute(&fs, Orientation::IDENTITY, BorderPolicy::Open);
        // Identity frame: (6,0) is useless and (7,1) can't-reach, so the
        // anti-diagonal pair fills to a 2x2 block.
        assert_eq!(id.unsafe_count(), 4);
        assert_eq!(id.status(Coord::new(6, 0)), NodeStatus::Useless);
        assert_eq!(id.status(Coord::new(7, 1)), NodeStatus::CantReach);
        let flipped =
            Labeling::compute(&fs, Orientation { flip_x: true, flip_y: false }, BorderPolicy::Open);
        // In the flipped frame the faults sit at oriented (1,1) and (0,0):
        // a diagonal pair, which does not fill.
        assert_eq!(flipped.unsafe_count(), 2);
        // Real-frame queries agree with the fault set regardless of frame.
        assert!(flipped.status_real(Coord::new(6, 1)).is_unsafe());
        assert!(flipped.status_real(Coord::new(7, 0)).is_unsafe());
    }

    #[test]
    fn useless_chain_terminates_at_fault_in_same_column() {
        // Column of faults with a staircase that forces a long useless
        // cascade: every useless node must have a faulty node due north in
        // its own column (invariant used in the staircase-shape proof).
        let l = label(
            Mesh::square(12),
            &[(5, 8), (6, 7), (7, 6), (8, 5), (6, 8), (7, 7), (8, 6), (5, 9), (8, 7)],
        );
        for oc in l.mesh().iter() {
            if l.is_useless(oc) {
                let mut y = oc.y + 1;
                let mut found = false;
                while y < 12 {
                    let c = Coord::new(oc.x, y);
                    if l.status(c) == NodeStatus::Faulty {
                        found = true;
                        break;
                    } else if l.is_useless(c) {
                        y += 1;
                    } else {
                        break;
                    }
                }
                assert!(found, "useless node {oc:?} lacks a fault due north");
            }
        }
    }

    #[test]
    fn incremental_add_matches_full_compute() {
        let mesh = Mesh::square(12);
        let base: Vec<Coord> =
            [(2, 4), (3, 3), (4, 2), (8, 8)].iter().map(|&(x, y)| Coord::new(x, y)).collect();
        for o in meshpath_mesh::Orientation::ALL {
            let mut faults = FaultSet::from_coords(mesh, base.clone());
            let mut lab = Labeling::compute(&faults, o, BorderPolicy::Open);
            for add in [Coord::new(3, 4), Coord::new(9, 7), Coord::new(0, 0)] {
                faults.inject(add);
                let (inc, changed) = lab.with_fault_added(&faults, add);
                let full = Labeling::compute(&faults, o, BorderPolicy::Open);
                for oc in mesh.iter() {
                    assert_eq!(inc.raw_mask(oc), full.raw_mask(oc), "mask mismatch at {oc:?}");
                }
                assert_eq!(inc.unsafe_count(), full.unsafe_count());
                assert_eq!(inc.faulty_count(), full.faulty_count());
                assert!(changed.contains(&o.apply(&mesh, add)));
                lab = inc;
            }
        }
    }

    #[test]
    fn incremental_remove_matches_full_compute() {
        let mesh = Mesh::square(12);
        let coords: Vec<Coord> = [(2, 4), (3, 3), (4, 2), (8, 8), (3, 4)]
            .iter()
            .map(|&(x, y)| Coord::new(x, y))
            .collect();
        for o in meshpath_mesh::Orientation::ALL {
            for &rm in &coords {
                let faults = FaultSet::from_coords(mesh, coords.clone());
                let lab = Labeling::compute(&faults, o, BorderPolicy::Open);
                // The old component containing rm, via a direct flood fill
                // over unsafe cells (what MccSet::cells() reports).
                let orm = o.apply(&mesh, rm);
                let mut comp = vec![orm];
                let mut seen = std::collections::HashSet::from([orm]);
                let mut stack = vec![orm];
                while let Some(u) = stack.pop() {
                    for v in mesh.neighbors(u) {
                        if lab.status(v).is_unsafe() && seen.insert(v) {
                            comp.push(v);
                            stack.push(v);
                        }
                    }
                }
                let mut repaired = faults.clone();
                repaired.repair(rm);
                let (inc, changed) = lab.with_fault_removed(&repaired, rm, &comp);
                let full = Labeling::compute(&repaired, o, BorderPolicy::Open);
                for oc in mesh.iter() {
                    assert_eq!(inc.raw_mask(oc), full.raw_mask(oc), "mask mismatch at {oc:?}");
                }
                assert_eq!(inc.unsafe_count(), full.unsafe_count());
                assert!(changed.contains(&orm));
            }
        }
    }

    #[test]
    fn large_mesh_picks_sparse_storage() {
        // 512x512 = 262144 nodes > SPARSE_NODES: the mask must go sparse,
        // and a fault-free compute must not label anything (and must not
        // take O(n) fixpoint work — the worklist seed is empty).
        let mesh = Mesh::square(512);
        assert!(mesh.len() > SPARSE_NODES);
        let fs = FaultSet::none(mesh);
        let l = Labeling::compute(&fs, Orientation::IDENTITY, BorderPolicy::Open);
        assert!(l.mask_is_sparse());
        assert_eq!(l.unsafe_count(), 0);
        assert_eq!(l.safe_count(), mesh.len());
        assert_eq!(l.unsafe_nodes().count(), 0);
        // And the small meshes of the rest of this suite stay dense.
        let small = Labeling::compute(
            &FaultSet::none(Mesh::square(8)),
            Orientation::IDENTITY,
            BorderPolicy::Open,
        );
        assert!(!small.mask_is_sparse());
    }

    #[test]
    fn sparse_labeling_on_large_mesh_matches_known_pattern() {
        // The canonical anti-diagonal fill, far from the borders of a mesh
        // big enough to force sparse storage.
        let mesh = Mesh::square(512);
        let fs = FaultSet::from_coords(mesh, [Coord::new(100, 101), Coord::new(101, 100)]);
        let l = Labeling::compute(&fs, Orientation::IDENTITY, BorderPolicy::Open);
        assert!(l.mask_is_sparse());
        assert_eq!(l.status(Coord::new(100, 100)), NodeStatus::Useless);
        assert_eq!(l.status(Coord::new(101, 101)), NodeStatus::CantReach);
        assert_eq!(l.unsafe_count(), 4);
        let cells: Vec<Coord> = l.unsafe_nodes().collect();
        // Row-major order, exactly the 2x2 block.
        assert_eq!(
            cells,
            vec![
                Coord::new(100, 100),
                Coord::new(101, 100),
                Coord::new(100, 101),
                Coord::new(101, 101)
            ]
        );
    }

    mod representation_equivalence {
        use super::*;
        use meshpath_mesh::FaultInjection;
        use proptest::prelude::*;
        use rand::rngs::StdRng;

        /// The old unsafe-component flood fill (what `MccSet::cells()`
        /// reports), used to feed `with_fault_removed`.
        fn component_of(lab: &Labeling, oc: Coord) -> Vec<Coord> {
            let mesh = *lab.mesh();
            let mut comp = vec![oc];
            let mut seen = std::collections::HashSet::from([oc]);
            let mut stack = vec![oc];
            while let Some(u) = stack.pop() {
                for v in mesh.neighbors(u) {
                    if lab.status(v).is_unsafe() && seen.insert(v) {
                        comp.push(v);
                        stack.push(v);
                    }
                }
            }
            comp
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// Sparse and dense mask stores must produce bit-identical
            /// labelings — full computes, `unsafe_nodes` order, and the
            /// incremental add/remove paths — across random fault sets,
            /// orientations and border policies.
            #[test]
            fn sparse_matches_dense(
                ((n, faults), (seed, o_ix, b_ix)) in
                    ((4u32..20, 0usize..12), (0u64..u64::MAX, 0usize..4, 0usize..2))
            ) {
                let mesh = Mesh::square(n);
                let mut rng = StdRng::seed_from_u64(seed);
                let fs = FaultSet::random(mesh, faults, FaultInjection::Uniform, &mut rng);
                let o = Orientation::ALL[o_ix];
                let border = [BorderPolicy::Open, BorderPolicy::Blocking][b_ix];
                let dense = Labeling::compute_forced(&fs, o, border, false);
                let sparse = Labeling::compute_forced(&fs, o, border, true);
                prop_assert!(!dense.mask_is_sparse());
                prop_assert!(sparse.mask_is_sparse());
                for oc in mesh.iter() {
                    prop_assert_eq!(dense.raw_mask(oc), sparse.raw_mask(oc), "at {:?}", oc);
                }
                prop_assert_eq!(dense.unsafe_count(), sparse.unsafe_count());
                prop_assert_eq!(dense.faulty_count(), sparse.faulty_count());
                let dn: Vec<Coord> = dense.unsafe_nodes().collect();
                let sn: Vec<Coord> = sparse.unsafe_nodes().collect();
                prop_assert_eq!(dn, sn);

                // Incremental injection through both representations.
                if let Some(add) = mesh.iter().find(|&c| fs.is_healthy(c)) {
                    let mut grown = fs.clone();
                    grown.inject(add);
                    let (di, dc) = dense.with_fault_added(&grown, add);
                    let (si, sc) = sparse.with_fault_added(&grown, add);
                    for oc in mesh.iter() {
                        prop_assert_eq!(di.raw_mask(oc), si.raw_mask(oc), "add at {:?}", oc);
                    }
                    prop_assert_eq!(di.unsafe_count(), si.unsafe_count());
                    let (mut dc, mut sc) = (dc, sc);
                    dc.sort_unstable_by_key(|c| mesh.id(*c));
                    sc.sort_unstable_by_key(|c| mesh.id(*c));
                    prop_assert_eq!(dc, sc);
                }

                // Incremental repair through both representations.
                let first_fault = fs.iter().next();
                if let Some(rm) = first_fault {
                    let orm = o.apply(&mesh, rm);
                    let comp = component_of(&dense, orm);
                    let mut repaired = fs.clone();
                    repaired.repair(rm);
                    let (di, _) = dense.with_fault_removed(&repaired, rm, &comp);
                    let (si, _) = sparse.with_fault_removed(&repaired, rm, &comp);
                    for oc in mesh.iter() {
                        prop_assert_eq!(di.raw_mask(oc), si.raw_mask(oc), "rm at {:?}", oc);
                    }
                    prop_assert_eq!(di.unsafe_count(), si.unsafe_count());
                }
            }
        }
    }

    #[test]
    fn fixpoint_is_stable_under_recheck() {
        // Re-applying the rules at the fixpoint must change nothing.
        let l = label(Mesh::square(16), &[(3, 5), (4, 4), (5, 3), (10, 10), (11, 9), (2, 12)]);
        for oc in l.mesh().iter() {
            if l.status(oc) == NodeStatus::Safe {
                let plus_blocked = |c: Coord| {
                    l.mesh().contains(c) && (l.status(c) == NodeStatus::Faulty || l.is_useless(c))
                };
                let minus_blocked = |c: Coord| {
                    l.mesh().contains(c)
                        && (l.status(c) == NodeStatus::Faulty || l.is_cant_reach(c))
                };
                assert!(
                    !(plus_blocked(oc.step(Dir::PlusX)) && plus_blocked(oc.step(Dir::PlusY))),
                    "safe node {oc:?} should be useless"
                );
                assert!(
                    !(minus_blocked(oc.step(Dir::MinusX)) && minus_blocked(oc.step(Dir::MinusY))),
                    "safe node {oc:?} should be can't-reach"
                );
            }
        }
    }
}
