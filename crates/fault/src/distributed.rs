//! The labeling procedure as a *distributed* protocol.
//!
//! Section 2 of the paper: "The labeling procedure can quickly identify
//! the non-faulty nodes in MCCs. Each active node collects its neighbors'
//! status and updates its status. Only those affected nodes update their
//! status."
//!
//! Here the procedure runs on the message-passing simulator: every node
//! knows only whether each of its four neighbors is faulty (local fault
//! detection) and exchanges *label announcements* with them. Announcements
//! carry the node's predicate mask (useless / can't-reach bits), so the
//! protocol converges to exactly the global fixpoint of
//! [`Labeling::compute`](crate::Labeling::compute) regardless of message
//! ordering — an equivalence the tests assert — and reports message and
//! round costs.

use meshpath_mesh::{Coord, Dir, FaultSet, Mesh, Orientation};
use meshpath_sim::{Outbox, Process, SimStats, Simulator};

use crate::labeling::{BorderPolicy, Labeling, NodeStatus, CANT_REACH, FAULTY, USELESS};

/// Message: "my predicate mask is now `mask`".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Announce {
    mask: u8,
}

/// Per-node state of the distributed labeling protocol.
///
/// Coordinates are *oriented* mesh coordinates; the caller orients the
/// fault set before constructing processes (see [`run_distributed`]).
pub struct LabelProcess {
    mask: u8,
    /// Last known mask of each neighbor, `[+X, -X, +Y, -Y]`; `None` when
    /// the neighbor is outside the mesh.
    view: [Option<u8>; 4],
    border: BorderPolicy,
}

impl LabelProcess {
    fn blocked(&self, slot: usize, bit: u8) -> bool {
        match self.view[slot] {
            Some(m) => m & (FAULTY | bit) != 0,
            None => self.border == BorderPolicy::Blocking,
        }
    }

    /// Re-evaluates both labeling rules; returns the gained flags.
    fn evaluate(&self) -> u8 {
        if self.mask & FAULTY != 0 {
            return 0;
        }
        let mut gained = 0u8;
        // Slots: 0 = +X, 1 = -X, 2 = +Y, 3 = -Y (Dir::ALL order).
        if self.mask & USELESS == 0 && self.blocked(0, USELESS) && self.blocked(2, USELESS) {
            gained |= USELESS;
        }
        if self.mask & CANT_REACH == 0 && self.blocked(1, CANT_REACH) && self.blocked(3, CANT_REACH)
        {
            gained |= CANT_REACH;
        }
        gained
    }

    fn announce(&self, at: Coord, out: &mut Outbox<'_, Announce>) {
        for d in Dir::ALL {
            let n = at.step(d);
            if out.mesh().contains(n) {
                out.send(n, Announce { mask: self.mask });
            }
        }
    }

    fn slot_of(at: Coord, from: Coord) -> usize {
        match at.dir_to(from) {
            Some(Dir::PlusX) => 0,
            Some(Dir::MinusX) => 1,
            Some(Dir::PlusY) => 2,
            Some(Dir::MinusY) => 3,
            None => unreachable!("message from non-neighbor {from:?} at {at:?}"),
        }
    }

    fn react(&mut self, at: Coord, out: &mut Outbox<'_, Announce>) {
        let gained = self.evaluate();
        if gained != 0 {
            self.mask |= gained;
            self.announce(at, out);
        }
    }
}

impl Process for LabelProcess {
    type Msg = Announce;

    fn on_start(&mut self, at: Coord, out: &mut Outbox<'_, Announce>) {
        if self.mask & FAULTY != 0 {
            // Faulty nodes are inert; neighbors detected the fault locally
            // (their `view` is pre-seeded).
            return;
        }
        self.react(at, out);
    }

    fn on_message(
        &mut self,
        at: Coord,
        from: Coord,
        msg: &Announce,
        out: &mut Outbox<'_, Announce>,
    ) {
        if self.mask & FAULTY != 0 {
            return;
        }
        let slot = Self::slot_of(at, from);
        let merged = self.view[slot].unwrap_or(0) | msg.mask;
        self.view[slot] = Some(merged);
        self.react(at, out);
    }
}

/// Outcome of a distributed labeling run.
pub struct DistributedLabeling {
    /// The converged status per oriented coordinate.
    statuses: meshpath_mesh::Grid<NodeStatus>,
    masks: meshpath_mesh::Grid<u8>,
    /// Simulator statistics (messages, time, nodes involved).
    pub stats: SimStats,
    mesh: Mesh,
}

impl DistributedLabeling {
    /// Converged status at an oriented coordinate.
    pub fn status(&self, oc: Coord) -> NodeStatus {
        self.statuses[oc]
    }

    /// True when the distributed run matches a global fixpoint labeling,
    /// comparing the exact predicate masks.
    pub fn agrees_with(&self, global: &Labeling) -> bool {
        self.mesh.iter().all(|oc| {
            let g = ((global.status(oc) == NodeStatus::Faulty) as u8)
                | ((global.is_useless(oc) as u8) << 1)
                | ((global.is_cant_reach(oc) as u8) << 2);
            self.masks[oc] == g
        })
    }
}

/// Runs the distributed labeling protocol for `faults` in the
/// `orientation` frame and returns the converged statuses plus costs.
pub fn run_distributed(
    faults: &FaultSet,
    orientation: Orientation,
    border: BorderPolicy,
) -> DistributedLabeling {
    let mesh = *faults.mesh();
    let is_faulty_oriented = |oc: Coord| faults.is_faulty(orientation.apply(&mesh, oc));

    let mut sim = Simulator::new(mesh, |oc| {
        let mut view = [None; 4];
        for (slot, d) in Dir::ALL.into_iter().enumerate() {
            let n = oc.step(d);
            if mesh.contains(n) {
                // Local fault detection: a node observes whether each
                // neighbor answers at all. Healthy neighbors start clean.
                view[slot] = Some(if is_faulty_oriented(n) { FAULTY } else { 0 });
            }
        }
        LabelProcess { mask: if is_faulty_oriented(oc) { FAULTY } else { 0 }, view, border }
    });
    let stats = sim.run();
    let statuses =
        meshpath_mesh::Grid::from_fn(mesh, |oc| NodeStatus::from_mask(sim.node(oc).mask));
    let masks = meshpath_mesh::Grid::from_fn(mesh, |oc| sim.node(oc).mask);
    DistributedLabeling { statuses, masks, stats, mesh }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meshpath_mesh::FaultInjection;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn distributed_matches_global_on_examples() {
        let mesh = Mesh::square(12);
        let cases: [&[(i32, i32)]; 5] = [
            &[],
            &[(5, 5)],
            &[(2, 3), (3, 2)],
            &[(2, 4), (3, 3), (4, 2), (8, 8), (8, 9), (9, 8)],
            &[(4, 5), (4, 3), (3, 4), (5, 4)], // plus shape: dual label
        ];
        for coords in cases {
            let fs = FaultSet::from_coords(mesh, coords.iter().map(|&(x, y)| Coord::new(x, y)));
            for o in Orientation::ALL {
                let global = Labeling::compute(&fs, o, BorderPolicy::Open);
                let dist = run_distributed(&fs, o, BorderPolicy::Open);
                assert!(dist.agrees_with(&global), "mismatch for {coords:?} under {o:?}");
            }
        }
    }

    #[test]
    fn distributed_matches_global_randomized() {
        let mesh = Mesh::square(20);
        let mut rng = StdRng::seed_from_u64(1234);
        for trial in 0..10 {
            let fs = FaultSet::random(mesh, 30 + 10 * trial, FaultInjection::Uniform, &mut rng);
            let global = Labeling::compute(&fs, Orientation::IDENTITY, BorderPolicy::Open);
            let dist = run_distributed(&fs, Orientation::IDENTITY, BorderPolicy::Open);
            assert!(dist.agrees_with(&global), "trial {trial} diverged");
        }
    }

    #[test]
    fn quiet_when_no_labels_needed() {
        // A single fault produces no useless/can't-reach nodes, so no node
        // ever announces: the protocol is silent.
        let mesh = Mesh::square(8);
        let fs = FaultSet::from_coords(mesh, [Coord::new(4, 4)]);
        let dist = run_distributed(&fs, Orientation::IDENTITY, BorderPolicy::Open);
        assert_eq!(dist.stats.messages, 0);
    }

    #[test]
    fn cascade_costs_messages_proportional_to_fill() {
        // The descending diagonal fills a 3x3 block: 4 healthy nodes
        // change status, each announcing to <= 4 neighbors; dual upgrades
        // can announce twice.
        let mesh = Mesh::square(10);
        let fs =
            FaultSet::from_coords(mesh, [Coord::new(2, 4), Coord::new(3, 3), Coord::new(4, 2)]);
        let dist = run_distributed(&fs, Orientation::IDENTITY, BorderPolicy::Open);
        let global = Labeling::compute(&fs, Orientation::IDENTITY, BorderPolicy::Open);
        assert!(dist.agrees_with(&global));
        assert!(dist.stats.messages > 0);
        assert!(dist.stats.messages <= 8 * 8, "unexpectedly chatty: {}", dist.stats.messages);
    }

    #[test]
    fn blocking_border_policy_converges_too() {
        let mesh = Mesh::square(9);
        let fs = FaultSet::from_coords(mesh, [Coord::new(4, 4), Coord::new(5, 3)]);
        let global = Labeling::compute(&fs, Orientation::IDENTITY, BorderPolicy::Blocking);
        let dist = run_distributed(&fs, Orientation::IDENTITY, BorderPolicy::Blocking);
        assert!(dist.agrees_with(&global));
    }
}
