//! Fault-configuration statistics backing Fig. 5(a) and 5(b).

use serde::{Deserialize, Serialize};

use meshpath_mesh::{FaultSet, Orientation};

use crate::labeling::BorderPolicy;
use crate::mcc::MccSet;

/// Summary of one fault configuration under one orientation.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultConfigStats {
    /// Nodes in the mesh.
    pub total_nodes: usize,
    /// Injected faults.
    pub faults: usize,
    /// Faulty + useless + can't-reach nodes.
    pub disabled: usize,
    /// Non-faulty nodes swallowed by MCCs.
    pub healthy_disabled: usize,
    /// Number of MCCs.
    pub mcc_count: usize,
    /// Cells of the largest MCC.
    pub largest_mcc: usize,
}

impl FaultConfigStats {
    /// Percentage of disabled area to the total area (Fig. 5a's y-axis).
    pub fn disabled_pct(&self) -> f64 {
        100.0 * self.disabled as f64 / self.total_nodes as f64
    }

    /// Percentage of injected faults to the total area.
    pub fn fault_pct(&self) -> f64 {
        100.0 * self.faults as f64 / self.total_nodes as f64
    }
}

/// Computes the Fig. 5(a)/(b) statistics for one configuration.
pub fn config_stats(faults: &FaultSet, orientation: Orientation) -> FaultConfigStats {
    let set = MccSet::build(faults, orientation, BorderPolicy::Open);
    stats_of(faults, &set)
}

/// Statistics for an already-built [`MccSet`].
pub fn stats_of(faults: &FaultSet, set: &MccSet) -> FaultConfigStats {
    FaultConfigStats {
        total_nodes: faults.mesh().len(),
        faults: faults.count(),
        disabled: set.labeling().unsafe_count(),
        healthy_disabled: set.labeling().healthy_unsafe_count(),
        mcc_count: set.len(),
        largest_mcc: set.iter().map(|m| m.cell_count()).max().unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meshpath_mesh::{Coord, Mesh};

    #[test]
    fn stats_of_simple_config() {
        let mesh = Mesh::square(10);
        let fs =
            FaultSet::from_coords(mesh, [Coord::new(2, 3), Coord::new(3, 2), Coord::new(7, 7)]);
        let s = config_stats(&fs, Orientation::IDENTITY);
        assert_eq!(s.total_nodes, 100);
        assert_eq!(s.faults, 3);
        // The anti-diagonal pair fills to a 2x2 block; plus the lone fault.
        assert_eq!(s.disabled, 5);
        assert_eq!(s.healthy_disabled, 2);
        assert_eq!(s.mcc_count, 2);
        assert_eq!(s.largest_mcc, 4);
        assert!((s.disabled_pct() - 5.0).abs() < 1e-9);
        assert!((s.fault_pct() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn zero_fault_stats() {
        let fs = FaultSet::none(Mesh::square(10));
        let s = config_stats(&fs, Orientation::IDENTITY);
        assert_eq!(s.disabled, 0);
        assert_eq!(s.mcc_count, 0);
        assert_eq!(s.largest_mcc, 0);
        assert_eq!(s.disabled_pct(), 0.0);
    }
}
