//! Minimal connected components: extraction, shape and corners.
//!
//! At the labeling fixpoint, 4-connected groups of unsafe nodes form the
//! MCCs. Under [`BorderPolicy::Open`] every MCC
//! is a **rising staircase**: its cells occupy, per column
//! `x ∈ [x0..x1]`, one contiguous interval `[lo(x), hi(x)]` with both `lo`
//! and `hi` non-decreasing in `x` and consecutive columns overlapping.
//! (Sketch: the useless rule fills south-west-facing concavities, the
//! can't-reach rule fills north-east-facing ones; every useless node has a
//! faulty node due north in its own column and due east in its own row, so
//! fills stay inside the component's bounding box and the fixpoint is
//! exactly the staircase closure. The property is enforced by debug
//! assertions and proptest.)
//!
//! The paper's two pivots fall out of the shape:
//!
//! * the **initialization corner** `c = (x0-1, lo(x0)-1)` — the safe node
//!   whose `+X` and `+Y` neighbors are edge nodes of the MCC;
//! * the **opposite corner** `c' = (x1+1, hi(x1)+1)` — the safe node whose
//!   `-X` and `-Y` neighbors are edge nodes of the MCC.
//!
//! Either corner may fall outside the mesh (MCC touching the south/west or
//! north/east rims) or on an unsafe node of *another* MCC (diagonally
//! adjacent components); [`Mcc::corner_usable`] reports this and the
//! routing layer treats such detour pivots as infeasible.

use serde::{Deserialize, Serialize};

use meshpath_mesh::{Coord, FaultSet, FxHashMap, Grid, Mesh, Orientation, Rect};

use crate::labeling::{BorderPolicy, Labeling};

/// Identifier of an MCC within one [`MccSet`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize)]
pub struct MccId(pub u32);

impl MccId {
    /// The raw index, for table lookups.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Per-column vertical span of an MCC (inclusive).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct ColSpan {
    /// Lowest occupied row of the column.
    pub lo: i32,
    /// Highest occupied row of the column.
    pub hi: i32,
}

/// One minimal connected component, in oriented coordinates.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Mcc {
    id: MccId,
    x0: i32,
    cols: Vec<ColSpan>,
    cell_count: usize,
    faulty_count: usize,
    staircase: bool,
    bbox: Rect,
}

impl Mcc {
    /// This MCC's identifier.
    #[inline]
    pub fn id(&self) -> MccId {
        self.id
    }

    /// First (westmost) occupied column.
    #[inline]
    pub fn x0(&self) -> i32 {
        self.x0
    }

    /// Last (eastmost) occupied column.
    #[inline]
    pub fn x1(&self) -> i32 {
        self.x0 + self.cols.len() as i32 - 1
    }

    /// The vertical span of column `x`, if occupied.
    #[inline]
    pub fn col(&self, x: i32) -> Option<ColSpan> {
        if x < self.x0 {
            return None;
        }
        self.cols.get((x - self.x0) as usize).copied()
    }

    /// All column spans west to east.
    pub fn cols(&self) -> &[ColSpan] {
        &self.cols
    }

    /// Number of cells (unsafe nodes) in the component.
    #[inline]
    pub fn cell_count(&self) -> usize {
        self.cell_count
    }

    /// Number of *faulty* cells (the rest are useless/can't-reach).
    #[inline]
    pub fn faulty_count(&self) -> usize {
        self.faulty_count
    }

    /// Whether the rising-staircase shape invariant held for this
    /// component (always true under the `Open` border policy).
    #[inline]
    pub fn is_staircase(&self) -> bool {
        self.staircase
    }

    /// Bounding rectangle of the component.
    #[inline]
    pub fn bbox(&self) -> Rect {
        self.bbox
    }

    /// True when the (oriented) coordinate is a cell of this MCC.
    ///
    /// Exact only for staircase shapes; for non-staircase components (the
    /// exploratory `Blocking` policy) this tests the per-column hull.
    #[inline]
    pub fn contains(&self, oc: Coord) -> bool {
        match self.col(oc.x) {
            Some(span) => span.lo <= oc.y && oc.y <= span.hi,
            None => false,
        }
    }

    /// The initialization corner `c = (x0-1, lo(x0)-1)` (paper Fig. 1b):
    /// the pivot for `-X` boundary construction and south-west detours.
    #[inline]
    pub fn corner(&self) -> Coord {
        Coord::new(self.x0 - 1, self.cols[0].lo - 1)
    }

    /// The opposite corner `c' = (x1+1, hi(x1)+1)`: the pivot for `+X`
    /// boundary construction and north-east detours.
    #[inline]
    pub fn opposite(&self) -> Coord {
        Coord::new(self.x1() + 1, self.cols[self.cols.len() - 1].hi + 1)
    }

    /// True when `corner` (either pivot) is a safe in-mesh node of
    /// `labeling` — i.e. actually usable as a detour waypoint.
    pub fn corner_usable(labeling: &Labeling, corner: Coord) -> bool {
        labeling.is_safe_node(corner)
    }

    /// Iterator over the component's cells (oriented coordinates),
    /// column-major west to east.
    pub fn cells(&self) -> impl Iterator<Item = Coord> + '_ {
        self.cols.iter().enumerate().flat_map(move |(i, span)| {
            let x = self.x0 + i as i32;
            (span.lo..=span.hi).map(move |y| Coord::new(x, y))
        })
    }

    /// Horizontal extent `(west, east)` of the component at row `y`, if
    /// the row is occupied. Exact for staircase shapes (the occupied
    /// columns of a row are contiguous).
    pub fn row_range(&self, y: i32) -> Option<(i32, i32)> {
        // lo is non-decreasing: columns with lo(x) <= y form a prefix;
        // hi is non-decreasing: columns with hi(x) >= y form a suffix.
        let mut west = None;
        for (i, s) in self.cols.iter().enumerate() {
            if s.lo <= y && y <= s.hi {
                west = Some(self.x0 + i as i32);
                break;
            }
        }
        let west = west?;
        let mut east = west;
        for (i, s) in self.cols.iter().enumerate().rev() {
            if s.lo <= y && y <= s.hi {
                east = self.x0 + i as i32;
                break;
            }
        }
        Some((west, east))
    }

    /// True when `p` lies in the **Y-forbidden shadow** of this MCC: the
    /// column span is occupied and `p` sits strictly below the lower
    /// staircase. A routing at such a node cannot make monotone `+Y`
    /// progress past this MCC within its column span.
    #[inline]
    pub fn shadow_y(&self, p: Coord) -> bool {
        matches!(self.col(p.x), Some(s) if p.y < s.lo)
    }

    /// True when `p` lies in the **Y-critical region**: strictly above the
    /// upper staircase within the column span. `shadow_y(s) && critical_y(d)`
    /// is the paper's "routing blocked in the `+Y` direction" condition.
    #[inline]
    pub fn critical_y(&self, p: Coord) -> bool {
        matches!(self.col(p.x), Some(s) if p.y > s.hi)
    }

    /// True when `p` lies in the **X-forbidden shadow**: the row is
    /// occupied and `p` sits strictly west of the row's westmost cell.
    #[inline]
    pub fn shadow_x(&self, p: Coord) -> bool {
        matches!(self.row_range(p.y), Some((w, _)) if p.x < w)
    }

    /// True when `p` lies in the **X-critical region**: strictly east of
    /// the row's eastmost cell.
    #[inline]
    pub fn critical_x(&self, p: Coord) -> bool {
        matches!(self.row_range(p.y), Some((_, e)) if p.x > e)
    }
}

/// All MCCs of one labeling, plus the cell-to-component index.
#[derive(Clone, Debug)]
pub struct MccSet {
    labeling: Labeling,
    mccs: Vec<Mcc>,
    /// Oriented coordinate -> owning MCC id (`NO_MCC` for safe cells).
    cell_mcc: CellIndex,
}

const NO_MCC: u32 = u32::MAX;

/// Cell-to-component index: dense per-node ids on small meshes, a hash map
/// holding only the unsafe cells (absent = `NO_MCC`) on large ones — the
/// storage mirrors the labeling's own mask representation, so a sparse
/// labeling never re-materializes an O(nodes) grid here.
#[derive(Clone, Debug)]
enum CellIndex {
    Dense(Grid<u32>),
    Sparse { mesh: Mesh, map: FxHashMap<u32, u32> },
}

impl CellIndex {
    fn new(mesh: Mesh, sparse: bool) -> Self {
        if sparse {
            CellIndex::Sparse { mesh, map: FxHashMap::default() }
        } else {
            CellIndex::Dense(Grid::new(mesh, NO_MCC))
        }
    }

    /// Owning component id at `oc` (`NO_MCC` for safe or out-of-mesh).
    #[inline]
    fn get(&self, oc: Coord) -> u32 {
        match self {
            CellIndex::Dense(g) => g.get(oc).copied().unwrap_or(NO_MCC),
            CellIndex::Sparse { mesh, map } => match mesh.try_id(oc) {
                Some(id) => map.get(&id.0).copied().unwrap_or(NO_MCC),
                None => NO_MCC,
            },
        }
    }

    #[inline]
    fn set(&mut self, oc: Coord, id: u32) {
        match self {
            CellIndex::Dense(g) => g[oc] = id,
            CellIndex::Sparse { mesh, map } => {
                map.insert(mesh.id(oc).0, id);
            }
        }
    }
}

impl MccSet {
    /// Labels `faults` under `orientation`/`border` and extracts the MCCs.
    pub fn build(faults: &FaultSet, orientation: Orientation, border: BorderPolicy) -> Self {
        let labeling = Labeling::compute(faults, orientation, border);
        Self::from_labeling(labeling, faults)
    }

    /// Extracts the MCCs of an existing labeling.
    pub fn from_labeling(labeling: Labeling, faults: &FaultSet) -> Self {
        let mesh = *labeling.mesh();
        let orientation = labeling.orientation();
        let mut cell_mcc = CellIndex::new(mesh, labeling.mask_is_sparse());
        let mut mccs: Vec<Mcc> = Vec::new();
        let mut stack: Vec<Coord> = Vec::new();
        let mut cells: Vec<Coord> = Vec::new();

        // `unsafe_nodes()` is row-major sorted under both mask
        // representations, so discovery order — and with it the MccId
        // assignment — is identical to a full row-major mesh scan while
        // touching only the unsafe cells.
        for start in labeling.unsafe_nodes() {
            if cell_mcc.get(start) != NO_MCC {
                continue;
            }
            let id = MccId(mccs.len() as u32);
            cells.clear();
            cell_mcc.set(start, id.0);
            stack.push(start);
            while let Some(u) = stack.pop() {
                cells.push(u);
                for v in mesh.neighbors(u) {
                    if labeling.status(v).is_unsafe() && cell_mcc.get(v) == NO_MCC {
                        cell_mcc.set(v, id.0);
                        stack.push(v);
                    }
                }
            }
            mccs.push(Self::shape_of(id, &cells, &labeling, faults, orientation));
        }

        MccSet { labeling, mccs, cell_mcc }
    }

    fn shape_of(
        id: MccId,
        cells: &[Coord],
        labeling: &Labeling,
        faults: &FaultSet,
        orientation: Orientation,
    ) -> Mcc {
        let mesh = *labeling.mesh();
        let mut bbox = Rect::point(cells[0]);
        for &c in cells {
            bbox.expand(c);
        }
        let x0 = bbox.x0;
        let width = (bbox.x1 - bbox.x0 + 1) as usize;
        let mut lo = vec![i32::MAX; width];
        let mut hi = vec![i32::MIN; width];
        let mut per_col_count = vec![0usize; width];
        let mut faulty_count = 0usize;
        for &c in cells {
            let i = (c.x - x0) as usize;
            lo[i] = lo[i].min(c.y);
            hi[i] = hi[i].max(c.y);
            per_col_count[i] += 1;
            if faults.is_faulty(orientation.apply(&mesh, c)) {
                faulty_count += 1;
            }
        }

        // Rising-staircase validation: contiguous columns, spans matching
        // the cell counts (no holes), lo/hi non-decreasing, consecutive
        // columns overlapping.
        let mut staircase = true;
        for i in 0..width {
            if lo[i] > hi[i] {
                staircase = false; // empty column inside the bbox
                break;
            }
            if per_col_count[i] != (hi[i] - lo[i] + 1) as usize {
                staircase = false; // vertical hole
                break;
            }
            if i > 0 && (lo[i] < lo[i - 1] || hi[i] < hi[i - 1] || lo[i] > hi[i - 1]) {
                staircase = false; // not rising, or columns disconnected
                break;
            }
        }
        debug_assert!(
            staircase || labeling.border_policy() == BorderPolicy::Blocking,
            "non-staircase MCC under Open border policy: cells {cells:?}"
        );

        let cols = lo.into_iter().zip(hi).map(|(lo, hi)| ColSpan { lo, hi }).collect();
        Mcc { id, x0, cols, cell_count: cells.len(), faulty_count, staircase, bbox }
    }

    /// The labeling the components were extracted from.
    #[inline]
    pub fn labeling(&self) -> &Labeling {
        &self.labeling
    }

    /// The mesh.
    #[inline]
    pub fn mesh(&self) -> &Mesh {
        self.labeling.mesh()
    }

    /// The orientation of the oriented frame.
    #[inline]
    pub fn orientation(&self) -> Orientation {
        self.labeling.orientation()
    }

    /// Number of components.
    #[inline]
    pub fn len(&self) -> usize {
        self.mccs.len()
    }

    /// True when the mesh has no unsafe node.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.mccs.is_empty()
    }

    /// The components, ordered by discovery (row-major first cell).
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = &Mcc> {
        self.mccs.iter()
    }

    /// Component by id.
    #[inline]
    pub fn get(&self, id: MccId) -> &Mcc {
        &self.mccs[id.index()]
    }

    /// The MCC owning the (oriented) coordinate, if it is an unsafe cell.
    #[inline]
    pub fn mcc_at(&self, oc: Coord) -> Option<MccId> {
        let raw = self.cell_mcc.get(oc);
        (raw != NO_MCC).then_some(MccId(raw))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meshpath_mesh::FaultSet;

    fn build(mesh: Mesh, faults: &[(i32, i32)]) -> MccSet {
        let fs = FaultSet::from_coords(mesh, faults.iter().map(|&(x, y)| Coord::new(x, y)));
        MccSet::build(&fs, Orientation::IDENTITY, BorderPolicy::Open)
    }

    #[test]
    fn empty_mesh_has_no_mccs() {
        let set = build(Mesh::square(6), &[]);
        assert!(set.is_empty());
        assert_eq!(set.len(), 0);
    }

    #[test]
    fn single_fault_single_cell_mcc() {
        let set = build(Mesh::square(8), &[(3, 4)]);
        assert_eq!(set.len(), 1);
        let m = set.get(MccId(0));
        assert_eq!(m.cell_count(), 1);
        assert_eq!(m.faulty_count(), 1);
        assert!(m.is_staircase());
        assert_eq!(m.corner(), Coord::new(2, 3));
        assert_eq!(m.opposite(), Coord::new(4, 5));
        assert_eq!(set.mcc_at(Coord::new(3, 4)), Some(MccId(0)));
        assert_eq!(set.mcc_at(Coord::new(3, 3)), None);
    }

    #[test]
    fn separate_faults_make_separate_mccs() {
        let set = build(Mesh::square(10), &[(1, 1), (8, 8), (4, 6)]);
        assert_eq!(set.len(), 3);
        for m in set.iter() {
            assert_eq!(m.cell_count(), 1);
        }
    }

    #[test]
    fn anti_diagonal_merges_into_one_block() {
        let set = build(Mesh::square(8), &[(2, 3), (3, 2)]);
        assert_eq!(set.len(), 1);
        let m = set.get(MccId(0));
        assert_eq!(m.cell_count(), 4);
        assert_eq!(m.faulty_count(), 2);
        assert!(m.is_staircase());
        assert_eq!(m.corner(), Coord::new(1, 1));
        assert_eq!(m.opposite(), Coord::new(4, 4));
        assert_eq!(m.col(2), Some(ColSpan { lo: 2, hi: 3 }));
        assert_eq!(m.col(3), Some(ColSpan { lo: 2, hi: 3 }));
    }

    #[test]
    fn ascending_staircase_shape() {
        let set = build(Mesh::square(10), &[(2, 2), (3, 2), (3, 3), (4, 3), (4, 4)]);
        assert_eq!(set.len(), 1);
        let m = set.get(MccId(0));
        assert!(m.is_staircase());
        assert_eq!(m.x0(), 2);
        assert_eq!(m.x1(), 4);
        assert_eq!(m.col(2), Some(ColSpan { lo: 2, hi: 2 }));
        assert_eq!(m.col(3), Some(ColSpan { lo: 2, hi: 3 }));
        assert_eq!(m.col(4), Some(ColSpan { lo: 3, hi: 4 }));
        assert_eq!(m.corner(), Coord::new(1, 1));
        assert_eq!(m.opposite(), Coord::new(5, 5));
        assert_eq!(m.cells().count(), m.cell_count());
    }

    #[test]
    fn descending_staircase_fills_and_stays_one_component() {
        let set = build(Mesh::square(10), &[(2, 4), (3, 3), (4, 2)]);
        assert_eq!(set.len(), 1);
        let m = set.get(MccId(0));
        assert_eq!(m.cell_count(), 9);
        assert_eq!(m.faulty_count(), 3);
        assert!(m.is_staircase());
        assert_eq!(m.bbox(), Rect::new(Coord::new(2, 2), Coord::new(4, 4)));
    }

    #[test]
    fn border_touching_mcc_has_out_of_mesh_corner() {
        let set = build(Mesh::square(6), &[(0, 0)]);
        let m = set.get(MccId(0));
        assert_eq!(m.corner(), Coord::new(-1, -1));
        assert!(!Mcc::corner_usable(set.labeling(), m.corner()));
        assert!(Mcc::corner_usable(set.labeling(), m.opposite()));
    }

    #[test]
    fn corner_blocked_by_diagonal_mcc_is_unusable() {
        // MCC A at (3,3); its corner (2,2) is itself faulty (MCC B).
        let set = build(Mesh::square(8), &[(3, 3), (2, 2)]);
        assert_eq!(set.len(), 2);
        let a = set.iter().find(|m| m.contains(Coord::new(3, 3))).expect("mcc A");
        assert_eq!(a.corner(), Coord::new(2, 2));
        assert!(!Mcc::corner_usable(set.labeling(), a.corner()));
    }

    #[test]
    fn row_range_and_region_predicates() {
        // Staircase: col2 [2,2], col3 [2,3], col4 [3,4].
        let set = build(Mesh::square(10), &[(2, 2), (3, 2), (3, 3), (4, 3), (4, 4)]);
        let m = set.get(MccId(0));
        assert_eq!(m.row_range(2), Some((2, 3)));
        assert_eq!(m.row_range(3), Some((3, 4)));
        assert_eq!(m.row_range(4), Some((4, 4)));
        assert_eq!(m.row_range(1), None);
        assert_eq!(m.row_range(5), None);

        // Y-shadow: below the lower staircase, within the column span.
        assert!(m.shadow_y(Coord::new(2, 1)));
        assert!(m.shadow_y(Coord::new(4, 2)));
        assert!(!m.shadow_y(Coord::new(1, 1))); // west of span
        assert!(!m.shadow_y(Coord::new(4, 3))); // a cell, not shadow
                                                // Y-critical: above the upper staircase.
        assert!(m.critical_y(Coord::new(2, 3)));
        assert!(m.critical_y(Coord::new(4, 5)));
        assert!(!m.critical_y(Coord::new(5, 5)));
        // X-shadow / X-critical.
        assert!(m.shadow_x(Coord::new(0, 2)));
        assert!(m.shadow_x(Coord::new(2, 3)));
        assert!(!m.shadow_x(Coord::new(2, 2)));
        assert!(m.critical_x(Coord::new(4, 2)));
        assert!(m.critical_x(Coord::new(5, 3)));
        assert!(!m.critical_x(Coord::new(5, 5)));
    }

    #[test]
    fn blocking_condition_matches_geometry() {
        // Single fault at (5,5): s on the same column below, d on the same
        // column above => blocked in +Y; shifting d one column east
        // unblocks.
        let set = build(Mesh::square(10), &[(5, 5)]);
        let m = set.get(MccId(0));
        let s = Coord::new(5, 0);
        assert!(m.shadow_y(s) && m.critical_y(Coord::new(5, 9)));
        assert!(!(m.shadow_y(s) && m.critical_y(Coord::new(6, 9))));
        // And the X-type condition for a west-east pair on the same row.
        assert!(m.shadow_x(Coord::new(0, 5)) && m.critical_x(Coord::new(9, 5)));
    }

    mod representation_equivalence {
        use super::*;
        use meshpath_mesh::FaultInjection;
        use proptest::prelude::*;
        use rand::rngs::StdRng;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            /// MCC extraction from a sparse labeling must assign the same
            /// MccIds, shapes and cell index as from the dense one: the
            /// discovery scan goes through `unsafe_nodes()` whose order is
            /// representation-independent.
            #[test]
            fn sparse_extraction_matches_dense(
                ((n, faults), (seed, o_ix)) in
                    ((5u32..18, 0usize..10), (0u64..u64::MAX, 0usize..4))
            ) {
                let mesh = Mesh::square(n);
                let mut rng = StdRng::seed_from_u64(seed);
                let fs = FaultSet::random(mesh, faults, FaultInjection::Uniform, &mut rng);
                let o = Orientation::ALL[o_ix];
                let dense = MccSet::from_labeling(
                    Labeling::compute_forced(&fs, o, BorderPolicy::Open, false),
                    &fs,
                );
                let sparse = MccSet::from_labeling(
                    Labeling::compute_forced(&fs, o, BorderPolicy::Open, true),
                    &fs,
                );
                prop_assert_eq!(dense.len(), sparse.len());
                for (d, s) in dense.iter().zip(sparse.iter()) {
                    prop_assert_eq!(d.id(), s.id());
                    prop_assert_eq!(d.x0(), s.x0());
                    prop_assert_eq!(d.cols(), s.cols());
                    prop_assert_eq!(d.cell_count(), s.cell_count());
                    prop_assert_eq!(d.faulty_count(), s.faulty_count());
                    prop_assert_eq!(d.bbox(), s.bbox());
                }
                for oc in mesh.iter() {
                    prop_assert_eq!(dense.mcc_at(oc), sparse.mcc_at(oc), "at {:?}", oc);
                }
            }
        }
    }

    #[test]
    fn contains_matches_cell_grid() {
        let set = build(Mesh::square(12), &[(2, 4), (3, 3), (4, 2), (8, 8), (8, 9)]);
        for oc in Mesh::square(12).iter() {
            let by_grid = set.mcc_at(oc);
            let by_shape = set.iter().find(|m| m.contains(oc)).map(|m| m.id());
            assert_eq!(by_grid, by_shape, "mismatch at {oc:?}");
        }
    }
}
