//! # meshpath-fault
//!
//! Fault models for 2-D meshes, centered on Wang's **minimal connected
//! component (MCC)** model as used by Jiang & Wu (IPDPS 2007).
//!
//! The MCC model refines the classic rectangular fault block model by
//! including a non-faulty node in a fault region only if *using it in a
//! routing would definitely make the route non-shortest* (relative to the
//! source/destination quadrant). Concretely, Section 2 of the paper defines
//! an iterative labeling:
//!
//! * a safe node whose `+X` **and** `+Y` neighbors are faulty or *useless*
//!   becomes **useless** (once a routing enters it, the next move must take
//!   a `-X`/`-Y` direction);
//! * a safe node whose `-X` **and** `-Y` neighbors are faulty or
//!   *can't-reach* becomes **can't-reach** (entering it required a
//!   `-X`/`-Y` move);
//! * iterate to fixpoint. Faulty, useless and can't-reach nodes are
//!   *unsafe*; 4-connected groups of unsafe nodes form the MCCs.
//!
//! This crate provides:
//!
//! * [`NodeStatus`] / [`Labeling`] — the fixpoint labeling, computed per
//!   [`Orientation`] (the paper's WLOG destination-NE-of-source frame).
//! * [`Mcc`] / [`MccSet`] — extraction of the components, their
//!   rising-staircase shape, and the initialization/opposite corners the
//!   routing algorithms pivot around.
//! * [`blocks`] — the classic rectangular fault block model, used by the
//!   fault-tolerant E-cube baseline of the evaluation.
//! * [`stats`] — disabled-area and MCC-count statistics (Fig. 5a/5b).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blocks;
pub mod distributed;
pub mod labeling;
pub mod mcc;
pub mod stats;

pub use blocks::BlockSet;
pub use labeling::{BorderPolicy, Labeling, NodeStatus, SPARSE_NODES};
pub use mcc::{Mcc, MccId, MccSet};
pub use meshpath_mesh::Orientation;
