//! # meshpath-traffic
//!
//! A deterministic, flit-level, wormhole-switched traffic simulator for
//! 2-D meshes, layered on `meshpath-mesh` and `meshpath-route`.
//!
//! The paper evaluates RB1/RB2/RB3 as single-packet routing decisions;
//! this crate evaluates them as *network-on-chip routing functions
//! under load*: per-node routers with input-buffered virtual channels,
//! credit-based flow control, a per-cycle switch allocator and
//! unit-latency links ([`Fabric`]), driven by seeded injection
//! processes over the standard NoC traffic patterns ([`TrafficPattern`])
//! and measured with warmup/measure/drain methodology
//! ([`TrafficStats`]).
//!
//! ## Layers
//!
//! * [`routing`] — adapters compiling the workspace's [`Router`]s
//!   (RB1/RB2/RB3, fault-tolerant E-cube) plus a dimension-order
//!   [`XyRouter`] baseline into memoized source routes.
//! * [`fabric`] — the cycle-level wormhole router microarchitecture.
//! * [`pattern`] — uniform random, transpose, bit-complement, hotspot
//!   and permutation destination processes.
//! * [`sim`] — the run loop: Bernoulli injection, measurement windows,
//!   saturation and deadlock detection.
//! * [`stats`] — latency histograms and accepted-throughput accounting.
//!
//! ## Example
//!
//! ```
//! use meshpath_mesh::{Coord, FaultSet, Mesh};
//! use meshpath_route::Network;
//! use meshpath_traffic::{run_traffic, RoutingKind, SimConfig};
//!
//! let net = Network::build(FaultSet::from_coords(
//!     Mesh::square(8),
//!     [Coord::new(3, 3)],
//! ));
//! let cfg = SimConfig { rate: 0.01, ..SimConfig::smoke() };
//! let stats = run_traffic(&net, RoutingKind::Rb2, &cfg);
//! assert_eq!(stats.measured_delivered, stats.measured_generated);
//! ```
//!
//! ## Honesty notes
//!
//! * Routing decisions are compiled to source routes once per
//!   `(source, destination)` pair — valid because every router in this
//!   workspace is deterministic per network; see [`routing`].
//! * Wormhole switching with adaptive (detouring) routes is not
//!   deadlock-free in general. The simulator *detects* cyclic waits
//!   (`deadlocked` in [`TrafficStats`]) instead of pretending they
//!   cannot happen; escape virtual channels are a tracked follow-up in
//!   the ROADMAP.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod fabric;
pub mod pattern;
pub mod routing;
pub mod sim;
pub mod stats;

pub use config::{SimConfig, PIPELINE_DEPTH};
pub use fabric::{Fabric, Flit, FrontierEntry, PacketState, StepReport};
pub use pattern::{DestSampler, TrafficPattern};
pub use routing::{PathTable, RoutingKind, XyRouter};
pub use sim::{run_traffic, run_traffic_reusing, single_packet_latency, TrafficSim};
pub use stats::{LatencyHistogram, TrafficStats};

// Re-exported so downstream code can name the trait the adapters build
// on without importing `meshpath-route` separately.
pub use meshpath_route::Router;
