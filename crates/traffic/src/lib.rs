//! # meshpath-traffic
//!
//! A deterministic, flit-level, wormhole-switched traffic simulator for
//! 2-D meshes, layered on `meshpath-mesh` and `meshpath-route`.
//!
//! The paper evaluates RB1/RB2/RB3 as single-packet routing decisions;
//! this crate evaluates them as *network-on-chip routing functions
//! under load*: per-node routers with input-buffered virtual channels,
//! credit-based flow control, a per-cycle switch allocator and
//! unit-latency links ([`Fabric`]), driven by seeded injection
//! processes over the standard NoC traffic patterns ([`TrafficPattern`])
//! and measured with warmup/measure/drain methodology
//! ([`TrafficStats`]).
//!
//! ## Per-hop routing architecture
//!
//! The crate started life source-routed: the network interface compiled
//! a full route per packet and the fabric replayed it flit by flit.
//! That made the paper's distributed algorithms fast to simulate but
//! froze every routing decision at injection time — the fabric could
//! *detect* wormhole deadlock (cyclic channel waits wedged RB1/RB2/RB3
//! at ~2% injection under 10% faults on 16x16) but never avoid it,
//! because avoidance needs a packet to change course *after* it has
//! blocked.
//!
//! The fabric is now routed per hop: every parked head flit asks a
//! [`HopRouter`] for a fresh `(output port, VC class)` decision. The
//! paper's deterministic routers stay fast because their decisions are
//! still backed by a per-pair compiled route table ([`PathTable`] — one
//! full algorithm execution per distinct `(source, destination)` pair,
//! then a lookup per hop), and the per-hop indirection is what enables
//! Duato-style escape routing ([`EscapeHop`]): each output port
//! reserves `escape_vcs` virtual channels as *escape classes* whose
//! channel-dependency graphs are acyclic by construction — strict
//! dimension-order XY (entered only past a fault-free XY run) and
//! up*/down* routing on a spanning forest of the healthy nodes
//! ([`EscapeForest`], available from *every* node). A head blocked past
//! the policy's patience re-routes onto an escape class, escape traffic
//! is guaranteed to drain, and so — per Duato's argument — the fabric
//! cannot interlock: RB1/RB2/RB3 stay live at injection rates several
//! times past the old onset.
//!
//! ## Layers
//!
//! * [`routing`] — the [`HopRouter`] trait and its implementations:
//!   [`ReplayHop`] (compiled-route replay, the original semantics) and
//!   [`EscapeHop`] (adaptive + XY escape class); the [`PathTable`]
//!   compiling the workspace's [`Router`]s (RB1/RB2/RB3, fault-tolerant
//!   E-cube) and the dimension-order [`XyRouter`] baseline.
//! * [`fabric`] — the cycle-level wormhole router microarchitecture
//!   with class-aware virtual-channel allocation; stepping is
//!   event-driven (active-router worklist, occupancy/request/free-VC
//!   bitmasks) and spatially partitioned into row-band shards that
//!   exchange boundary messages at the staged cycle commit, yet
//!   bit-identical to a full sequential scan at every shard count —
//!   see the module docs and the golden-equivalence suite.
//! * [`pattern`] — uniform random, transpose, bit-complement, hotspot
//!   and permutation destination processes, plus the injection-time
//!   axes: Bernoulli or Markov-modulated on/off generation
//!   ([`InjectionProcess`]) and fixed or geometric packet lengths
//!   ([`LengthDist`]).
//! * [`sim`] — the run loop: seeded injection, measurement windows,
//!   saturation detection, the deadlock liveness assertion, and the
//!   sharded multi-threaded runner ([`SimConfig::threads`]) with
//!   bit-identical results at every thread count.
//! * [`churn`] — **online churn**: a [`ChurnInjector`] handle for live
//!   fault/repair injection into a running simulation and a seedable
//!   [`ChaosConfig`] random schedule, applied at churn-quantum
//!   boundaries through the epoch mechanism with incremental
//!   escape-forest re-provisioning; stranded in-flight packets are
//!   replanned or killed (`churn_killed`), never wedged.
//! * [`stats`] — latency histograms and accepted-throughput accounting.
//! * [`config`] — [`SimConfig`] including the `escape_vcs` partition
//!   and the [`RoutePolicy`] adaptivity knob.
//!
//! ## Observability
//!
//! Setting [`SimConfig::obs`] to [`ObsLevel::Metrics`] or
//! [`ObsLevel::Trace`] instruments the run with the `meshpath-obs`
//! probe: per-link flit counters, escape-entry and stall/occupancy
//! histograms, per-shard phase timings, a packet-lifecycle flight
//! recorder (`Trace`), and — whenever a run wedges — a deadlock
//! post-mortem naming the cyclically-blocked packets from the VC
//! wait-for graph. Retrieve the merged [`ObsReport`] with
//! [`TrafficSim::run_observed`] or [`run_traffic_observed`]. The
//! instrumentation is compile-time dispatched: at the default
//! [`ObsLevel::Off`] the hot path monomorphizes over the no-op probe
//! (zero added code), and at any level the recorded run is
//! bit-identical to the bare one (pinned by the golden suite).
//!
//! ## Example
//!
//! ```
//! use meshpath_mesh::{Coord, FaultSet, Mesh};
//! use meshpath_route::NetView;
//! use meshpath_traffic::{run_traffic, RoutingKind, SimConfig};
//!
//! let net = NetView::build(FaultSet::from_coords(
//!     Mesh::square(8),
//!     [Coord::new(3, 3)],
//! ));
//! let cfg = SimConfig { rate: 0.01, ..SimConfig::smoke() };
//! let stats = run_traffic(&net, RoutingKind::Rb2, &cfg);
//! assert_eq!(stats.measured_delivered, stats.measured_generated);
//! ```
//!
//! ## Honesty notes
//!
//! * Routing decisions are compiled to per-pair routes once per
//!   `(source, destination)` pair — valid because every router in this
//!   workspace is deterministic per network — but they are consulted
//!   per hop, not replayed from the packet header; see [`routing`].
//! * The XY escape class alone would not suffice on a faulty mesh: a
//!   head parked where the XY walk to its destination crosses a fault
//!   cannot use it, and cyclic waits among such heads deadlocked the
//!   fabric in testing (at ~2x the source-routed onset). The up*/down*
//!   tree class closes that hole — it reaches every destination a
//!   routable packet can have — at the cost of non-minimal escape
//!   paths. The deadlock detector is retained as a *liveness
//!   assertion* (`deadlocked` in [`TrafficStats`]): with escape
//!   enabled it firing would indicate a fabric bug, not an expected
//!   outcome.
//! * Escape traffic abandons the compiled (fault-aware, shortest-path)
//!   route, so heavy escape use shifts measured latency toward the XY
//!   baseline (or worse, tree detours); `escape_packets` in
//!   [`TrafficStats`] reports how much traffic did.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod churn;
pub mod config;
pub mod fabric;
#[cfg(test)]
mod golden;
pub mod pattern;
pub mod routing;
pub mod sim;
pub mod source;
pub mod stats;

pub use churn::{ChaosConfig, ChurnInjector, OnlineChurn};
pub use config::{ChurnEvent, ChurnOp, RoutePolicy, SimConfig, PIPELINE_DEPTH};
pub use fabric::{BoundaryMsg, Delivery, Fabric, Flit, FrontierEntry, PacketState, StepReport};
pub use pattern::{DestSampler, InjectionProcess, LengthDist, TrafficPattern};
pub use routing::{
    xy_next, xy_path_clear, EscapeForest, EscapeHop, HopCandidates, HopChoice, HopDecision,
    HopRouter, PathTable, ReplayHop, RoutingKind, VcClass, XyRouter,
};
pub use sim::{
    run_traffic, run_traffic_observed, run_traffic_reusing, run_traffic_reusing_with,
    single_packet_latency, RunError, RunOutput, TrafficSim,
};
pub use source::{
    FlowCompletion, PhaseOutcome, TraceEntry, WorkloadMsg, WorkloadOutcome, WorkloadSource, NO_FLOW,
};
pub use stats::{
    DrainStallObserver, LatencyHistogram, TrafficStats, WindowControl, WindowObserver, WindowSample,
};

// The observability surface downstream code needs to configure
// recording and consume reports, re-exported from `meshpath-obs`.
pub use meshpath_obs::{
    BlockedWait, FlowEvent, FlowEventKind, LogHistogram, ObsLevel, ObsReport, PhaseProfile,
    Postmortem, ShardReport, StalledPacket, StopKind, TraceEvent, TraceEventKind, VcFront,
    WaitEdge,
};

// Re-exported so downstream code can name the substrate types the
// adapters build on without importing `meshpath-route` separately.
pub use meshpath_route::{NetState, NetView, Router};
