//! The simulation driver: injection processes, the measurement
//! protocol, and the run loop — sequential or sharded across worker
//! threads with bit-identical results.
//!
//! ## Sharded execution: tiles and leases
//!
//! When [`SimConfig::threads`] resolves to `N > 1`, the fabric is built
//! as a grid of rectangular tile shards (see the boundary-exchange
//! protocol in [`crate::fabric`]; [`SimConfig::tile_cols`] picks the
//! grid shape) and the run loop becomes one shard worker per tile: each
//! worker owns its shard, the injection state of its nodes (per-node
//! RNG streams, source queues) and a private [`HopRouter`] over its own
//! [`PathTable`] (hop decisions are pure functions of the network, so
//! private route caches cannot diverge). Workers step concurrently;
//! per cycle they exchange cycle-stamped boundary messages with their
//! tile neighbors, and they report aggregate deltas (moved flits,
//! deliveries, generation counters) to the coordinator, which keeps
//! the global statistics and makes the termination/observer decisions.
//!
//! The coordinator round trip is amortized by **free-running leases**
//! ([`SimConfig::lease`]): instead of gating every cycle, the
//! coordinator grants each worker a lease of up to N cycles
//! (`Go::Lease`), the worker runs them back-to-back — still exchanging
//! boundary messages with its neighbors every cycle, which is what
//! keeps adjacent tiles causally consistent — and reports the whole
//! window in one message. The coordinator *replays* the buffered
//! per-cycle deltas in cycle order through the same `RunState`
//! termination logic the lockstep transports use, so observer
//! callbacks, stop classification and statistics are computed on
//! exactly the same sequence of merged cycles. Lease renewal is
//! occupancy-aware in auto mode: leases stretch for idle tiles and
//! tighten for hot ones, computed only from the previous window's
//! committed flit counts — never wall clock — so the schedule is
//! deterministic. Every per-node computation is identical to the
//! sequential run — per-node RNGs are seeded by node id, grants
//! commute within a cycle, and all cross-shard effects are staged —
//! so `TrafficStats` is **bit-identical at every thread count, tile
//! shape and lease length** (pinned by `crate::golden`). After a stop
//! decision, cycles that workers already ran past the stop under a
//! granted lease are discarded from the statistics; only the
//! observability probes may record that bounded overshoot tail.
//!
//! ## Online churn
//!
//! [`TrafficSim::with_online_churn`] attaches a
//! [`ChurnInjector`](crate::ChurnInjector) /
//! [`ChaosConfig`](crate::ChaosConfig) event source to the run (see
//! [`crate::churn`]). The coordinator polls it at every churn-quantum
//! boundary, applies the events to its authoritative `NetState`
//! (incremental rebuild with full-rebuild fallback), and broadcasts
//! each resulting [`NetView`] epoch to the shard workers over the existing
//! control lanes (`Go::Publish` precedes the lease that starts at that
//! boundary on each FIFO lane — leases are clamped to quantum
//! boundaries, and a lease starting exactly on one is held back until
//! the replay cursor has polled it — so every worker adopts the epoch
//! at the same boundary). Workers re-provision their hop routers incrementally
//! ([`HopRouter::publish`]) and refresh source liveness/samplers;
//! packets stranded by a fresh fault are replanned or killed
//! (`churn_killed`), never wedged. Polling is coordinator-side and
//! deterministic, so online-churn runs stay bit-identical at every
//! thread count.
//!
//! ## Worker panic safety
//!
//! A panicking shard worker must not hang the run: each worker runs
//! under `catch_unwind`, reports the panic over the shared `done` lane,
//! and returns its channel ends (dropping them unblocks its
//! neighbors). The coordinator surfaces the failure as a typed
//! [`RunError`] from the `try_run*` entry points; the plain `run*`
//! entry points re-panic with the worker's message.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use crossbeam::channel::{self, Receiver, Sender};
use meshpath_mesh::{derive_seed, Coord, NodeId};
use meshpath_obs::{FabricProbe, NoProbe, ObsLevel, ObsReport, Phase, ShardObs, StopKind};
use meshpath_route::{NetState, NetView};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::churn::{OnlineChurn, OnlineDriver};
use crate::config::{ChurnOp, RoutePolicy, SimConfig};
use crate::fabric::{BoundaryMsg, Delivery, Fabric, Flit, PacketState, Shard, StepReport};
use crate::pattern::{DestSampler, InjectionProcess};
use crate::routing::{EscapeHop, HopRouter, PathTable, ReplayHop, RoutingKind};
use crate::source::{TraceEntry, WorkloadDriver, WorkloadMsg, WorkloadOutcome, WorkloadSource};
use crate::stats::{LatencyHistogram, TrafficStats, WindowControl, WindowObserver, WindowSample};

/// Latencies above this resolve to the histogram overflow bucket.
const HISTOGRAM_CAP: usize = 4096;

/// Per-shard packet-id namespace: shard `s` allocates ids
/// `s << ID_SHARD_SHIFT ..`. Ids are opaque tokens (never ordered or
/// persisted), so the namespace only has to be collision-free.
const ID_SHARD_SHIFT: u32 = 24;

/// Cycles of zero fabric movement (with flits in flight and nothing
/// injectable) before the run is declared deadlocked.
///
/// With escape VCs enabled this is a *liveness assertion*: Duato-style
/// escape routing is expected to keep the fabric moving, so a firing
/// detector indicates either an escape-starved fault pattern (every
/// member of a cyclic wait parked where its XY run crosses a fault) or
/// a fabric bug. Without escape VCs it is the expected failure mode of
/// adaptive wormhole routing under load.
const DEADLOCK_WINDOW: u64 = 1000;

/// Why a sharded run failed instead of producing statistics.
///
/// Returned by the `try_run*` entry points. A worker panic is caught at
/// the worker boundary and surfaced here — the coordinator tears the
/// run down (dropping the control lanes unblocks every other worker)
/// instead of hanging on a dead channel.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RunError {
    /// A shard worker panicked; `message` is its panic payload.
    WorkerPanicked {
        /// Index of the shard whose worker died.
        shard: usize,
        /// The panic payload, stringified.
        message: String,
    },
    /// A worker disappeared (its channel ends dropped) without
    /// reporting a panic — a transport bug rather than a worker bug.
    WorkerLost,
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::WorkerPanicked { shard, message } => {
                write!(f, "shard worker {shard} panicked: {message}")
            }
            RunError::WorkerLost => write!(f, "a shard worker died without reporting a panic"),
        }
    }
}

impl std::error::Error for RunError {}

/// Stringifies a caught panic payload (the two shapes `panic!` emits).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A generated packet waiting at its source network interface. The
/// traveling [`PacketState`] is handed to the fabric with the head
/// flit.
struct QueuedPacket {
    id: u32,
    state: PacketState,
    /// Flits not yet fed into the injection channel.
    remaining: u32,
}

/// Per-node injection state.
struct SourceNode {
    id: NodeId,
    coord: Coord,
    rng: StdRng,
    queue: VecDeque<QueuedPacket>,
    /// Markov-modulated on/off chain state (always `true` under
    /// Bernoulli injection).
    on: bool,
    /// Whether the node is healthy under the *current* epoch (fault
    /// churn): a decommissioned node stops generating (its RNG stream
    /// freezes) but keeps feeding a partially-injected worm.
    active: bool,
}

/// Generation-side statistics deltas of one shard over one cycle.
#[derive(Clone, Copy, Debug, Default)]
struct GenDelta {
    generated: u64,
    measured_generated: u64,
    unroutable: u64,
    ttl_dropped: u64,
    /// Packets discarded from source queues by a decommission event.
    churn_dropped: u64,
    /// The subset of `churn_dropped` generated inside the measurement
    /// window (they release `measured_outstanding`).
    measured_dropped: u64,
}

/// The epoch schedule of one run, shared by every shard worker: which
/// cycle each post-initial epoch starts at, the snapshot per epoch, and
/// the per-epoch destination samplers (destinations are drawn from the
/// current epoch's healthy nodes).
struct EpochEnv {
    /// `starts[k]` = the cycle at which epoch `k + 1` takes effect.
    starts: Vec<u64>,
    views: Vec<NetView>,
    samplers: Vec<DestSampler>,
}

/// Everything one shard contributes to one cycle, merged (commutative
/// sums) by the coordinator.
#[derive(Default)]
struct CycleDone {
    moved: u64,
    flits_ejected: u64,
    /// Escape-class commitments this cycle (per-cycle deltas, so a
    /// lease's overshoot past the stop decision never pollutes the
    /// run total).
    escape_entries: u64,
    injected_any: bool,
    in_flight: u64,
    backlog: u64,
    gen: GenDelta,
    deliveries: Vec<Delivery>,
    /// Flow ids of workload messages that died worker-side this cycle
    /// (admission failure, TTL budget, churn queue drop) — the
    /// coordinator's workload driver cascades them so a dependent flow
    /// never waits on a dead predecessor. Empty unless a workload is
    /// attached.
    aborted: Vec<u32>,
    /// Generation attempts recorded this cycle (empty unless
    /// [`SimConfig::record_trace`] is set). The coordinator sorts each
    /// cycle's merged entries by source node, which is deterministic:
    /// one node's attempts stay on one shard, in release order.
    trace: Vec<TraceEntry>,
}

impl CycleDone {
    fn merge(&mut self, mut other: CycleDone) {
        self.moved += other.moved;
        self.flits_ejected += other.flits_ejected;
        self.escape_entries += other.escape_entries;
        self.injected_any |= other.injected_any;
        self.in_flight += other.in_flight;
        self.backlog += other.backlog;
        self.gen.generated += other.gen.generated;
        self.gen.measured_generated += other.gen.measured_generated;
        self.gen.unroutable += other.gen.unroutable;
        self.gen.ttl_dropped += other.gen.ttl_dropped;
        self.gen.churn_dropped += other.gen.churn_dropped;
        self.gen.measured_dropped += other.gen.measured_dropped;
        self.deliveries.append(&mut other.deliveries);
        self.aborted.append(&mut other.aborted);
        self.trace.append(&mut other.trace);
    }
}

/// Coordinator → worker control message.
enum Go {
    /// Run `len` cycles starting at `start` without further
    /// coordinator contact (the free-running lease window). The
    /// per-cycle neighbor boundary exchange still happens inside the
    /// window; only the coordinator round trip is amortized.
    Lease {
        /// First cycle of the window.
        start: u64,
        /// Window length in cycles (>= 1).
        len: u64,
    },
    /// Adopt an online-churn epoch starting at the given cycle: the
    /// coordinator sends one per applied event, always *before* the
    /// lease that starts at that cycle on the same FIFO lane.
    Publish(u64, NetView, ChurnOp),
    /// Enqueue the workload messages releasing at the given cycle
    /// (each worker keeps the ones whose source node it owns). Sent
    /// before the one-cycle lease covering that cycle on the same FIFO
    /// lane — with a workload attached every lease is clamped to one
    /// cycle, since the source can react to any delivery.
    Inject(u64, Vec<WorkloadMsg>),
    /// The run is over (final cycle count and stop classification);
    /// finalize the probe and return the shard with it.
    Finish(u64, StopKind),
}

/// Worker → coordinator report: one lease window's per-cycle deltas
/// (in cycle order, for deterministic replay), or the worker's dying
/// word. Sharing the `done` lane means the coordinator learns of a
/// panic exactly where it would otherwise block forever.
enum WorkerReport {
    Cycles { shard: usize, start: u64, dones: Vec<CycleDone> },
    Panicked { shard: usize, message: String },
}

/// One shard of the running simulation: the fabric band plus the
/// injection state, hop router and instrumentation probe of its rows.
/// The unit both run-loop transports (in-process and worker-thread)
/// drive. Monomorphized over the probe: with [`NoProbe`] (the
/// [`ObsLevel::Off`] default) no instrumentation code exists on the
/// hot path at all.
struct ShardWorker<'a, P: FabricProbe> {
    shard: Shard,
    probe: P,
    sources: Vec<SourceNode>,
    router: Box<dyn HopRouter + 'a>,
    env: &'a EpochEnv,
    /// The current epoch index (advanced in lockstep by every worker at
    /// the scheduled cycles — a pure function of the cycle number, so
    /// sharding cannot skew it).
    cur_epoch: usize,
    cfg: &'a SimConfig,
    ttl: u32,
    gen_until: u64,
    /// Per-cycle injection probability while a source is *on*
    /// (`rate / duty`, capped at 1; equals `rate` under Bernoulli).
    burst_rate: f64,
    /// Packet ids allocated by this shard are `id_base + k`.
    id_base: u32,
    next_local: u32,
    /// Online-churn epochs published into this worker mid-run; they
    /// extend the prescheduled `env` epochs, so epoch index `k >=
    /// env.starts.len()` resolves into these parallel vectors at
    /// `k - env.starts.len()`. Identical across workers: every worker
    /// receives every publication at the same quantum boundary.
    online_starts: Vec<u64>,
    online_views: Vec<NetView>,
    online_samplers: Vec<DestSampler>,
    /// Whether a workload source drives this run: the synthetic
    /// injection process is disabled and traffic comes exclusively
    /// from `Go::Inject` broadcasts (see [`crate::source`]).
    workload: bool,
    /// Workload messages awaiting their injection cycle (release
    /// order; with the one-cycle workload lease this never holds more
    /// than one cycle's worth).
    pending_workload: VecDeque<WorkloadMsg>,
    /// Node index -> position in `sources` for the nodes this shard
    /// owns (workload messages address sources by coordinate).
    src_slot: HashMap<usize, usize>,
    /// Golden-equivalence hook: use the retained scan-order reference
    /// stepper instead of the event-driven one.
    #[cfg(test)]
    use_reference: bool,
    /// Fault-injection hook: panic at the start of this cycle's
    /// plan/grant phase (exercises the worker panic-safety path).
    #[cfg(test)]
    panic_at: Option<u64>,
}

impl<'a, P: FabricProbe> ShardWorker<'a, P> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        shard: Shard,
        sources: Vec<SourceNode>,
        router: Box<dyn HopRouter + 'a>,
        env: &'a EpochEnv,
        cfg: &'a SimConfig,
        ttl: u32,
        shard_index: usize,
        probe: P,
    ) -> Self {
        let duty = cfg.injection.duty_cycle();
        let src_slot = sources.iter().enumerate().map(|(i, s)| (s.id.index(), i)).collect();
        ShardWorker {
            shard,
            probe,
            sources,
            router,
            env,
            cur_epoch: 0,
            cfg,
            ttl,
            gen_until: cfg.warmup + cfg.measure,
            burst_rate: (cfg.rate / duty).min(1.0),
            id_base: (shard_index as u32) << ID_SHARD_SHIFT,
            next_local: 0,
            online_starts: Vec::new(),
            online_views: Vec::new(),
            online_samplers: Vec::new(),
            workload: false,
            pending_workload: VecDeque::new(),
            src_slot,
            #[cfg(test)]
            use_reference: false,
            #[cfg(test)]
            panic_at: None,
        }
    }

    /// Adopts an online-churn epoch starting at `start`: re-provisions
    /// the hop router (incremental escape-forest update, route cache
    /// for the new epoch) and installs the epoch's snapshot and
    /// destination sampler. `advance_epochs` flips the worker into the
    /// epoch at `start` like any prescheduled one.
    fn publish(&mut self, start: u64, view: NetView, op: ChurnOp) {
        self.router.publish(&view, op);
        self.online_samplers.push(DestSampler::new(
            self.cfg.pattern.clone(),
            view.faults(),
            self.cfg.seed,
        ));
        self.online_starts.push(start);
        self.online_views.push(view);
    }

    /// The cycle at which epoch `k + 1` takes effect, across the
    /// prescheduled and online schedules, or `None` past the last one.
    fn epoch_start(&self, k: usize) -> Option<u64> {
        let base = self.env.starts.len();
        if k < base {
            Some(self.env.starts[k])
        } else {
            self.online_starts.get(k - base).copied()
        }
    }

    /// Epoch `k`'s network snapshot (prescheduled or online).
    fn epoch_view(&self, k: usize) -> &NetView {
        let base = self.env.views.len();
        if k < base {
            &self.env.views[k]
        } else {
            &self.online_views[k - base]
        }
    }

    /// Applies every churn event scheduled at or before `cycle`:
    /// advances the admission epoch, refreshes source liveness, and
    /// discards not-yet-injected packets queued at decommissioned nodes
    /// (a partially injected worm keeps feeding — truncating it would
    /// wedge its VCs forever).
    fn advance_epochs(&mut self, cycle: u64, done: &mut CycleDone) {
        while self.epoch_start(self.cur_epoch).is_some_and(|start| cycle >= start) {
            self.cur_epoch += 1;
            self.router.advance_epoch();
            // Clone the epoch view (an `Arc` bump) so the fault borrow
            // does not alias the `sources` mutation below.
            let view = self.epoch_view(self.cur_epoch).clone();
            let faults = view.faults();
            let workload = self.workload;
            for s in &mut self.sources {
                let healthy = faults.is_healthy(s.coord);
                if s.active && !healthy {
                    // Decommission: the NI discards its backlog. The
                    // head-of-line packet survives only when its worm is
                    // already partially in the fabric.
                    let keep =
                        usize::from(s.queue.front().is_some_and(|p| p.remaining < p.state.len));
                    for dropped in s.queue.drain(keep..) {
                        done.gen.churn_dropped += 1;
                        let t = dropped.state.generated_at;
                        if t >= self.cfg.warmup && t < self.gen_until {
                            done.gen.measured_dropped += 1;
                        }
                        if workload {
                            // A discarded workload packet will never
                            // deliver: report the abort so the
                            // scheduler can cascade it.
                            done.aborted.push(dropped.state.flow);
                        }
                        if P::ACTIVE {
                            self.probe.dropped(s.id.0, dropped.id);
                        }
                    }
                }
                s.active = healthy;
            }
        }
    }

    /// The plan/grant half of one cycle: generation, injection-channel
    /// feeding and switch allocation + aging over this shard's active
    /// routers. Cross-shard effects land in the shard's outboxes;
    /// everything else accumulates into `done`.
    fn plan_and_grant(&mut self, cycle: u64, done: &mut CycleDone) {
        #[cfg(test)]
        if self.panic_at == Some(cycle) {
            panic!("injected test panic at cycle {cycle}");
        }
        if P::ACTIVE {
            self.probe.cycle_start(cycle);
        }
        let t = P::ACTIVE.then(Instant::now);
        self.advance_epochs(cycle, done);
        if self.workload {
            self.release_workload(cycle, done);
        } else if cycle < self.gen_until {
            self.generate(cycle, done);
        }
        done.injected_any |= self.feed_injection_channels();
        let mut report = StepReport::default();
        #[cfg(test)]
        if self.use_reference {
            self.shard.allocate_reference(&mut *self.router, &mut report, &mut done.deliveries);
            self.shard.age_reference();
        } else {
            self.shard.allocate_active(
                &mut *self.router,
                &mut report,
                &mut done.deliveries,
                &mut self.probe,
            );
            self.shard.age_parked_heads(&mut self.probe);
        }
        #[cfg(not(test))]
        {
            self.shard.allocate_active(
                &mut *self.router,
                &mut report,
                &mut done.deliveries,
                &mut self.probe,
            );
            self.shard.age_parked_heads(&mut self.probe);
        }
        done.moved += report.moved;
        done.flits_ejected += report.flits_ejected;
        done.escape_entries += report.escape_entries;
        if P::ACTIVE {
            let window = self.cfg.stats_window;
            if window > 0 && (cycle + 1).is_multiple_of(window) {
                self.shard.sample_occupancy(&mut self.probe);
            }
            if let Some(t) = t {
                self.probe.phase_ns(Phase::Plan, t.elapsed().as_nanos() as u64);
            }
        }
    }

    /// Drains the shard's per-direction boundary outboxes, counting
    /// the messages into the probe on the way to the neighbor tiles
    /// (`-x`/`-y` count toward `prev`, `+x`/`+y` toward `next`,
    /// preserving the row-band reading of the two counters).
    fn take_outboxes(&mut self) -> [Vec<BoundaryMsg>; 4] {
        let boxes = self.shard.take_outboxes();
        if P::ACTIVE {
            self.probe.boundary_out(
                (boxes[1].len() + boxes[3].len()) as u64,
                (boxes[0].len() + boxes[2].len()) as u64,
            );
        }
        boxes
    }

    /// The commit half of one cycle (after the boundary exchange):
    /// land arrivals and credits, then snapshot the occupancy figures
    /// the coordinator's termination logic needs.
    fn finish_cycle(&mut self, done: &mut CycleDone) {
        let t = P::ACTIVE.then(Instant::now);
        self.shard.commit_boundary();
        done.in_flight += self.shard.in_flight;
        done.backlog += self.sources.iter().map(|s| s.queue.len() as u64).sum::<u64>();
        if let Some(t) = t {
            self.probe.phase_ns(Phase::Commit, t.elapsed().as_nanos() as u64);
        }
    }

    /// Run-end hook: stamps the stop classification into the probe
    /// and, when the run wedged, walks the shard for the parked-head
    /// wait-for graph (the deadlock post-mortem's raw material).
    fn finish_run(&mut self, cycle: u64, reason: StopKind) {
        if P::ACTIVE {
            self.probe.run_stopped(cycle, reason);
            if reason.is_wedged() {
                self.shard.collect_wait_graph(&mut *self.router, &mut self.probe);
            }
        }
    }

    /// Generation at every healthy node of this shard, under the
    /// configured injection process and length distribution. The NI
    /// attaches no route — it only asks the hop router to *admit* the
    /// pair (is it routable, and how long is the compiled route, for
    /// the TTL check); all forwarding decisions happen per hop in the
    /// fabric.
    fn generate(&mut self, cycle: u64, done: &mut CycleDone) {
        let record = self.cfg.record_trace;
        let mean_len = self.cfg.packet_len;
        let measured = cycle >= self.cfg.warmup && cycle < self.gen_until;
        for i in 0..self.sources.len() {
            if !self.sources[i].active {
                continue;
            }
            let fire = {
                let s = &mut self.sources[i];
                match self.cfg.injection {
                    InjectionProcess::Bernoulli => s.rng.gen_bool(self.burst_rate),
                    InjectionProcess::MarkovOnOff { on_to_off, off_to_on } => {
                        if s.rng.gen_bool(if s.on { on_to_off } else { off_to_on }) {
                            s.on = !s.on;
                        }
                        s.on && s.rng.gen_bool(self.burst_rate)
                    }
                }
            };
            if !fire {
                continue;
            }
            let src = self.sources[i].coord;
            let sampler = if self.cur_epoch < self.env.samplers.len() {
                &self.env.samplers[self.cur_epoch]
            } else {
                &self.online_samplers[self.cur_epoch - self.env.samplers.len()]
            };
            let Some(dst) = sampler.dest(src, &mut self.sources[i].rng) else {
                continue;
            };
            let Some(hops) = self.router.admit(src, dst) else {
                done.gen.unroutable += 1;
                if record {
                    // Rejections are recorded as drop markers: the
                    // original run drew no packet length for them, so
                    // the replay must count — not inject — them.
                    done.trace.push(TraceEntry {
                        cycle,
                        src,
                        dst,
                        len: 0,
                        flow: crate::source::NO_FLOW,
                        drop: 1,
                    });
                }
                continue;
            };
            if hops > self.ttl {
                done.gen.ttl_dropped += 1;
                if record {
                    done.trace.push(TraceEntry {
                        cycle,
                        src,
                        dst,
                        len: 0,
                        flow: crate::source::NO_FLOW,
                        drop: 2,
                    });
                }
                continue;
            }
            let len = self.cfg.length.sample(mean_len, &mut self.sources[i].rng);
            // Hard assert (one branch per generated packet, off the
            // hot path): wrapping would alias ids across shards and
            // silently corrupt ownership bookkeeping.
            assert!(self.next_local < 1 << ID_SHARD_SHIFT, "packet-id namespace exhausted");
            let id = self.id_base + self.next_local;
            self.next_local += 1;
            done.gen.generated += 1;
            if measured {
                done.gen.measured_generated += 1;
            }
            let mut state = PacketState::new(src, dst, cycle, len);
            state.epoch = self.cur_epoch as u32;
            self.sources[i].queue.push_back(QueuedPacket { id, state, remaining: len });
            if record {
                done.trace.push(TraceEntry {
                    cycle,
                    src,
                    dst,
                    len,
                    flow: crate::source::NO_FLOW,
                    drop: 0,
                });
            }
        }
    }

    /// Keeps the workload messages whose source node this shard owns
    /// (broadcast filter; a message addressing an off-mesh source is
    /// adopted by shard 0 so exactly one shard reports its abort).
    fn enqueue_workload(&mut self, msgs: &[WorkloadMsg]) {
        let mesh = *self.env.views[0].mesh();
        for m in msgs {
            let mine = if mesh.contains(m.src) {
                self.shard.contains_node(mesh.id(m.src).index())
            } else {
                self.id_base == 0
            };
            if mine {
                self.pending_workload.push_back(*m);
            }
        }
    }

    /// Releases this cycle's workload messages into the source queues
    /// (the workload-mode replacement for [`ShardWorker::generate`]).
    fn release_workload(&mut self, cycle: u64, done: &mut CycleDone) {
        while self.pending_workload.front().is_some_and(|m| m.at <= cycle) {
            let m = self.pending_workload.pop_front().expect("front checked");
            debug_assert_eq!(m.at, cycle, "workload messages release at their injection cycle");
            self.admit_workload(cycle, m, done);
        }
    }

    /// Admits one workload message: replayed rejection markers only
    /// bump the matching counter; live messages run the same admission
    /// gauntlet as generated traffic (routability, TTL), but a
    /// rejection is additionally reported on the abort lane — a
    /// workload message someone may depend on must never vanish
    /// silently.
    fn admit_workload(&mut self, cycle: u64, m: WorkloadMsg, done: &mut CycleDone) {
        let record = self.cfg.record_trace;
        let mesh = *self.env.views[0].mesh();
        if m.drop != 0 {
            if m.drop == 1 {
                done.gen.unroutable += 1;
            } else {
                done.gen.ttl_dropped += 1;
            }
            if record {
                done.trace.push(TraceEntry {
                    cycle,
                    src: m.src,
                    dst: m.dst,
                    len: 0,
                    flow: m.flow,
                    drop: m.drop,
                });
            }
            return;
        }
        let rejected: Option<u8> = if !mesh.contains(m.src) || !mesh.contains(m.dst) {
            Some(1)
        } else {
            let slot = self.src_slot[&mesh.id(m.src).index()];
            if !self.sources[slot].active {
                // A decommissioned source cannot inject; the message
                // dies like an unroutable pair.
                Some(1)
            } else {
                match self.router.admit(m.src, m.dst) {
                    None => Some(1),
                    Some(hops) if hops > self.ttl => Some(2),
                    Some(_) => None,
                }
            }
        };
        if let Some(drop) = rejected {
            if drop == 1 {
                done.gen.unroutable += 1;
            } else {
                done.gen.ttl_dropped += 1;
            }
            done.aborted.push(m.flow);
            if record {
                done.trace.push(TraceEntry {
                    cycle,
                    src: m.src,
                    dst: m.dst,
                    len: 0,
                    flow: m.flow,
                    drop,
                });
            }
            return;
        }
        let slot = self.src_slot[&mesh.id(m.src).index()];
        let len = m.len.max(1);
        assert!(self.next_local < 1 << ID_SHARD_SHIFT, "packet-id namespace exhausted");
        let id = self.id_base + self.next_local;
        self.next_local += 1;
        done.gen.generated += 1;
        if cycle >= self.cfg.warmup && cycle < self.gen_until {
            done.gen.measured_generated += 1;
        }
        let mut state = PacketState::new(m.src, m.dst, cycle, len);
        state.epoch = self.cur_epoch as u32;
        state.flow = m.flow;
        self.sources[slot].queue.push_back(QueuedPacket { id, state, remaining: len });
        if record {
            done.trace.push(TraceEntry {
                cycle,
                src: m.src,
                dst: m.dst,
                len,
                flow: m.flow,
                drop: 0,
            });
        }
    }

    /// Feeds at most one flit per node per cycle from the head-of-line
    /// queued packet into the injection channel; the head flit carries
    /// the traveling packet state.
    fn feed_injection_channels(&mut self) -> bool {
        let depth = self.cfg.vc_depth;
        let mut any = false;
        for s in &mut self.sources {
            let Some(front) = s.queue.front_mut() else {
                continue;
            };
            if self.shard.local_occupancy(s.id) >= depth {
                continue;
            }
            let is_head = front.remaining == front.state.len;
            let flit = Flit { packet: front.id, is_head, is_tail: front.remaining == 1 };
            if P::ACTIVE && is_head {
                self.probe.inject(s.id.0, front.id);
            }
            self.shard.inject(s.id, flit, is_head.then_some(front.state));
            front.remaining -= 1;
            if front.remaining == 0 {
                s.queue.pop_front();
            }
            any = true;
        }
        any
    }
}

/// The coordinator's side of the run: global statistics, the
/// measurement windows, and the termination decisions every shard
/// obeys. One instance regardless of transport.
struct RunState {
    warmup: u64,
    measure: u64,
    gen_until: u64,
    deadline: u64,
    window: u64,
    stats: TrafficStats,
    /// Why the run ended (valid once `end_of_cycle` returns `true`);
    /// the classification the observability post-mortem keys on.
    stop: StopKind,
    measured_outstanding: u64,
    idle_streak: u64,
    w_delivered: u64,
    w_lat_sum: u64,
    w_ejected: u64,
    w_moved: u64,
    /// Whether generation attempts are being recorded
    /// ([`SimConfig::record_trace`]).
    record_trace: bool,
    /// The recorded trace, appended per replayed cycle in canonical
    /// (source-node, release) order.
    trace: Vec<TraceEntry>,
}

impl RunState {
    fn new(cfg: &SimConfig, stats: TrafficStats) -> Self {
        RunState {
            warmup: cfg.warmup,
            measure: cfg.measure,
            gen_until: cfg.warmup + cfg.measure,
            deadline: cfg.warmup + cfg.measure + cfg.drain,
            window: cfg.stats_window,
            stats,
            stop: StopKind::Clean,
            measured_outstanding: 0,
            idle_streak: 0,
            w_delivered: 0,
            w_lat_sum: 0,
            w_ejected: 0,
            w_moved: 0,
            record_trace: cfg.record_trace,
            trace: Vec::new(),
        }
    }

    fn measured_window_contains(&self, t: u64) -> bool {
        t >= self.warmup && t < self.warmup + self.measure
    }

    /// Absorbs one cycle's merged shard reports and decides whether the
    /// run ends. `cycle` is the cycle just simulated (0-based). With a
    /// workload attached (`wl`), deliveries and worker-side aborts are
    /// fed back to the scheduler here — strictly before the source is
    /// next polled — and the generation-window termination gate is
    /// replaced by the source's own exhaustion signal.
    fn end_of_cycle(
        &mut self,
        cycle: u64,
        mut agg: CycleDone,
        obs: &mut dyn WindowObserver,
        mut wl: Option<&mut WorkloadDriver>,
    ) -> bool {
        if self.record_trace {
            // Stable by source node: one node's attempts live on one
            // shard in release order, so this is the canonical order
            // regardless of how the shard reports merged.
            agg.trace.sort_by_key(|e| (e.src.y, e.src.x));
            self.trace.append(&mut agg.trace);
        }
        if let Some(wl) = wl.as_deref_mut() {
            for flow in agg.aborted.drain(..) {
                wl.on_worker_abort(flow, cycle);
            }
        }
        self.stats.flits_moved += agg.moved;
        self.stats.escape_packets += agg.escape_entries;
        self.stats.generated += agg.gen.generated;
        self.stats.measured_generated += agg.gen.measured_generated;
        self.stats.unroutable += agg.gen.unroutable;
        self.stats.ttl_dropped += agg.gen.ttl_dropped;
        self.stats.churn_dropped += agg.gen.churn_dropped;
        self.measured_outstanding += agg.gen.measured_generated;
        // Packets a decommission event discarded at their NI will never
        // deliver; release them so a churn run can still end cleanly.
        self.measured_outstanding -= agg.gen.measured_dropped;
        for d in agg.deliveries.drain(..) {
            // +1: the ejection link (see the fabric timing contract).
            let delivered_at = cycle + 1;
            let gen_at = d.state.generated_at;
            if d.state.killed {
                // A churn-killed worm drained through the ejection
                // port, but it was never delivered: it only releases
                // its measurement obligation.
                self.stats.churn_killed += 1;
                if self.measured_window_contains(gen_at) {
                    self.measured_outstanding -= 1;
                }
                if let Some(wl) = wl.as_deref_mut() {
                    wl.on_delivery(d.state.flow, delivered_at, true);
                }
                continue;
            }
            self.stats.epoch_delivered[d.state.epoch as usize] += 1;
            self.w_delivered += 1;
            self.w_lat_sum += delivered_at - gen_at;
            if self.measured_window_contains(gen_at) {
                self.stats.measured_delivered += 1;
                self.measured_outstanding -= 1;
                self.stats.latency.record(delivered_at - gen_at);
            }
            if let Some(wl) = wl.as_deref_mut() {
                wl.on_delivery(d.state.flow, delivered_at, false);
            }
        }
        if self.measured_window_contains(cycle) {
            self.stats.measured_flits_ejected += agg.flits_ejected;
        }
        self.w_ejected += agg.flits_ejected;
        self.w_moved += agg.moved;

        // Progress & termination accounting.
        if agg.moved == 0 && !agg.injected_any {
            self.idle_streak += 1;
        } else {
            self.idle_streak = 0;
        }
        let cycle = cycle + 1;
        self.stats.cycles = cycle;

        if self.window > 0 && cycle.is_multiple_of(self.window) {
            let sample = WindowSample {
                start: cycle - self.window,
                end: cycle,
                delivered: self.w_delivered,
                mean_latency: if self.w_delivered == 0 {
                    0.0
                } else {
                    self.w_lat_sum as f64 / self.w_delivered as f64
                },
                ejected_flits: self.w_ejected,
                moved: self.w_moved,
                in_flight: agg.in_flight,
                backlog: agg.backlog,
                measured_outstanding: self.measured_outstanding,
                draining: cycle >= self.gen_until,
            };
            (self.w_delivered, self.w_lat_sum, self.w_ejected, self.w_moved) = (0, 0, 0, 0);
            if obs.on_window(&sample) == WindowControl::Stop {
                self.stats.saturated = self.measured_outstanding > 0;
                // A stop on a delivery-free drain window is the
                // drain-stall signature (what DrainStallObserver
                // fires on); any other observer stop is a plain
                // early exit.
                self.stop = if sample.draining
                    && sample.delivered == 0
                    && sample.measured_outstanding > 0
                {
                    StopKind::DrainStall
                } else {
                    StopKind::Observer
                };
                return true;
            }
        }

        let work_left = agg.in_flight > 0 || agg.backlog > 0;
        // The generation horizon: nothing more will enter the fabric.
        // Synthetic runs cross it at the end of the measurement window;
        // a workload run crosses it when its source reports exhaustion
        // (a trace replay pins that to the recorded horizon so the
        // replayed run stops on exactly the original's cycle; a DAG
        // holds it until every flow resolves).
        let horizon = match wl.as_deref() {
            Some(wl) => wl.exhausted(cycle),
            None => cycle >= self.gen_until,
        };
        // Successful end of run. `idle_streak == 0` matters even once
        // every measured packet is home: leftover warmup-era worms may
        // be wedged in a cyclic wait, and breaking here would report a
        // clean run — let the deadlock detector below classify them
        // first.
        if horizon && (!work_left || (self.measured_outstanding == 0 && self.idle_streak == 0)) {
            return true;
        }
        // Classification: a cyclic wait is a deadlock even when it
        // forms late in the drain window, so the deadline only declares
        // saturation while flits are still moving; an in-progress idle
        // streak is allowed to resolve (bounded by DEADLOCK_WINDOW
        // extra cycles).
        if self.idle_streak >= DEADLOCK_WINDOW && agg.in_flight > 0 {
            self.stats.deadlocked = true;
            self.stop = StopKind::Deadlock;
            return true;
        }
        if cycle >= self.deadline && (self.idle_streak == 0 || agg.in_flight == 0) {
            self.stats.saturated = self.measured_outstanding > 0;
            self.stop = StopKind::Deadline;
            return true;
        }
        false
    }

    /// Takes the recorded trace out (`Some` exactly when recording was
    /// on, even if nothing generated).
    fn take_trace(&mut self) -> Option<Vec<TraceEntry>> {
        self.record_trace.then(|| std::mem::take(&mut self.trace))
    }

    /// Seals the statistics once every shard has stopped. Escape
    /// commitments were accumulated per replayed cycle, so lease
    /// overshoot past the stop decision is already excluded.
    fn finish(self) -> TrafficStats {
        self.stats
    }
}

/// Everything a run can produce: the statistics, the optional merged
/// observability report, the workload outcome (when a
/// [`WorkloadSource`] was attached) and the recorded packet trace
/// (when [`SimConfig::record_trace`] was set).
///
/// Returned by [`TrafficSim::try_run_full`]; the narrower entry points
/// are projections of this.
#[derive(Debug)]
pub struct RunOutput {
    /// The run statistics.
    pub stats: TrafficStats,
    /// The merged observability report ([`SimConfig::obs`] above
    /// [`ObsLevel::Off`]).
    pub obs: Option<ObsReport>,
    /// Flow/phase completion metrics of the attached workload.
    pub workload: Option<WorkloadOutcome>,
    /// The recorded generation trace, replayable through a trace
    /// workload source for a bit-identical rerun.
    pub trace: Option<Vec<TraceEntry>>,
}

/// What the transports hand back before the observability report is
/// assembled.
struct CoreOutput {
    stats: TrafficStats,
    workload: Option<WorkloadOutcome>,
    trace: Option<Vec<TraceEntry>>,
}

/// One traffic simulation: a sharded fabric over a fault configuration,
/// driven by seeded injection processes, routed per hop by the policy's
/// [`HopRouter`] over one compiled routing function.
///
/// The path table is borrowed so sweeps can reuse compiled routes
/// across runs over the same network (route compilation dominates the
/// low-load setup cost; see [`run_traffic_reusing`]). Additional worker
/// shards compile their own tables. Under
/// [`fault_churn`](SimConfig::fault_churn) the table is loaded with the
/// full epoch schedule (each epoch published by the incremental
/// `NetState` update path) before the run starts.
pub struct TrafficSim<'p> {
    cfg: SimConfig,
    /// Effective route hop budget (see `SimConfig::route_ttl`).
    ttl: u32,
    kind: RoutingKind,
    fabric: Fabric,
    router: Box<dyn HopRouter + 'p>,
    env: EpochEnv,
    sources: Vec<SourceNode>,
    stats: TrafficStats,
    /// Online-churn event sources, polled by the coordinator at every
    /// quantum boundary (see [`TrafficSim::with_online_churn`]).
    online: Option<OnlineChurn>,
    /// The attached workload source, if any: it replaces the synthetic
    /// injection process entirely (see [`TrafficSim::with_workload`]).
    workload: Option<Box<dyn WorkloadSource>>,
    /// Golden-equivalence hook: run on the retained scan-order
    /// reference stepper instead of the event-driven one (forces the
    /// in-process transport).
    #[cfg(test)]
    use_reference: bool,
    /// Fault-injection hook: `(shard, cycle)` at which that shard's
    /// worker panics (exercises the panic-safety path).
    #[cfg(test)]
    panic_at: Option<(usize, u64)>,
}

/// Builds the policy's hop router over a path table (shared between the
/// driver's table and each worker shard's private table).
fn build_hop_router<'p>(paths: &'p mut PathTable, cfg: &SimConfig) -> Box<dyn HopRouter + 'p> {
    match cfg.policy {
        RoutePolicy::Deterministic => Box::new(ReplayHop::new(paths)),
        RoutePolicy::EscapeAdaptive { patience } => {
            // escape_vcs == 1 reserves only the tree channel; the XY
            // class needs a second reserved channel.
            Box::new(EscapeHop::new(paths, patience, cfg.escape_vcs >= 2))
        }
    }
}

/// A worker shard's private path table: same initial snapshot, same
/// epoch schedule.
fn worker_table(views: &[NetView], kind: RoutingKind) -> PathTable {
    let mut t = PathTable::new(&views[0], kind);
    t.set_schedule(views[1..].iter().cloned());
    t
}

impl<'p> TrafficSim<'p> {
    /// Builds a simulation driving `paths`' routing function over
    /// `paths`' network, per-hop, under `cfg.policy`, sharded into
    /// `cfg.threads` row bands (see [`SimConfig::threads`]). A
    /// non-empty [`fault_churn`](SimConfig::fault_churn) schedule is
    /// resolved into epoch snapshots here (incremental `NetState`
    /// updates) and installed into `paths`.
    ///
    /// # Panics
    /// Panics when `cfg.packet_len` is zero (a packet has at least a
    /// head flit), `cfg.rate` is outside `[0, 1]`, `cfg.escape_vcs`
    /// leaves no adaptive channel, policy and `escape_vcs` disagree
    /// (escape-adaptive needs a reserved channel; deterministic would
    /// strand any), a Markov injection probability is outside
    /// `(0, 1]`, or a churn event is invalid (failing an already-faulty
    /// node, repairing a healthy one, off-mesh coordinates).
    pub fn new(paths: &'p mut PathTable, cfg: SimConfig) -> Self {
        assert!(cfg.packet_len >= 1, "packets need at least one flit");
        assert!(
            (0.0..=1.0).contains(&cfg.rate),
            "injection rate {} is not a per-cycle probability",
            cfg.rate
        );
        assert!(
            cfg.escape_vcs < cfg.vcs,
            "escape_vcs = {} must leave at least one adaptive channel of vcs = {}",
            cfg.escape_vcs,
            cfg.vcs
        );
        match cfg.policy {
            RoutePolicy::EscapeAdaptive { .. } => assert!(
                cfg.escape_vcs >= 1,
                "EscapeAdaptive policy needs a reserved escape channel (escape_vcs >= 1)"
            ),
            // ReplayHop never requests an escape class, so reserved
            // channels would be silently unallocatable — fail loudly
            // instead of biasing policy A/B comparisons with stranded
            // buffering (`SimConfig::without_escape` sets both knobs).
            RoutePolicy::Deterministic => assert!(
                cfg.escape_vcs == 0,
                "Deterministic policy would strand the {} reserved escape channel(s); \
                 set escape_vcs = 0 (see SimConfig::without_escape)",
                cfg.escape_vcs
            ),
        }
        // Validates the Markov parameters (duty_cycle panics on a chain
        // that cannot leave a state).
        let duty = cfg.injection.duty_cycle();
        debug_assert!(duty > 0.0);
        let kind = paths.kind();

        // Resolve the churn schedule into epoch snapshots (incremental
        // NetState updates) and install it into the table. Same-cycle
        // events keep their config order; each is its own epoch. The
        // table is reset to its initial snapshot *first*: a table
        // reused across runs (rate sweeps) still carries the previous
        // run's schedule and advanced epoch cursor, and the new
        // schedule must resolve from epoch 0, not from wherever the
        // last run stopped.
        let mut churn = cfg.fault_churn.clone();
        churn.sort_by_key(|e| e.cycle);
        paths.set_schedule([]);
        let mut views: Vec<NetView> = vec![paths.view().clone()];
        if !churn.is_empty() {
            let mut state = NetState::adopt(views[0].clone());
            for ev in &churn {
                let v = match ev.op {
                    ChurnOp::Fail(c) => state.add_fault(c),
                    ChurnOp::Repair(c) => state.remove_fault(c),
                };
                views.push(v.unwrap_or_else(|e| panic!("invalid fault_churn event {ev:?}: {e}")));
            }
            paths.set_schedule(views[1..].iter().cloned());
        }
        let starts: Vec<u64> = churn.iter().map(|e| e.cycle).collect();

        let mesh = *views[0].mesh();
        let threads = cfg.resolved_threads(mesh.len());
        let samplers: Vec<DestSampler> = views
            .iter()
            .map(|v| DestSampler::new(cfg.pattern.clone(), v.faults(), cfg.seed))
            .collect();
        let mmp = matches!(cfg.injection, InjectionProcess::MarkovOnOff { .. });
        // Source state exists for *every* node: online churn can repair
        // a node that was faulty in every prescheduled epoch, and it
        // must be able to start generating. Harmless otherwise —
        // per-node RNG streams are seeded by node id (so extra sources
        // never perturb any other node's stream) and an inactive source
        // draws nothing, queues nothing and counts nothing.
        let sources: Vec<SourceNode> = mesh
            .iter()
            .map(|c| {
                let id = mesh.id(c);
                let mut rng = StdRng::seed_from_u64(derive_seed(cfg.seed, u64::from(id.0), 0));
                // The on/off chain starts in its stationary
                // distribution (drawn per node, so the decision is
                // independent of the shard count). Bernoulli sources
                // draw nothing here, keeping their streams unchanged.
                let on = !mmp || rng.gen_bool(duty);
                let active = views[0].faults().is_healthy(c);
                SourceNode { id, coord: c, rng, queue: VecDeque::new(), on, active }
            })
            .collect();
        let nodes = sources.iter().filter(|s| s.active).count();
        // Arrange the resolved worker count as a tile grid:
        // `tile_cols` columns (clamped to the thread count and mesh
        // width) by `threads / cols` rows. `tile_cols == 1` is the
        // classic row-band partition; the shard count is `cols * rows
        // <= threads` (`new_tiled` further clamps to the mesh dims).
        let cols = cfg.tile_cols.max(1).min(threads).min(mesh.width() as usize);
        let rows = (threads / cols).max(1);
        let fabric = Fabric::new_tiled(mesh, cfg.vcs, cfg.vc_depth, cfg.escape_vcs, cols, rows);
        let router = build_hop_router(paths, &cfg);
        let stats = TrafficStats {
            cycles: 0,
            nodes,
            measure_window: cfg.measure,
            generated: 0,
            measured_generated: 0,
            measured_delivered: 0,
            unroutable: 0,
            ttl_dropped: 0,
            escape_packets: 0,
            measured_flits_ejected: 0,
            flits_moved: 0,
            latency: LatencyHistogram::new(HISTOGRAM_CAP),
            saturated: false,
            deadlocked: false,
            epoch_delivered: vec![0; views.len()],
            churn_dropped: 0,
            churn_killed: 0,
            churn_rejected: 0,
            online_events: Vec::new(),
        };
        // TTL default: E-cube's escape walk is the only route source
        // whose length is effectively unbounded; every other router is
        // within a small factor of shortest, and escape VCs now bound
        // blocking, so no budget is imposed on them.
        let ttl = cfg.route_ttl.unwrap_or(if kind == RoutingKind::ECube {
            4 * (mesh.width() + mesh.height())
        } else {
            u32::MAX
        });
        TrafficSim {
            cfg,
            ttl,
            kind,
            fabric,
            router,
            env: EpochEnv { starts, views, samplers },
            sources,
            stats,
            online: None,
            workload: None,
            #[cfg(test)]
            use_reference: false,
            #[cfg(test)]
            panic_at: None,
        }
    }

    /// Attaches online churn: the coordinator polls the injector (and
    /// the optional chaos schedule) at every `churn.quantum`-cycle
    /// boundary and publishes the resulting epochs into the running
    /// workers. See [`crate::churn`].
    ///
    /// # Panics
    /// Panics when the config also carries a prescheduled
    /// [`fault_churn`](SimConfig::fault_churn) (the two schedules would
    /// race for the epoch sequence) or `churn.quantum` is zero.
    pub fn with_online_churn(mut self, churn: OnlineChurn) -> Self {
        assert!(
            self.cfg.fault_churn.is_empty(),
            "online churn and a prescheduled fault_churn cannot mix in one run"
        );
        assert!(churn.quantum >= 1, "churn quantum must be at least 1 cycle");
        self.online = Some(churn);
        self
    }

    /// Attaches a workload source: the synthetic injection process is
    /// disabled and every packet of the run comes from the source,
    /// released per cycle by the coordinator and broadcast to the
    /// owning shard workers. Delivery and abort feedback closes the
    /// loop each cycle, so dependency-driven sources (flow DAGs,
    /// collective phases) schedule deterministically at every shard
    /// count. Retrieve the flow/phase completion metrics with
    /// [`TrafficSim::try_run_full`].
    ///
    /// Composes with [`TrafficSim::with_online_churn`]: churn events
    /// still apply at their quantum boundaries, and flows whose
    /// packets churn kills or drops are aborted (and cascaded), never
    /// wedged. In the threaded transport a workload clamps every lease
    /// to one cycle — the source may react to any delivery — so
    /// expect lockstep-coordination cost.
    pub fn with_workload(mut self, source: Box<dyn WorkloadSource>) -> Self {
        self.workload = Some(source);
        self
    }

    /// Golden-equivalence hook: step the fabric with the retained
    /// scan-order reference stepper instead of the event-driven one.
    #[cfg(test)]
    pub(crate) fn set_reference_stepper(&mut self) {
        self.use_reference = true;
    }

    /// Fault-injection hook: make `shard`'s worker panic at the start
    /// of `cycle` (exercises the panic-safety path).
    #[cfg(test)]
    pub(crate) fn set_panic_at(&mut self, shard: usize, cycle: u64) {
        self.panic_at = Some((shard, cycle));
    }

    /// Runs the full warmup / measure / drain protocol and returns the
    /// collected statistics.
    ///
    /// # Panics
    /// Re-panics with the worker's message when a shard worker
    /// panicked; use [`TrafficSim::try_run`] to handle that as a typed
    /// error instead.
    pub fn run(self) -> TrafficStats {
        match self.try_run() {
            Ok(stats) => stats,
            Err(e) => panic!("{e}"),
        }
    }

    /// Like [`TrafficSim::run`], but streaming a [`WindowSample`] to
    /// `obs` every [`stats_window`](SimConfig::stats_window) cycles.
    /// The observer is read-only over the simulation except for one
    /// power: returning [`WindowControl::Stop`] ends the run at that
    /// window boundary, classified exactly as at the drain deadline
    /// (`saturated` when measured packets are outstanding).
    pub fn run_with(self, obs: &mut dyn WindowObserver) -> TrafficStats {
        match self.try_run_with(obs) {
            Ok(stats) => stats,
            Err(e) => panic!("{e}"),
        }
    }

    /// Like [`TrafficSim::run_with`], but also returning the merged
    /// [`ObsReport`] when recording is enabled ([`SimConfig::obs`]);
    /// `None` at [`ObsLevel::Off`]. Recording never changes the
    /// statistics — the instrumented run is bit-identical to the bare
    /// one (pinned by `crate::golden`).
    pub fn run_observed(self, obs: &mut dyn WindowObserver) -> (TrafficStats, Option<ObsReport>) {
        match self.try_run_observed(obs) {
            Ok(out) => out,
            Err(e) => panic!("{e}"),
        }
    }

    /// [`TrafficSim::run`] with worker failures surfaced as a typed
    /// [`RunError`] instead of a panic — the graceful-degradation entry
    /// point for long-lived services driving the simulator.
    pub fn try_run(self) -> Result<TrafficStats, RunError> {
        self.try_run_with(&mut ())
    }

    /// [`TrafficSim::run_with`] with worker failures surfaced as a
    /// typed [`RunError`].
    pub fn try_run_with(self, obs: &mut dyn WindowObserver) -> Result<TrafficStats, RunError> {
        Ok(self.try_run_observed(obs)?.0)
    }

    /// [`TrafficSim::run_observed`] with worker failures surfaced as a
    /// typed [`RunError`].
    pub fn try_run_observed(
        self,
        obs: &mut dyn WindowObserver,
    ) -> Result<(TrafficStats, Option<ObsReport>), RunError> {
        let out = self.try_run_full(obs)?;
        Ok((out.stats, out.obs))
    }

    /// The widest entry point: runs the protocol and returns
    /// everything the run produced — statistics, the observability
    /// report, the workload outcome and the recorded trace (see
    /// [`RunOutput`]). Worker failures surface as a typed
    /// [`RunError`].
    pub fn try_run_full(self, obs: &mut dyn WindowObserver) -> Result<RunOutput, RunError> {
        let level = self.cfg.obs;
        if level == ObsLevel::Off {
            let (core, _) = self.dispatch::<NoProbe, _>(obs, |_, _| NoProbe)?;
            return Ok(RunOutput {
                stats: core.stats,
                obs: None,
                workload: core.workload,
                trace: core.trace,
            });
        }
        let mesh = self.env.views[0].mesh();
        let (width, height) = (mesh.width() as usize, mesh.height() as usize);
        let (core, probes) = self.dispatch(obs, move |i, s: &Shard| {
            let r = s.node_range();
            ShardObs::new(i, r.start as u32, r.end as u32, level)
        })?;
        Ok(RunOutput {
            stats: core.stats,
            obs: Some(ObsReport::assemble(width, height, probes)),
            workload: core.workload,
            trace: core.trace,
        })
    }

    /// [`TrafficSim::try_run_full`], re-panicking on worker failure.
    pub fn run_full(self, obs: &mut dyn WindowObserver) -> RunOutput {
        match self.try_run_full(obs) {
            Ok(out) => out,
            Err(e) => panic!("{e}"),
        }
    }

    /// Routes a monomorphized run to the in-process or worker-thread
    /// transport; `mk` builds the probe of each shard. The in-process
    /// transport never fails (a panic there propagates inline on this
    /// thread — there is no hang to prevent).
    fn dispatch<P, F>(
        self,
        obs: &mut dyn WindowObserver,
        mk: F,
    ) -> Result<(CoreOutput, Vec<P>), RunError>
    where
        P: FabricProbe + Send,
        F: Fn(usize, &Shard) -> P,
    {
        let shards = self.fabric.num_shards();
        #[cfg(test)]
        let in_process = shards <= 1 || self.use_reference;
        #[cfg(not(test))]
        let in_process = shards <= 1;
        if in_process {
            Ok(self.run_in_process(obs, mk))
        } else {
            self.run_threaded(obs, mk)
        }
    }

    /// Splits the row-major source list into one bucket per shard
    /// tile (setup-only `O(nodes * shards)` scan; buckets keep the
    /// row-major order within each tile).
    fn partition_sources(sources: Vec<SourceNode>, shards: &[Shard]) -> Vec<Vec<SourceNode>> {
        let mut buckets: Vec<Vec<SourceNode>> = shards.iter().map(|_| Vec::new()).collect();
        for s in sources {
            let t = shards
                .iter()
                .position(|sh| sh.contains_node(s.id.index()))
                .expect("tiles partition the mesh");
            buckets[t].push(s);
        }
        buckets
    }

    /// The in-process transport: every shard stepped on this thread
    /// (the sequential path, and the reference-stepper path in tests).
    /// Boundary hand-off time is folded into the commit phase here —
    /// only the threaded transport has a distinct boundary-sync wait.
    fn run_in_process<P, F>(mut self, obs: &mut dyn WindowObserver, mk: F) -> (CoreOutput, Vec<P>)
    where
        P: FabricProbe,
        F: Fn(usize, &Shard) -> P,
    {
        let mut drv = self.online.take().map(|c| OnlineDriver::new(c, self.env.views[0].clone()));
        let mut wl = self.workload.take().map(WorkloadDriver::new);
        let shards = self.fabric.take_shards();
        let nbrs: Vec<[Option<usize>; 4]> = shards.iter().map(|s| s.neighbors()).collect();
        let mut buckets = Self::partition_sources(self.sources, &shards).into_iter();
        let env = &self.env;
        let mut tables: Vec<PathTable> =
            (1..shards.len()).map(|_| worker_table(&env.views, self.kind)).collect();
        let mut workers: Vec<ShardWorker<'_, P>> = Vec::with_capacity(shards.len());
        let mut shard_iter = shards.into_iter();
        let shard0 = shard_iter.next().expect("at least one shard");
        let probe0 = mk(0, &shard0);
        workers.push(ShardWorker::new(
            shard0,
            buckets.next().expect("one bucket per shard"),
            self.router,
            env,
            &self.cfg,
            self.ttl,
            0,
            probe0,
        ));
        for (i, (shard, table)) in shard_iter.zip(tables.iter_mut()).enumerate() {
            let probe = mk(i + 1, &shard);
            workers.push(ShardWorker::new(
                shard,
                buckets.next().expect("one bucket per shard"),
                build_hop_router(table, &self.cfg),
                env,
                &self.cfg,
                self.ttl,
                i + 1,
                probe,
            ));
        }
        if wl.is_some() {
            for w in &mut workers {
                w.workload = true;
            }
        }
        #[cfg(test)]
        {
            for w in &mut workers {
                w.use_reference = self.use_reference;
            }
            if let Some((shard, at)) = self.panic_at {
                if let Some(w) = workers.get_mut(shard) {
                    w.panic_at = Some(at);
                }
            }
        }

        let mut run = RunState::new(&self.cfg, self.stats);
        let mut cycle = 0u64;
        loop {
            if let Some(drv) = drv.as_mut() {
                for (view, op) in drv.poll(cycle) {
                    // Grow the per-epoch delivery ledger exactly when
                    // the epoch is published — its length is part of
                    // the bit-identity contract.
                    run.stats.epoch_delivered.push(0);
                    for w in &mut workers {
                        w.publish(cycle, view.clone(), op);
                    }
                }
            }
            if let Some(wl) = wl.as_mut() {
                // Poll the source strictly after the previous cycle's
                // feedback (`end_of_cycle` below) and any epoch
                // publication for this boundary.
                let msgs = wl.poll(cycle);
                if !msgs.is_empty() {
                    for w in &mut workers {
                        w.enqueue_workload(&msgs);
                    }
                }
            }
            let mut agg = CycleDone::default();
            for w in &mut workers {
                if P::ACTIVE {
                    // The in-process transport grants one cycle per
                    // barrier (the lease baseline).
                    w.probe.barrier(1);
                }
                w.plan_and_grant(cycle, &mut agg);
            }
            // Boundary exchange (in-process: direct hand-off between
            // neighboring tiles).
            for i in 0..workers.len() {
                let boxes = workers[i].take_outboxes();
                for (d, msgs) in boxes.into_iter().enumerate() {
                    if msgs.is_empty() {
                        continue;
                    }
                    let j = nbrs[i][d].expect("boundary messages stay on the mesh");
                    workers[j].shard.apply_boundary(msgs);
                }
            }
            for w in &mut workers {
                w.finish_cycle(&mut agg);
            }
            let stop = run.end_of_cycle(cycle, agg, obs, wl.as_mut());
            cycle += 1;
            if stop {
                break;
            }
        }
        let reason = run.stop;
        for w in &mut workers {
            w.finish_run(cycle, reason);
        }
        let trace = run.take_trace();
        let mut stats = run.finish();
        if let Some(drv) = drv {
            let (events, rejected) = drv.into_outcome();
            stats.online_events = events;
            stats.churn_rejected = rejected;
        }
        let core = CoreOutput { stats, workload: wl.map(WorkloadDriver::into_outcome), trace };
        (core, workers.into_iter().map(|w| w.probe).collect())
    }

    /// The worker-thread transport: one scoped thread per tile shard,
    /// with the coordinator on this thread granting lease windows and
    /// replaying the buffered per-cycle reports. Workers exchange
    /// cycle-stamped boundary messages directly with their tile
    /// neighbors over channels *every cycle* (which keeps adjacent
    /// tiles causally consistent); the coordinator round trip is
    /// amortized over the lease window, and every termination or
    /// observer decision is computed by replaying the merged per-cycle
    /// deltas in cycle order through the same `RunState` logic the
    /// in-process transport uses — so the decisions land on exactly
    /// the same cycle sequence, and cycles a worker ran past a stop
    /// decision under an already-granted lease are discarded.
    fn run_threaded<P, F>(
        mut self,
        obs: &mut dyn WindowObserver,
        mk: F,
    ) -> Result<(CoreOutput, Vec<P>), RunError>
    where
        P: FabricProbe + Send,
        F: Fn(usize, &Shard) -> P,
    {
        let mut drv = self.online.take().map(|c| OnlineDriver::new(c, self.env.views[0].clone()));
        let mut wl = self.workload.take().map(WorkloadDriver::new);
        let workload = wl.is_some();
        // A workload source may react to any delivery, so every cycle
        // is a coordination boundary: quantum 1 clamps every lease to
        // one cycle and gates it on the replay cursor, which puts the
        // cycle's `Go::Inject` ahead of its lease on every FIFO lane.
        // The churn driver still fires only at its own quantum's
        // multiples (it skips other cycles internally).
        let quantum = if workload { Some(1) } else { drv.as_ref().map(|d| d.quantum()) };
        #[cfg(test)]
        let panic_at = self.panic_at;
        let shards = self.fabric.take_shards();
        let n = shards.len();
        assert!(n < (1 << (32 - ID_SHARD_SHIFT)), "shard count exceeds the packet-id namespace");
        let nbrs: Vec<[Option<usize>; 4]> = shards.iter().map(|s| s.neighbors()).collect();
        let dims: Vec<(usize, usize)> = shards.iter().map(|s| s.tile_dims()).collect();
        let mut buckets = Self::partition_sources(self.sources, &shards);
        let cfg = self.cfg.clone();
        let ttl = self.ttl;
        let kind = self.kind;
        let env = &self.env;

        // Control channels: one `Go` lane per worker, one shared
        // report lane back. Boundary lanes form the tile adjacency
        // graph: one lane per (shard, direction with a neighbor),
        // whose receiver sits at the neighbor's opposite port (`Dir`
        // pairs +x/-x and +y/-y: xor 1). Every lane end is *moved* to
        // its unique user — the coordinator keeps only the ends it
        // reads/writes itself and drops its `done` sender after
        // spawning — so a worker panic disconnects its lanes: the
        // neighbors' blocking recvs error out instead of waiting
        // forever, they return into the join, and the coordinator
        // surfaces the failure rather than deadlocking the run.
        let mut go_tx: Vec<Sender<Go>> = Vec::with_capacity(n);
        let mut go_rx: Vec<Option<Receiver<Go>>> = Vec::with_capacity(n);
        for _ in 0..n {
            let (t, r) = channel::unbounded();
            go_tx.push(t);
            go_rx.push(Some(r));
        }
        type BoundaryLane = (u64, Vec<BoundaryMsg>);
        let mut btx: Vec<[Option<Sender<BoundaryLane>>; 4]> =
            (0..n).map(|_| [None, None, None, None]).collect();
        let mut brx: Vec<[Option<Receiver<BoundaryLane>>; 4]> =
            (0..n).map(|_| [None, None, None, None]).collect();
        for i in 0..n {
            for d in 0..4 {
                if let Some(j) = nbrs[i][d] {
                    let (t, r) = channel::unbounded();
                    btx[i][d] = Some(t);
                    brx[j][d ^ 1] = Some(r);
                }
            }
        }
        let (done_tx, done_rx) = channel::unbounded::<WorkerReport>();
        let mut done_tx = Some(done_tx);
        let run = RunState::new(&cfg, self.stats);

        crossbeam::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(n);
            for (w, shard) in shards.into_iter().enumerate() {
                let sources = std::mem::take(&mut buckets[w]);
                let go_rx = go_rx[w].take().expect("one worker per lane");
                let done_tx = done_tx.as_ref().expect("dropped only after spawning").clone();
                let btx = std::mem::take(&mut btx[w]);
                let brx = std::mem::take(&mut brx[w]);
                let cfg = &cfg;
                let probe = mk(w, &shard);
                handles.push(scope.spawn(move |_| {
                    // The dying-word sender lives outside the unwind
                    // boundary: a caught panic is reported over the
                    // shared `done` lane, exactly where the coordinator
                    // would otherwise block forever.
                    let report_tx = done_tx.clone();
                    let caught = catch_unwind(AssertUnwindSafe(move || {
                        let mut paths = worker_table(&env.views, kind);
                        let router = build_hop_router(&mut paths, cfg);
                        let mut worker =
                            ShardWorker::new(shard, sources, router, env, cfg, ttl, w, probe);
                        worker.workload = workload;
                        #[cfg(test)]
                        {
                            worker.panic_at = panic_at.and_then(|(s, at)| (s == w).then_some(at));
                        }
                        loop {
                            match go_rx.recv() {
                                Ok(Go::Lease { start, len }) => {
                                    if P::ACTIVE {
                                        worker.probe.barrier(len);
                                    }
                                    let mut dones = Vec::with_capacity(len as usize);
                                    for cycle in start..start + len {
                                        let mut done = CycleDone::default();
                                        worker.plan_and_grant(cycle, &mut done);
                                        let t = P::ACTIVE.then(Instant::now);
                                        let boxes = worker.take_outboxes();
                                        for (d, msgs) in boxes.into_iter().enumerate() {
                                            match &btx[d] {
                                                // Empty vectors are sent
                                                // too: they are the
                                                // neighbor's cycle clock.
                                                Some(tx) => {
                                                    let _ = tx.send((cycle, msgs));
                                                }
                                                None => debug_assert!(
                                                    msgs.is_empty(),
                                                    "boundary messages stay on the mesh"
                                                ),
                                            }
                                        }
                                        for rx in brx.iter().flatten() {
                                            // A dead neighbor lane means
                                            // the run is being torn down
                                            // (that neighbor panicked or
                                            // exited): return cleanly
                                            // instead of panicking into
                                            // the teardown.
                                            let Ok((c, msgs)) = rx.recv() else {
                                                return (worker.shard, worker.probe);
                                            };
                                            debug_assert_eq!(
                                                c, cycle,
                                                "neighbor lanes desynchronized"
                                            );
                                            worker.shard.apply_boundary(msgs);
                                        }
                                        if let Some(t) = t {
                                            worker.probe.phase_ns(
                                                Phase::Boundary,
                                                t.elapsed().as_nanos() as u64,
                                            );
                                        }
                                        worker.finish_cycle(&mut done);
                                        dones.push(done);
                                    }
                                    let _ = done_tx.send(WorkerReport::Cycles {
                                        shard: w,
                                        start,
                                        dones,
                                    });
                                }
                                Ok(Go::Publish(start, view, op)) => {
                                    worker.publish(start, view, op);
                                }
                                Ok(Go::Inject(at, msgs)) => {
                                    debug_assert!(
                                        msgs.iter().all(|m| m.at == at),
                                        "inject batch spans cycles"
                                    );
                                    worker.enqueue_workload(&msgs);
                                }
                                Ok(Go::Finish(cycle, reason)) => {
                                    worker.finish_run(cycle, reason);
                                    return (worker.shard, worker.probe);
                                }
                                Err(_) => return (worker.shard, worker.probe),
                            }
                        }
                    }));
                    match caught {
                        Ok(pair) => Some(pair),
                        Err(payload) => {
                            let _ = report_tx.send(WorkerReport::Panicked {
                                shard: w,
                                message: panic_message(payload.as_ref()),
                            });
                            None
                        }
                    }
                }));
            }
            // Only live workers hold a `done` sender now.
            done_tx = None;

            // Lease bookkeeping. `worker_end[w]` is the exclusive end
            // of w's granted window; `replay_next` is the next cycle
            // the coordinator replays; `buffer[k]` merges the deltas
            // of cycle `replay_next + k` together with how many shards
            // have reported it.
            let mut run = run;
            let mut worker_end = vec![0u64; n];
            let mut reported_through = vec![0u64; n];
            let mut last_moved = vec![0u64; n];
            let mut last_len = vec![0u64; n];
            let mut replay_next = 0u64;
            let mut buffer: VecDeque<(CycleDone, usize)> = VecDeque::new();
            // Workers whose next lease starts exactly on a churn
            // quantum boundary wait here until the replay cursor has
            // polled that boundary, so the boundary's `Go::Publish`
            // precedes the lease on their FIFO lane.
            let mut gated: Vec<usize> = Vec::new();
            let mut failure: Option<RunError> = None;
            let mut stopped = false;

            // The lease window for worker `w` starting at `start`:
            // the explicit config value, or the auto bound
            // `min(tile_w, tile_h)` — the tile edge distance, the
            // soonest a remote tile's effect can cross this tile —
            // clamped to [1, 64] and adapted by the previous window's
            // committed flit counts (deterministic: simulation state,
            // never wall clock). Under online churn every window is
            // clamped to the next quantum boundary so no lease ever
            // spans a publication.
            let lease_for = |w: usize, start: u64, last_moved: &[u64], last_len: &[u64]| -> u64 {
                let (tw, th) = dims[w];
                let len = if cfg.lease > 0 {
                    cfg.lease
                } else {
                    let base = (tw.min(th) as u64).clamp(1, 64);
                    if last_len[w] == 0 {
                        base
                    } else if last_moved[w] == 0 {
                        // Idle tile: stretch the window.
                        (base * 2).min(64)
                    } else if last_moved[w] > (tw * th) as u64 / 4 * last_len[w] {
                        // Hot tile: tighten the window so the
                        // coordinator can react (stop, publish,
                        // adapt) sooner.
                        (base / 2).max(1)
                    } else {
                        base
                    }
                };
                match quantum {
                    Some(q) => len.min((start / q + 1) * q - start).max(1),
                    None => len.max(1),
                }
            };
            // Cycle 0's workload release precedes the initial leases
            // on every FIFO lane (the churn driver never fires at
            // cycle 0).
            if let Some(wl) = wl.as_mut() {
                let msgs = wl.poll(0);
                if !msgs.is_empty() {
                    for tx in &go_tx {
                        let _ = tx.send(Go::Inject(0, msgs.clone()));
                    }
                }
            }
            for w in 0..n {
                let len = lease_for(w, 0, &last_moved, &last_len);
                let _ = go_tx[w].send(Go::Lease { start: 0, len });
                worker_end[w] = len;
            }

            while !stopped && failure.is_none() {
                match done_rx.recv() {
                    Ok(WorkerReport::Cycles { shard, start, dones }) => {
                        debug_assert_eq!(start, reported_through[shard], "report out of order");
                        reported_through[shard] = start + dones.len() as u64;
                        last_moved[shard] = dones.iter().map(|d| d.moved).sum();
                        last_len[shard] = dones.len() as u64;
                        // Merge the window into the replay buffer.
                        for (k, d) in dones.into_iter().enumerate() {
                            let idx = (start + k as u64 - replay_next) as usize;
                            if buffer.len() <= idx {
                                buffer.resize_with(idx + 1, Default::default);
                            }
                            let slot = &mut buffer[idx];
                            slot.0.merge(d);
                            slot.1 += 1;
                        }
                        // Replay every fully-merged cycle in order
                        // through the same termination logic the
                        // lockstep transports use.
                        while buffer.front().is_some_and(|&(_, count)| count == n) {
                            let (agg, _) = buffer.pop_front().expect("front checked");
                            if run.end_of_cycle(replay_next, agg, obs, wl.as_mut()) {
                                replay_next += 1;
                                stopped = true;
                                break;
                            }
                            replay_next += 1;
                            if let Some(q) = quantum {
                                if replay_next.is_multiple_of(q) {
                                    if let Some(drv) = drv.as_mut() {
                                        for (view, op) in drv.poll(replay_next) {
                                            // Grow the per-epoch delivery
                                            // ledger exactly when the epoch
                                            // is published — its length is
                                            // part of the bit-identity
                                            // contract.
                                            run.stats.epoch_delivered.push(0);
                                            for tx in &go_tx {
                                                let _ = tx.send(Go::Publish(
                                                    replay_next,
                                                    view.clone(),
                                                    op,
                                                ));
                                            }
                                        }
                                    }
                                    if let Some(wl) = wl.as_mut() {
                                        // Strictly after the cycle's
                                        // publications and the previous
                                        // cycle's feedback, strictly
                                        // before the leases gated on
                                        // this boundary.
                                        let msgs = wl.poll(replay_next);
                                        if !msgs.is_empty() {
                                            for tx in &go_tx {
                                                let _ =
                                                    tx.send(Go::Inject(replay_next, msgs.clone()));
                                            }
                                        }
                                    }
                                    // Release the leases gated on this
                                    // boundary, now strictly after its
                                    // publications on every FIFO lane.
                                    let mut i = 0;
                                    while i < gated.len() {
                                        if worker_end[gated[i]] == replay_next {
                                            let w = gated.swap_remove(i);
                                            let len =
                                                lease_for(w, replay_next, &last_moved, &last_len);
                                            let _ = go_tx[w]
                                                .send(Go::Lease { start: replay_next, len });
                                            worker_end[w] += len;
                                        } else {
                                            i += 1;
                                        }
                                    }
                                }
                            }
                        }
                        if stopped {
                            break;
                        }
                        // Prompt renewal: the worker is idle right now,
                        // and a stalled lease would stall its
                        // neighbors' per-cycle boundary recvs too.
                        let next = worker_end[shard];
                        let gate =
                            quantum.is_some_and(|q| next.is_multiple_of(q)) && replay_next < next;
                        if gate {
                            gated.push(shard);
                        } else {
                            let len = lease_for(shard, next, &last_moved, &last_len);
                            let _ = go_tx[shard].send(Go::Lease { start: next, len });
                            worker_end[shard] += len;
                        }
                    }
                    Ok(WorkerReport::Panicked { shard, message }) => {
                        failure = Some(RunError::WorkerPanicked { shard, message });
                    }
                    Err(_) => failure = Some(RunError::WorkerLost),
                }
            }

            if failure.is_none() {
                // Fence: workers may hold leases past the stop
                // decision. Top every worker up to the common fence —
                // gated workers included; their discarded cycles run
                // with a stale epoch, harmlessly — then drain the
                // reports (the statistics were sealed by the replay;
                // these cycles are overshoot) before the finish
                // broadcast, so every worker sees `Finish` only once
                // it is idle and every boundary lane is balanced.
                let fence = worker_end.iter().copied().max().unwrap_or(0);
                for w in 0..n {
                    if worker_end[w] < fence {
                        let _ = go_tx[w]
                            .send(Go::Lease { start: worker_end[w], len: fence - worker_end[w] });
                        worker_end[w] = fence;
                    }
                }
                while failure.is_none() && reported_through.iter().any(|&r| r < fence) {
                    match done_rx.recv() {
                        Ok(WorkerReport::Cycles { shard, start, dones }) => {
                            reported_through[shard] = start + dones.len() as u64;
                        }
                        Ok(WorkerReport::Panicked { shard, message }) => {
                            failure = Some(RunError::WorkerPanicked { shard, message });
                        }
                        Err(_) => failure = Some(RunError::WorkerLost),
                    }
                }
            }

            if let Some(mut err) = failure {
                // Teardown: dropping every coordinator-held sender
                // disconnects the control lanes, so every blocked
                // worker observes the disconnect — directly, or
                // through the boundary lane of a neighbor that already
                // returned — and returns: the run fails typed, it
                // never hangs.
                drop(go_tx);
                for h in handles {
                    let _ = h.join();
                }
                // Prefer a root-cause panic report over a bare lane
                // death: the report may still have been in flight when
                // the coordinator first noticed the disconnect.
                if err == RunError::WorkerLost {
                    while let Ok(r) = done_rx.try_recv() {
                        if let WorkerReport::Panicked { shard, message } = r {
                            err = RunError::WorkerPanicked { shard, message };
                            break;
                        }
                    }
                }
                return Err(err);
            }
            let reason = run.stop;
            for tx in &go_tx {
                let _ = tx.send(Go::Finish(replay_next, reason));
            }
            let mut probes = Vec::with_capacity(n);
            for h in handles {
                let Ok(Some((_shard, probe))) = h.join() else {
                    return Err(RunError::WorkerLost);
                };
                probes.push(probe);
            }
            let trace = run.take_trace();
            let mut stats = run.finish();
            if let Some(drv) = drv {
                let (events, rejected) = drv.into_outcome();
                stats.online_events = events;
                stats.churn_rejected = rejected;
            }
            let core = CoreOutput { stats, workload: wl.map(WorkloadDriver::into_outcome), trace };
            Ok((core, probes))
        })
        .expect("simulation coordinator panicked")
    }
}

/// Convenience wrapper: build, run, collect.
pub fn run_traffic(net: &NetView, kind: RoutingKind, cfg: &SimConfig) -> TrafficStats {
    let mut paths = PathTable::new(net, kind);
    TrafficSim::new(&mut paths, cfg.clone()).run()
}

/// Like [`run_traffic`], but reusing an existing path table so compiled
/// routes carry over between runs (e.g. an injection-rate sweep over
/// the same network and routing function).
pub fn run_traffic_reusing(paths: &mut PathTable, cfg: &SimConfig) -> TrafficStats {
    TrafficSim::new(paths, cfg.clone()).run()
}

/// [`run_traffic_reusing`] with a streaming [`WindowObserver`] attached
/// (see [`TrafficSim::run_with`]).
pub fn run_traffic_reusing_with(
    paths: &mut PathTable,
    cfg: &SimConfig,
    obs: &mut dyn WindowObserver,
) -> TrafficStats {
    TrafficSim::new(paths, cfg.clone()).run_with(obs)
}

/// [`run_traffic_reusing_with`] returning the merged [`ObsReport`]
/// alongside the statistics when `cfg.obs` enables recording (see
/// [`TrafficSim::run_observed`]).
pub fn run_traffic_observed(
    paths: &mut PathTable,
    cfg: &SimConfig,
    obs: &mut dyn WindowObserver,
) -> (TrafficStats, Option<ObsReport>) {
    TrafficSim::new(paths, cfg.clone()).run_observed(obs)
}

/// Routes a single packet of `len` flits from `s` to `d` through an
/// otherwise idle fabric and returns its latency in cycles, or `None`
/// when the routing function does not deliver the pair.
///
/// At zero load this is exactly
/// `route_hops + PIPELINE_DEPTH + (len - 1)`, which the integration
/// tests pin against the BFS oracle. (An idle fabric never blocks a
/// head, so the escape class is irrelevant here and the probe runs the
/// deterministic replay router.)
pub fn single_packet_latency(
    net: &NetView,
    kind: RoutingKind,
    s: Coord,
    d: Coord,
    len: u32,
) -> Option<u64> {
    assert!(len >= 1, "a packet has at least one flit");
    let mesh = *net.mesh();
    let mut paths = PathTable::new(net, kind);
    let mut probe = ReplayHop::new(&mut paths);
    probe.admit(s, d)?;
    // Probe fabric: the VC/depth pair is shared with the injection
    // check below — the injector must not stage past the buffer depth.
    const PROBE_VCS: usize = 2;
    const PROBE_DEPTH: usize = 4;
    let mut fabric = Fabric::new(mesh, PROBE_VCS, PROBE_DEPTH, 0);
    let id = fabric.register_packet(PacketState::new(s, d, 0, len));
    let src = mesh.id(s);
    let mut sent = 0u32;
    let mut ejected = Vec::new();
    let budget = 16 * (mesh.len() as u64) + 16 * u64::from(len);
    for cycle in 0..budget {
        if sent < len && fabric.local_occupancy(src) < PROBE_DEPTH {
            fabric.inject_flit(
                src,
                Flit { packet: id, is_head: sent == 0, is_tail: sent + 1 == len },
            );
            sent += 1;
        }
        fabric.step(&mut probe, &mut ejected);
        if !ejected.is_empty() {
            return Some(cycle + 1);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PIPELINE_DEPTH;
    use crate::pattern::{LengthDist, TrafficPattern};
    use meshpath_mesh::{FaultSet, Mesh};

    fn fault_free(n: u32) -> NetView {
        NetView::build(FaultSet::none(Mesh::square(n)))
    }

    #[test]
    fn zero_load_single_packets_match_the_model() {
        let net = fault_free(8);
        for kind in RoutingKind::ALL {
            let s = Coord::new(1, 2);
            let d = Coord::new(6, 5);
            let lat = single_packet_latency(&net, kind, s, d, 4).expect("delivered");
            assert_eq!(lat, u64::from(s.manhattan(d)) + PIPELINE_DEPTH + 3, "{}", kind.name());
        }
    }

    #[test]
    fn low_load_run_delivers_everything() {
        let net = fault_free(8);
        let cfg = SimConfig { rate: 0.005, ..SimConfig::smoke() };
        let stats = run_traffic(&net, RoutingKind::Xy, &cfg);
        assert!(stats.measured_generated > 0, "some packets must be generated");
        assert_eq!(stats.measured_delivered, stats.measured_generated);
        assert!(!stats.saturated);
        assert!(!stats.deadlocked);
        assert_eq!(stats.unroutable, 0);
        // Mean latency at near-zero load sits near the zero-load model:
        // average hop count of uniform traffic on an 8x8 mesh is ~5.3,
        // plus pipeline 2 plus serialization 3.
        let mean = stats.mean_latency();
        assert!(mean > 5.0 && mean < 20.0, "implausible zero-load mean {mean}");
    }

    #[test]
    fn same_seed_is_bit_identical_and_seeds_differ() {
        let net = fault_free(6);
        let cfg = SimConfig { rate: 0.02, ..SimConfig::smoke() };
        let a = run_traffic(&net, RoutingKind::Rb2, &cfg);
        let b = run_traffic(&net, RoutingKind::Rb2, &cfg);
        assert_eq!(a, b, "same seed must reproduce bit-identically");
        let c = run_traffic(&net, RoutingKind::Rb2, &SimConfig { seed: 7, ..cfg });
        assert_ne!(a.generated, c.generated, "different seeds, different workload");
    }

    #[test]
    fn sharded_run_is_bit_identical_to_sequential() {
        // The tentpole claim at the driver level: the same seeded
        // config produces the same statistics at every thread count,
        // across load regimes (the golden suite covers random draws).
        let mesh = Mesh::square(12);
        let net = NetView::build(FaultSet::from_coords(
            mesh,
            [Coord::new(4, 4), Coord::new(7, 2), Coord::new(2, 9)],
        ));
        for rate in [0.01, 0.08] {
            let base = SimConfig { rate, threads: 1, ..SimConfig::smoke() };
            let sequential = run_traffic(&net, RoutingKind::Rb2, &base);
            for threads in [2, 3, 4] {
                let sharded =
                    run_traffic(&net, RoutingKind::Rb2, &SimConfig { threads, ..base.clone() });
                assert_eq!(sequential, sharded, "threads = {threads}, rate = {rate}");
            }
        }
    }

    #[test]
    fn lease_windows_cut_coordinator_barriers_by_the_lease_factor() {
        // The point of the free-running lease: the per-shard barrier
        // count (one per granted lease, recorded by the obs probe) must
        // shrink by at least the lease factor relative to lockstep —
        // while the statistics stay bit-identical.
        let net = fault_free(12);
        let base = SimConfig {
            rate: 0.01,
            threads: 2,
            obs: crate::ObsLevel::Metrics,
            ..SimConfig::smoke()
        };
        let barriers = |lease: u64| -> (TrafficStats, u64) {
            let mut paths = PathTable::new(&net, RoutingKind::Xy);
            let cfg = SimConfig { lease, ..base.clone() };
            let (stats, report) = run_traffic_observed(&mut paths, &cfg, &mut ());
            let report = report.expect("metrics recording was on");
            (stats, report.shards.iter().map(|s| s.barriers).sum())
        };
        let (lockstep_stats, lockstep_barriers) = barriers(1);
        let (leased_stats, leased_barriers) = barriers(8);
        assert_eq!(leased_stats, lockstep_stats, "lease windows must not change results");
        assert!(lockstep_barriers > 0 && leased_barriers > 0);
        // Fence windows at churn-quantum boundaries and the drain tail
        // are clamped short, so the realized factor lands a hair under
        // the nominal lease; 7x of a nominal 8 is the honest floor.
        assert!(
            lockstep_barriers >= 7 * leased_barriers,
            "lease 8 must amortize ~8x fewer barriers: lockstep {lockstep_barriers}, \
             leased {leased_barriers}"
        );
    }

    #[test]
    fn bursty_and_geometric_scenarios_run_and_shard_deterministically() {
        let net = fault_free(8);
        let cfg = SimConfig {
            rate: 0.01,
            injection: InjectionProcess::MarkovOnOff { on_to_off: 0.2, off_to_on: 0.05 },
            length: LengthDist::Geometric { max: 16 },
            ..SimConfig::smoke()
        };
        let a = run_traffic(&net, RoutingKind::Rb2, &cfg);
        assert!(a.measured_generated > 0, "the on/off process must generate");
        assert_eq!(a.measured_delivered, a.measured_generated, "low load must drain");
        assert_eq!(a, run_traffic(&net, RoutingKind::Rb2, &cfg), "must be deterministic");
        let sharded = run_traffic(&net, RoutingKind::Rb2, &SimConfig { threads: 2, ..cfg });
        assert_eq!(a, sharded, "bursty scenarios must shard bit-identically");
    }

    #[test]
    fn saturation_is_detected_at_absurd_load() {
        let net = fault_free(6);
        let cfg =
            SimConfig { rate: 0.9, warmup: 50, measure: 300, drain: 150, ..SimConfig::default() };
        let stats = run_traffic(&net, RoutingKind::Xy, &cfg);
        assert!(stats.saturated || stats.deadlocked, "rate 0.9 must exceed capacity: {stats:?}");
    }

    #[test]
    fn faulty_nodes_neither_send_nor_receive() {
        let mesh = Mesh::square(6);
        let bad = Coord::new(2, 2);
        let net = NetView::build(FaultSet::from_coords(mesh, [bad]));
        let cfg = SimConfig { rate: 0.05, ..SimConfig::smoke() };
        let stats = run_traffic(&net, RoutingKind::Rb2, &cfg);
        assert!(stats.measured_generated > 0);
        assert_eq!(stats.measured_delivered, stats.measured_generated);
    }

    #[test]
    fn patterns_drive_the_run_loop() {
        let net = fault_free(6);
        for pattern in [
            TrafficPattern::Transpose,
            TrafficPattern::BitComplement,
            TrafficPattern::Permutation,
            TrafficPattern::Hotspot { targets: vec![Coord::new(3, 3)], fraction: 0.5 },
        ] {
            let cfg = SimConfig { rate: 0.01, pattern, ..SimConfig::smoke() };
            let stats = run_traffic(&net, RoutingKind::ECube, &cfg);
            assert_eq!(
                stats.measured_delivered, stats.measured_generated,
                "low load must drain for {:?}",
                cfg.pattern
            );
        }
    }

    #[test]
    fn window_samples_stream_and_cover_the_run() {
        struct Collect(Vec<crate::WindowSample>);
        impl crate::WindowObserver for Collect {
            fn on_window(&mut self, s: &crate::WindowSample) -> crate::WindowControl {
                self.0.push(*s);
                crate::WindowControl::Continue
            }
        }
        let net = fault_free(8);
        let cfg = SimConfig { rate: 0.02, stats_window: 100, ..SimConfig::smoke() };
        let mut paths = PathTable::new(&net, RoutingKind::Rb2);
        let mut obs = Collect(Vec::new());
        let stats = run_traffic_reusing_with(&mut paths, &cfg, &mut obs);
        assert!(!obs.0.is_empty(), "windows must stream");
        // Windows tile the run contiguously and their totals reconcile
        // with the end-of-run statistics (the final partial window is
        // never emitted, hence >=).
        for (i, s) in obs.0.iter().enumerate() {
            assert_eq!(s.start, 100 * i as u64);
            assert_eq!(s.end, s.start + 100);
        }
        let windowed_moved: u64 = obs.0.iter().map(|s| s.moved).sum();
        assert!(windowed_moved <= stats.flits_moved);
        assert!(stats.flits_moved > 0);
        let delivered: u64 = obs.0.iter().map(|s| s.delivered).sum();
        assert!(delivered >= stats.measured_delivered);
        assert!(obs.0.iter().any(|s| s.draining), "the drain phase must be flagged");
        // Attaching an observer must not change the simulation.
        let plain = run_traffic_reusing(&mut paths, &cfg);
        assert_eq!(plain, stats, "observers are read-only");
    }

    #[test]
    fn window_stop_ends_the_run_with_the_deadline_classification() {
        struct StopAfter(u32);
        impl crate::WindowObserver for StopAfter {
            fn on_window(&mut self, _s: &crate::WindowSample) -> crate::WindowControl {
                self.0 -= 1;
                if self.0 == 0 {
                    crate::WindowControl::Stop
                } else {
                    crate::WindowControl::Continue
                }
            }
        }
        // Absurd load, stopped mid-measure: measured packets are
        // certainly outstanding, so the run must classify saturated.
        let net = fault_free(6);
        let cfg = SimConfig {
            rate: 0.9,
            warmup: 50,
            measure: 300,
            drain: 150,
            stats_window: 100,
            ..SimConfig::default()
        };
        let mut paths = PathTable::new(&net, RoutingKind::Xy);
        let stats = run_traffic_reusing_with(&mut paths, &cfg, &mut StopAfter(2));
        assert_eq!(stats.cycles, 200, "stopped at the second window boundary");
        assert!(stats.saturated);
    }

    #[test]
    #[should_panic(expected = "EscapeAdaptive policy needs a reserved escape channel")]
    fn escape_policy_requires_a_reserved_channel() {
        let net = fault_free(4);
        let cfg = SimConfig {
            escape_vcs: 0,
            policy: RoutePolicy::EscapeAdaptive { patience: 4 },
            ..SimConfig::smoke()
        };
        let mut paths = PathTable::new(&net, RoutingKind::Xy);
        let _ = TrafficSim::new(&mut paths, cfg);
    }

    #[test]
    fn injected_worker_panic_surfaces_as_typed_error() {
        let net = fault_free(12);
        let cfg = SimConfig { rate: 0.02, threads: 3, ..SimConfig::smoke() };
        let mut paths = PathTable::new(&net, RoutingKind::Rb2);
        let mut sim = TrafficSim::new(&mut paths, cfg.clone());
        sim.set_panic_at(1, 40);
        match sim.try_run() {
            Err(RunError::WorkerPanicked { shard, message }) => {
                assert_eq!(shard, 1);
                assert!(message.contains("injected test panic at cycle 40"), "{message}");
            }
            other => panic!("expected a typed worker panic, got {other:?}"),
        }
        // The coordinator's own band (shard 0) fails just as typed —
        // and in both cases the run returned instead of hanging.
        let mut sim = TrafficSim::new(&mut paths, cfg);
        sim.set_panic_at(0, 40);
        match sim.try_run() {
            Err(RunError::WorkerPanicked { shard, .. }) => assert_eq!(shard, 0),
            other => panic!("expected a typed worker panic, got {other:?}"),
        }
    }

    #[test]
    fn online_churn_kills_stranded_traffic_and_recovers_after_repair() {
        use crate::churn::{ChurnInjector, OnlineChurn};
        let net = fault_free(8);
        let hot = Coord::new(4, 4);
        let cfg = SimConfig {
            rate: 0.05,
            pattern: TrafficPattern::Hotspot { targets: vec![hot], fraction: 0.8 },
            stats_window: 50,
            ..SimConfig::smoke()
        };
        // Unscheduled events injected *mid-run* from the window
        // observer: fail the hotspot during the measure phase, repair
        // it a hundred cycles later.
        struct MidRun {
            injector: ChurnInjector,
            at: Coord,
        }
        impl crate::WindowObserver for MidRun {
            fn on_window(&mut self, s: &crate::WindowSample) -> crate::WindowControl {
                if s.end == 50 {
                    self.injector.fail(self.at);
                } else if s.end == 150 {
                    self.injector.repair(self.at);
                }
                crate::WindowControl::Continue
            }
        }
        let injector = ChurnInjector::new();
        let mut paths = PathTable::new(&net, RoutingKind::Rb2);
        let sim =
            TrafficSim::new(&mut paths, cfg).with_online_churn(OnlineChurn::new(injector.clone()));
        let mut obs = MidRun { injector, at: hot };
        let stats = sim.try_run_with(&mut obs).expect("online churn must not fail the run");
        assert!(!stats.deadlocked, "online churn must never wedge the fabric");
        assert_eq!(
            stats.online_events.iter().map(|e| e.op).collect::<Vec<_>>(),
            vec![ChurnOp::Fail(hot), ChurnOp::Repair(hot)],
            "both unscheduled events must apply: {:?}",
            stats.online_events
        );
        assert_eq!(stats.churn_rejected, 0);
        assert!(stats.churn_killed > 0, "hotspot-bound worms must be killed by the failure");
        assert_eq!(stats.epoch_delivered.len(), 3, "base epoch + two online epochs");
        assert!(stats.epoch_delivered[2] > 0, "traffic must flow again after the repair");
        assert!(stats.measured_delivered <= stats.measured_generated);
    }

    #[test]
    fn online_churn_is_bit_identical_at_every_shard_count() {
        use crate::churn::{ChaosConfig, OnlineChurn};
        let net = fault_free(12);
        let chaos = ChaosConfig {
            seed: 5,
            fail_prob: 0.6,
            repair_prob: 0.4,
            start: 40,
            stop: 300,
            max_faults: 5,
        };
        let mk = |threads| {
            let cfg = SimConfig { rate: 0.02, threads, ..SimConfig::smoke() };
            let mut paths = PathTable::new(&net, RoutingKind::Rb2);
            TrafficSim::new(&mut paths, cfg)
                .with_online_churn(OnlineChurn::chaos(chaos).with_quantum(16))
                .try_run()
                .expect("chaos run must complete")
        };
        let base = mk(1);
        assert!(!base.online_events.is_empty(), "chaos must fire inside its window");
        assert!(!base.deadlocked);
        assert_eq!(base.epoch_delivered.len(), base.online_events.len() + 1);
        for threads in [2, 4] {
            assert_eq!(base, mk(threads), "threads = {threads}");
        }
    }

    #[test]
    #[should_panic(expected = "cannot mix")]
    fn online_churn_and_prescheduled_churn_cannot_mix() {
        use crate::churn::{ChurnInjector, OnlineChurn};
        use crate::config::ChurnEvent;
        let net = fault_free(6);
        let cfg = SimConfig {
            fault_churn: vec![ChurnEvent::fail(40, Coord::new(2, 2))],
            ..SimConfig::smoke()
        };
        let mut paths = PathTable::new(&net, RoutingKind::Rb2);
        let _ = TrafficSim::new(&mut paths, cfg)
            .with_online_churn(OnlineChurn::new(ChurnInjector::new()));
    }

    #[test]
    fn ttl_default_is_per_router() {
        // E-cube on a faulty 16x16 can emit very long escape walks; the
        // automatic TTL keeps dropping those. RB2 has no TTL by default
        // any more: nothing is dropped even on unlucky pairs.
        let mesh = Mesh::square(16);
        let net = NetView::build(FaultSet::from_coords(
            mesh,
            (4..12).map(|x| Coord::new(x, 8)).collect::<Vec<_>>(),
        ));
        let cfg = SimConfig { rate: 0.01, ..SimConfig::smoke() };
        let rb2 = run_traffic(&net, RoutingKind::Rb2, &cfg);
        assert_eq!(rb2.ttl_dropped, 0, "non-E-cube routers default to no TTL");
        assert_eq!(rb2.measured_delivered, rb2.measured_generated);
    }
}
