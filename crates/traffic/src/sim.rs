//! The simulation driver: injection processes, the measurement
//! protocol, and the run loop.

use std::collections::VecDeque;

use meshpath_mesh::{derive_seed, Coord, NodeId};
use meshpath_route::Network;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::config::{RoutePolicy, SimConfig};
use crate::fabric::{Fabric, Flit, PacketState};
use crate::pattern::DestSampler;
use crate::routing::{EscapeHop, HopRouter, PathTable, ReplayHop, RoutingKind};
use crate::stats::{LatencyHistogram, TrafficStats, WindowControl, WindowObserver, WindowSample};

/// Latencies above this resolve to the histogram overflow bucket.
const HISTOGRAM_CAP: usize = 4096;

/// Cycles of zero fabric movement (with flits in flight and nothing
/// injectable) before the run is declared deadlocked.
///
/// With escape VCs enabled this is a *liveness assertion*: Duato-style
/// escape routing is expected to keep the fabric moving, so a firing
/// detector indicates either an escape-starved fault pattern (every
/// member of a cyclic wait parked where its XY run crosses a fault) or
/// a fabric bug. Without escape VCs it is the expected failure mode of
/// adaptive wormhole routing under load.
const DEADLOCK_WINDOW: u64 = 1000;

/// A generated packet waiting at its source network interface.
struct QueuedPacket {
    id: u32,
    /// Flits not yet fed into the injection channel.
    remaining: u32,
}

/// Per-node injection state.
struct SourceNode {
    id: NodeId,
    coord: Coord,
    rng: StdRng,
    queue: VecDeque<QueuedPacket>,
}

/// One traffic simulation: a fabric over a fault configuration, driven
/// by a seeded injection process, routed per hop by the policy's
/// [`HopRouter`] over one compiled routing function.
///
/// The path table is borrowed so sweeps can reuse compiled routes
/// across runs over the same network (route compilation dominates the
/// low-load setup cost; see [`run_traffic_reusing`]).
pub struct TrafficSim<'p> {
    cfg: SimConfig,
    /// Effective route hop budget (see `SimConfig::route_ttl`).
    ttl: u32,
    fabric: Fabric,
    router: Box<dyn HopRouter + 'p>,
    sampler: DestSampler,
    sources: Vec<SourceNode>,
    /// `generated_at` of every registered packet is in the fabric's
    /// packet table; this tracks which are measured and undelivered.
    measured_outstanding: u64,
    stats: TrafficStats,
    /// Golden-equivalence hook: run on the retained scan-order
    /// reference stepper instead of the event-driven one.
    #[cfg(test)]
    use_reference: bool,
}

impl<'p> TrafficSim<'p> {
    /// Builds a simulation driving `paths`' routing function over
    /// `paths`' network, per-hop, under `cfg.policy`.
    ///
    /// # Panics
    /// Panics when `cfg.packet_len` is zero (a packet has at least a
    /// head flit), `cfg.rate` is outside `[0, 1]`, `cfg.escape_vcs`
    /// leaves no adaptive channel, or policy and `escape_vcs`
    /// disagree (escape-adaptive needs a reserved channel;
    /// deterministic would strand any).
    pub fn new<'net>(paths: &'p mut PathTable<'net>, cfg: SimConfig) -> Self {
        assert!(cfg.packet_len >= 1, "packets need at least one flit");
        assert!(
            (0.0..=1.0).contains(&cfg.rate),
            "injection rate {} is not a per-cycle probability",
            cfg.rate
        );
        assert!(
            cfg.escape_vcs < cfg.vcs,
            "escape_vcs = {} must leave at least one adaptive channel of vcs = {}",
            cfg.escape_vcs,
            cfg.vcs
        );
        match cfg.policy {
            RoutePolicy::EscapeAdaptive { .. } => assert!(
                cfg.escape_vcs >= 1,
                "EscapeAdaptive policy needs a reserved escape channel (escape_vcs >= 1)"
            ),
            // ReplayHop never requests an escape class, so reserved
            // channels would be silently unallocatable — fail loudly
            // instead of biasing policy A/B comparisons with stranded
            // buffering (`SimConfig::without_escape` sets both knobs).
            RoutePolicy::Deterministic => assert!(
                cfg.escape_vcs == 0,
                "Deterministic policy would strand the {} reserved escape channel(s); \
                 set escape_vcs = 0 (see SimConfig::without_escape)",
                cfg.escape_vcs
            ),
        }
        let net = paths.network();
        let kind = paths.kind();
        let mesh = *net.mesh();
        let sampler = DestSampler::new(cfg.pattern.clone(), net.faults(), cfg.seed);
        let sources: Vec<SourceNode> = mesh
            .iter()
            .filter(|&c| net.faults().is_healthy(c))
            .map(|c| {
                let id = mesh.id(c);
                SourceNode {
                    id,
                    coord: c,
                    rng: StdRng::seed_from_u64(derive_seed(cfg.seed, u64::from(id.0), 0)),
                    queue: VecDeque::new(),
                }
            })
            .collect();
        let fabric = Fabric::new(mesh, cfg.vcs, cfg.vc_depth, cfg.escape_vcs);
        let router: Box<dyn HopRouter + 'p> = match cfg.policy {
            RoutePolicy::Deterministic => Box::new(ReplayHop::new(paths)),
            RoutePolicy::EscapeAdaptive { patience } => {
                // escape_vcs == 1 reserves only the tree channel; the
                // XY class needs a second reserved channel.
                Box::new(EscapeHop::new(paths, patience, cfg.escape_vcs >= 2))
            }
        };
        let stats = TrafficStats {
            cycles: 0,
            nodes: sources.len(),
            measure_window: cfg.measure,
            generated: 0,
            measured_generated: 0,
            measured_delivered: 0,
            unroutable: 0,
            ttl_dropped: 0,
            escape_packets: 0,
            measured_flits_ejected: 0,
            flits_moved: 0,
            latency: LatencyHistogram::new(HISTOGRAM_CAP),
            saturated: false,
            deadlocked: false,
        };
        // TTL default: E-cube's escape walk is the only route source
        // whose length is effectively unbounded; every other router is
        // within a small factor of shortest, and escape VCs now bound
        // blocking, so no budget is imposed on them.
        let ttl = cfg.route_ttl.unwrap_or(if kind == RoutingKind::ECube {
            4 * (mesh.width() + mesh.height())
        } else {
            u32::MAX
        });
        TrafficSim {
            cfg,
            ttl,
            fabric,
            router,
            sampler,
            sources,
            measured_outstanding: 0,
            stats,
            #[cfg(test)]
            use_reference: false,
        }
    }

    /// Golden-equivalence hook: step the fabric with the retained
    /// scan-order reference stepper instead of the event-driven one.
    #[cfg(test)]
    pub(crate) fn set_reference_stepper(&mut self) {
        self.use_reference = true;
    }

    /// Runs the full warmup / measure / drain protocol and returns the
    /// collected statistics.
    pub fn run(self) -> TrafficStats {
        self.run_with(&mut ())
    }

    /// Like [`TrafficSim::run`], but streaming a [`WindowSample`] to
    /// `obs` every [`stats_window`](SimConfig::stats_window) cycles.
    /// The observer is read-only over the simulation except for one
    /// power: returning [`WindowControl::Stop`] ends the run at that
    /// window boundary, classified exactly as at the drain deadline
    /// (`saturated` when measured packets are outstanding).
    pub fn run_with(mut self, obs: &mut dyn WindowObserver) -> TrafficStats {
        let gen_until = self.cfg.warmup + self.cfg.measure;
        let deadline = gen_until + self.cfg.drain;
        let window = self.cfg.stats_window;
        let mut ejected: Vec<u32> = Vec::new();
        let mut idle_streak = 0u64;
        // Per-window accumulators: (delivered, latency sum, ejected
        // flits, moved flit-hops), reset at each window boundary.
        let (mut w_delivered, mut w_lat_sum, mut w_ejected, mut w_moved) = (0u64, 0u64, 0u64, 0u64);

        let mut cycle = 0u64;
        loop {
            let mut injected_any = false;
            if cycle < gen_until {
                self.generate(cycle);
            }
            injected_any |= self.feed_injection_channels();

            #[cfg(test)]
            let report = if self.use_reference {
                self.fabric.step_reference(&mut *self.router, &mut ejected)
            } else {
                self.fabric.step(&mut *self.router, &mut ejected)
            };
            #[cfg(not(test))]
            let report = self.fabric.step(&mut *self.router, &mut ejected);

            self.stats.flits_moved += report.moved;
            for pk in ejected.drain(..) {
                // +1: the ejection link (see the fabric timing contract).
                let delivered_at = cycle + 1;
                let p = self.fabric.packet(pk);
                let gen_at = p.generated_at;
                w_delivered += 1;
                w_lat_sum += delivered_at - gen_at;
                if self.measured_window_contains(gen_at) {
                    self.stats.measured_delivered += 1;
                    self.measured_outstanding -= 1;
                    self.stats.latency.record(delivered_at - gen_at);
                }
            }
            if self.measured_window_contains(cycle) {
                self.stats.measured_flits_ejected += report.flits_ejected;
            }
            w_ejected += report.flits_ejected;
            w_moved += report.moved;

            // Progress & termination accounting.
            if report.moved == 0 && !injected_any {
                idle_streak += 1;
            } else {
                idle_streak = 0;
            }
            cycle += 1;

            if window > 0 && cycle.is_multiple_of(window) {
                let sample = WindowSample {
                    start: cycle - window,
                    end: cycle,
                    delivered: w_delivered,
                    mean_latency: if w_delivered == 0 {
                        0.0
                    } else {
                        w_lat_sum as f64 / w_delivered as f64
                    },
                    ejected_flits: w_ejected,
                    moved: w_moved,
                    in_flight: self.fabric.in_flight(),
                    backlog: self.sources.iter().map(|s| s.queue.len() as u64).sum(),
                    measured_outstanding: self.measured_outstanding,
                    draining: cycle >= gen_until,
                };
                (w_delivered, w_lat_sum, w_ejected, w_moved) = (0, 0, 0, 0);
                if obs.on_window(&sample) == WindowControl::Stop {
                    self.stats.saturated = self.measured_outstanding > 0;
                    break;
                }
            }

            let work_left =
                self.fabric.in_flight() > 0 || self.sources.iter().any(|s| !s.queue.is_empty());
            // Successful end of run. `idle_streak == 0` matters even
            // once every measured packet is home: leftover warmup-era
            // worms may be wedged in a cyclic wait, and breaking here
            // would report a clean run — let the deadlock detector
            // below classify them first.
            if cycle >= gen_until
                && (!work_left || (self.measured_outstanding == 0 && idle_streak == 0))
            {
                break;
            }
            // Classification: a cyclic wait is a deadlock even when it
            // forms late in the drain window, so the deadline only
            // declares saturation while flits are still moving; an
            // in-progress idle streak is allowed to resolve (bounded by
            // DEADLOCK_WINDOW extra cycles).
            if idle_streak >= DEADLOCK_WINDOW && self.fabric.in_flight() > 0 {
                self.stats.deadlocked = true;
                break;
            }
            if cycle >= deadline && (idle_streak == 0 || self.fabric.in_flight() == 0) {
                self.stats.saturated = self.measured_outstanding > 0;
                break;
            }
        }
        self.stats.cycles = cycle;
        self.stats.escape_packets = self.fabric.escape_entries();
        self.stats
    }

    fn measured_window_contains(&self, t: u64) -> bool {
        t >= self.cfg.warmup && t < self.cfg.warmup + self.cfg.measure
    }

    /// Bernoulli generation at every healthy node. The NI attaches no
    /// route — it only asks the hop router to *admit* the pair (is it
    /// routable, and how long is the compiled route, for the TTL
    /// check); all forwarding decisions happen per hop in the fabric.
    fn generate(&mut self, cycle: u64) {
        let rate = self.cfg.rate;
        let len = self.cfg.packet_len;
        let measured = self.measured_window_contains(cycle);
        for i in 0..self.sources.len() {
            let src = self.sources[i].coord;
            if !self.sources[i].rng.gen_bool(rate) {
                continue;
            }
            let Some(dst) = self.sampler.dest(src, &mut self.sources[i].rng) else {
                continue;
            };
            let Some(hops) = self.router.admit(src, dst) else {
                self.stats.unroutable += 1;
                continue;
            };
            if hops > self.ttl {
                self.stats.ttl_dropped += 1;
                continue;
            }
            let id = self.fabric.register_packet(PacketState::new(src, dst, cycle, len));
            self.stats.generated += 1;
            if measured {
                self.stats.measured_generated += 1;
                self.measured_outstanding += 1;
            }
            self.sources[i].queue.push_back(QueuedPacket { id, remaining: len });
        }
    }

    /// Feeds at most one flit per node per cycle from the head-of-line
    /// queued packet into the injection channel.
    fn feed_injection_channels(&mut self) -> bool {
        let depth = self.cfg.vc_depth;
        let mut any = false;
        for s in &mut self.sources {
            let Some(front) = s.queue.front_mut() else {
                continue;
            };
            if self.fabric.local_occupancy(s.id) >= depth {
                continue;
            }
            let total = self.fabric.packet(front.id).len;
            let flit = Flit {
                packet: front.id,
                is_head: front.remaining == total,
                is_tail: front.remaining == 1,
            };
            self.fabric.inject_flit(s.id, flit);
            front.remaining -= 1;
            if front.remaining == 0 {
                s.queue.pop_front();
            }
            any = true;
        }
        any
    }
}

/// Convenience wrapper: build, run, collect.
pub fn run_traffic(net: &Network, kind: RoutingKind, cfg: &SimConfig) -> TrafficStats {
    let mut paths = PathTable::new(net, kind);
    TrafficSim::new(&mut paths, cfg.clone()).run()
}

/// Like [`run_traffic`], but reusing an existing path table so compiled
/// routes carry over between runs (e.g. an injection-rate sweep over
/// the same network and routing function).
pub fn run_traffic_reusing(paths: &mut PathTable<'_>, cfg: &SimConfig) -> TrafficStats {
    TrafficSim::new(paths, cfg.clone()).run()
}

/// [`run_traffic_reusing`] with a streaming [`WindowObserver`] attached
/// (see [`TrafficSim::run_with`]).
pub fn run_traffic_reusing_with(
    paths: &mut PathTable<'_>,
    cfg: &SimConfig,
    obs: &mut dyn WindowObserver,
) -> TrafficStats {
    TrafficSim::new(paths, cfg.clone()).run_with(obs)
}

/// Routes a single packet of `len` flits from `s` to `d` through an
/// otherwise idle fabric and returns its latency in cycles, or `None`
/// when the routing function does not deliver the pair.
///
/// At zero load this is exactly
/// `route_hops + PIPELINE_DEPTH + (len - 1)`, which the integration
/// tests pin against the BFS oracle. (An idle fabric never blocks a
/// head, so the escape class is irrelevant here and the probe runs the
/// deterministic replay router.)
pub fn single_packet_latency(
    net: &Network,
    kind: RoutingKind,
    s: Coord,
    d: Coord,
    len: u32,
) -> Option<u64> {
    assert!(len >= 1, "a packet has at least one flit");
    let mesh = *net.mesh();
    let mut paths = PathTable::new(net, kind);
    let mut probe = ReplayHop::new(&mut paths);
    probe.admit(s, d)?;
    // Probe fabric: the VC/depth pair is shared with the injection
    // check below — the injector must not stage past the buffer depth.
    const PROBE_VCS: usize = 2;
    const PROBE_DEPTH: usize = 4;
    let mut fabric = Fabric::new(mesh, PROBE_VCS, PROBE_DEPTH, 0);
    let id = fabric.register_packet(PacketState::new(s, d, 0, len));
    let src = mesh.id(s);
    let mut sent = 0u32;
    let mut ejected = Vec::new();
    let budget = 16 * (mesh.len() as u64) + 16 * u64::from(len);
    for cycle in 0..budget {
        if sent < len && fabric.local_occupancy(src) < PROBE_DEPTH {
            fabric.inject_flit(
                src,
                Flit { packet: id, is_head: sent == 0, is_tail: sent + 1 == len },
            );
            sent += 1;
        }
        fabric.step(&mut probe, &mut ejected);
        if !ejected.is_empty() {
            return Some(cycle + 1);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PIPELINE_DEPTH;
    use crate::pattern::TrafficPattern;
    use meshpath_mesh::{FaultSet, Mesh};

    fn fault_free(n: u32) -> Network {
        Network::build(FaultSet::none(Mesh::square(n)))
    }

    #[test]
    fn zero_load_single_packets_match_the_model() {
        let net = fault_free(8);
        for kind in RoutingKind::ALL {
            let s = Coord::new(1, 2);
            let d = Coord::new(6, 5);
            let lat = single_packet_latency(&net, kind, s, d, 4).expect("delivered");
            assert_eq!(lat, u64::from(s.manhattan(d)) + PIPELINE_DEPTH + 3, "{}", kind.name());
        }
    }

    #[test]
    fn low_load_run_delivers_everything() {
        let net = fault_free(8);
        let cfg = SimConfig { rate: 0.005, ..SimConfig::smoke() };
        let stats = run_traffic(&net, RoutingKind::Xy, &cfg);
        assert!(stats.measured_generated > 0, "some packets must be generated");
        assert_eq!(stats.measured_delivered, stats.measured_generated);
        assert!(!stats.saturated);
        assert!(!stats.deadlocked);
        assert_eq!(stats.unroutable, 0);
        // Mean latency at near-zero load sits near the zero-load model:
        // average hop count of uniform traffic on an 8x8 mesh is ~5.3,
        // plus pipeline 2 plus serialization 3.
        let mean = stats.mean_latency();
        assert!(mean > 5.0 && mean < 20.0, "implausible zero-load mean {mean}");
    }

    #[test]
    fn same_seed_is_bit_identical_and_seeds_differ() {
        let net = fault_free(6);
        let cfg = SimConfig { rate: 0.02, ..SimConfig::smoke() };
        let a = run_traffic(&net, RoutingKind::Rb2, &cfg);
        let b = run_traffic(&net, RoutingKind::Rb2, &cfg);
        assert_eq!(a, b, "same seed must reproduce bit-identically");
        let c = run_traffic(&net, RoutingKind::Rb2, &SimConfig { seed: 7, ..cfg });
        assert_ne!(a.generated, c.generated, "different seeds, different workload");
    }

    #[test]
    fn saturation_is_detected_at_absurd_load() {
        let net = fault_free(6);
        let cfg =
            SimConfig { rate: 0.9, warmup: 50, measure: 300, drain: 150, ..SimConfig::default() };
        let stats = run_traffic(&net, RoutingKind::Xy, &cfg);
        assert!(stats.saturated || stats.deadlocked, "rate 0.9 must exceed capacity: {stats:?}");
    }

    #[test]
    fn faulty_nodes_neither_send_nor_receive() {
        let mesh = Mesh::square(6);
        let bad = Coord::new(2, 2);
        let net = Network::build(FaultSet::from_coords(mesh, [bad]));
        let cfg = SimConfig { rate: 0.05, ..SimConfig::smoke() };
        let stats = run_traffic(&net, RoutingKind::Rb2, &cfg);
        assert!(stats.measured_generated > 0);
        assert_eq!(stats.measured_delivered, stats.measured_generated);
    }

    #[test]
    fn patterns_drive_the_run_loop() {
        let net = fault_free(6);
        for pattern in [
            TrafficPattern::Transpose,
            TrafficPattern::BitComplement,
            TrafficPattern::Permutation,
            TrafficPattern::Hotspot { targets: vec![Coord::new(3, 3)], fraction: 0.5 },
        ] {
            let cfg = SimConfig { rate: 0.01, pattern, ..SimConfig::smoke() };
            let stats = run_traffic(&net, RoutingKind::ECube, &cfg);
            assert_eq!(
                stats.measured_delivered, stats.measured_generated,
                "low load must drain for {:?}",
                cfg.pattern
            );
        }
    }

    #[test]
    fn window_samples_stream_and_cover_the_run() {
        struct Collect(Vec<crate::WindowSample>);
        impl crate::WindowObserver for Collect {
            fn on_window(&mut self, s: &crate::WindowSample) -> crate::WindowControl {
                self.0.push(*s);
                crate::WindowControl::Continue
            }
        }
        let net = fault_free(8);
        let cfg = SimConfig { rate: 0.02, stats_window: 100, ..SimConfig::smoke() };
        let mut paths = PathTable::new(&net, RoutingKind::Rb2);
        let mut obs = Collect(Vec::new());
        let stats = run_traffic_reusing_with(&mut paths, &cfg, &mut obs);
        assert!(!obs.0.is_empty(), "windows must stream");
        // Windows tile the run contiguously and their totals reconcile
        // with the end-of-run statistics (the final partial window is
        // never emitted, hence >=).
        for (i, s) in obs.0.iter().enumerate() {
            assert_eq!(s.start, 100 * i as u64);
            assert_eq!(s.end, s.start + 100);
        }
        let windowed_moved: u64 = obs.0.iter().map(|s| s.moved).sum();
        assert!(windowed_moved <= stats.flits_moved);
        assert!(stats.flits_moved > 0);
        let delivered: u64 = obs.0.iter().map(|s| s.delivered).sum();
        assert!(delivered >= stats.measured_delivered);
        assert!(obs.0.iter().any(|s| s.draining), "the drain phase must be flagged");
        // Attaching an observer must not change the simulation.
        let plain = run_traffic_reusing(&mut paths, &cfg);
        assert_eq!(plain, stats, "observers are read-only");
    }

    #[test]
    fn window_stop_ends_the_run_with_the_deadline_classification() {
        struct StopAfter(u32);
        impl crate::WindowObserver for StopAfter {
            fn on_window(&mut self, _s: &crate::WindowSample) -> crate::WindowControl {
                self.0 -= 1;
                if self.0 == 0 {
                    crate::WindowControl::Stop
                } else {
                    crate::WindowControl::Continue
                }
            }
        }
        // Absurd load, stopped mid-measure: measured packets are
        // certainly outstanding, so the run must classify saturated.
        let net = fault_free(6);
        let cfg = SimConfig {
            rate: 0.9,
            warmup: 50,
            measure: 300,
            drain: 150,
            stats_window: 100,
            ..SimConfig::default()
        };
        let mut paths = PathTable::new(&net, RoutingKind::Xy);
        let stats = run_traffic_reusing_with(&mut paths, &cfg, &mut StopAfter(2));
        assert_eq!(stats.cycles, 200, "stopped at the second window boundary");
        assert!(stats.saturated);
    }

    #[test]
    #[should_panic(expected = "EscapeAdaptive policy needs a reserved escape channel")]
    fn escape_policy_requires_a_reserved_channel() {
        let net = fault_free(4);
        let cfg = SimConfig {
            escape_vcs: 0,
            policy: RoutePolicy::EscapeAdaptive { patience: 4 },
            ..SimConfig::smoke()
        };
        let mut paths = PathTable::new(&net, RoutingKind::Xy);
        let _ = TrafficSim::new(&mut paths, cfg);
    }

    #[test]
    fn ttl_default_is_per_router() {
        // E-cube on a faulty 16x16 can emit very long escape walks; the
        // automatic TTL keeps dropping those. RB2 has no TTL by default
        // any more: nothing is dropped even on unlucky pairs.
        let mesh = Mesh::square(16);
        let net = Network::build(FaultSet::from_coords(
            mesh,
            (4..12).map(|x| Coord::new(x, 8)).collect::<Vec<_>>(),
        ));
        let cfg = SimConfig { rate: 0.01, ..SimConfig::smoke() };
        let rb2 = run_traffic(&net, RoutingKind::Rb2, &cfg);
        assert_eq!(rb2.ttl_dropped, 0, "non-E-cube routers default to no TTL");
        assert_eq!(rb2.measured_delivered, rb2.measured_generated);
    }
}
