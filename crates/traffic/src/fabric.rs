//! The wormhole-switched router fabric: input-buffered virtual
//! channels, credit-based flow control, and a per-cycle switch
//! allocator, with head-flit routing decided *per hop* by a
//! [`HopRouter`].
//!
//! ## Microarchitecture
//!
//! Every node is a router with five input ports — one per incoming mesh
//! direction plus a local injection port — and five output ports — one
//! per outgoing direction plus ejection. Directional input ports carry
//! `vcs` virtual channels of `vc_depth` flits each; the injection port
//! has a single channel (one network interface per core).
//!
//! The `vcs` channels of every output port are partitioned into
//! [`VcClass`]es: the low `vcs - escape_vcs` indices are *adaptive*
//! (usable by any compiled route), the topmost index is the *tree
//! escape* class (up*/down* spanning-forest traffic only), and any
//! remaining reserved indices form the *XY escape* class (strict
//! dimension-order traffic only); see [`crate::routing`] for why this
//! keeps the escape networks deadlock-free.
//!
//! Each cycle the switch allocator walks the output ports in fixed
//! order and grants at most one flit per output port and one per input
//! port (the crossbar constraint), round-robin over the requesting
//! `(input port, VC)` pairs for fairness. A head flit with no output
//! allocated yet asks the hop router for a decision — `(direction, VC
//! class)` candidates in preference order — and additionally acquires a
//! free downstream virtual channel *of the decided class* on its output
//! port (lowest free index within the class); the whole packet then
//! holds that channel until its tail passes — wormhole switching.
//! Credits mirror downstream buffer slots: a flit consumes one on link
//! traversal and the credit returns when the downstream router drains
//! the slot (a 2-cycle round trip, so `vc_depth >= 2` is needed to
//! stream at link rate).
//!
//! ## Timing contract
//!
//! Flits injected at cycle `t` become visible to allocation at `t + 1`
//! (injection link); each router hop costs one cycle; ejection costs
//! one more (ejection link). Zero-load head latency is therefore
//! `hops + PIPELINE_DEPTH` ([`crate::PIPELINE_DEPTH`] = 2), and a
//! packet of `L` flits finishes `L - 1` cycles after its head.
//!
//! ## Event-driven stepping
//!
//! A router with no occupied input VC can grant nothing, so stepping
//! visits only *active* routers: a worklist tracks every node with at
//! least one non-empty input-VC queue (membership maintained at flit
//! arrival and queue drain), and idle routers cost zero. At the
//! paper-relevant injection rates (0.2%–5%) the fabric is over 95%
//! idle, which makes this the difference between `O(nodes)` and
//! `O(flits in flight)` per cycle.
//!
//! Within an active router the per-cycle work is bitmask-driven:
//!
//! * an *occupancy mask* (one bit per `(input port, VC)` slot) feeds
//!   the switch allocator, so only occupied slots are examined;
//! * per output port, a *request mask* of the slots whose queue-head
//!   flit wants that port this cycle replaces the original linear
//!   round-robin scan — the grant is `first set bit at or after the
//!   round-robin pointer`, two instructions instead of a 25-slot walk;
//! * per `(output direction, VC class)`, a *free-VC mask* (bit set
//!   while `owner == None && credits > 0`) turns the lowest-free-VC
//!   probe in VC allocation into `trailing_zeros`.
//!
//! Request masks are planned once per router per cycle (one
//! [`HopRouter::decide`] call per parked head instead of one per
//! output-port pass) and *replanned* for the still-pending unrouted
//! heads whenever a grant changes an output port's free-VC mask —
//! exactly the state a per-pass re-evaluation would have seen, so the
//! grant sequence is bit-identical to the original scan order (pinned
//! by the golden-equivalence suite in `crate::golden` against
//! `Fabric::step_reference`, the retained test-only reference
//! stepper).
//! Likewise the escape-patience aging pass walks the occupied slots of
//! active routers — the parked heads — instead of every input VC in the
//! mesh.
//!
//! ## Sharded stepping and the boundary-exchange protocol
//!
//! The mesh is spatially partitioned into **rectangular tile shards**
//! ([`Fabric::new_tiled`]): a `C x R` tile grid where tile `(c, r)`
//! owns columns `[c*W/C, (c+1)*W/C)` of rows `[r*H/R, (r+1)*H/R)`.
//! Row bands are the `C = 1` special case ([`Fabric::new_sharded`]),
//! retained as the default partition. Each shard owns *all* state of
//! its nodes —
//! input-VC queues, output-VC owner/credit mirrors, round-robin
//! pointers, occupancy/request/free-VC bitmasks, and its own
//! active-router worklist — so two shards share **no** mutable state
//! and can step concurrently on worker threads (`crate::sim` does
//! exactly that when [`SimConfig::threads`](crate::SimConfig) > 1).
//!
//! The one thing that used to be global was the packet table. It no
//! longer exists: a packet's mutable state ([`PacketState`] —
//! `head_hop`, escape `mode`, `stalled` clock) **travels with its head
//! flit**. While the head is parked, the state sits in the input VC
//! holding it (`InVc::heads`); when the head is granted a link, the
//! state is popped, updated, and shipped inside the arrival; when the
//! tail is ejected, the state is returned to the driver in a
//! [`Delivery`]. Body and tail flits carry nothing. Since exactly one
//! router holds a packet's head at any time, packet state has exactly
//! one owner at any time — by construction, not by locking.
//!
//! A cycle then runs in two phases with one synchronization point,
//! which is the *same* staged-commit boundary the sequential stepper
//! always had:
//!
//! 1. **Plan/grant** (parallel): every shard allocates its active
//!    routers and ages its parked heads. Grants whose link or credit
//!    return stays inside the shard are staged locally, exactly as
//!    before. Grants that cross a tile edge — a hop out of the shard's
//!    border rows/columns, or a credit owed to an upstream router in an
//!    adjacent tile — are appended to a per-direction **outbox** (one
//!    per mesh [`Dir`], at most four tile neighbors) as
//!    [`BoundaryMsg`]s (`Arrival` carries the flit plus, for heads,
//!    the traveling [`PacketState`]; `Credit` names the upstream
//!    output VC).
//! 2. **Exchange + commit**: each shard hands its outboxes to its tile
//!    neighbors (edge-adjacent tiles only — a single hop crosses at
//!    most one tile edge) and merges the inboxes into its staged
//!    arrival/credit lists, then commits the cycle boundary: arrivals
//!    land (activating their routers), credits return (refreshing
//!    free-VC bits). The apply order of inboxes is irrelevant: two
//!    same-cycle arrivals can never target the same input VC (wormhole
//!    allocation), and staged credits are commutative increments.
//!
//! No shard ever observes another shard's mid-cycle state: everything a
//! neighbor did this cycle arrives as staged messages applied at the
//! boundary, which is precisely how same-cycle grants at *different
//! routers* were already isolated in the sequential stepper. Stepping
//! is therefore **bit-identical at every shard count** — `Fabric::step`
//! runs the shards sequentially in-process and the golden-equivalence
//! suite (`crate::golden`) pins shard counts 1/2/4 against the
//! scan-order reference stepper.
//!
//! ## Determinism
//!
//! All state lives in dense vectors indexed by `(node, port, vc)`,
//! partitioned by shard; arrivals and credit returns are staged and
//! committed at the cycle boundary, so allocation at one router never
//! observes another router's same-cycle grants — which is also why
//! neither the worklist's visit order nor the shard count can influence
//! results. Hop-router decisions depend only on packet and network
//! state, so two runs with identical inputs are bit-identical.

use std::collections::VecDeque;
use std::ops::Range;

use meshpath_mesh::{Coord, Dir, FxHashMap, Mesh, NodeId};
use meshpath_obs::{
    BlockedWait, FabricProbe, GrantInfo, NoProbe, StalledPacket, VcFront, WaitEdge,
};

use crate::routing::{HopCandidates, HopDecision, HopRouter, VcClass};

/// Directional ports (index = `Dir as usize`: `+X, -X, +Y, -Y`).
const DIRS: usize = 4;
/// Input-port index of the local injection port.
const LOCAL_PORT: usize = 4;
/// Input ports per router.
const IN_PORTS: usize = 5;
/// Output-port index of the ejection port.
const EJECT_PORT: usize = 4;
/// Output ports per router.
const OUT_PORTS: usize = 5;
/// Upper bound on `(input port, VC)` slots per router — the occupancy
/// and request bitmasks pack one bit per slot into a `u64`.
const MAX_SLOTS: usize = 64;
/// Upper bound on VCs per port implied by `MAX_SLOTS` (and by the
/// per-direction free-VC masks being `u32`).
const MAX_VCS: usize = MAX_SLOTS / IN_PORTS;

/// One flit on the wire. Packets are identified by the index returned
/// from [`Fabric::register_packet`] (or chosen by the sharded driver).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Flit {
    /// Owning packet.
    pub packet: u32,
    /// First flit of the packet (makes routing + VC allocation).
    pub is_head: bool,
    /// Last flit (releases channels as it passes).
    pub is_tail: bool,
}

/// Per-packet state the fabric and the hop routers share. There is no
/// global packet table: this state **travels with the head flit** —
/// parked in the input VC holding the head, shipped inside cross-hop
/// (and cross-shard) arrivals, and returned to the driver in a
/// [`Delivery`] when the tail ejects. The endpoints plus the head's
/// progress are what a [`HopRouter`] needs to re-derive (or override)
/// the next hop locally.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PacketState {
    /// Source node (compiled-route table key).
    pub src: Coord,
    /// Destination node (ejection test + escape XY target).
    pub dst: Coord,
    /// Links the head flit has crossed so far (compiled-route index
    /// while on the adaptive class).
    pub head_hop: u32,
    /// Generation cycle (latency reference point).
    pub generated_at: u64,
    /// Flits in the packet.
    pub len: u32,
    /// The VC class the packet is committed to. Starts [`Adaptive`]
    /// (follow the compiled route); set to an escape class by the
    /// fabric when an escape VC is granted, after which the packet
    /// rides that class until delivery.
    ///
    /// [`Adaptive`]: VcClass::Adaptive
    pub mode: VcClass,
    /// Consecutive cycles the head has been parked without an output
    /// grant (escape-patience clock; reset on every grant).
    pub stalled: u32,
    /// The admission epoch: which network snapshot this packet's route
    /// was compiled against (fault churn). Always 0 without churn.
    /// Online replanning re-keys a stranded packet onto the current
    /// epoch.
    pub epoch: u32,
    /// Set by an online router when the packet can no longer reach its
    /// destination (it sits on, or heads to, a node that failed after
    /// admission): the fabric drains it through the ejection port and
    /// the driver accounts it as `churn_killed` instead of delivered.
    pub killed: bool,
    /// The application flow this packet carries
    /// ([`NO_FLOW`](crate::source::NO_FLOW) for synthetic traffic).
    /// Travels with the head so the [`Delivery`] feedback can close the
    /// loop to a coordinator-side workload scheduler.
    pub flow: u32,
}

impl PacketState {
    /// A fresh packet of `len` flits from `src` to `dst` (admission
    /// epoch 0; the driver overrides `epoch` under fault churn).
    pub fn new(src: Coord, dst: Coord, generated_at: u64, len: u32) -> Self {
        PacketState {
            src,
            dst,
            head_hop: 0,
            generated_at,
            len,
            mode: VcClass::Adaptive,
            stalled: 0,
            epoch: 0,
            killed: false,
            flow: crate::source::NO_FLOW,
        }
    }
}

/// A completed packet: its id plus the final traveling state (latency
/// reference `generated_at`, final escape `mode`, …), reported by
/// [`Fabric::step`] when the tail clears the ejection port. The
/// delivery completes one cycle later — the ejection link; the driver
/// adds that cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Delivery {
    /// The delivered packet.
    pub packet: u32,
    /// Its traveling state at ejection.
    pub state: PacketState,
}

/// One cross-shard effect of a grant, exchanged between the plan/grant
/// phase and the commit phase (see the module docs on the
/// boundary-exchange protocol). All coordinates are global node ids.
#[derive(Clone, Debug)]
pub enum BoundaryMsg {
    /// A flit crossing a band edge into `node`'s input port `in_port`,
    /// downstream VC `vc`. Head flits carry their traveling state.
    Arrival {
        /// Destination router (global node id, owned by the receiver).
        node: u32,
        /// Input port at the destination (`Dir as usize`).
        in_port: u8,
        /// Virtual channel within that port.
        vc: u8,
        /// The flit itself.
        flit: Flit,
        /// The traveling packet state (heads only).
        state: Option<PacketState>,
    },
    /// A credit returning to the upstream router `node`, output
    /// direction `dir`, VC `vc` (all owned by the receiver).
    Credit {
        /// Upstream router (global node id).
        node: u32,
        /// Output direction at the upstream router.
        dir: u8,
        /// Virtual channel within that output.
        vc: u8,
    },
}

/// An input virtual channel: flit FIFO, the output allocation held by
/// the packet currently draining through it, and the traveling states
/// of the head flits queued here (front = oldest; an eject-committed
/// packet's state stays at the front until its tail pops it).
#[derive(Clone, Debug, Default)]
struct InVc {
    queue: VecDeque<Flit>,
    /// `(output port, output vc)` held from head grant to tail grant.
    route: Option<(u8, u8)>,
    /// Traveling [`PacketState`]s of the head flits in `queue` (plus,
    /// at the front, the state of an eject-draining packet whose head
    /// flit has already been consumed).
    heads: VecDeque<PacketState>,
}

/// The upstream mirror of a downstream input VC: ownership (wormhole
/// allocation) and credit count (free buffer slots).
#[derive(Clone, Debug)]
struct OutVc {
    owner: Option<u32>,
    credits: u32,
}

/// One occupied input-VC head in a [`Fabric::frontier`] snapshot: which
/// packet is parked where, and whether it already holds an output.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrontierEntry {
    /// Packet whose flit heads the VC queue.
    pub packet: u32,
    /// Router holding the flit.
    pub node: Coord,
    /// Input port index (`Dir as usize`, or 4 for the injection port).
    pub in_port: usize,
    /// Virtual channel index within the port.
    pub vc: usize,
    /// `(out_port, out_vc)` held by the draining packet, if allocated.
    pub route: Option<(u8, u8)>,
}

/// What one [`Fabric::step`] did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StepReport {
    /// Flits that traversed the switch (progress indicator).
    pub moved: u64,
    /// Flits consumed by ejection ports this cycle.
    pub flits_ejected: u64,
    /// Packets that committed to an escape class this cycle (the
    /// per-cycle delta the free-running lease transport accumulates —
    /// overshoot cycles past the stop decision must not pollute the
    /// run total).
    pub escape_entries: u64,
}

/// One rectangular tile shard of the fabric: every router in a
/// `[col0, col1) x [row0, row1)` rectangle, with all of its buffers,
/// credits, allocator state and worklist — plus staged arrivals/credits
/// and one outbox of [`BoundaryMsg`]s per tile-adjacent neighbor.
/// `Send`, so the sharded driver can move shards onto worker threads.
pub(crate) struct Shard {
    mesh: Mesh,
    vcs: usize,
    vc_depth: usize,
    /// VCs per output port reserved as the escape class (top indices).
    escape_vcs: usize,
    /// Column range `[col0, col1)` this tile owns.
    col0: usize,
    col1: usize,
    /// Row range `[row0, row1)` this tile owns.
    row0: usize,
    row1: usize,
    /// `col1 - col0`, the local-index row stride.
    tile_w: usize,
    /// Bounding global-node-id range `[start, end)`: the ids of the
    /// tile's first and one-past-last node. Contiguous (and exact) for
    /// row bands; for narrower tiles the range also spans other tiles'
    /// columns — callers may only use it as a bounding interval.
    start: usize,
    end: usize,
    /// Shard index of the tile neighbor in each mesh direction
    /// (indexed by `Dir as usize`), `None` at the partition edge.
    neighbors: [Option<usize>; 4],
    /// `[local node][in_port][vc]` flattened.
    in_vcs: Vec<InVc>,
    /// `[local node][out_dir][vc]` flattened.
    out_vcs: Vec<OutVc>,
    /// Round-robin grant pointers, `[local node][out_port]` flattened.
    rr: Vec<u32>,
    /// Staged link/injection arrivals `(local in_vc index, flit,
    /// traveling state for heads)`, applied at the cycle boundary.
    arrivals: Vec<(usize, Flit, Option<PacketState>)>,
    /// Staged credit returns (local out_vc indices), applied at the
    /// boundary.
    credit_returns: Vec<usize>,
    /// Boundary messages for the tile neighbor in each direction
    /// (indexed by `Dir as usize`).
    out_boxes: [Vec<BoundaryMsg>; 4],
    /// Flits currently inside this shard (buffers + staged arrivals).
    pub(crate) in_flight: u64,
    /// Packets that committed to the escape class in this shard.
    pub(crate) escape_entries: u64,
    /// Per-local-node occupancy bitmask: bit `in_port * vcs + vc` is
    /// set while that input VC's queue is non-empty.
    occ_mask: Vec<u64>,
    /// Per-`(local node, dir)` free-VC bitmask: bit `vc` is set while
    /// the output VC is allocatable (`owner == None && credits > 0`).
    free_mask: Vec<u32>,
    /// VC-index masks of the three [`VcClass`]es.
    class_masks: [u32; 3],
    /// Active routers (global node ids): every node with
    /// `occ_mask != 0` is present (plus, transiently, nodes drained
    /// this cycle — removed lazily at their next visit).
    worklist: Vec<u32>,
    /// Worklist membership flag per local node.
    in_worklist: Vec<bool>,
}

impl Shard {
    #[allow(clippy::too_many_arguments)]
    fn new(
        mesh: Mesh,
        vcs: usize,
        vc_depth: usize,
        escape_vcs: usize,
        cols: Range<usize>,
        rows: Range<usize>,
        neighbors: [Option<usize>; 4],
    ) -> Self {
        let width = mesh.width() as usize;
        let tile_w = cols.end - cols.start;
        let nodes = tile_w * (rows.end - rows.start);
        let bits = |r: Range<usize>| ((1u32 << r.end) - 1) & !((1u32 << r.start) - 1);
        let mut shard = Shard {
            mesh,
            vcs,
            vc_depth,
            escape_vcs,
            col0: cols.start,
            col1: cols.end,
            row0: rows.start,
            row1: rows.end,
            tile_w,
            start: rows.start * width + cols.start,
            end: (rows.end - 1) * width + cols.end,
            neighbors,
            in_vcs: vec![InVc::default(); nodes * IN_PORTS * vcs],
            out_vcs: vec![OutVc { owner: None, credits: vc_depth as u32 }; nodes * DIRS * vcs],
            rr: vec![0; nodes * OUT_PORTS],
            arrivals: Vec::new(),
            credit_returns: Vec::new(),
            out_boxes: [Vec::new(), Vec::new(), Vec::new(), Vec::new()],
            in_flight: 0,
            escape_entries: 0,
            occ_mask: vec![0; nodes],
            free_mask: vec![bits(0..vcs); nodes * DIRS],
            class_masks: [0; 3],
            worklist: Vec::new(),
            in_worklist: vec![false; nodes],
        };
        for class in [VcClass::Adaptive, VcClass::EscapeXy, VcClass::EscapeTree] {
            shard.class_masks[class as usize] = bits(shard.class_range(class));
        }
        shard
    }

    /// Bounding global-node-id range `[start, end)` of this tile:
    /// exact for row bands, a bounding interval (also spanning other
    /// tiles' columns) for narrower tiles. Every node this shard owns
    /// lies inside it, and instrumentation keyed on it stays sound
    /// because each node is recorded by exactly one shard.
    pub(crate) fn node_range(&self) -> Range<usize> {
        self.start..self.end
    }

    /// Number of nodes this tile owns.
    #[inline]
    fn nodes(&self) -> usize {
        self.tile_w * (self.row1 - self.row0)
    }

    /// `(tile width, tile height)` in nodes.
    pub(crate) fn tile_dims(&self) -> (usize, usize) {
        (self.tile_w, self.row1 - self.row0)
    }

    /// Shard index of the tile neighbor in each mesh direction
    /// (indexed by `Dir as usize`).
    pub(crate) fn neighbors(&self) -> [Option<usize>; 4] {
        self.neighbors
    }

    #[inline]
    pub(crate) fn contains_node(&self, node: usize) -> bool {
        let w = self.mesh.width() as usize;
        let (x, y) = (node % w, node / w);
        (self.col0..self.col1).contains(&x) && (self.row0..self.row1).contains(&y)
    }

    /// Local (tile-internal) index of an owned global node id.
    #[inline]
    fn local_of(&self, node: usize) -> usize {
        let w = self.mesh.width() as usize;
        let (x, y) = (node % w, node / w);
        debug_assert!(self.contains_node(node), "local index of an unowned node");
        (y - self.row0) * self.tile_w + (x - self.col0)
    }

    /// Global node id of a local (tile-internal) index.
    #[inline]
    fn global_of(&self, lnode: usize) -> usize {
        let w = self.mesh.width() as usize;
        (self.row0 + lnode / self.tile_w) * w + self.col0 + lnode % self.tile_w
    }

    #[inline]
    fn in_idx(&self, lnode: usize, port: usize, vc: usize) -> usize {
        (lnode * IN_PORTS + port) * self.vcs + vc
    }

    #[inline]
    fn out_idx(&self, lnode: usize, dir: usize, vc: usize) -> usize {
        (lnode * DIRS + dir) * self.vcs + vc
    }

    /// VC index range of a class on an output port. The topmost escape
    /// channel is the tree class; remaining escape channels (if any)
    /// are the XY class. With `escape_vcs == 1` the XY range is empty
    /// and every escape allocation lands on the tree class.
    #[inline]
    fn class_range(&self, class: VcClass) -> Range<usize> {
        let adaptive = self.vcs - self.escape_vcs;
        let tree = self.vcs - usize::from(self.escape_vcs > 0);
        match class {
            VcClass::Adaptive => 0..adaptive,
            VcClass::EscapeXy => adaptive..tree,
            VcClass::EscapeTree => tree..self.vcs,
        }
    }

    /// Lowest free (unowned, credited) VC of `class` on `(lnode, dir)`,
    /// resolved from the free-VC bitmask in two instructions.
    #[inline]
    fn free_vc(&self, lnode: usize, dir: usize, class: VcClass) -> Option<usize> {
        let m = self.free_mask[lnode * DIRS + dir] & self.class_masks[class as usize];
        (m != 0).then(|| m.trailing_zeros() as usize)
    }

    /// The first candidate with an allocatable VC this cycle:
    /// `(out port, out vc, class)`, or `None` (the head waits).
    #[inline]
    fn pick_candidate(
        &self,
        lnode: usize,
        cands: &HopCandidates,
    ) -> Option<(usize, usize, VcClass)> {
        cands.iter().find_map(|c| {
            self.free_vc(lnode, c.dir as usize, c.class).map(|v| (c.dir as usize, v, c.class))
        })
    }

    /// Recomputes the free bit of out VC `(lnode, out_port, v)` from
    /// its owner/credit state; returns whether the bit flipped (the
    /// signal that pending heads must re-pick their candidates).
    #[inline]
    fn refresh_free_bit(&mut self, lnode: usize, out_port: usize, v: usize) -> bool {
        let o = &self.out_vcs[self.out_idx(lnode, out_port, v)];
        let now_free = o.owner.is_none() && o.credits > 0;
        let fm = &mut self.free_mask[lnode * DIRS + out_port];
        let bit = 1u32 << v;
        let was_free = *fm & bit != 0;
        if now_free {
            *fm |= bit;
        } else {
            *fm &= !bit;
        }
        now_free != was_free
    }

    /// The outbox owning boundary messages addressed to `node` (which
    /// lies outside this tile; edge-adjacent tiles only — a single hop
    /// crosses exactly one tile edge).
    #[inline]
    fn outbox_for(&mut self, node: usize) -> &mut Vec<BoundaryMsg> {
        let w = self.mesh.width() as usize;
        let (x, y) = (node % w, node / w);
        let dir = if x < self.col0 {
            Dir::MinusX
        } else if x >= self.col1 {
            Dir::PlusX
        } else if y < self.row0 {
            Dir::MinusY
        } else {
            debug_assert!(y >= self.row1, "outbox for an owned node");
            Dir::PlusY
        };
        debug_assert!(self.neighbors[dir as usize].is_some(), "boundary message off the mesh");
        &mut self.out_boxes[dir as usize]
    }

    /// Stages one flit onto `node`'s injection channel (head flits
    /// carry their traveling state); it becomes visible to allocation
    /// next cycle.
    pub(crate) fn inject(&mut self, node: NodeId, flit: Flit, state: Option<PacketState>) {
        debug_assert_eq!(flit.is_head, state.is_some(), "heads travel with their state");
        let lnode = self.local_of(node.index());
        let idx = self.in_idx(lnode, LOCAL_PORT, 0);
        self.arrivals.push((idx, flit, state));
        self.in_flight += 1;
    }

    /// Occupancy of the node's injection channel (applied flits only).
    pub(crate) fn local_occupancy(&self, node: NodeId) -> usize {
        self.in_vcs[self.in_idx(self.local_of(node.index()), LOCAL_PORT, 0)].queue.len()
    }

    /// Drains the per-direction neighbor outboxes (called between the
    /// plan/grant phase and commit), indexed by `Dir as usize`.
    pub(crate) fn take_outboxes(&mut self) -> [Vec<BoundaryMsg>; 4] {
        std::mem::take(&mut self.out_boxes)
    }

    /// Merges a neighbor's boundary messages into this shard's staged
    /// arrival/credit lists (before commit).
    pub(crate) fn apply_boundary(&mut self, msgs: Vec<BoundaryMsg>) {
        for m in msgs {
            match m {
                BoundaryMsg::Arrival { node, in_port, vc, flit, state } => {
                    debug_assert!(self.contains_node(node as usize), "misrouted boundary arrival");
                    let lnode = self.local_of(node as usize);
                    self.in_flight += 1;
                    self.arrivals.push((
                        self.in_idx(lnode, in_port as usize, vc as usize),
                        flit,
                        state,
                    ));
                }
                BoundaryMsg::Credit { node, dir, vc } => {
                    debug_assert!(self.contains_node(node as usize), "misrouted boundary credit");
                    let lnode = self.local_of(node as usize);
                    self.credit_returns.push(self.out_idx(lnode, dir as usize, vc as usize));
                }
            }
        }
    }

    /// Plan/grant phase over this shard's active routers (see the
    /// module docs on event-driven stepping).
    pub(crate) fn allocate_active<P: FabricProbe>(
        &mut self,
        router: &mut dyn HopRouter,
        report: &mut StepReport,
        deliveries: &mut Vec<Delivery>,
        probe: &mut P,
    ) {
        let mut i = 0;
        while i < self.worklist.len() {
            let node = self.worklist[i] as usize;
            let lnode = self.local_of(node);
            if self.occ_mask[lnode] == 0 {
                self.in_worklist[lnode] = false;
                self.worklist.swap_remove(i);
                continue;
            }
            self.allocate_node(node, router, report, deliveries, probe);
            i += 1;
        }
    }

    /// Switch allocation for one active router: plan what every
    /// occupied input VC requests this cycle, then grant each output
    /// port round-robin from its request mask.
    fn allocate_node<P: FabricProbe>(
        &mut self,
        node: usize,
        router: &mut dyn HopRouter,
        report: &mut StepReport,
        deliveries: &mut Vec<Delivery>,
        probe: &mut P,
    ) {
        let here = self.mesh.coord(NodeId(node as u32));
        let lnode = self.local_of(node);
        let vcs = self.vcs;
        let slots = IN_PORTS * vcs;

        // Phase 1 — plan. For every occupied slot, which output port
        // does its queue-head flit want (request masks), and — for
        // unrouted heads — which (VC, class) would it allocate
        // (`head_pick`). Heads keep their full candidate list
        // (`head_cands`) so they can re-pick after a grant changes VC
        // availability.
        let mut requests = [0u64; OUT_PORTS];
        let mut head_mask = 0u64;
        let mut head_cands = [HopCandidates::default(); MAX_SLOTS];
        let mut head_pick = [(0u8, VcClass::Adaptive); MAX_SLOTS];
        let mut m = self.occ_mask[lnode];
        while m != 0 {
            let slot = m.trailing_zeros() as usize;
            m &= m - 1;
            let in_idx = lnode * slots + slot;
            match self.in_vcs[in_idx].route {
                // Body/tail of a routed worm: follow the held VC, gated
                // on a credit.
                Some((p, v)) if (p as usize) != EJECT_PORT => {
                    if self.out_vcs[self.out_idx(lnode, p as usize, v as usize)].credits > 0 {
                        requests[p as usize] |= 1 << slot;
                    }
                }
                Some(_) => requests[EJECT_PORT] |= 1 << slot,
                // Unrouted head: ask the hop router (once per cycle).
                None => {
                    let flit = self.in_vcs[in_idx].queue.front().expect("occupied slot");
                    debug_assert!(flit.is_head, "body flit at head of an unrouted VC");
                    let pk = self.in_vcs[in_idx].heads.front_mut().expect("parked head has state");
                    match router.decide(here, pk) {
                        HopDecision::Eject => requests[EJECT_PORT] |= 1 << slot,
                        HopDecision::Route(candidates) => {
                            head_mask |= 1 << slot;
                            head_cands[slot] = candidates;
                            // First candidate with an allocatable VC
                            // this cycle wins; none => the head waits.
                            if let Some((port, v, class)) = self.pick_candidate(lnode, &candidates)
                            {
                                requests[port] |= 1 << slot;
                                head_pick[slot] = (v as u8, class);
                            }
                        }
                    }
                }
            }
        }

        // Phase 2 — grant. One flit per output port, one per input port
        // (the crossbar constraint, enforced through `usable`),
        // round-robin from each port's request mask.
        let mut usable = !0u64;
        for out_port in 0..OUT_PORTS {
            let cand = requests[out_port] & usable;
            if cand == 0 {
                continue;
            }
            let start = (self.rr[lnode * OUT_PORTS + out_port] as usize) % slots;
            let hi = cand & (!0u64 << start);
            let slot = if hi != 0 { hi.trailing_zeros() } else { cand.trailing_zeros() } as usize;
            let link = match self.in_vcs[lnode * slots + slot].route {
                Some((p, v)) if (p as usize) != EJECT_PORT => {
                    debug_assert_eq!(p as usize, out_port);
                    Some((v as usize, None))
                }
                Some(_) => None,
                None => {
                    let (v, class) = head_pick[slot];
                    if out_port == EJECT_PORT {
                        None
                    } else {
                        Some((v as usize, Some(class)))
                    }
                }
            };
            let freed =
                self.commit_grant(node, here, slot, out_port, link, report, deliveries, probe);
            usable &= !(((1u64 << vcs) - 1) << (slot / vcs * vcs));
            if freed {
                // A VC on `out_port` was allocated or released:
                // still-pending unrouted heads re-pick their first
                // allocatable candidate — exactly the state a per-pass
                // re-evaluation (the reference stepper) would see.
                let mut hm = head_mask & usable;
                while hm != 0 {
                    let s = hm.trailing_zeros() as usize;
                    hm &= hm - 1;
                    for r in requests.iter_mut() {
                        *r &= !(1u64 << s);
                    }
                    if let Some((port, v, class)) = self.pick_candidate(lnode, &head_cands[s]) {
                        requests[port] |= 1 << s;
                        head_pick[s] = (v as u8, class);
                    }
                }
            }
        }
    }

    /// Executes one grant: pops the flit, maintains the occupancy mask,
    /// advances the round-robin pointer, stages the upstream credit
    /// (locally or as a boundary message) and either consumes the flit
    /// at the ejection port or forwards it across the link. `link` is
    /// `None` for ejection and `Some((out_vc, newly_allocated_class))`
    /// for a link grant. Returns whether the grant flipped a free-VC
    /// bit on `out_port`.
    #[allow(clippy::too_many_arguments)]
    fn commit_grant<P: FabricProbe>(
        &mut self,
        node: usize,
        here: Coord,
        slot: usize,
        out_port: usize,
        link: Option<(usize, Option<VcClass>)>,
        report: &mut StepReport,
        deliveries: &mut Vec<Delivery>,
        probe: &mut P,
    ) -> bool {
        let vcs = self.vcs;
        let lnode = self.local_of(node);
        let (in_port, vc) = (slot / vcs, slot % vcs);
        let in_idx = lnode * IN_PORTS * vcs + slot;
        let flit = self.in_vcs[in_idx].queue.pop_front().expect("granted slots are occupied");
        if self.in_vcs[in_idx].queue.is_empty() {
            self.occ_mask[lnode] &= !(1u64 << slot);
        }
        self.rr[lnode * OUT_PORTS + out_port] = (slot + 1) as u32;
        report.moved += 1;

        // Credit back to the upstream router that feeds this input VC
        // (none for the local injection port). Upstream routers in an
        // adjacent band get theirs as a boundary message.
        if in_port != LOCAL_PORT {
            let to_upstream = Dir::ALL[in_port];
            let upstream = here.step(to_upstream);
            debug_assert!(self.mesh.contains(upstream), "link from outside the mesh");
            let up_id = self.mesh.id(upstream).index();
            let up_dir = to_upstream.opposite() as usize;
            if self.contains_node(up_id) {
                let idx = self.out_idx(self.local_of(up_id), up_dir, vc);
                self.credit_returns.push(idx);
            } else {
                self.outbox_for(up_id).push(BoundaryMsg::Credit {
                    node: up_id as u32,
                    dir: up_dir as u8,
                    vc: vc as u8,
                });
            }
        }

        if out_port == EJECT_PORT {
            self.in_flight -= 1;
            report.flits_ejected += 1;
            if flit.is_head {
                self.in_vcs[in_idx].route = Some((EJECT_PORT as u8, 0));
                self.in_vcs[in_idx].heads.front_mut().expect("ejecting head has state").stalled = 0;
            }
            if flit.is_tail {
                self.in_vcs[in_idx].route = None;
                let state =
                    self.in_vcs[in_idx].heads.pop_front().expect("ejected packet has state");
                deliveries.push(Delivery { packet: flit.packet, state });
                // A churn-killed worm drains through the ejection port
                // like a delivery, but the lifecycle event is a drop.
                if state.killed {
                    probe.dropped(node as u32, flit.packet);
                } else {
                    probe.delivered(node as u32, flit.packet);
                }
            }
            false
        } else {
            let (v, new_class) = link.expect("links always carry a VC pick");
            let out_idx = self.out_idx(lnode, out_port, v);
            // A granted head takes its traveling state along: bump the
            // hop count, reset the patience clock, and record an escape
            // commitment when the granted VC is an escape class.
            let mut grant_stalled = 0u32;
            let mut entered_escape = None;
            let state = flit.is_head.then(|| {
                let mut st = self.in_vcs[in_idx].heads.pop_front().expect("granted head has state");
                grant_stalled = st.stalled;
                st.head_hop += 1;
                st.stalled = 0;
                if let Some(class) = new_class {
                    if class != VcClass::Adaptive && st.mode == VcClass::Adaptive {
                        st.mode = class;
                        self.escape_entries += 1;
                        report.escape_entries += 1;
                        entered_escape = Some(class);
                    }
                }
                st
            });
            if P::ACTIVE {
                probe.link_flit(node as u32, out_port as u8);
                if flit.is_head {
                    probe.head_grant(GrantInfo {
                        node: node as u32,
                        packet: flit.packet,
                        dir: out_port as u8,
                        vc: v as u8,
                        class: new_class.map_or(0, |c| c as u8),
                        fresh_vc: new_class.is_some(),
                        stalled: grant_stalled,
                    });
                }
                if let Some(class) = entered_escape {
                    probe.escape_entered(node as u32, flit.packet, class as u8);
                }
            }
            if new_class.is_some() {
                self.out_vcs[out_idx].owner = Some(flit.packet);
            }
            self.in_vcs[in_idx].route = Some((out_port as u8, v as u8));
            self.out_vcs[out_idx].credits -= 1;
            if flit.is_tail {
                self.out_vcs[out_idx].owner = None;
                self.in_vcs[in_idx].route = None;
            }
            let freed = self.refresh_free_bit(lnode, out_port, v);
            let dir = Dir::ALL[out_port];
            let next = here.step(dir);
            debug_assert!(self.mesh.contains(next), "hop decision leaves the mesh");
            let next_id = self.mesh.id(next).index();
            let next_in = dir.opposite() as usize;
            if self.contains_node(next_id) {
                let next_idx = self.in_idx(self.local_of(next_id), next_in, v);
                self.arrivals.push((next_idx, flit, state));
            } else {
                // The flit leaves this shard: hand it (and, for heads,
                // the traveling state) to the neighbor tile.
                self.in_flight -= 1;
                self.outbox_for(next_id).push(BoundaryMsg::Arrival {
                    node: next_id as u32,
                    in_port: next_in as u8,
                    vc: v as u8,
                    flit,
                    state,
                });
            }
            freed
        }
    }

    /// Escape-patience clock: heads still parked without an output
    /// after this cycle's allocation age by one. Only occupied slots of
    /// active routers can hold a parked head, so only those are
    /// walked. Gated on the escape class existing — with no escape VCs
    /// the counter is unused.
    pub(crate) fn age_parked_heads<P: FabricProbe>(&mut self, probe: &mut P) {
        if self.escape_vcs == 0 {
            return;
        }
        let slots = IN_PORTS * self.vcs;
        for i in 0..self.worklist.len() {
            let node = self.worklist[i];
            let lnode = self.local_of(node as usize);
            let mut m = self.occ_mask[lnode];
            while m != 0 {
                let slot = m.trailing_zeros() as usize;
                m &= m - 1;
                let v = &mut self.in_vcs[lnode * slots + slot];
                if v.route.is_none() {
                    if let Some(f) = v.queue.front() {
                        if f.is_head {
                            let st = v.heads.front_mut().expect("parked head has state");
                            st.stalled += 1;
                            if P::ACTIVE {
                                probe.head_stalled(node, f.packet, st.stalled);
                            }
                        }
                    }
                }
            }
        }
    }

    /// Records a per-node VC-occupancy sample for every router with at
    /// least one occupied input VC. Called at `stats_window` boundaries
    /// when a probe is active; pure observation.
    pub(crate) fn sample_occupancy<P: FabricProbe>(&self, probe: &mut P) {
        for (lnode, m) in self.occ_mask.iter().enumerate() {
            if *m != 0 {
                probe.occupancy_sample(self.global_of(lnode) as u32, m.count_ones());
            }
        }
    }

    /// Post-mortem walk after a wedged stop. Two kinds of record come
    /// out of it:
    ///
    /// * every parked head (an occupied input VC whose queue front is
    ///   an unrouted head flit) re-asks the router for its candidates
    ///   and reports what each candidate VC is blocked on — a direct
    ///   wait-for edge `waiter -> holder` when the VC is owned by
    ///   another worm, or a `BlockedWait` when the VC is unowned but
    ///   credit-starved (the previous worm's tail passed; its flits
    ///   still fill the downstream buffer);
    /// * the packet at the front of every occupied directional input
    ///   VC (`VcFront`), which is how report assembly resolves
    ///   `BlockedWait`s — the downstream buffer may belong to another
    ///   shard, so the join happens there, not here.
    ///
    /// A directed cycle among the resolved edges is the
    /// wormhole-deadlock witness.
    pub(crate) fn collect_wait_graph<P: FabricProbe>(
        &self,
        router: &mut dyn HopRouter,
        probe: &mut P,
    ) {
        let slots = IN_PORTS * self.vcs;
        for lnode in 0..self.nodes() {
            let node = self.global_of(lnode);
            let here = self.mesh.coord(NodeId(node as u32));
            let mut m = self.occ_mask[lnode];
            while m != 0 {
                let slot = m.trailing_zeros() as usize;
                m &= m - 1;
                let (port, in_vc) = (slot / self.vcs, slot % self.vcs);
                let v = &self.in_vcs[lnode * slots + slot];
                let Some(f) = v.queue.front() else { continue };
                if port != LOCAL_PORT {
                    probe.vc_front(VcFront {
                        node: node as u32,
                        port: port as u8,
                        vc: in_vc as u8,
                        packet: f.packet,
                    });
                }
                if v.route.is_some() || !f.is_head {
                    continue;
                }
                // Copy the state: the postmortem must not perturb it.
                let mut pk = *v.heads.front().expect("parked head has state");
                probe.stalled_packet(StalledPacket {
                    packet: f.packet,
                    node: node as u32,
                    src: (pk.src.x, pk.src.y),
                    dst: (pk.dst.x, pk.dst.y),
                    class: pk.mode as u8,
                    stalled: pk.stalled,
                    generated_at: pk.generated_at,
                });
                let HopDecision::Route(cands) = router.decide(here, &mut pk) else { continue };
                for c in cands.iter() {
                    let dir = c.dir as usize;
                    for vc in self.class_range(c.class) {
                        let o = &self.out_vcs[self.out_idx(lnode, dir, vc)];
                        if let Some(owner) = o.owner {
                            probe.wait_edge(WaitEdge {
                                waiter: f.packet,
                                holder: owner,
                                node: node as u32,
                                dir: dir as u8,
                                vc: vc as u8,
                            });
                        } else if o.credits == 0 {
                            probe.wait_blocked(BlockedWait {
                                waiter: f.packet,
                                node: node as u32,
                                dir: dir as u8,
                                vc: vc as u8,
                            });
                        }
                    }
                }
            }
        }
    }

    /// Cycle boundary: arrivals land (activating their routers),
    /// credits return (refreshing free-VC bits).
    pub(crate) fn commit_boundary(&mut self) {
        let slots = IN_PORTS * self.vcs;
        let vcs = self.vcs;
        let depth = self.vc_depth;
        // `global_of`, inlined so the drain below can keep its
        // mutable borrow of `arrivals`.
        let (width, tile_w) = (self.mesh.width() as usize, self.tile_w);
        let (row0, col0) = (self.row0, self.col0);
        let global_of = move |lnode: usize| (row0 + lnode / tile_w) * width + col0 + lnode % tile_w;
        for (idx, flit, state) in self.arrivals.drain(..) {
            let v = &mut self.in_vcs[idx];
            let was_empty = v.queue.is_empty();
            v.queue.push_back(flit);
            if flit.is_head {
                v.heads.push_back(state.expect("head flit arrives with its packet state"));
            }
            debug_assert!(
                v.queue.len() <= depth,
                "buffer overflow at in_vc {idx}: credit accounting broken"
            );
            if was_empty {
                let lnode = idx / slots;
                self.occ_mask[lnode] |= 1u64 << (idx % slots);
                if !self.in_worklist[lnode] {
                    self.in_worklist[lnode] = true;
                    self.worklist.push(global_of(lnode) as u32);
                }
            }
        }
        for idx in self.credit_returns.drain(..) {
            let o = &mut self.out_vcs[idx];
            o.credits += 1;
            debug_assert!(o.credits <= depth as u32, "credit overflow at out_vc {idx}");
            if o.owner.is_none() {
                self.free_mask[idx / vcs] |= 1 << (idx % vcs);
            }
        }
    }

    /// Appends this shard's occupied input-VC heads to a frontier
    /// snapshot.
    fn frontier_into(&self, out: &mut Vec<FrontierEntry>) {
        for lnode in 0..self.nodes() {
            let here = self.mesh.coord(NodeId(self.global_of(lnode) as u32));
            for port in 0..IN_PORTS {
                for vc in 0..self.vcs {
                    let v = &self.in_vcs[self.in_idx(lnode, port, vc)];
                    if let Some(f) = v.queue.front() {
                        out.push(FrontierEntry {
                            packet: f.packet,
                            node: here,
                            in_port: port,
                            vc,
                            route: v.route,
                        });
                    }
                }
            }
        }
    }

    /// Searches this shard for packet `id`'s traveling state: staged
    /// arrivals first, then the parked/queued heads (diagnostic aid —
    /// linear in shard state, not for hot paths).
    fn find_packet(&self, id: u32) -> Option<PacketState> {
        for (_, flit, state) in &self.arrivals {
            if flit.packet == id {
                if let Some(st) = state {
                    return Some(*st);
                }
            }
        }
        for v in &self.in_vcs {
            // An eject-draining packet's head flit is gone but its
            // state is retained at the front of `heads`.
            let mut hi = 0;
            if matches!(v.route, Some((p, _)) if (p as usize) == EJECT_PORT) {
                if v.queue.front().is_some_and(|f| f.packet == id) {
                    return v.heads.front().copied();
                }
                hi = 1;
            }
            for f in &v.queue {
                if f.is_head {
                    if f.packet == id {
                        return v.heads.get(hi).copied();
                    }
                    hi += 1;
                }
            }
        }
        None
    }

    /// Reference-stepper grant pass for one output port of one node
    /// (the original linear scan; see [`Fabric::step_reference`]).
    /// Unrouted heads consume the decisions planned once at the start
    /// of the node's cycle — NOT a fresh `decide` per output port: the
    /// router consultation schedule is observable under online churn
    /// (a replan re-keys the packet onto the *current* epoch), so both
    /// steppers must ask on exactly the same cycles.
    #[cfg(test)]
    #[allow(clippy::too_many_arguments)]
    fn allocate_output_reference(
        &mut self,
        node: usize,
        here: Coord,
        out_port: usize,
        decisions: &[Option<HopDecision>; MAX_SLOTS],
        in_port_used: &mut [bool; IN_PORTS],
        report: &mut StepReport,
        deliveries: &mut Vec<Delivery>,
    ) {
        let lnode = self.local_of(node);
        let slots = IN_PORTS * self.vcs;
        let start = self.rr[lnode * OUT_PORTS + out_port] as usize;
        for k in 0..slots {
            let slot = (start + k) % slots;
            let (in_port, vc) = (slot / self.vcs, slot % self.vcs);
            if in_port_used[in_port] {
                continue;
            }
            if in_port == LOCAL_PORT && vc != 0 {
                continue; // single injection channel
            }
            let in_idx = self.in_idx(lnode, in_port, vc);
            let Some(&flit) = self.in_vcs[in_idx].queue.front() else {
                continue;
            };
            // Desired output of the flit at the queue head, plus the VC
            // to take on it: `Some((vc, newly_allocated_class))` for
            // links, `None` for ejection.
            let (desired, link): (usize, Option<(usize, Option<VcClass>)>) =
                match self.in_vcs[in_idx].route {
                    Some((p, v)) if (p as usize) != EJECT_PORT => {
                        if p as usize != out_port {
                            continue;
                        }
                        if self.out_vcs[self.out_idx(lnode, p as usize, v as usize)].credits == 0 {
                            continue;
                        }
                        (p as usize, Some((v as usize, None)))
                    }
                    Some(_) => (EJECT_PORT, None),
                    None => {
                        debug_assert!(flit.is_head, "body flit at head of an unrouted VC");
                        // A head that became the queue front only after
                        // this cycle's plan pass (its predecessor's tail
                        // left this cycle) has no decision yet: it waits
                        // for the next cycle, exactly as in the
                        // event-driven stepper.
                        let Some(decision) = decisions[slot] else {
                            continue;
                        };
                        match decision {
                            HopDecision::Eject => (EJECT_PORT, None),
                            HopDecision::Route(candidates) => {
                                // Linear free-VC probe, independent of
                                // the free-mask bookkeeping.
                                let pick = candidates.iter().find_map(|c| {
                                    self.class_range(c.class)
                                        .find(|&v| {
                                            let o = &self.out_vcs
                                                [self.out_idx(lnode, c.dir as usize, v)];
                                            o.owner.is_none() && o.credits > 0
                                        })
                                        .map(|v| (c.dir as usize, v, c.class))
                                });
                                let Some((port, v, class)) = pick else {
                                    continue;
                                };
                                (port, Some((v, Some(class))))
                            }
                        }
                    }
                };
            if desired != out_port {
                continue;
            }
            in_port_used[in_port] = true;
            self.commit_grant(node, here, slot, out_port, link, report, deliveries, &mut NoProbe);
            return; // one grant per output port per cycle
        }
    }

    /// The original scan-order allocation pass over every node of this
    /// shard, in global node order (see [`Fabric::step_reference`]).
    /// Per node, every parked unrouted head asks the hop router exactly
    /// once — before any grant — mirroring the event-driven plan phase.
    #[cfg(test)]
    pub(crate) fn allocate_reference(
        &mut self,
        router: &mut dyn HopRouter,
        report: &mut StepReport,
        deliveries: &mut Vec<Delivery>,
    ) {
        let slots = IN_PORTS * self.vcs;
        for lnode in 0..self.nodes() {
            let node = self.global_of(lnode);
            let here = self.mesh.coord(NodeId(node as u32));
            let mut decisions: [Option<HopDecision>; MAX_SLOTS] = [None; MAX_SLOTS];
            let mut m = self.occ_mask[lnode];
            while m != 0 {
                let slot = m.trailing_zeros() as usize;
                m &= m - 1;
                let in_idx = lnode * slots + slot;
                if self.in_vcs[in_idx].route.is_none() {
                    let pk = self.in_vcs[in_idx].heads.front_mut().expect("parked head has state");
                    decisions[slot] = Some(router.decide(here, pk));
                }
            }
            let mut in_port_used = [false; IN_PORTS];
            for out_port in 0..OUT_PORTS {
                self.allocate_output_reference(
                    node,
                    here,
                    out_port,
                    &decisions,
                    &mut in_port_used,
                    report,
                    deliveries,
                );
            }
        }
    }

    /// The original aging pass: every input VC of this shard, in index
    /// order (see [`Fabric::step_reference`]).
    #[cfg(test)]
    pub(crate) fn age_reference(&mut self) {
        if self.escape_vcs == 0 {
            return;
        }
        for v in &mut self.in_vcs {
            if v.route.is_none() {
                if let Some(f) = v.queue.front() {
                    if f.is_head {
                        v.heads.front_mut().expect("parked head has state").stalled += 1;
                    }
                }
            }
        }
    }

    /// Asserts the occupancy and free-VC bitmasks agree with the ground
    /// truth (queue emptiness, owner/credit state) — the invariant both
    /// steppers maintain — and that every queued head flit has exactly
    /// one traveling state.
    #[cfg(test)]
    fn assert_masks_consistent(&self) {
        let slots = IN_PORTS * self.vcs;
        for lnode in 0..self.nodes() {
            for slot in 0..slots {
                let v = &self.in_vcs[lnode * slots + slot];
                let occupied = !v.queue.is_empty();
                assert_eq!(
                    self.occ_mask[lnode] & (1 << slot) != 0,
                    occupied,
                    "occ_mask stale at local node {lnode} slot {slot}"
                );
                if occupied {
                    assert!(
                        self.in_worklist[lnode],
                        "occupied local node {lnode} not on the worklist"
                    );
                }
                let head_flits = v.queue.iter().filter(|f| f.is_head).count();
                let ejecting =
                    usize::from(matches!(v.route, Some((p, _)) if (p as usize) == EJECT_PORT));
                assert_eq!(
                    v.heads.len(),
                    head_flits + ejecting,
                    "traveling-state count mismatch at local node {lnode} slot {slot}"
                );
            }
            for dir in 0..DIRS {
                for v in 0..self.vcs {
                    let o = &self.out_vcs[self.out_idx(lnode, dir, v)];
                    assert_eq!(
                        self.free_mask[lnode * DIRS + dir] & (1 << v) != 0,
                        o.owner.is_none() && o.credits > 0,
                        "free_mask stale at local node {lnode} dir {dir} vc {v}"
                    );
                }
            }
        }
    }
}

/// The whole network: every router's buffers, credits and allocator
/// state, spatially partitioned into row-band shards (one by
/// default — see [`Fabric::new_sharded`] and the module docs on the
/// boundary-exchange protocol).
pub struct Fabric {
    mesh: Mesh,
    shards: Vec<Shard>,
    /// Packets registered through the public API whose head flit has
    /// not been injected yet (the traveling state is attached to the
    /// head at injection).
    pending: FxHashMap<u32, PacketState>,
    next_packet: u32,
}

impl Fabric {
    /// An empty single-shard fabric over `mesh` with `vcs` virtual
    /// channels of `vc_depth` flits per directional input port, the top
    /// `escape_vcs` of which form the reserved escape class.
    ///
    /// # Panics
    /// Panics when `vcs` or `vc_depth` is zero, when `escape_vcs`
    /// leaves no adaptive channel (`escape_vcs >= vcs`), or when `vcs`
    /// exceeds `MAX_VCS` = 12 (the occupancy/request bitmasks pack
    /// `IN_PORTS * vcs` slots into a `u64`).
    pub fn new(mesh: Mesh, vcs: usize, vc_depth: usize, escape_vcs: usize) -> Self {
        Fabric::new_sharded(mesh, vcs, vc_depth, escape_vcs, 1)
    }

    /// Like [`Fabric::new`], but spatially partitioned into
    /// `num_shards` row-band shards (clamped to the mesh height;
    /// results are bit-identical at every shard count). Equivalent to
    /// [`Fabric::new_tiled`] with a single tile column.
    pub fn new_sharded(
        mesh: Mesh,
        vcs: usize,
        vc_depth: usize,
        escape_vcs: usize,
        num_shards: usize,
    ) -> Self {
        Fabric::new_tiled(mesh, vcs, vc_depth, escape_vcs, 1, num_shards)
    }

    /// Like [`Fabric::new`], but spatially partitioned into a
    /// `cols x rows` grid of rectangular tile shards (both clamped to
    /// the mesh dimensions; results are bit-identical at every tile
    /// shape — see the module docs on the boundary-exchange protocol).
    /// Tile `(c, r)` owns columns `[c*W/cols, (c+1)*W/cols)` of rows
    /// `[r*H/rows, (r+1)*H/rows)` and gets shard index `r * cols + c`.
    pub fn new_tiled(
        mesh: Mesh,
        vcs: usize,
        vc_depth: usize,
        escape_vcs: usize,
        cols: usize,
        rows: usize,
    ) -> Self {
        assert!(vcs > 0, "need at least one virtual channel");
        assert!(vcs <= MAX_VCS, "at most {MAX_VCS} VCs per port (bitmask width)");
        assert!(vc_depth > 0, "need at least one buffer slot per VC");
        assert!(escape_vcs < vcs, "escape class must leave at least one adaptive VC");
        let height = mesh.height() as usize;
        let width = mesh.width() as usize;
        let cols = cols.clamp(1, width);
        let rows = rows.clamp(1, height);
        let mut shards = Vec::with_capacity(cols * rows);
        for r in 0..rows {
            for c in 0..cols {
                let t = r * cols + c;
                let neighbors = [
                    (c + 1 < cols).then_some(t + 1),    // +X
                    (c > 0).then(|| t - 1),             // -X
                    (r + 1 < rows).then_some(t + cols), // +Y
                    (r > 0).then(|| t - cols),          // -Y
                ];
                shards.push(Shard::new(
                    mesh,
                    vcs,
                    vc_depth,
                    escape_vcs,
                    (c * width / cols)..((c + 1) * width / cols),
                    (r * height / rows)..((r + 1) * height / rows),
                    neighbors,
                ));
            }
        }
        Fabric { mesh, shards, pending: FxHashMap::default(), next_packet: 0 }
    }

    /// The mesh this fabric spans.
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// Number of tile shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Flits currently inside the fabric (buffers + staged arrivals).
    pub fn in_flight(&self) -> u64 {
        self.shards.iter().map(|s| s.in_flight).sum()
    }

    /// Packets that have committed to the escape class so far.
    pub fn escape_entries(&self) -> u64 {
        self.shards.iter().map(|s| s.escape_entries).sum()
    }

    /// The shard owning global node id `node`.
    fn shard_of(&self, node: usize) -> usize {
        self.shards.iter().position(|s| s.contains_node(node)).expect("node inside the mesh")
    }

    /// Moves the shards out of the fabric (the sharded driver hands
    /// them to worker threads and keeps them for the rest of the run).
    pub(crate) fn take_shards(&mut self) -> Vec<Shard> {
        std::mem::take(&mut self.shards)
    }

    /// Registers a packet and returns its id; the traveling state is
    /// attached to the head flit when it is injected.
    pub fn register_packet(&mut self, p: PacketState) -> u32 {
        let id = self.next_packet;
        self.next_packet += 1;
        self.pending.insert(id, p);
        id
    }

    /// A registered packet's traveling state, looked up by id:
    /// registered-but-uninjected packets first, then a linear search of
    /// every shard's staged arrivals and queued heads. Diagnostic aid
    /// (tests, debugging) — `None` once the packet has been delivered
    /// (the final state is in its [`Delivery`]), and transiently for a
    /// multi-flit packet whose head has already been consumed at the
    /// ejection port while its remaining flits are stalled upstream
    /// (the retained state is only identifiable while a flit of the
    /// packet is queued at the ejecting VC).
    pub fn packet_state(&self, id: u32) -> Option<PacketState> {
        if let Some(p) = self.pending.get(&id) {
            return Some(*p);
        }
        self.shards.iter().find_map(|s| s.find_packet(id))
    }

    /// Occupancy of the node's injection channel (applied flits only;
    /// the per-node injector stages at most one flit per cycle, so
    /// `local_occupancy(n) < vc_depth` keeps the buffer within bounds).
    pub fn local_occupancy(&self, node: NodeId) -> usize {
        self.shards[self.shard_of(node.index())].local_occupancy(node)
    }

    /// Stages one flit onto the node's injection channel; it becomes
    /// visible to allocation next cycle. The caller must respect
    /// [`Fabric::local_occupancy`] and wormhole ordering (all flits of
    /// a packet before any flit of the next).
    ///
    /// # Panics
    /// Panics when a head flit's packet was not registered through
    /// [`Fabric::register_packet`] (its traveling state is attached
    /// here).
    pub fn inject_flit(&mut self, node: NodeId, flit: Flit) {
        let state = flit
            .is_head
            .then(|| self.pending.remove(&flit.packet).expect("head flit of a registered packet"));
        let shard = self.shard_of(node.index());
        self.shards[shard].inject(node, flit, state);
    }

    /// Snapshot of every occupied input VC head. Diagnostic aid for
    /// analyzing saturation and deadlock reports.
    pub fn frontier(&self) -> Vec<FrontierEntry> {
        let mut out = Vec::new();
        for s in &self.shards {
            s.frontier_into(&mut out);
        }
        out
    }

    /// Routes every shard's boundary outboxes to its tile neighbors
    /// (the in-process equivalent of the worker threads' channel
    /// exchange).
    fn exchange_boundary(&mut self) {
        for i in 0..self.shards.len() {
            let neighbors = self.shards[i].neighbors();
            let boxes = self.shards[i].take_outboxes();
            for (d, msgs) in boxes.into_iter().enumerate() {
                if msgs.is_empty() {
                    continue;
                }
                let nb = neighbors[d].expect("boundary messages stay on the mesh");
                self.shards[nb].apply_boundary(msgs);
            }
        }
    }

    /// Runs one cycle of switch allocation + link traversal over every
    /// *active* router of every shard (see the module docs on
    /// event-driven and sharded stepping), consulting `router` for
    /// every parked head flit. Packets whose tail reached their
    /// destination's ejection port are appended to `deliveries` (the
    /// delivery completes one cycle later — the ejection link; the
    /// driver adds that cycle).
    pub fn step(
        &mut self,
        router: &mut dyn HopRouter,
        deliveries: &mut Vec<Delivery>,
    ) -> StepReport {
        let mut report = StepReport::default();
        for s in &mut self.shards {
            s.allocate_active(router, &mut report, deliveries, &mut NoProbe);
            s.age_parked_heads(&mut NoProbe);
        }
        self.exchange_boundary();
        for s in &mut self.shards {
            s.commit_boundary();
        }
        report
    }

    /// The original scan-order stepper, retained as the golden
    /// reference: every node in global order, every output port, a
    /// linear round-robin walk over all `(input port, VC)` slots, and a
    /// linear free-VC probe straight off the owner/credit state (it
    /// never reads the bitmasks, so it cannot inherit a bookkeeping bug
    /// from them). It shares `Shard::commit_grant` and
    /// `Shard::commit_boundary` with the event-driven stepper, which
    /// keep the masks and worklist maintained — the two steppers can be
    /// interleaved mid-run, at any shard count.
    #[cfg(test)]
    pub(crate) fn step_reference(
        &mut self,
        router: &mut dyn HopRouter,
        deliveries: &mut Vec<Delivery>,
    ) -> StepReport {
        let mut report = StepReport::default();
        for s in &mut self.shards {
            s.allocate_reference(router, &mut report, deliveries);
            s.age_reference();
        }
        self.exchange_boundary();
        for s in &mut self.shards {
            s.commit_boundary();
        }
        report
    }

    /// Asserts the occupancy and free-VC bitmasks of every shard agree
    /// with the ground truth — the invariant both steppers maintain.
    #[cfg(test)]
    pub(crate) fn assert_masks_consistent(&self) {
        for s in &self.shards {
            s.assert_masks_consistent();
        }
    }

    /// Test hook: seizes or releases an output VC directly while
    /// keeping the free-VC mask consistent.
    #[cfg(test)]
    fn set_test_owner(&mut self, node: usize, dir: usize, vc: usize, owner: Option<u32>) {
        let s = self.shard_of(node);
        let shard = &mut self.shards[s];
        let lnode = shard.local_of(node);
        let idx = shard.out_idx(lnode, dir, vc);
        shard.out_vcs[idx].owner = owner;
        shard.refresh_free_bit(lnode, dir, vc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::HopChoice;

    const TEST_VCS: usize = 2;
    const TEST_DEPTH: usize = 4;

    /// A scripted hop router for fabric unit tests: replays explicit
    /// direction sequences keyed by `(src, dst)`, adaptive class only.
    struct ScriptedHop {
        scripts: FxHashMap<(Coord, Coord), Vec<Dir>>,
    }

    impl ScriptedHop {
        fn new() -> Self {
            ScriptedHop { scripts: FxHashMap::default() }
        }

        /// Registers a script and returns `(src, dst)` for the packet.
        fn script(&mut self, src: Coord, dirs: &[Dir]) -> (Coord, Coord) {
            let mut dst = src;
            for &d in dirs {
                dst = dst.step(d);
            }
            self.scripts.insert((src, dst), dirs.to_vec());
            (src, dst)
        }
    }

    impl HopRouter for ScriptedHop {
        fn admit(&mut self, s: Coord, d: Coord) -> Option<u32> {
            self.scripts.get(&(s, d)).map(|p| p.len() as u32)
        }

        fn decide(&mut self, here: Coord, pk: &mut PacketState) -> HopDecision {
            if here == pk.dst {
                return HopDecision::Eject;
            }
            let path = &self.scripts[&(pk.src, pk.dst)];
            HopDecision::route1(HopChoice {
                dir: path[pk.head_hop as usize],
                class: VcClass::Adaptive,
            })
        }
    }

    /// The delivered packet ids of a delivery list.
    fn ids(deliveries: &[Delivery]) -> Vec<u32> {
        deliveries.iter().map(|d| d.packet).collect()
    }

    /// Drives one packet through an idle fabric (optionally sharded)
    /// and returns the cycle at which its tail was ejected.
    fn run_single_sharded(mesh: Mesh, path: &[Dir], len: u32, shards: usize) -> u64 {
        let mut f = Fabric::new_sharded(mesh, TEST_VCS, TEST_DEPTH, 0, shards);
        let mut hop = ScriptedHop::new();
        let src = Coord::new(0, 0);
        let (s, d) = hop.script(src, path);
        let src_id = mesh.id(src);
        let id = f.register_packet(PacketState::new(s, d, 0, len));
        let mut ejected = Vec::new();
        let mut sent = 0;
        for cycle in 0.. {
            if sent < len && f.local_occupancy(src_id) < TEST_DEPTH {
                f.inject_flit(
                    src_id,
                    Flit { packet: id, is_head: sent == 0, is_tail: sent + 1 == len },
                );
                sent += 1;
            }
            f.step(&mut hop, &mut ejected);
            if !ejected.is_empty() {
                assert_eq!(ids(&ejected), vec![id]);
                assert_eq!(f.in_flight(), 0);
                return cycle + 1; // ejection link
            }
            assert!(cycle < 1000, "packet stuck");
        }
        unreachable!()
    }

    fn run_single(mesh: Mesh, path: &[Dir], len: u32) -> u64 {
        run_single_sharded(mesh, path, len, 1)
    }

    #[test]
    fn single_flit_latency_is_hops_plus_pipeline() {
        let mesh = Mesh::square(8);
        // 0 hops is impossible (a packet to self is never generated);
        // 1..=7 hops along +X.
        for hops in 1..=7usize {
            let path: Vec<Dir> = std::iter::repeat_n(Dir::PlusX, hops).collect();
            let done = run_single(mesh, &path, 1);
            assert_eq!(done, hops as u64 + crate::PIPELINE_DEPTH, "hops = {hops}");
        }
    }

    #[test]
    fn multi_flit_latency_adds_serialization() {
        let mesh = Mesh::square(8);
        let path = [Dir::PlusX, Dir::PlusX, Dir::PlusY];
        for len in [2u32, 4, 7] {
            let done = run_single(mesh, &path, len);
            assert_eq!(done, 3 + crate::PIPELINE_DEPTH + u64::from(len) - 1, "len = {len}");
        }
    }

    #[test]
    fn turning_paths_arrive() {
        let mesh = Mesh::square(6);
        let path = [Dir::PlusX, Dir::PlusY, Dir::PlusX, Dir::MinusY, Dir::PlusX];
        let done = run_single(mesh, &path, 4);
        assert_eq!(done, 5 + crate::PIPELINE_DEPTH + 3);
    }

    #[test]
    fn sharded_fabric_matches_single_shard_timing() {
        // A worm that crosses every band edge (+Y the whole way), at
        // every shard count: latency must equal the 1-shard run exactly
        // — the boundary exchange adds no cycles and loses no state.
        let mesh = Mesh::square(8);
        let path: Vec<Dir> = std::iter::repeat_n(Dir::PlusY, 7).collect();
        let reference = run_single(mesh, &path, 5);
        for shards in [2, 3, 4, 8] {
            assert_eq!(
                run_single_sharded(mesh, &path, 5, shards),
                reference,
                "{shards} shards diverged"
            );
        }
        assert_eq!(reference, 7 + crate::PIPELINE_DEPTH + 4);
    }

    #[test]
    fn two_packets_share_a_link_fairly() {
        // Packets from two different sources converge on the same link
        // (1,0) -> (2,0): a runs (0,0) -> +X +X, b runs (1,1) -> -Y +X.
        // The switch allocator must interleave them — both complete,
        // and neither is starved while the other's worm drains.
        let mesh = Mesh::square(4);
        let mut f = Fabric::new(mesh, TEST_VCS, TEST_DEPTH, 0);
        let mut hop = ScriptedHop::new();
        let len = 3u32;
        let (sa, da) = hop.script(Coord::new(0, 0), &[Dir::PlusX, Dir::PlusX]);
        let (sb, db) = hop.script(Coord::new(1, 1), &[Dir::MinusY, Dir::PlusX]);
        let a = f.register_packet(PacketState::new(sa, da, 0, len));
        let b = f.register_packet(PacketState::new(sb, db, 0, len));
        let sources = [(mesh.id(sa), a), (mesh.id(sb), b)];
        let mut sent = [0u32; 2];
        let mut ejected = Vec::new();
        let mut done = Vec::new();
        for cycle in 0..100 {
            for (i, &(src, pk)) in sources.iter().enumerate() {
                if sent[i] < len && f.local_occupancy(src) < TEST_DEPTH {
                    f.inject_flit(
                        src,
                        Flit { packet: pk, is_head: sent[i] == 0, is_tail: sent[i] + 1 == len },
                    );
                    sent[i] += 1;
                }
            }
            f.step(&mut hop, &mut ejected);
            done.extend(ejected.drain(..).map(|d| (d.packet, cycle)));
            if done.len() == 2 {
                break;
            }
        }
        assert_eq!(done.len(), 2, "both packets must complete: {done:?}");
        assert_eq!(f.in_flight(), 0);
        // Both worms cross the contended link, so at least one is
        // delayed past its zero-load completion time — but only by a
        // bounded amount (no starvation): zero-load tail arrival is
        // hops + PIPELINE_DEPTH + (len - 1) = 6, and the loser waits at
        // most one worm (len flits) behind the winner.
        let zero_load = 2 + crate::PIPELINE_DEPTH + u64::from(len) - 1;
        for &(pk, cycle) in &done {
            let lat = cycle + 1;
            assert!(lat >= zero_load, "packet {pk} beat the zero-load bound");
            assert!(
                lat <= zero_load + u64::from(len) + 2,
                "packet {pk} starved: finished at {lat}, bound {}",
                zero_load + u64::from(len) + 2
            );
        }
    }

    #[test]
    fn frontier_reports_parked_flits() {
        // Park a worm behind a missing grant: inject a packet and stop
        // stepping mid-flight, then snapshot. The frontier must name
        // the packet, its router and (once the head was granted) the
        // allocated route; after delivery the frontier is empty.
        let mesh = Mesh::square(4);
        let mut f = Fabric::new(mesh, TEST_VCS, TEST_DEPTH, 0);
        let mut hop = ScriptedHop::new();
        let (s, d) = hop.script(Coord::new(0, 0), &[Dir::PlusX, Dir::PlusX]);
        let id = f.register_packet(PacketState::new(s, d, 0, 2));
        let src = mesh.id(s);
        f.inject_flit(src, Flit { packet: id, is_head: true, is_tail: false });
        let mut ejected = Vec::new();
        f.step(&mut hop, &mut ejected); // head lands in the injection channel
        let snap = f.frontier();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].packet, id);
        assert_eq!(snap[0].node, Coord::new(0, 0));
        assert_eq!(snap[0].in_port, 4, "injection port");
        assert!(snap[0].route.is_none(), "head not granted yet");
        // The traveling state is findable mid-flight.
        assert_eq!(f.packet_state(id).expect("in flight").head_hop, 0);
        // Finish the packet; the fabric must report an empty frontier.
        f.inject_flit(src, Flit { packet: id, is_head: false, is_tail: true });
        for _ in 0..20 {
            f.step(&mut hop, &mut ejected);
        }
        assert!(!ejected.is_empty());
        assert_eq!(f.in_flight(), 0);
        assert!(f.frontier().is_empty());
        assert!(f.packet_state(id).is_none(), "delivered packets leave the fabric");
    }

    #[test]
    fn credits_bound_buffer_occupancy() {
        // A long packet whose head makes progress; occupancy must never
        // exceed vc_depth (debug_assert in step would fire otherwise).
        let mesh = Mesh::square(8);
        let path: Vec<Dir> = std::iter::repeat_n(Dir::PlusX, 7).collect();
        let done = run_single(mesh, &path, 12);
        assert_eq!(done, 7 + crate::PIPELINE_DEPTH + 11);
    }

    #[test]
    fn cross_band_credits_flow_back() {
        // A long worm along +Y with 2 shards: every credit for the
        // band-edge link is a boundary message. If those were lost the
        // upstream VC would run out of credits and the worm would
        // wedge; completion at the exact zero-load time proves the
        // credit path.
        let mesh = Mesh::square(6);
        let path: Vec<Dir> = std::iter::repeat_n(Dir::PlusY, 5).collect();
        let done = run_single_sharded(mesh, &path, 12, 2);
        assert_eq!(done, 5 + crate::PIPELINE_DEPTH + 11);
    }

    /// A hop router that always offers both escape fallbacks; used to
    /// pin the class partition and the escape commitment.
    struct EscapeEager;

    impl HopRouter for EscapeEager {
        fn admit(&mut self, _s: Coord, _d: Coord) -> Option<u32> {
            Some(1)
        }

        fn decide(&mut self, here: Coord, pk: &mut PacketState) -> HopDecision {
            if here == pk.dst {
                return HopDecision::Eject;
            }
            HopDecision::Route(
                [
                    HopChoice { dir: Dir::PlusX, class: VcClass::Adaptive },
                    HopChoice { dir: Dir::PlusX, class: VcClass::EscapeXy },
                    HopChoice { dir: Dir::PlusX, class: VcClass::EscapeTree },
                ]
                .into_iter()
                .collect(),
            )
        }
    }

    #[test]
    fn class_partition_reserves_the_top_indices() {
        // 4 VCs, 2 escape: adaptive = {0, 1}, XY = {2}, tree = {3}.
        let mesh = Mesh::square(4);
        let f = Fabric::new(mesh, 4, TEST_DEPTH, 2);
        assert_eq!(f.shards[0].class_range(VcClass::Adaptive), 0..2);
        assert_eq!(f.shards[0].class_range(VcClass::EscapeXy), 2..3);
        assert_eq!(f.shards[0].class_range(VcClass::EscapeTree), 3..4);
        // 1 escape VC: no XY class, the reserved channel is the tree.
        let f1 = Fabric::new(mesh, 2, TEST_DEPTH, 1);
        assert_eq!(f1.shards[0].class_range(VcClass::Adaptive), 0..1);
        assert!(f1.shards[0].class_range(VcClass::EscapeXy).is_empty());
        assert_eq!(f1.shards[0].class_range(VcClass::EscapeTree), 1..2);
        // No escape VCs: everything is adaptive, both escape ranges
        // empty (escape candidates can never allocate).
        let f0 = Fabric::new(mesh, 2, TEST_DEPTH, 0);
        assert_eq!(f0.shards[0].class_range(VcClass::Adaptive), 0..2);
        assert!(f0.shards[0].class_range(VcClass::EscapeXy).is_empty());
        assert!(f0.shards[0].class_range(VcClass::EscapeTree).is_empty());
    }

    #[test]
    fn escape_class_is_reserved_and_commitment_sticks() {
        // 3 VCs, 2 escape: adaptive = {0}, XY = {1}, tree = {2}. Park a
        // fake owner on the adaptive VC of the packet's output: the
        // head must take the XY escape VC (the first feasible
        // fallback), flip its mode, and count as an escape entry.
        let mesh = Mesh::square(4);
        let mut f = Fabric::new(mesh, 3, TEST_DEPTH, 2);
        let mut hop = EscapeEager;
        let src = Coord::new(0, 1);
        let dst = Coord::new(2, 1);
        let b = f.register_packet(PacketState::new(src, dst, 0, 1));
        let mut ejected = Vec::new();
        f.set_test_owner(mesh.id(src).index(), Dir::PlusX as usize, 0, Some(999));
        f.inject_flit(mesh.id(src), Flit { packet: b, is_head: true, is_tail: true });
        f.step(&mut hop, &mut ejected); // arrival lands
        f.step(&mut hop, &mut ejected); // head granted -> XY escape VC
        assert_eq!(
            f.packet_state(b).expect("in flight").mode,
            VcClass::EscapeXy,
            "adaptive held; B must take XY escape"
        );
        assert_eq!(f.escape_entries(), 1);
        // The escape commitment sticks across later hops.
        for _ in 0..10 {
            f.step(&mut hop, &mut ejected);
        }
        let done = ejected.iter().find(|d| d.packet == b).expect("escaped packet must deliver");
        assert_eq!(done.state.mode, VcClass::EscapeXy);
    }

    #[test]
    fn tree_class_is_the_last_resort() {
        // Same setup, but the XY escape VC is also held: the head must
        // land on the tree class.
        let mesh = Mesh::square(4);
        let mut f = Fabric::new(mesh, 3, TEST_DEPTH, 2);
        let mut hop = EscapeEager;
        let src = Coord::new(0, 1);
        let dst = Coord::new(2, 1);
        let b = f.register_packet(PacketState::new(src, dst, 0, 1));
        let mut ejected = Vec::new();
        for v in [0, 1] {
            f.set_test_owner(mesh.id(src).index(), Dir::PlusX as usize, v, Some(999));
        }
        f.inject_flit(mesh.id(src), Flit { packet: b, is_head: true, is_tail: true });
        f.step(&mut hop, &mut ejected);
        f.step(&mut hop, &mut ejected);
        assert_eq!(f.packet_state(b).expect("in flight").mode, VcClass::EscapeTree);
        assert_eq!(f.escape_entries(), 1);
    }

    #[test]
    fn stall_clock_ticks_only_for_parked_unrouted_heads() {
        // With escape VCs enabled, a head that cannot get a grant ages;
        // a granted head resets to zero.
        let mesh = Mesh::square(4);
        let mut f = Fabric::new(mesh, 2, TEST_DEPTH, 1);
        let src = Coord::new(0, 0);
        let dst = Coord::new(2, 0);
        let mut hop = EscapeEager;
        let id = f.register_packet(PacketState::new(src, dst, 0, 2));
        // Park fake owners on BOTH classes of the +X output so the head
        // cannot move.
        for v in 0..2 {
            f.set_test_owner(mesh.id(src).index(), Dir::PlusX as usize, v, Some(999));
        }
        f.inject_flit(mesh.id(src), Flit { packet: id, is_head: true, is_tail: false });
        let mut ejected = Vec::new();
        f.step(&mut hop, &mut ejected); // arrival lands
        f.assert_masks_consistent();
        assert_eq!(f.packet_state(id).unwrap().stalled, 0);
        for want in 1..=3 {
            f.step(&mut hop, &mut ejected);
            assert_eq!(f.packet_state(id).unwrap().stalled, want, "parked head must age");
        }
        // Free the tree escape VC: the head moves and the clock resets.
        f.set_test_owner(mesh.id(src).index(), Dir::PlusX as usize, 1, None);
        f.step(&mut hop, &mut ejected);
        assert_eq!(f.packet_state(id).unwrap().stalled, 0, "grant must reset the clock");
        f.assert_masks_consistent();
    }

    #[test]
    fn steppers_interleave_and_masks_stay_consistent() {
        // The event-driven and reference steppers share all grant and
        // boundary bookkeeping, so a run may alternate between them at
        // any cycle — and shard counts must not matter either: two
        // converging worms must complete exactly as under either pure
        // stepper, with the masks valid throughout.
        let run_mixed = |pick: fn(u64) -> bool, shards: usize| -> Vec<(u32, u64)> {
            let mesh = Mesh::square(4);
            let mut f = Fabric::new_sharded(mesh, TEST_VCS, TEST_DEPTH, 0, shards);
            let mut hop = ScriptedHop::new();
            let len = 3u32;
            let (sa, da) = hop.script(Coord::new(0, 0), &[Dir::PlusX, Dir::PlusX]);
            let (sb, db) = hop.script(Coord::new(1, 1), &[Dir::MinusY, Dir::PlusX]);
            let a = f.register_packet(PacketState::new(sa, da, 0, len));
            let b = f.register_packet(PacketState::new(sb, db, 0, len));
            let sources = [(mesh.id(sa), a), (mesh.id(sb), b)];
            let mut sent = [0u32; 2];
            let mut ejected = Vec::new();
            let mut done = Vec::new();
            for cycle in 0..100u64 {
                for (i, &(src, pk)) in sources.iter().enumerate() {
                    if sent[i] < len && f.local_occupancy(src) < TEST_DEPTH {
                        f.inject_flit(
                            src,
                            Flit { packet: pk, is_head: sent[i] == 0, is_tail: sent[i] + 1 == len },
                        );
                        sent[i] += 1;
                    }
                }
                if pick(cycle) {
                    f.step(&mut hop, &mut ejected);
                } else {
                    f.step_reference(&mut hop, &mut ejected);
                }
                f.assert_masks_consistent();
                done.extend(ejected.drain(..).map(|d| (d.packet, cycle)));
                if done.len() == 2 {
                    break;
                }
            }
            assert_eq!(f.in_flight(), 0);
            done
        };
        let optimized = run_mixed(|_| true, 1);
        let reference = run_mixed(|_| false, 1);
        let alternating = run_mixed(|c| c % 2 == 0, 1);
        assert_eq!(optimized, reference, "steppers must grant identically");
        assert_eq!(optimized, alternating, "steppers must interleave freely");
        for shards in [2, 4] {
            assert_eq!(run_mixed(|_| true, shards), optimized, "{shards}-shard event-driven");
            assert_eq!(run_mixed(|_| false, shards), optimized, "{shards}-shard reference");
            assert_eq!(run_mixed(|c| c % 3 == 0, shards), optimized, "{shards}-shard interleaved");
        }
    }
}
