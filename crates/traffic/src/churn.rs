//! Online churn: live fault/repair injection into a *running*
//! simulation.
//!
//! The prescheduled `fault_churn` axis in [`SimConfig`](crate::SimConfig)
//! fixes every topology change before the run starts. This module is the
//! complement: a [`ChurnInjector`] handle that external code (an
//! operator console, a chaos harness, a service front-end) can poke
//! while the simulation is in flight, plus a seedable [`ChaosConfig`]
//! schedule that draws random fail/repair events as the run progresses.
//!
//! Both feed the same coordinator-side driver: at every churn quantum
//! boundary the coordinator drains the injector, draws the chaos
//! schedule, applies each mutation to a [`NetState`] (incremental
//! rebuild with full-rebuild fallback), and publishes the resulting
//! [`NetView`] epochs into the running shard workers through the
//! existing epoch barrier. Applying through `NetState` means invalid
//! mutations (off-mesh coordinates, double faults, repairs of healthy
//! nodes) are *rejected and counted*, never panicking a live service.
//!
//! Determinism: the chaos schedule is a pure function of `(seed,
//! cycle)` and the fault set at the quantum boundary, and injector
//! events are applied in submission order at the next boundary — so a
//! run with a given injector script and chaos seed is bit-identical at
//! every shard count, which is what lets the golden tests pin online
//! churn alongside the prescheduled kind.

use std::sync::{Arc, Mutex};

use meshpath_mesh::{derive_seed, Coord};
use meshpath_route::{NetState, NetView};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::config::{ChurnEvent, ChurnOp};

/// A cloneable handle for injecting fault/repair events into a running
/// simulation.
///
/// Clones share one queue. Events are buffered in submission order and
/// applied at the next churn-quantum boundary the coordinator reaches;
/// an event targeting an invalid coordinate (off-mesh, already faulty,
/// not faulty) is rejected there and counted in
/// [`TrafficStats::churn_rejected`](crate::TrafficStats::churn_rejected)
/// rather than panicking the run.
#[derive(Clone, Debug, Default)]
pub struct ChurnInjector {
    queue: Arc<Mutex<Vec<ChurnOp>>>,
}

impl ChurnInjector {
    /// A fresh, empty injector.
    pub fn new() -> Self {
        ChurnInjector::default()
    }

    /// Queues a node failure.
    pub fn fail(&self, at: Coord) {
        self.inject(ChurnOp::Fail(at));
    }

    /// Queues a node repair.
    pub fn repair(&self, at: Coord) {
        self.inject(ChurnOp::Repair(at));
    }

    /// Queues an arbitrary churn operation.
    pub fn inject(&self, op: ChurnOp) {
        self.queue.lock().expect("churn injector lock poisoned").push(op);
    }

    /// How many events are queued but not yet applied.
    pub fn pending(&self) -> usize {
        self.queue.lock().expect("churn injector lock poisoned").len()
    }

    /// Takes every queued event, in submission order. Normally called
    /// by the run coordinator at a quantum boundary (or by
    /// `RouteService::drain_injector` on the service side) — callers
    /// draining by hand take responsibility for applying the events.
    pub fn drain(&self) -> Vec<ChurnOp> {
        std::mem::take(&mut *self.queue.lock().expect("churn injector lock poisoned"))
    }
}

/// A seedable random churn schedule ("chaos monkey").
///
/// At each churn-quantum boundary inside the `[start, stop)` window the
/// driver draws at most one failure and one repair. The draw is a pure
/// function of `(seed, cycle)` and the current fault set, so chaos runs
/// are reproducible and shard-count independent.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ChaosConfig {
    /// Stream seed; distinct from the traffic seed so chaos and load
    /// can be varied independently.
    pub seed: u64,
    /// Probability of drawing a failure at each boundary.
    pub fail_prob: f64,
    /// Probability of drawing a repair at each boundary.
    pub repair_prob: f64,
    /// First cycle (inclusive) at which chaos may fire.
    pub start: u64,
    /// Cycle at which chaos stops firing; `0` means never stop.
    pub stop: u64,
    /// Failures are suppressed while the fault count is at this cap.
    pub max_faults: usize,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig { seed: 7, fail_prob: 0.5, repair_prob: 0.5, start: 0, stop: 0, max_faults: 8 }
    }
}

impl ChaosConfig {
    /// Draws this boundary's operations against `view`'s fault set.
    ///
    /// Never draws a failure that would empty the mesh, and only draws
    /// repairs of nodes that were already faulty *before* this
    /// boundary (so a same-boundary fail is not immediately undone).
    pub(crate) fn draw(&self, cycle: u64, view: &NetView) -> Vec<ChurnOp> {
        if cycle < self.start || (self.stop > 0 && cycle >= self.stop) {
            return Vec::new();
        }
        let mut rng = StdRng::seed_from_u64(derive_seed(self.seed, cycle, 1));
        let faults = view.faults();
        let faulty: Vec<Coord> = faults.iter().collect();
        let mut ops = Vec::new();
        if rng.gen_bool(self.fail_prob)
            && faults.count() < self.max_faults
            && faults.healthy_count() > 1
        {
            // Pick the n-th healthy node in row-major order: stable
            // under any internal fault-set representation.
            let nth = rng.gen_range(0..faults.healthy_count());
            let pick = faults
                .mesh()
                .iter()
                .filter(|&c| faults.is_healthy(c))
                .nth(nth)
                .expect("healthy_count nodes are healthy");
            ops.push(ChurnOp::Fail(pick));
        }
        if rng.gen_bool(self.repair_prob) && !faulty.is_empty() {
            let pick = faulty[rng.gen_range(0..faulty.len())];
            ops.push(ChurnOp::Repair(pick));
        }
        ops
    }
}

/// Online-churn configuration for a [`TrafficSim`](crate::TrafficSim)
/// run: an injector handle, an optional chaos schedule, and the quantum
/// at which the coordinator polls both.
#[derive(Clone, Debug)]
pub struct OnlineChurn {
    /// Live injection handle; clone it and keep a copy to poke the run.
    pub injector: ChurnInjector,
    /// Optional random schedule drawn alongside injected events.
    pub chaos: Option<ChaosConfig>,
    /// Cycles between churn boundaries (>= 1). Smaller quanta react
    /// faster; larger quanta amortize epoch publication.
    pub quantum: u64,
}

impl Default for OnlineChurn {
    fn default() -> Self {
        OnlineChurn { injector: ChurnInjector::new(), chaos: None, quantum: 16 }
    }
}

impl OnlineChurn {
    /// Injector-only churn (no random schedule) at the default quantum.
    pub fn new(injector: ChurnInjector) -> Self {
        OnlineChurn { injector, ..OnlineChurn::default() }
    }

    /// Chaos-schedule churn at the default quantum (an injector handle
    /// is still available via the `injector` field).
    pub fn chaos(chaos: ChaosConfig) -> Self {
        OnlineChurn { chaos: Some(chaos), ..OnlineChurn::default() }
    }

    /// Sets the polling quantum.
    pub fn with_quantum(mut self, quantum: u64) -> Self {
        assert!(quantum >= 1, "churn quantum must be at least 1 cycle");
        self.quantum = quantum;
        self
    }
}

/// Coordinator-side churn driver: owns the authoritative [`NetState`]
/// and turns injector + chaos events into published epochs.
pub(crate) struct OnlineDriver {
    injector: ChurnInjector,
    chaos: Option<ChaosConfig>,
    quantum: u64,
    state: NetState,
    applied: Vec<ChurnEvent>,
    rejected: u64,
}

impl OnlineDriver {
    pub(crate) fn new(churn: OnlineChurn, base: NetView) -> Self {
        assert!(churn.quantum >= 1, "churn quantum must be at least 1 cycle");
        OnlineDriver {
            injector: churn.injector,
            chaos: churn.chaos,
            quantum: churn.quantum,
            state: NetState::adopt(base),
            applied: Vec::new(),
            rejected: 0,
        }
    }

    /// The polling quantum in cycles (lease windows are clamped to
    /// quantum boundaries so publications stay ordered with replay).
    pub(crate) fn quantum(&self) -> u64 {
        self.quantum
    }

    /// Polls both event sources at a quantum boundary; returns the
    /// epoch publications to broadcast, one per applied operation.
    ///
    /// Invalid operations are counted in `rejected` and dropped — a
    /// misbehaving injector client cannot wedge or panic the run.
    pub(crate) fn poll(&mut self, cycle: u64) -> Vec<(NetView, ChurnOp)> {
        if cycle == 0 || !cycle.is_multiple_of(self.quantum) {
            return Vec::new();
        }
        let mut ops = self.injector.drain();
        if let Some(chaos) = &self.chaos {
            ops.extend(chaos.draw(cycle, &self.state.view()));
        }
        let mut out = Vec::new();
        for op in ops {
            let applied = match op {
                ChurnOp::Fail(c) => self.state.add_fault(c),
                ChurnOp::Repair(c) => self.state.remove_fault(c),
            };
            match applied {
                Ok(view) => {
                    self.applied.push(ChurnEvent { cycle, op });
                    out.push((view, op));
                }
                Err(e) => {
                    // Rejections are counted, not fatal — but a chaos
                    // schedule (or an injector client) targeting an
                    // invalid coordinate is worth a visible note, with
                    // the offending op, under `MESHPATH_LOG=info`.
                    if meshpath_obs::enabled(meshpath_obs::LogLevel::Info) {
                        eprintln!("[churn] cycle {cycle}: rejected {op:?}: {e}");
                    }
                    self.rejected += 1;
                }
            }
        }
        out
    }

    /// The applied-event log and rejection count, for
    /// [`TrafficStats`](crate::TrafficStats).
    pub(crate) fn into_outcome(self) -> (Vec<ChurnEvent>, u64) {
        (self.applied, self.rejected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meshpath_mesh::{FaultSet, Mesh};

    fn view(side: u32, faulty: &[(i32, i32)]) -> NetView {
        let mesh = Mesh::square(side);
        let coords = faulty.iter().map(|&(x, y)| Coord::new(x, y));
        NetView::build(FaultSet::from_coords(mesh, coords))
    }

    #[test]
    fn injector_queues_and_drains_in_order() {
        let inj = ChurnInjector::new();
        let other = inj.clone();
        inj.fail(Coord::new(1, 2));
        other.repair(Coord::new(3, 4));
        assert_eq!(inj.pending(), 2);
        assert_eq!(
            inj.drain(),
            vec![ChurnOp::Fail(Coord::new(1, 2)), ChurnOp::Repair(Coord::new(3, 4))]
        );
        assert_eq!(other.pending(), 0);
    }

    #[test]
    fn driver_applies_at_quantum_boundaries_only() {
        let inj = ChurnInjector::new();
        let mut drv =
            OnlineDriver::new(OnlineChurn::new(inj.clone()).with_quantum(10), view(4, &[]));
        inj.fail(Coord::new(2, 2));
        assert!(drv.poll(0).is_empty(), "cycle 0 is the base epoch, never a boundary");
        assert!(drv.poll(7).is_empty(), "off-boundary cycles do not poll");
        assert_eq!(inj.pending(), 1);
        let pubs = drv.poll(10);
        assert_eq!(pubs.len(), 1);
        let (v, op) = &pubs[0];
        assert_eq!(*op, ChurnOp::Fail(Coord::new(2, 2)));
        assert_eq!(v.epoch(), 1);
        assert!(!v.faults().is_healthy(Coord::new(2, 2)));
        let (applied, rejected) = drv.into_outcome();
        assert_eq!(applied, vec![ChurnEvent::fail(10, Coord::new(2, 2))]);
        assert_eq!(rejected, 0);
    }

    #[test]
    fn driver_rejects_invalid_operations_without_panicking() {
        let inj = ChurnInjector::new();
        let mut drv =
            OnlineDriver::new(OnlineChurn::new(inj.clone()).with_quantum(1), view(4, &[(1, 1)]));
        inj.fail(Coord::new(9, 9)); // off-mesh
        inj.fail(Coord::new(1, 1)); // already faulty
        inj.repair(Coord::new(2, 2)); // not faulty
        inj.repair(Coord::new(1, 1)); // valid
        let pubs = drv.poll(5);
        assert_eq!(pubs.len(), 1);
        assert_eq!(pubs[0].1, ChurnOp::Repair(Coord::new(1, 1)));
        let (applied, rejected) = drv.into_outcome();
        assert_eq!(applied.len(), 1);
        assert_eq!(rejected, 3);
    }

    #[test]
    fn chaos_draw_is_deterministic_and_windowed() {
        let chaos = ChaosConfig {
            seed: 11,
            fail_prob: 1.0,
            repair_prob: 1.0,
            start: 20,
            stop: 50,
            max_faults: 4,
        };
        let v = view(6, &[(3, 3)]);
        assert!(chaos.draw(10, &v).is_empty(), "before the window");
        assert!(chaos.draw(50, &v).is_empty(), "stop is exclusive");
        let a = chaos.draw(30, &v);
        let b = chaos.draw(30, &v);
        assert_eq!(a, b, "same (seed, cycle, faults) must draw identically");
        assert_eq!(a.len(), 2, "prob-1.0 draws one fail and one repair");
        assert!(matches!(a[0], ChurnOp::Fail(c) if v.faults().is_healthy(c)));
        assert_eq!(a[1], ChurnOp::Repair(Coord::new(3, 3)));
        let other = chaos.draw(31, &v);
        assert_ne!(a, other, "distinct cycles draw distinct streams");
    }

    #[test]
    fn chaos_respects_fault_cap_and_never_empties_the_mesh() {
        let chaos = ChaosConfig {
            fail_prob: 1.0,
            repair_prob: 0.0,
            max_faults: 1,
            ..ChaosConfig::default()
        };
        let capped = view(4, &[(0, 0)]);
        assert!(chaos.draw(8, &capped).is_empty(), "at the cap: no failure drawn");

        let chaos = ChaosConfig { fail_prob: 1.0, repair_prob: 0.0, ..ChaosConfig::default() };
        let mesh = Mesh::square(2);
        let last = view(2, &[(0, 1), (1, 0), (1, 1)]);
        assert_eq!(last.faults().healthy_count(), 1);
        assert_eq!(mesh.len(), 4);
        assert!(chaos.draw(8, &last).is_empty(), "one healthy node left: no failure drawn");
    }
}
