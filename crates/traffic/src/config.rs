//! Simulation parameters.

use meshpath_mesh::Coord;
use meshpath_obs::ObsLevel;
use serde::{Deserialize, Serialize};

use crate::pattern::{InjectionProcess, LengthDist, TrafficPattern};

/// One scheduled mid-run fault mutation (the `fault_churn` scenario
/// axis): at the start of `cycle`, the network advances to the next
/// epoch snapshot with `op` applied.
///
/// Semantics are **announced decommission / recommission**, matching
/// dynamic NoC reconfiguration practice: from the event cycle on, the
/// mutated node is excluded from admission (no new packets are
/// generated at, destined to, or routed through a failed node — new
/// routes compile against the new epoch), while packets admitted under
/// earlier epochs finish on their compiled routes (the node powers off
/// only once legacy traffic no longer needs it). Escape classes are
/// provisioned against the union of every scheduled epoch's faults, so
/// their deadlock-freedom argument is epoch-invariant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChurnEvent {
    /// Cycle at which the mutation takes effect (applied before that
    /// cycle's generation).
    pub cycle: u64,
    /// What happens to the network.
    pub op: ChurnOp,
}

/// The mutation a [`ChurnEvent`] applies.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChurnOp {
    /// The node at this coordinate fails (decommission).
    Fail(Coord),
    /// The node at this coordinate is repaired (recommission).
    Repair(Coord),
}

impl ChurnEvent {
    /// A failure event.
    pub fn fail(cycle: u64, at: Coord) -> Self {
        ChurnEvent { cycle, op: ChurnOp::Fail(at) }
    }

    /// A repair event.
    pub fn repair(cycle: u64, at: Coord) -> Self {
        ChurnEvent { cycle, op: ChurnOp::Repair(at) }
    }
}

/// Cycles a flit spends outside the router pipeline proper: one on the
/// injection link (source NI -> source router) and one on the ejection
/// link (destination router -> destination NI).
///
/// At zero load a single-flit packet therefore has latency
/// `hops + PIPELINE_DEPTH`, and an `L`-flit packet
/// `hops + PIPELINE_DEPTH + (L - 1)` (tail serialization).
pub const PIPELINE_DEPTH: u64 = 2;

/// How the per-hop router treats a blocked head flit.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RoutePolicy {
    /// Follow the compiled route unconditionally on the adaptive VC
    /// class (the original source-routed behavior). Wormhole cyclic
    /// waits are possible and only *detected*; pair with
    /// `escape_vcs = 0` so no channel is wasted on an unused class.
    Deterministic,
    /// Duato-style escape adaptivity: follow the compiled route on the
    /// adaptive class, and once the head has been parked `patience`
    /// consecutive cycles, let it re-route onto a reserved escape class
    /// — dimension-order XY when the XY run to its destination is
    /// fault-free, the up*/down* spanning-tree route otherwise — where
    /// it stays until delivery. Requires `escape_vcs >= 1`.
    EscapeAdaptive {
        /// Blocked cycles before the escape class is offered. Small
        /// values drain congestion faster but divert more traffic off
        /// the compiled (fault-aware, shortest-path) routes.
        patience: u32,
    },
}

/// Parameters of one traffic simulation run.
///
/// Defaults model a small input-buffered wormhole router: 4 virtual
/// channels of 4 flits per input port — two reserved as the
/// Duato-style escape classes (one XY, one spanning-tree) — 4-flit
/// packets, and a warmup / measure / drain measurement protocol.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Virtual channels per directional input port (the injection port
    /// has a single channel).
    pub vcs: usize,
    /// Flit buffer depth of each virtual channel. Depths below 2 cannot
    /// stream at link rate (credit round-trip is 2 cycles).
    pub vc_depth: usize,
    /// Channels (of `vcs`, top indices) reserved for the deadlock-free
    /// escape classes: the topmost reserved channel carries up*/down*
    /// spanning-tree traffic (always available), the rest carry strict
    /// dimension-order XY traffic (minimal, but only entered past a
    /// fault-free XY run). Must leave at least one adaptive channel;
    /// `0` disables escape routing entirely, `1` reserves only the
    /// tree class.
    pub escape_vcs: usize,
    /// Per-hop routing policy (see [`RoutePolicy`]).
    pub policy: RoutePolicy,
    /// Flits per packet (head + body + tail; 1 = head-only packet).
    pub packet_len: u32,
    /// Injection rate in packets per node per cycle (Bernoulli process,
    /// independent per node).
    pub rate: f64,
    /// Warmup cycles: packets generated before this point are routed but
    /// excluded from the latency statistics.
    pub warmup: u64,
    /// Measurement window in cycles; the latency histogram covers
    /// packets *generated* inside the window (so source queueing time is
    /// included, which is where saturation shows up).
    pub measure: u64,
    /// Extra cycles allowed after the window for measured packets to
    /// complete before the run is declared saturated.
    pub drain: u64,
    /// Base RNG seed; per-node injection streams derive from it.
    pub seed: u64,
    /// Destination selection pattern.
    pub pattern: TrafficPattern,
    /// Route hop budget at the network interface: packets whose compiled
    /// route exceeds this many hops are dropped at generation and
    /// counted (`ttl_dropped`), like an IP TTL.
    ///
    /// `None` selects the per-router default: **no budget** for every
    /// router except E-cube, which keeps the automatic budget
    /// `4 * (width + height)` because its last-resort escape walk can
    /// emit paths of hundreds of hops on unlucky pairs (see ROADMAP;
    /// the TTL retires once the detour bound is fixed). Now that escape
    /// VCs bound blocking, the other routers no longer need the cap.
    /// `Some(u32::MAX)` disables the cap for every router.
    pub route_ttl: Option<u32>,
    /// When each source node fires a generation attempt (Bernoulli
    /// baseline or a bursty Markov-modulated on/off process); the mean
    /// offered load is [`rate`](SimConfig::rate) under every process.
    pub injection: InjectionProcess,
    /// How many flits each generated packet carries:
    /// exactly [`packet_len`](SimConfig::packet_len), or geometric with
    /// that mean.
    pub length: LengthDist,
    /// Worker threads (= fabric tile shards) stepping a single
    /// simulation concurrently. Results are **bit-identical at every
    /// thread count** (see the sharding docs in [`crate::fabric`]).
    ///
    /// `0` selects the automatic default: the `MESHPATH_THREADS`
    /// environment variable when set, otherwise all available cores
    /// (capped at 8) for meshes of 64x64 nodes and up, and a single
    /// thread for smaller meshes (where per-cycle work is too small to
    /// amortize the cycle barrier). The count is always clamped to the
    /// mesh height — each shard owns at least one row.
    pub threads: usize,
    /// Tile columns for the shard partition. The resolved worker count
    /// is arranged as a `cols x rows` tile grid: `tile_cols` columns
    /// (clamped to the thread count and mesh width) by
    /// `threads / tile_cols` rows of rectangular tiles. The default
    /// `1` keeps the classic row-band partition. Like `threads`, the
    /// tile shape **never changes results** — runs are bit-identical
    /// at every partitioning (pinned by `crate::golden`).
    pub tile_cols: usize,
    /// Lease window length in cycles: how far a worker may free-run
    /// between coordinator barriers. `0` (the default) selects the
    /// automatic per-tile bound `min(tile_w, tile_h)` clamped to
    /// `[1, 64]`, with deterministic occupancy adaptation — idle tiles
    /// get their lease doubled (capped at 64), hot tiles (more than a
    /// quarter of the tile's nodes moving flits per cycle over the
    /// previous lease) get it halved — computed only from committed
    /// flit counts of the previous window, never wall clock. An
    /// explicit value fixes the window for every tile. Because the
    /// per-cycle neighbor boundary exchange is kept regardless, the
    /// lease only amortizes the coordinator round trip: results are
    /// **bit-identical for every lease length** (pinned by
    /// `crate::golden`). Under online churn every lease is clamped to
    /// the next quantum boundary so epoch publications stay ordered.
    pub lease: u64,
    /// Streaming-statistics window length in cycles: every
    /// `stats_window` cycles, [`TrafficSim::run_with`] hands a
    /// [`WindowSample`] (window mean latency, accepted flits, in-flight
    /// and backlog) to its [`WindowObserver`]; `0` disables windowing.
    /// Plain [`TrafficSim::run`] attaches the null observer, so the
    /// window length never changes simulation results — observers can
    /// only *end* a run early, never steer it.
    ///
    /// [`TrafficSim::run`]: crate::TrafficSim::run
    /// [`TrafficSim::run_with`]: crate::TrafficSim::run_with
    /// [`WindowSample`]: crate::WindowSample
    /// [`WindowObserver`]: crate::WindowObserver
    pub stats_window: u64,
    /// Scheduled mid-run fault mutations (see [`ChurnEvent`] for the
    /// decommission semantics). Sorted by cycle at simulation start;
    /// each event advances the run to the next epoch snapshot,
    /// published by the incremental `NetState` update path. Empty =
    /// the classic static-fault run (epoch 0 throughout).
    pub fault_churn: Vec<ChurnEvent>,
    /// Observability level (see [`ObsLevel`]). At the default
    /// [`ObsLevel::Off`] the run loop is monomorphized over the no-op
    /// probe — zero instrumentation code on the hot path. `Metrics`
    /// records per-link/per-node counters and histograms; `Trace` adds
    /// the per-shard packet-lifecycle flight recorder. Recording never
    /// perturbs results: an instrumented run is bit-identical to a bare
    /// one (pinned by `crate::golden`). Retrieve the merged report with
    /// [`TrafficSim::run_observed`](crate::TrafficSim::run_observed).
    pub obs: ObsLevel,
    /// Record every generation attempt as a packet-trace entry
    /// (`cycle, src, dst, len`, with rejections as drop markers). The
    /// recorded trace comes back in
    /// [`RunOutput::trace`](crate::sim::RunOutput) and replays through
    /// a trace workload source
    /// ([`TrafficSim::with_workload`](crate::TrafficSim::with_workload))
    /// bit-identically — same `TrafficStats`, same cycle count — under
    /// the same config. Off by default (recording allocates per
    /// generated packet).
    pub record_trace: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            vcs: 4,
            vc_depth: 4,
            escape_vcs: 2,
            policy: RoutePolicy::EscapeAdaptive { patience: 4 },
            packet_len: 4,
            rate: 0.01,
            warmup: 300,
            measure: 1500,
            drain: 3000,
            seed: 0x2007_0325,
            pattern: TrafficPattern::UniformRandom,
            route_ttl: None,
            injection: InjectionProcess::Bernoulli,
            length: LengthDist::Fixed,
            threads: 0,
            tile_cols: 1,
            lease: 0,
            stats_window: 250,
            fault_churn: Vec::new(),
            obs: ObsLevel::Off,
            record_trace: false,
        }
    }
}

impl SimConfig {
    /// A fast configuration for tests and smoke runs.
    pub fn smoke() -> Self {
        SimConfig { warmup: 100, measure: 400, drain: 1000, ..Default::default() }
    }

    /// This config with a different injection rate (builder).
    pub fn with_rate(self, rate: f64) -> Self {
        SimConfig { rate, ..self }
    }

    /// This config with a different base seed (builder).
    pub fn with_seed(self, seed: u64) -> Self {
        SimConfig { seed, ..self }
    }

    /// This config with a different worker-thread count (builder; see
    /// [`threads`](SimConfig::threads)).
    pub fn with_threads(self, threads: usize) -> Self {
        SimConfig { threads, ..self }
    }

    /// This config with a different tile-column count (builder; see
    /// [`tile_cols`](SimConfig::tile_cols)).
    pub fn with_tile_cols(self, tile_cols: usize) -> Self {
        SimConfig { tile_cols, ..self }
    }

    /// This config with a different lease window (builder; see
    /// [`lease`](SimConfig::lease)).
    pub fn with_lease(self, lease: u64) -> Self {
        SimConfig { lease, ..self }
    }

    /// This config with a destination pattern (builder).
    pub fn with_pattern(self, pattern: TrafficPattern) -> Self {
        SimConfig { pattern, ..self }
    }

    /// This config with a mid-run fault-churn schedule (builder; see
    /// [`ChurnEvent`]).
    pub fn with_fault_churn(self, fault_churn: Vec<ChurnEvent>) -> Self {
        SimConfig { fault_churn, ..self }
    }

    /// This config with an observability level (builder; see
    /// [`obs`](SimConfig::obs)).
    pub fn with_obs(self, obs: ObsLevel) -> Self {
        SimConfig { obs, ..self }
    }

    /// This config with generation-trace recording switched on
    /// (builder; see [`record_trace`](SimConfig::record_trace)).
    pub fn with_record_trace(self) -> Self {
        SimConfig { record_trace: true, ..self }
    }

    /// The effective shard/worker count for a mesh of `nodes` nodes
    /// (see [`SimConfig::threads`]): the explicit knob, else the
    /// `MESHPATH_THREADS` environment override, else the size-gated
    /// automatic default. The mesh-height clamp is applied later, at
    /// fabric construction.
    pub fn resolved_threads(&self, nodes: usize) -> usize {
        if self.threads != 0 {
            return self.threads;
        }
        if let Some(n) =
            std::env::var("MESHPATH_THREADS").ok().and_then(|v| v.parse::<usize>().ok())
        {
            if n > 0 {
                return n;
            }
        }
        if nodes >= 64 * 64 {
            std::thread::available_parallelism().map(|n| n.get().min(8)).unwrap_or(1)
        } else {
            1
        }
    }

    /// This config with per-hop escape routing disabled: the original
    /// source-routed behavior (deterministic replay over all `vcs`
    /// channels, deadlock detected rather than avoided). Builder, like
    /// the rest of the `with_*` family.
    pub fn without_escape(self) -> Self {
        SimConfig { escape_vcs: 0, policy: RoutePolicy::Deterministic, ..self }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = SimConfig::default();
        assert!(c.vc_depth >= 2, "depth < 2 cannot stream at link rate");
        assert!(c.packet_len >= 1);
        assert!((0.0..=1.0).contains(&c.rate));
        assert!(c.escape_vcs < c.vcs, "escape class must leave adaptive channels");
        assert!(
            matches!(c.policy, RoutePolicy::EscapeAdaptive { .. }) && c.escape_vcs >= 1,
            "default policy must be escape-adaptive with a reserved channel"
        );
        assert!(c.stats_window > 0, "streaming windows should be on by default");
        assert_eq!(c.injection, InjectionProcess::Bernoulli);
        assert_eq!(c.length, LengthDist::Fixed);
        assert_eq!(c.threads, 0, "thread count should default to auto");
        assert!(c.fault_churn.is_empty(), "no churn by default");
        assert_eq!(c.obs, ObsLevel::Off, "instrumentation is opt-in");
        let f = c.clone().with_rate(0.25);
        assert_eq!(f.rate, 0.25);
        assert_eq!(f.vcs, c.vcs);
    }

    #[test]
    fn builders_are_uniformly_by_value() {
        let c = SimConfig::smoke()
            .with_rate(0.125)
            .with_seed(99)
            .with_threads(2)
            .with_pattern(TrafficPattern::Transpose)
            .with_fault_churn(vec![ChurnEvent::fail(50, Coord::new(1, 1))])
            .with_obs(ObsLevel::Metrics)
            .with_record_trace();
        assert_eq!(c.rate, 0.125);
        assert_eq!(c.seed, 99);
        assert_eq!(c.threads, 2);
        assert_eq!(c.pattern, TrafficPattern::Transpose);
        assert_eq!(c.fault_churn.len(), 1);
        assert_eq!(c.obs, ObsLevel::Metrics);
        assert!(c.record_trace);
        let d = c.without_escape();
        assert_eq!(d.escape_vcs, 0);
        assert_eq!(d.rate, 0.125, "builders chain without losing fields");
    }

    #[test]
    fn threads_resolve_explicit_over_auto() {
        let c = SimConfig { threads: 3, ..SimConfig::default() };
        assert_eq!(c.resolved_threads(16 * 16), 3);
        // The auto default keeps small meshes sequential (the env-var
        // override path is exercised by CI's forced-shard test run).
        if std::env::var_os("MESHPATH_THREADS").is_none() {
            assert_eq!(SimConfig::default().resolved_threads(16 * 16), 1);
        }
    }

    #[test]
    fn without_escape_restores_the_deterministic_fabric() {
        let c = SimConfig::default().without_escape();
        assert_eq!(c.escape_vcs, 0);
        assert_eq!(c.policy, RoutePolicy::Deterministic);
        assert_eq!(c.vcs, SimConfig::default().vcs, "channel count unchanged");
    }
}
