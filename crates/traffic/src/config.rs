//! Simulation parameters.

use serde::{Deserialize, Serialize};

use crate::pattern::TrafficPattern;

/// Cycles a flit spends outside the router pipeline proper: one on the
/// injection link (source NI -> source router) and one on the ejection
/// link (destination router -> destination NI).
///
/// At zero load a single-flit packet therefore has latency
/// `hops + PIPELINE_DEPTH`, and an `L`-flit packet
/// `hops + PIPELINE_DEPTH + (L - 1)` (tail serialization).
pub const PIPELINE_DEPTH: u64 = 2;

/// Parameters of one traffic simulation run.
///
/// Defaults model a small input-buffered wormhole router: 2 virtual
/// channels of 4 flits per input port, 4-flit packets, and a
/// warmup / measure / drain measurement protocol.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Virtual channels per directional input port (the injection port
    /// has a single channel).
    pub vcs: usize,
    /// Flit buffer depth of each virtual channel. Depths below 2 cannot
    /// stream at link rate (credit round-trip is 2 cycles).
    pub vc_depth: usize,
    /// Flits per packet (head + body + tail; 1 = head-only packet).
    pub packet_len: u32,
    /// Injection rate in packets per node per cycle (Bernoulli process,
    /// independent per node).
    pub rate: f64,
    /// Warmup cycles: packets generated before this point are routed but
    /// excluded from the latency statistics.
    pub warmup: u64,
    /// Measurement window in cycles; the latency histogram covers
    /// packets *generated* inside the window (so source queueing time is
    /// included, which is where saturation shows up).
    pub measure: u64,
    /// Extra cycles allowed after the window for measured packets to
    /// complete before the run is declared saturated.
    pub drain: u64,
    /// Base RNG seed; per-node injection streams derive from it.
    pub seed: u64,
    /// Destination selection pattern.
    pub pattern: TrafficPattern,
    /// Route hop budget at the network interface: packets whose compiled
    /// source route exceeds this many hops are dropped at generation and
    /// counted (`ttl_dropped`), like an IP TTL. Rationale: the E-cube
    /// baseline's last-resort escape walk can emit paths of hundreds of
    /// hops on unlucky pairs, and a single such worm congests a mesh
    /// that is otherwise far from saturation. `None` selects the
    /// automatic budget `4 * (width + height)`; use
    /// `Some(u32::MAX)` to disable the cap.
    pub route_ttl: Option<u32>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            vcs: 4,
            vc_depth: 4,
            packet_len: 4,
            rate: 0.01,
            warmup: 300,
            measure: 1500,
            drain: 3000,
            seed: 0x2007_0325,
            pattern: TrafficPattern::UniformRandom,
            route_ttl: None,
        }
    }
}

impl SimConfig {
    /// A fast configuration for tests and smoke runs.
    pub fn smoke() -> Self {
        SimConfig { warmup: 100, measure: 400, drain: 1000, ..Default::default() }
    }

    /// This config with a different injection rate (sweep helper).
    pub fn with_rate(&self, rate: f64) -> Self {
        SimConfig { rate, ..self.clone() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = SimConfig::default();
        assert!(c.vc_depth >= 2, "depth < 2 cannot stream at link rate");
        assert!(c.packet_len >= 1);
        assert!((0.0..=1.0).contains(&c.rate));
        let f = c.with_rate(0.25);
        assert_eq!(f.rate, 0.25);
        assert_eq!(f.vcs, c.vcs);
    }
}
