//! Application workloads: the [`WorkloadSource`] trait and the
//! coordinator-side `WorkloadDriver` (crate-internal) that feeds a
//! source's messages into the fabric and closes the delivery-feedback
//! loop.
//!
//! Today's synthetic patterns are point processes — every node draws
//! independently per cycle and the run can only report per-packet
//! latency. A workload source instead *schedules* messages: a trace
//! replays recorded `(cycle, src, dst, len)` entries, a flow DAG
//! releases a message once all its predecessors have delivered, a
//! collective phase releases round `r + 1` once round `r` completes.
//! All three (implemented in the `meshpath-workload` crate) drive the
//! fabric through this one trait.
//!
//! ## Determinism
//!
//! The source lives **coordinator-side**: it is polled once per cycle,
//! in cycle order, strictly after every delivery of the previous cycle
//! has been fed back — the same replay discipline the online-churn
//! driver uses. Released messages are broadcast to the shard workers
//! before the lease covering their injection cycle is granted, so a
//! workload run is bit-identical at every shard count, tile shape and
//! lease length (the sharded transport clamps leases to one cycle while
//! a workload is attached; see `SimConfig::lease`). Within one cycle
//! the delivery feedback arrives in shard-merge order, which thread
//! scheduling may permute — so a source's bookkeeping must be
//! order-insensitive over same-cycle events (readiness sets and counts
//! are; anything order-shaped is sorted before it is read).
//!
//! ## Never wedges
//!
//! A released message can die without a delivery: admission can fail
//! (unroutable pair, source node decommissioned), the route can exceed
//! the TTL budget, a churn event can drop it from the source queue or
//! kill it in flight. Every such death is reported back as an abort;
//! the driver cascades it through [`WorkloadSource::on_aborted`] so
//! dependent flows are aborted too (counted in
//! [`WorkloadOutcome::flows_aborted`]) instead of waiting forever.

use meshpath_mesh::Coord;
use meshpath_obs::{FlowEvent, FlowEventKind, FlowLog};

use crate::stats::LatencyHistogram;

/// The flow id carried by synthetic (non-workload) packets.
pub const NO_FLOW: u32 = u32::MAX;

/// Latencies above this resolve to the flow-completion histogram's
/// overflow bucket (same cap as the packet-latency histogram).
const FLOW_HISTOGRAM_CAP: usize = 4096;

/// One message a workload source wants injected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorkloadMsg {
    /// Injection cycle. Sources are polled per cycle and must release
    /// each message at exactly its injection cycle (`at == cycle`).
    pub at: u64,
    /// Flow id ([`NO_FLOW`] for anonymous trace entries). Travels with
    /// the packet; deliveries and aborts are fed back under this id.
    pub flow: u32,
    /// Source node.
    pub src: Coord,
    /// Destination node.
    pub dst: Coord,
    /// Packet length in flits (>= 1).
    pub len: u32,
    /// Replayed rejection marker: `0` injects normally, `1` counts an
    /// `unroutable` rejection and `2` a `ttl_dropped` rejection without
    /// injecting anything. Markers are how a recorded trace reproduces
    /// the original run's rejection counters bit-exactly (the original
    /// never drew a packet length for a rejected attempt, so replaying
    /// the attempt itself would desynchronize nothing — there is simply
    /// nothing to inject).
    pub drop: u8,
}

/// One line of a recorded packet trace (see `--record-trace` and the
/// `meshpath-analysis` trace I/O): every generation attempt of a run,
/// in `(cycle, source node)` order, with rejections kept as drop
/// markers so a replay reproduces the original `TrafficStats`
/// bit-identically.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEntry {
    /// Generation cycle.
    pub cycle: u64,
    /// Source node.
    pub src: Coord,
    /// Destination node.
    pub dst: Coord,
    /// Packet length in flits (`0` on drop markers — the original run
    /// never drew one).
    pub len: u32,
    /// Flow id ([`NO_FLOW`] for synthetic traffic).
    pub flow: u32,
    /// `0` = injected, `1` = counted `unroutable`, `2` = counted
    /// `ttl_dropped` (see [`WorkloadMsg::drop`]).
    pub drop: u8,
}

impl TraceEntry {
    /// The replay message for this entry.
    pub fn to_msg(self) -> WorkloadMsg {
        WorkloadMsg {
            at: self.cycle,
            flow: self.flow,
            src: self.src,
            dst: self.dst,
            len: self.len,
            drop: self.drop,
        }
    }
}

/// A scheduled application workload: the message source the simulation
/// driver polls per cycle, with delivery/abort feedback closing the
/// loop. Implementations: trace replay, flow DAGs and collective
/// phases in the `meshpath-workload` crate.
///
/// While a source is attached the synthetic injection process is
/// disabled — the source *is* the traffic.
pub trait WorkloadSource {
    /// Messages to inject at exactly `cycle`. Called once per cycle in
    /// cycle order (cycle 0 included), strictly after every delivery
    /// completing at `cycle` has been fed back through
    /// [`on_delivered`](WorkloadSource::on_delivered) — so a flow whose
    /// last predecessor delivers at `cycle` may be released at `cycle`.
    /// Every returned message must have `at == cycle`.
    fn release(&mut self, cycle: u64) -> Vec<WorkloadMsg>;

    /// Feedback: the packet of `flow` completed delivery at `at`.
    /// Same-cycle calls arrive in shard-merge order; bookkeeping must
    /// not depend on it.
    fn on_delivered(&mut self, flow: u32, at: u64) {
        let _ = (flow, at);
    }

    /// Feedback: `flow` died without delivering (unroutable, TTL,
    /// churn-dropped, churn-killed). Returns every *dependent* flow
    /// this transitively aborts (each reported exactly once across all
    /// calls) so the scheduler never waits on a dead predecessor.
    fn on_aborted(&mut self, flow: u32) -> Vec<u32> {
        let _ = flow;
        Vec::new()
    }

    /// Whether the source will release nothing at or after `cycle` —
    /// the workload analogue of the synthetic run's "generation window
    /// is over" (`cycle >= warmup + measure`) termination gate. A trace
    /// replay additionally holds this false until the recorded horizon
    /// so replayed runs terminate on exactly the original's cycle.
    fn exhausted(&self, cycle: u64) -> bool;

    /// Completed collective phases (empty for phase-less sources).
    /// Read once, at the end of the run.
    fn phases(&self) -> Vec<PhaseOutcome> {
        Vec::new()
    }

    /// The critical path through the workload — the flow chain ending
    /// at the last delivery, each link the latest-delivering
    /// predecessor of the next (empty for dependency-free sources).
    /// Read once, at the end of the run.
    fn critical_path(&self) -> Vec<u32> {
        Vec::new()
    }
}

/// One completed flow: when its message was released and when its
/// packet delivered.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlowCompletion {
    /// Flow id.
    pub flow: u32,
    /// Release (= injection-schedule) cycle.
    pub released_at: u64,
    /// Delivery cycle (tail ejection + the ejection link).
    pub delivered_at: u64,
}

/// One collective phase's timing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PhaseOutcome {
    /// Phase index (round number).
    pub index: u32,
    /// Cycle the phase's messages were released.
    pub released_at: u64,
    /// Cycle the last of the phase's flows resolved (delivered or
    /// aborted).
    pub completed_at: u64,
    /// Flows delivered in this phase.
    pub delivered: u64,
    /// Flows aborted in this phase.
    pub aborted: u64,
}

impl PhaseOutcome {
    /// Phase completion time in cycles.
    pub fn cycles(&self) -> u64 {
        self.completed_at.saturating_sub(self.released_at)
    }
}

/// Everything a workload run measured beyond [`TrafficStats`]: flow
/// completions, the completion-time histogram behind `flow_p50` /
/// `flow_p99`, collective-phase timings and the abort ledger.
///
/// [`TrafficStats`]: crate::TrafficStats
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadOutcome {
    /// Messages released to the fabric (injected or aborted at
    /// admission; drop markers excluded).
    pub released: u64,
    /// Identified flows (`flow != NO_FLOW`) that completed delivery.
    pub flows_delivered: u64,
    /// Identified flows that died without delivering — admission
    /// failures, TTL drops, churn drops/kills, plus every dependent
    /// flow cascaded through [`WorkloadSource::on_aborted`].
    pub flows_aborted: u64,
    /// Per-flow completions, sorted by `(delivered_at, flow)`.
    pub completions: Vec<FlowCompletion>,
    /// Histogram of `delivered_at - released_at` over completed flows.
    pub completion: LatencyHistogram,
    /// End-to-end makespan: last delivery minus first release (0 when
    /// nothing delivered).
    pub makespan: u64,
    /// Collective-phase timings, in phase order.
    pub phases: Vec<PhaseOutcome>,
    /// The critical path (flow-id chain) for DAG sources.
    pub critical_path: Vec<u32>,
    /// The flow lifecycle event log, sorted by `(cycle, kind, flow)`.
    pub events: Vec<FlowEvent>,
}

impl WorkloadOutcome {
    /// Median flow completion time in cycles.
    pub fn flow_p50(&self) -> u64 {
        self.completion.percentile(0.50)
    }

    /// 99th-percentile flow completion time in cycles.
    pub fn flow_p99(&self) -> u64 {
        self.completion.percentile(0.99)
    }

    /// Per-phase completion times in cycles, in phase order.
    pub fn phase_cycles(&self) -> Vec<u64> {
        self.phases.iter().map(|p| p.cycles()).collect()
    }
}

/// Coordinator-side workload driver: polls the source per cycle,
/// tracks injected-but-unresolved messages (the termination gate),
/// records per-flow completions, and cascades aborts. One instance per
/// run, regardless of transport.
pub(crate) struct WorkloadDriver {
    source: Box<dyn WorkloadSource>,
    /// Released (drop == 0) messages not yet delivered or aborted.
    /// Purely a safety ledger — the fabric's own in-flight/backlog
    /// accounting covers injected packets; this covers the release →
    /// injection hand-off window.
    outstanding: u64,
    released: u64,
    flows_delivered: u64,
    flows_aborted: u64,
    /// `flow -> released_at` for identified flows (completion-time
    /// reference).
    released_at: std::collections::HashMap<u32, u64>,
    completions: Vec<FlowCompletion>,
    completion: LatencyHistogram,
    first_release: Option<u64>,
    last_delivery: u64,
    log: FlowLog,
}

impl WorkloadDriver {
    pub(crate) fn new(source: Box<dyn WorkloadSource>) -> Self {
        WorkloadDriver {
            source,
            outstanding: 0,
            released: 0,
            flows_delivered: 0,
            flows_aborted: 0,
            released_at: std::collections::HashMap::new(),
            completions: Vec::new(),
            completion: LatencyHistogram::new(FLOW_HISTOGRAM_CAP),
            first_release: None,
            last_delivery: 0,
            log: FlowLog::new(),
        }
    }

    /// Polls the source for `cycle`'s messages (called exactly once per
    /// cycle, in cycle order, after the previous cycle's feedback).
    pub(crate) fn poll(&mut self, cycle: u64) -> Vec<WorkloadMsg> {
        let msgs = self.source.release(cycle);
        for m in &msgs {
            debug_assert_eq!(m.at, cycle, "workload messages release at their injection cycle");
            if m.drop == 0 {
                self.outstanding += 1;
                self.released += 1;
                self.first_release.get_or_insert(cycle);
                if m.flow != NO_FLOW {
                    self.released_at.insert(m.flow, cycle);
                    self.log.record(cycle, m.flow, FlowEventKind::Released);
                }
            }
        }
        msgs
    }

    /// Feedback: a workload packet left the fabric at `at` — delivered,
    /// or killed by churn (`killed`).
    pub(crate) fn on_delivery(&mut self, flow: u32, at: u64, killed: bool) {
        debug_assert!(self.outstanding > 0, "delivery without a released message");
        self.outstanding -= 1;
        if killed {
            self.abort_flow(flow, at);
            return;
        }
        self.last_delivery = self.last_delivery.max(at);
        if flow != NO_FLOW {
            let released_at = *self.released_at.get(&flow).expect("delivered flows were released");
            self.flows_delivered += 1;
            self.completions.push(FlowCompletion { flow, released_at, delivered_at: at });
            self.completion.record(at - released_at);
            self.log.record(at, flow, FlowEventKind::Delivered);
        }
        self.source.on_delivered(flow, at);
    }

    /// Feedback: a released message died worker-side before or at
    /// injection (admission failure, TTL, churn queue drop) at `at`.
    pub(crate) fn on_worker_abort(&mut self, flow: u32, at: u64) {
        debug_assert!(self.outstanding > 0, "abort without a released message");
        self.outstanding -= 1;
        self.abort_flow(flow, at);
    }

    fn abort_flow(&mut self, flow: u32, at: u64) {
        if flow == NO_FLOW {
            return;
        }
        self.flows_aborted += 1;
        self.log.record(at, flow, FlowEventKind::Aborted);
        for dep in self.source.on_aborted(flow) {
            self.flows_aborted += 1;
            self.log.record(at, dep, FlowEventKind::Aborted);
        }
    }

    /// The clean-termination gate: the source has nothing left to
    /// release at or after `cycle`. (Released-but-uninjected messages
    /// never outlive this check: a message is injected at its release
    /// cycle, where it becomes visible to the fabric's own
    /// backlog/in-flight accounting.)
    pub(crate) fn exhausted(&self, cycle: u64) -> bool {
        self.source.exhausted(cycle)
    }

    /// Seals the outcome at the end of the run.
    pub(crate) fn into_outcome(self) -> WorkloadOutcome {
        let mut completions = self.completions;
        completions.sort_by_key(|c| (c.delivered_at, c.flow));
        let makespan = match self.first_release {
            Some(first) if self.last_delivery > 0 => self.last_delivery.saturating_sub(first),
            _ => 0,
        };
        WorkloadOutcome {
            released: self.released,
            flows_delivered: self.flows_delivered,
            flows_aborted: self.flows_aborted,
            completions,
            completion: self.completion,
            makespan,
            phases: self.source.phases(),
            critical_path: self.source.critical_path(),
            events: self.log.into_sorted(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A two-message source: flow 1 at cycle 0, flow 2 released one
    /// cycle after flow 1 delivers.
    struct Chain {
        released: [bool; 2],
        delivered_1_at: Option<u64>,
        aborted: Vec<u32>,
    }

    impl WorkloadSource for Chain {
        fn release(&mut self, cycle: u64) -> Vec<WorkloadMsg> {
            let mut out = Vec::new();
            let msg = |flow: u32| WorkloadMsg {
                at: cycle,
                flow,
                src: Coord::new(0, 0),
                dst: Coord::new(1, 1),
                len: 1,
                drop: 0,
            };
            if cycle == 0 && !self.released[0] {
                self.released[0] = true;
                out.push(msg(1));
            }
            if let Some(at) = self.delivered_1_at {
                if cycle > at && !self.released[1] && !self.aborted.contains(&2) {
                    self.released[1] = true;
                    out.push(msg(2));
                }
            }
            out
        }

        fn on_delivered(&mut self, flow: u32, at: u64) {
            if flow == 1 {
                self.delivered_1_at = Some(at);
            }
        }

        fn on_aborted(&mut self, flow: u32) -> Vec<u32> {
            self.aborted.push(flow);
            if flow == 1 && !self.released[1] {
                self.aborted.push(2);
                vec![2]
            } else {
                Vec::new()
            }
        }

        fn exhausted(&self, _cycle: u64) -> bool {
            (self.released[0] || self.aborted.contains(&1))
                && (self.released[1] || self.aborted.contains(&2))
        }
    }

    #[test]
    fn driver_tracks_completions_and_makespan() {
        let mut drv = WorkloadDriver::new(Box::new(Chain {
            released: [false, false],
            delivered_1_at: None,
            aborted: Vec::new(),
        }));
        assert_eq!(drv.poll(0).len(), 1);
        assert!(!drv.exhausted(1));
        drv.on_delivery(1, 5, false);
        assert!(drv.poll(5).is_empty(), "successor releases after the delivery cycle");
        assert_eq!(drv.poll(6).len(), 1);
        assert!(drv.exhausted(7));
        drv.on_delivery(2, 11, false);
        let out = drv.into_outcome();
        assert_eq!(out.released, 2);
        assert_eq!(out.flows_delivered, 2);
        assert_eq!(out.flows_aborted, 0);
        assert_eq!(
            out.completions,
            vec![
                FlowCompletion { flow: 1, released_at: 0, delivered_at: 5 },
                FlowCompletion { flow: 2, released_at: 6, delivered_at: 11 },
            ]
        );
        assert_eq!(out.makespan, 11);
        assert_eq!(out.completion.count(), 2);
        assert_eq!(out.flow_p50(), 5);
        assert_eq!(out.events.len(), 4);
    }

    #[test]
    fn aborts_cascade_to_dependents() {
        let mut drv = WorkloadDriver::new(Box::new(Chain {
            released: [false, false],
            delivered_1_at: None,
            aborted: Vec::new(),
        }));
        assert_eq!(drv.poll(0).len(), 1);
        drv.on_worker_abort(1, 3);
        assert_eq!(drv.flows_aborted, 2, "the dependent flow cascades");
        assert!(drv.exhausted(4), "a cascaded abort never wedges the schedule");
        let out = drv.into_outcome();
        assert_eq!(out.flows_delivered, 0);
        assert_eq!(out.flows_aborted, 2);
        assert!(out.completions.is_empty());
        assert_eq!(out.makespan, 0);
    }
}
