//! Latency histograms and run-level statistics.

use serde::{Deserialize, Serialize};

use crate::config::ChurnEvent;

/// A latency histogram with 1-cycle-wide buckets and an overflow tail.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    overflow: u64,
    count: u64,
    sum: u64,
    max: u64,
}

impl LatencyHistogram {
    /// A histogram resolving latencies up to `cap` cycles exactly;
    /// larger samples land in the overflow tail (still counted in the
    /// mean and max).
    pub fn new(cap: usize) -> Self {
        LatencyHistogram { buckets: vec![0; cap], overflow: 0, count: 0, sum: 0, max: 0 }
    }

    /// Records one packet latency.
    pub fn record(&mut self, latency: u64) {
        match self.buckets.get_mut(latency as usize) {
            Some(b) => *b += 1,
            None => self.overflow += 1,
        }
        self.count += 1;
        self.sum += latency;
        self.max = self.max.max(latency);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency in cycles (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Maximum recorded latency.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The `p`-quantile (e.g. `0.95`), resolved to bucket granularity.
    /// Samples in the overflow tail report the maximum.
    ///
    /// # Panics
    /// Panics if `p` is outside `[0, 1]`.
    pub fn percentile(&self, p: f64) -> u64 {
        assert!((0.0..=1.0).contains(&p), "percentile {p} outside [0, 1]");
        if self.count == 0 {
            return 0;
        }
        let target = ((self.count as f64) * p).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (lat, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return lat as u64;
            }
        }
        self.max
    }

    /// Merges another histogram (same cap) into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        assert_eq!(self.buckets.len(), other.buckets.len(), "histogram caps differ");
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

/// Everything measured over one traffic simulation run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TrafficStats {
    /// Cycles simulated in total (warmup + window + drain actually used).
    pub cycles: u64,
    /// Healthy (injecting/ejecting) nodes — the denominator of per-node
    /// rates, so throughput is comparable across fault densities
    /// (faulty routers neither offer nor accept traffic).
    pub nodes: usize,
    /// Length of the measurement window in cycles.
    pub measure_window: u64,
    /// Packets generated over the whole run.
    pub generated: u64,
    /// Packets generated during the measurement window.
    pub measured_generated: u64,
    /// Measured packets that completed delivery.
    pub measured_delivered: u64,
    /// Generation attempts whose routing function produced no path
    /// (counted, not queued — e.g. XY across a fault).
    pub unroutable: u64,
    /// Generation attempts dropped because the compiled route exceeded
    /// the configured hop budget ([`route_ttl`](crate::SimConfig)).
    pub ttl_dropped: u64,
    /// Packets that committed to an escape class (XY *or* spanning
    /// tree) mid-flight; always zero under the deterministic policy or
    /// with `escape_vcs = 0`. On a heavily faulted mesh most commits
    /// are tree-class (the non-minimal last resort), so a high count
    /// also signals latency drifting off the compiled routes.
    pub escape_packets: u64,
    /// Flits ejected during the measurement window (accepted traffic).
    pub measured_flits_ejected: u64,
    /// Flit-hops simulated over the whole run (switch traversals, the
    /// simulator's unit of work — `flits_moved / wall seconds` is the
    /// throughput figure the BENCH trajectory records).
    pub flits_moved: u64,
    /// Latency histogram over measured, delivered packets. Latency runs
    /// from *generation* (so it includes source queueing) to tail
    /// ejection.
    pub latency: LatencyHistogram,
    /// True when measured packets were still undelivered after the drain
    /// budget — the offered load exceeds what the network accepts.
    pub saturated: bool,
    /// True when the fabric stopped moving flits entirely while packets
    /// were in flight (wormhole cyclic dependency; see the crate docs on
    /// escape channels).
    pub deadlocked: bool,
    /// Packets delivered per admission epoch (index = epoch). One entry
    /// (every delivery) without fault churn; under churn this is the
    /// per-epoch delivered series the `--json` rows report. Counts every
    /// delivery, warmup-era and measured alike.
    pub epoch_delivered: Vec<u64>,
    /// Packets dropped from source queues by a mid-run node failure
    /// (the decommissioned node's NI discards not-yet-injected packets;
    /// a partially injected worm is always completed first). Always 0
    /// without fault churn.
    pub churn_dropped: u64,
    /// In-flight packets drained out of the fabric by *online* churn:
    /// an unscheduled fault landed on the packet's position,
    /// destination, or committed escape run and no replan existed. The
    /// graceful-degradation counterpart of a wedge — these packets are
    /// accounted, not deadlocked. Always 0 without online churn.
    pub churn_killed: u64,
    /// Online churn events refused at the epoch barrier (failing an
    /// already-faulty node, repairing a healthy one, off-mesh targets).
    /// Always 0 without online churn.
    pub churn_rejected: u64,
    /// The online churn events actually applied, in publication order
    /// (`cycle` = the barrier cycle each took effect). Empty without
    /// online churn; prescheduled churn is in
    /// [`SimConfig::fault_churn`](crate::SimConfig) instead.
    pub online_events: Vec<ChurnEvent>,
}

impl TrafficStats {
    /// Accepted throughput in flits per healthy node per cycle over the
    /// measurement window.
    pub fn accepted_flits_per_node_cycle(&self) -> f64 {
        if self.measure_window == 0 || self.nodes == 0 {
            0.0
        } else {
            self.measured_flits_ejected as f64 / (self.nodes as f64 * self.measure_window as f64)
        }
    }

    /// Fraction of measured packets delivered, in percent.
    pub fn delivered_pct(&self) -> f64 {
        if self.measured_generated == 0 {
            100.0
        } else {
            100.0 * self.measured_delivered as f64 / self.measured_generated as f64
        }
    }

    /// Mean measured latency in cycles.
    pub fn mean_latency(&self) -> f64 {
        self.latency.mean()
    }

    /// Median measured latency in cycles (exact: the histogram has
    /// 1-cycle-wide buckets up to its cap).
    pub fn p50_latency(&self) -> u64 {
        self.latency.percentile(0.50)
    }

    /// 95th-percentile measured latency in cycles.
    pub fn p95_latency(&self) -> u64 {
        self.latency.percentile(0.95)
    }

    /// 99th-percentile measured latency in cycles.
    pub fn p99_latency(&self) -> u64 {
        self.latency.percentile(0.99)
    }
}

/// One streaming statistics window emitted by
/// [`TrafficSim::run_with`](crate::TrafficSim::run_with): what the
/// fabric did over the last `stats_window` cycles
/// ([`SimConfig::stats_window`](crate::SimConfig)). Unlike
/// [`TrafficStats`], which is one summary at the end of the run, these
/// samples stream *during* it — the hook long sweeps use to watch
/// saturation develop (and, via [`WindowControl::Stop`], to cut a run
/// short once its verdict is certain).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WindowSample {
    /// First cycle of the window (inclusive).
    pub start: u64,
    /// One past the last cycle of the window.
    pub end: u64,
    /// Packets delivered (tail ejected) during the window — warmup and
    /// measured traffic alike.
    pub delivered: u64,
    /// Mean generation-to-delivery latency of those packets (0 when
    /// none delivered).
    pub mean_latency: f64,
    /// Flits consumed by ejection ports during the window (accepted
    /// throughput; divide by `nodes * (end - start)` for the per-node
    /// rate).
    pub ejected_flits: u64,
    /// Flit-hops simulated during the window.
    pub moved: u64,
    /// Flits inside the fabric at the window boundary.
    pub in_flight: u64,
    /// Packets queued at source network interfaces at the boundary
    /// (the backlog that grows without bound past saturation).
    pub backlog: u64,
    /// Measured packets generated but not yet delivered.
    pub measured_outstanding: u64,
    /// Whether generation has stopped (the run is past
    /// `warmup + measure` and draining).
    pub draining: bool,
}

/// What the run loop should do after a window sample.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WindowControl {
    /// Keep simulating.
    Continue,
    /// End the run now. The run is classified exactly as at the drain
    /// deadline: `saturated` when measured packets are outstanding.
    Stop,
}

/// A streaming-statistics consumer for
/// [`TrafficSim::run_with`](crate::TrafficSim::run_with).
pub trait WindowObserver {
    /// Called at every `stats_window` boundary.
    fn on_window(&mut self, sample: &WindowSample) -> WindowControl;
}

/// The null observer: every run is [`WindowControl::Continue`].
impl WindowObserver for () {
    fn on_window(&mut self, _sample: &WindowSample) -> WindowControl {
        WindowControl::Continue
    }
}

/// Stops a run whose drain phase has visibly wedged: `limit`
/// consecutive windows with measured packets outstanding and **zero**
/// deliveries. The full drain budget could only change the verdict if
/// a fabric that delivered nothing for `limit * stats_window` cycles
/// (with injection long stopped) suddenly recovered — the same wager
/// the deadlock detector makes — so the saved cycles are effectively
/// free. Used by the load sweep's early-exit path; conservative by
/// construction (a single delivery resets the streak).
#[derive(Clone, Copy, Debug)]
pub struct DrainStallObserver {
    limit: u32,
    streak: u32,
}

impl DrainStallObserver {
    /// Stops after `limit` consecutive delivery-free drain windows.
    pub fn new(limit: u32) -> Self {
        DrainStallObserver { limit: limit.max(1), streak: 0 }
    }
}

impl WindowObserver for DrainStallObserver {
    fn on_window(&mut self, s: &WindowSample) -> WindowControl {
        if s.draining && s.measured_outstanding > 0 && s.delivered == 0 {
            self.streak += 1;
            if self.streak >= self.limit {
                return WindowControl::Stop;
            }
        } else {
            self.streak = 0;
        }
        WindowControl::Continue
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_mean_percentile_max() {
        let mut h = LatencyHistogram::new(64);
        for lat in [10u64, 10, 20, 30] {
            h.record(lat);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.mean(), 17.5);
        assert_eq!(h.max(), 30);
        assert_eq!(h.percentile(0.5), 10);
        assert_eq!(h.percentile(0.75), 20);
        assert_eq!(h.percentile(1.0), 30);
    }

    #[test]
    fn histogram_overflow_counts_in_mean() {
        let mut h = LatencyHistogram::new(8);
        h.record(100);
        h.record(4);
        assert_eq!(h.count(), 2);
        assert_eq!(h.mean(), 52.0);
        assert_eq!(h.percentile(1.0), 100, "overflow resolves to max");
    }

    #[test]
    fn histogram_merge() {
        let mut a = LatencyHistogram::new(16);
        let mut b = LatencyHistogram::new(16);
        a.record(3);
        b.record(5);
        b.record(40);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max(), 40);
    }

    #[test]
    fn stats_rates() {
        let s = TrafficStats {
            cycles: 100,
            nodes: 10,
            measure_window: 50,
            generated: 30,
            measured_generated: 20,
            measured_delivered: 18,
            unroutable: 1,
            ttl_dropped: 0,
            escape_packets: 0,
            measured_flits_ejected: 200,
            flits_moved: 1200,
            latency: LatencyHistogram::new(8),
            saturated: false,
            deadlocked: false,
            epoch_delivered: vec![18],
            churn_dropped: 0,
            churn_killed: 0,
            churn_rejected: 0,
            online_events: Vec::new(),
        };
        assert_eq!(s.accepted_flits_per_node_cycle(), 0.4);
        assert_eq!(s.delivered_pct(), 90.0);
    }

    #[test]
    fn stats_percentiles_read_the_latency_histogram() {
        let mut latency = LatencyHistogram::new(128);
        for lat in 1..=100u64 {
            latency.record(lat);
        }
        let s = TrafficStats {
            cycles: 100,
            nodes: 10,
            measure_window: 50,
            generated: 100,
            measured_generated: 100,
            measured_delivered: 100,
            unroutable: 0,
            ttl_dropped: 0,
            escape_packets: 0,
            measured_flits_ejected: 100,
            flits_moved: 100,
            latency,
            saturated: false,
            deadlocked: false,
            epoch_delivered: vec![100],
            churn_dropped: 0,
            churn_killed: 0,
            churn_rejected: 0,
            online_events: Vec::new(),
        };
        assert_eq!(s.p50_latency(), 50);
        assert_eq!(s.p95_latency(), 95);
        assert_eq!(s.p99_latency(), 99);
    }

    #[test]
    fn drain_stall_observer_needs_a_full_quiet_streak() {
        let mut obs = DrainStallObserver::new(3);
        let quiet = WindowSample {
            start: 0,
            end: 250,
            delivered: 0,
            mean_latency: 0.0,
            ejected_flits: 0,
            moved: 12, // may still be moving (circulating worms)
            in_flight: 40,
            backlog: 9,
            measured_outstanding: 10,
            draining: true,
        };
        assert_eq!(obs.on_window(&quiet), WindowControl::Continue);
        assert_eq!(obs.on_window(&quiet), WindowControl::Continue);
        // One delivery resets the streak...
        assert_eq!(obs.on_window(&WindowSample { delivered: 1, ..quiet }), WindowControl::Continue);
        assert_eq!(obs.on_window(&quiet), WindowControl::Continue);
        // ...and quiet windows before the drain never count.
        assert_eq!(
            obs.on_window(&WindowSample { draining: false, ..quiet }),
            WindowControl::Continue
        );
        assert_eq!(obs.on_window(&quiet), WindowControl::Continue);
        assert_eq!(obs.on_window(&quiet), WindowControl::Continue);
        assert_eq!(obs.on_window(&quiet), WindowControl::Stop);
    }
}
