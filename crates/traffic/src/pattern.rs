//! Traffic patterns: how packet destinations are chosen.

use meshpath_mesh::{Coord, FaultSet, FxHashMap, FxHashSet};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Destination selection patterns, the standard NoC benchmark set.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum TrafficPattern {
    /// Every healthy node other than the source, uniformly.
    UniformRandom,
    /// `(x, y) -> (y, x)` (square meshes; stresses the diagonal).
    Transpose,
    /// `(x, y) -> (W-1-x, H-1-y)` (all traffic crosses the center).
    BitComplement,
    /// With probability `fraction`, a uniformly chosen hotspot node;
    /// otherwise uniform random.
    Hotspot {
        /// The hotspot destinations.
        targets: Vec<Coord>,
        /// Fraction of traffic aimed at the hotspots.
        fraction: f64,
    },
    /// A fixed random permutation of the healthy nodes, drawn once per
    /// simulation from the seed.
    Permutation,
}

impl TrafficPattern {
    /// Short display name for tables.
    pub fn name(&self) -> &'static str {
        match self {
            TrafficPattern::UniformRandom => "uniform",
            TrafficPattern::Transpose => "transpose",
            TrafficPattern::BitComplement => "bit-complement",
            TrafficPattern::Hotspot { .. } => "hotspot",
            TrafficPattern::Permutation => "permutation",
        }
    }
}

/// How packet *generation times* are drawn at each source node (the
/// destination is a separate axis — [`TrafficPattern`]).
///
/// Every process is normalized to the same mean offered load: a node
/// with [`SimConfig::rate`](crate::SimConfig) `r` generates `r` packets
/// per cycle on average under either process, so latency curves stay
/// comparable across processes and only the *burstiness* differs.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum InjectionProcess {
    /// Independent Bernoulli trials: one generation attempt per cycle
    /// with probability `rate` (the memoryless baseline).
    Bernoulli,
    /// A Markov-modulated on/off process (bursty traffic): each node
    /// carries a two-state Markov chain stepped once per cycle, and
    /// generation attempts happen only in the *on* state, with
    /// probability `rate / duty` (capped at 1), where
    /// `duty = off_to_on / (on_to_off + off_to_on)` is the stationary
    /// on-fraction. Mean offered load is `rate` whenever
    /// `rate <= duty`; bursts average `1 / on_to_off` cycles.
    MarkovOnOff {
        /// Per-cycle probability of leaving the *on* state. Smaller
        /// values mean longer bursts.
        on_to_off: f64,
        /// Per-cycle probability of leaving the *off* state. Smaller
        /// values mean longer silences.
        off_to_on: f64,
    },
}

impl InjectionProcess {
    /// Short display name for tables and `--json` output.
    pub fn name(&self) -> &'static str {
        match self {
            InjectionProcess::Bernoulli => "bernoulli",
            InjectionProcess::MarkovOnOff { .. } => "markov-on-off",
        }
    }

    /// The stationary probability of the *on* state (1 for Bernoulli).
    ///
    /// # Panics
    /// Panics when a Markov transition probability is outside `(0, 1]`
    /// (a chain that can never leave a state has no on/off behavior).
    pub fn duty_cycle(&self) -> f64 {
        match *self {
            InjectionProcess::Bernoulli => 1.0,
            InjectionProcess::MarkovOnOff { on_to_off, off_to_on } => {
                assert!(
                    (0.0..=1.0).contains(&on_to_off) && on_to_off > 0.0,
                    "on_to_off {on_to_off} outside (0, 1]"
                );
                assert!(
                    (0.0..=1.0).contains(&off_to_on) && off_to_on > 0.0,
                    "off_to_on {off_to_on} outside (0, 1]"
                );
                off_to_on / (on_to_off + off_to_on)
            }
        }
    }
}

/// How the flit count of a generated packet is drawn.
/// [`SimConfig::packet_len`](crate::SimConfig) is the *mean* under
/// every distribution, so offered load in flits stays comparable.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum LengthDist {
    /// Every packet is exactly `packet_len` flits (the baseline).
    Fixed,
    /// Geometric lengths with mean `packet_len` (success probability
    /// `1 / packet_len`), truncated at `max` flits — short control-like
    /// packets mixed with long data-like worms, the standard NoC
    /// multi-flit model.
    Geometric {
        /// Truncation bound (inclusive); lengths are capped here so a
        /// single unlucky draw cannot occupy a path for thousands of
        /// cycles. Must be at least 1.
        max: u32,
    },
}

impl LengthDist {
    /// Short display name for tables and `--json` output.
    pub fn name(&self) -> &'static str {
        match self {
            LengthDist::Fixed => "fixed",
            LengthDist::Geometric { .. } => "geometric",
        }
    }

    /// Draws one packet length with mean `mean_len` from `rng`.
    ///
    /// # Panics
    /// Panics when `mean_len` is zero or a geometric `max` is zero.
    pub fn sample(&self, mean_len: u32, rng: &mut StdRng) -> u32 {
        assert!(mean_len >= 1, "packets need at least one flit");
        match *self {
            LengthDist::Fixed => mean_len,
            LengthDist::Geometric { max } => {
                assert!(max >= 1, "geometric length cap must be at least 1");
                let p = 1.0 / f64::from(mean_len);
                let mut len = 1;
                while len < max && !rng.gen_bool(p) {
                    len += 1;
                }
                len
            }
        }
    }
}

/// A compiled destination sampler for one fault configuration.
///
/// Construction resolves everything data-dependent (the healthy-node
/// list, the permutation) so that per-packet sampling is cheap and
/// deterministic under the caller's RNG.
pub struct DestSampler {
    pattern: TrafficPattern,
    healthy: Vec<Coord>,
    healthy_set: FxHashSet<Coord>,
    /// `Permutation` only: source -> destination.
    perm: FxHashMap<Coord, Coord>,
    width: i32,
    height: i32,
}

impl DestSampler {
    /// Compiles `pattern` against the fault configuration.
    ///
    /// # Panics
    /// Panics if a hotspot fraction is outside `[0, 1]`.
    pub fn new(pattern: TrafficPattern, faults: &FaultSet, seed: u64) -> Self {
        if let TrafficPattern::Hotspot { fraction, .. } = &pattern {
            assert!((0.0..=1.0).contains(fraction), "hotspot fraction {fraction} outside [0, 1]");
        }
        let mesh = faults.mesh();
        let healthy: Vec<Coord> = mesh.iter().filter(|&c| faults.is_healthy(c)).collect();
        let mut perm = FxHashMap::default();
        if matches!(pattern, TrafficPattern::Permutation) {
            let mut shuffled = healthy.clone();
            let mut rng = StdRng::seed_from_u64(seed ^ 0x7065_726d); // "perm"
            shuffled.shuffle(&mut rng);
            perm.extend(healthy.iter().copied().zip(shuffled));
        }
        DestSampler {
            pattern,
            healthy_set: healthy.iter().copied().collect(),
            healthy,
            perm,
            width: mesh.width() as i32,
            height: mesh.height() as i32,
        }
    }

    /// The pattern this sampler was compiled from.
    pub fn pattern(&self) -> &TrafficPattern {
        &self.pattern
    }

    /// Draws a destination for a packet sourced at `src`, or `None` when
    /// the pattern maps `src` to itself or to a faulty node (the packet
    /// is simply not generated, like a core with nothing to say).
    pub fn dest(&self, src: Coord, rng: &mut StdRng) -> Option<Coord> {
        let d = match &self.pattern {
            TrafficPattern::UniformRandom => self.uniform(src, rng)?,
            TrafficPattern::Transpose => Coord::new(src.y, src.x),
            TrafficPattern::BitComplement => {
                Coord::new(self.width - 1 - src.x, self.height - 1 - src.y)
            }
            TrafficPattern::Hotspot { targets, fraction } => {
                if !targets.is_empty() && rng.gen_bool(*fraction) {
                    targets[rng.gen_range(0..targets.len())]
                } else {
                    self.uniform(src, rng)?
                }
            }
            TrafficPattern::Permutation => *self.perm.get(&src)?,
        };
        (d != src && self.is_healthy(d)).then_some(d)
    }

    fn uniform(&self, src: Coord, rng: &mut StdRng) -> Option<Coord> {
        if self.healthy.len() < 2 {
            return None;
        }
        // Rejection loop: terminates fast because at least half the
        // draws differ from `src` whenever 2+ healthy nodes exist.
        for _ in 0..64 {
            let d = self.healthy[rng.gen_range(0..self.healthy.len())];
            if d != src {
                return Some(d);
            }
        }
        None
    }

    fn is_healthy(&self, c: Coord) -> bool {
        // Patterns can produce faulty or out-of-mesh coordinates
        // (e.g. transpose on a rectangle); those packets are dropped at
        // generation.
        self.healthy_set.contains(&c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meshpath_mesh::Mesh;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1)
    }

    #[test]
    fn uniform_avoids_source_and_faults() {
        let mesh = Mesh::square(6);
        let faults = FaultSet::from_coords(mesh, [Coord::new(2, 2)]);
        let s = DestSampler::new(TrafficPattern::UniformRandom, &faults, 0);
        let mut r = rng();
        for _ in 0..500 {
            let src = Coord::new(1, 1);
            let d = s.dest(src, &mut r).expect("dest exists");
            assert_ne!(d, src);
            assert_ne!(d, Coord::new(2, 2));
        }
    }

    #[test]
    fn transpose_and_bit_complement() {
        let mesh = Mesh::square(8);
        let faults = FaultSet::none(mesh);
        let t = DestSampler::new(TrafficPattern::Transpose, &faults, 0);
        let b = DestSampler::new(TrafficPattern::BitComplement, &faults, 0);
        let mut r = rng();
        assert_eq!(t.dest(Coord::new(2, 5), &mut r), Some(Coord::new(5, 2)));
        assert_eq!(t.dest(Coord::new(3, 3), &mut r), None, "diagonal maps to itself");
        assert_eq!(b.dest(Coord::new(0, 0), &mut r), Some(Coord::new(7, 7)));
        assert_eq!(b.dest(Coord::new(2, 5), &mut r), Some(Coord::new(5, 2)));
    }

    #[test]
    fn transpose_filters_faulty_targets() {
        let mesh = Mesh::square(8);
        let faults = FaultSet::from_coords(mesh, [Coord::new(5, 2)]);
        let t = DestSampler::new(TrafficPattern::Transpose, &faults, 0);
        let mut r = rng();
        assert_eq!(t.dest(Coord::new(2, 5), &mut r), None);
    }

    #[test]
    fn permutation_is_fixed_and_seeded() {
        let mesh = Mesh::square(6);
        let faults = FaultSet::none(mesh);
        let p1 = DestSampler::new(TrafficPattern::Permutation, &faults, 9);
        let p2 = DestSampler::new(TrafficPattern::Permutation, &faults, 9);
        let p3 = DestSampler::new(TrafficPattern::Permutation, &faults, 10);
        let mut r = rng();
        let mut differs = false;
        for c in mesh.iter() {
            assert_eq!(p1.dest(c, &mut r), p2.dest(c, &mut r), "same seed, same map");
            if p1.dest(c, &mut r) != p3.dest(c, &mut r) {
                differs = true;
            }
        }
        assert!(differs, "different seeds should give different permutations");
    }

    #[test]
    fn markov_on_off_duty_cycle() {
        assert_eq!(InjectionProcess::Bernoulli.duty_cycle(), 1.0);
        let mmp = InjectionProcess::MarkovOnOff { on_to_off: 0.1, off_to_on: 0.1 };
        assert!((mmp.duty_cycle() - 0.5).abs() < 1e-12);
        let bursty = InjectionProcess::MarkovOnOff { on_to_off: 0.3, off_to_on: 0.1 };
        assert!((bursty.duty_cycle() - 0.25).abs() < 1e-12);
        assert_eq!(bursty.name(), "markov-on-off");
    }

    #[test]
    fn geometric_lengths_have_the_right_mean_and_cap() {
        let dist = LengthDist::Geometric { max: 64 };
        let mut r = rng();
        let n = 20_000;
        let mut sum = 0u64;
        for _ in 0..n {
            let len = dist.sample(4, &mut r);
            assert!((1..=64).contains(&len));
            sum += u64::from(len);
        }
        let mean = sum as f64 / n as f64;
        assert!((3.7..4.3).contains(&mean), "geometric mean drifted: {mean}");
        // Fixed is degenerate, and a tight cap truncates.
        assert_eq!(LengthDist::Fixed.sample(4, &mut r), 4);
        for _ in 0..100 {
            assert!(LengthDist::Geometric { max: 2 }.sample(4, &mut r) <= 2);
        }
    }

    #[test]
    fn hotspot_concentrates_traffic() {
        let mesh = Mesh::square(8);
        let faults = FaultSet::none(mesh);
        let target = Coord::new(4, 4);
        let h = DestSampler::new(
            TrafficPattern::Hotspot { targets: vec![target], fraction: 0.8 },
            &faults,
            0,
        );
        let mut r = rng();
        let hits = (0..1000).filter(|_| h.dest(Coord::new(0, 0), &mut r) == Some(target)).count();
        assert!(hits > 600, "hotspot should draw ~80% of traffic, got {hits}/1000");
    }
}
