//! Routing-function adapters: the paper's routers plus dimension-order
//! XY, compiled to source routes for the wormhole fabric.
//!
//! The paper's routers make per-hop local decisions, but re-running the
//! full decision procedure at every router every cycle would swamp the
//! flit-level simulation. Because every router in this workspace is
//! *deterministic* for a given network, the hop sequence it would take
//! is a pure function of `(source, destination)` — so the adapter runs
//! the router once per distinct pair, converts the walk into a direction
//! sequence, and memoizes it. The fabric then plays that sequence back
//! flit by flit, which is exactly source routing of the path the
//! distributed algorithm would have produced.

use std::rc::Rc;

use meshpath_mesh::{Coord, Dir, FxHashMap};
use meshpath_route::{ECube, Network, Rb1, Rb2, Rb3, RouteResult, Router};
use serde::{Deserialize, Serialize};

/// The routing functions the traffic simulator can drive.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum RoutingKind {
    /// Dimension-order XY: minimal and deadlock-free, but fault-oblivious
    /// (packets whose row/column path hits a fault are unroutable). The
    /// sanity baseline.
    Xy,
    /// Fault-tolerant E-cube over rectangular fault blocks
    /// (Boppana & Chalasani).
    ECube,
    /// Algorithm 3 over the B1 information model.
    Rb1,
    /// Algorithm 5 over the B2 model (the paper's shortest-path routing).
    Rb2,
    /// Algorithm 7 over the B3 model.
    Rb3,
}

impl RoutingKind {
    /// All routing functions, in reporting order.
    pub const ALL: [RoutingKind; 5] =
        [RoutingKind::Xy, RoutingKind::ECube, RoutingKind::Rb1, RoutingKind::Rb2, RoutingKind::Rb3];

    /// Display name used in tables.
    pub fn name(self) -> &'static str {
        match self {
            RoutingKind::Xy => "XY",
            RoutingKind::ECube => "E-cube",
            RoutingKind::Rb1 => "RB1",
            RoutingKind::Rb2 => "RB2",
            RoutingKind::Rb3 => "RB3",
        }
    }

    /// Instantiates the underlying router (default policies).
    pub fn router(self) -> Box<dyn Router> {
        match self {
            RoutingKind::Xy => Box::new(XyRouter),
            RoutingKind::ECube => Box::new(ECube),
            RoutingKind::Rb1 => Box::new(Rb1::default()),
            RoutingKind::Rb2 => Box::new(Rb2::default()),
            RoutingKind::Rb3 => Box::new(Rb3::default()),
        }
    }
}

/// Deterministic dimension-order routing: correct X first, then Y.
///
/// Fault-oblivious: the walk stops (undelivered) at the first faulty
/// node on the dimension-ordered path. In a fault-free mesh this is the
/// textbook minimal deadlock-free routing, which is why it serves as
/// the simulator's sanity baseline.
pub struct XyRouter;

impl Router for XyRouter {
    fn name(&self) -> &'static str {
        "XY"
    }

    fn route(&self, net: &Network, s: Coord, d: Coord) -> RouteResult {
        let mut path = vec![s];
        let mut cur = s;
        let mut blocked = false;
        while cur != d {
            let dir = if cur.x != d.x {
                if d.x > cur.x {
                    Dir::PlusX
                } else {
                    Dir::MinusX
                }
            } else if d.y > cur.y {
                Dir::PlusY
            } else {
                Dir::MinusY
            };
            let next = cur.step(dir);
            if !net.faults().is_healthy(next) {
                blocked = true;
                break;
            }
            path.push(next);
            cur = next;
        }
        RouteResult { path, delivered: !blocked, replans: 0, fallbacks: 0, detour_hops: 0 }
    }
}

/// A memoizing source-route table for one `(network, routing function)`
/// pair.
pub struct PathTable<'a> {
    net: &'a Network,
    kind: RoutingKind,
    router: Box<dyn Router>,
    cache: FxHashMap<(Coord, Coord), Option<Rc<[Dir]>>>,
    misses: u64,
    hits: u64,
}

impl<'a> PathTable<'a> {
    /// Creates an empty table for `kind` over `net`.
    pub fn new(net: &'a Network, kind: RoutingKind) -> Self {
        PathTable {
            net,
            kind,
            router: kind.router(),
            cache: FxHashMap::default(),
            misses: 0,
            hits: 0,
        }
    }

    /// The routing function this table compiles.
    pub fn kind(&self) -> RoutingKind {
        self.kind
    }

    /// The network the routes are compiled against.
    pub fn network(&self) -> &'a Network {
        self.net
    }

    /// The direction sequence from `s` to `d`, or `None` when the router
    /// does not deliver this pair (XY hitting a fault, disconnected
    /// endpoints, hop-budget exhaustion).
    pub fn path(&mut self, s: Coord, d: Coord) -> Option<Rc<[Dir]>> {
        if let Some(p) = self.cache.get(&(s, d)) {
            self.hits += 1;
            return p.clone();
        }
        self.misses += 1;
        let res = self.router.route(self.net, s, d);
        let dirs = res.delivered.then(|| {
            res.path
                .windows(2)
                .map(|w| w[0].dir_to(w[1]).expect("router paths move between neighbors"))
                .collect::<Rc<[Dir]>>()
        });
        self.cache.insert((s, d), dirs.clone());
        dirs
    }

    /// `(cache hits, cache misses)` — the miss count is the number of
    /// full routing-algorithm executions performed.
    pub fn cache_stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meshpath_mesh::{FaultSet, Mesh};

    #[test]
    fn xy_routes_dimension_ordered() {
        let net = Network::build(FaultSet::none(Mesh::square(8)));
        let res = XyRouter.route(&net, Coord::new(1, 1), Coord::new(4, 6));
        assert!(res.delivered);
        assert_eq!(res.hops(), 3 + 5);
        // X corrections strictly precede Y corrections.
        let dirs: Vec<Dir> = res.path.windows(2).map(|w| w[0].dir_to(w[1]).unwrap()).collect();
        let first_y = dirs.iter().position(|d| d.axis() == meshpath_mesh::Axis::Y).unwrap();
        assert!(dirs[..first_y].iter().all(|d| d.axis() == meshpath_mesh::Axis::X));
        assert!(dirs[first_y..].iter().all(|d| d.axis() == meshpath_mesh::Axis::Y));
    }

    #[test]
    fn xy_blocks_on_faults() {
        let mesh = Mesh::square(8);
        let net = Network::build(FaultSet::from_coords(mesh, [Coord::new(3, 1)]));
        let res = XyRouter.route(&net, Coord::new(1, 1), Coord::new(6, 1));
        assert!(!res.delivered);
        // RB2 routes the same pair around the fault.
        let res2 = Rb2::default().route(&net, Coord::new(1, 1), Coord::new(6, 1));
        assert!(res2.delivered);
    }

    #[test]
    fn path_table_memoizes() {
        let net = Network::build(FaultSet::none(Mesh::square(8)));
        let mut t = PathTable::new(&net, RoutingKind::Rb2);
        let a = t.path(Coord::new(0, 0), Coord::new(5, 5)).expect("delivered");
        let b = t.path(Coord::new(0, 0), Coord::new(5, 5)).expect("delivered");
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
        assert_eq!(t.cache_stats(), (1, 1));
    }

    #[test]
    fn all_kinds_instantiate_and_route() {
        let mesh = Mesh::square(10);
        let net = Network::build(FaultSet::from_coords(mesh, [Coord::new(4, 4)]));
        for kind in RoutingKind::ALL {
            let mut t = PathTable::new(&net, kind);
            let p = t.path(Coord::new(0, 0), Coord::new(9, 9));
            let p = p.unwrap_or_else(|| panic!("{} must route around one fault", kind.name()));
            // Replay the dirs: must land on the destination through
            // healthy nodes.
            let mut cur = Coord::new(0, 0);
            for &d in p.iter() {
                cur = cur.step(d);
                assert!(net.faults().is_healthy(cur));
            }
            assert_eq!(cur, Coord::new(9, 9), "{}", kind.name());
        }
    }
}
