//! Per-hop routing functions for the wormhole fabric: the [`HopRouter`]
//! trait, the compiled-route replay adapter, and the Duato-style
//! adaptive wrapper with a dimension-order XY escape class.
//!
//! ## Architecture
//!
//! The paper's routers make per-hop local decisions (the unified
//! [`Router`] trait in `meshpath-route`). Re-running the full decision
//! procedure at every router every cycle would swamp the flit-level
//! simulation, so the adapters compile the hop sequence once per
//! distinct `(epoch, source, destination)` triple into a [`PathTable`]
//! (every router in this workspace is *deterministic* per snapshot, so
//! the walk is a pure function of the pair). The table is
//! **snapshot-keyed**: it owns [`NetView`] epochs instead of borrowing
//! one `&Network`, which is what lets a running simulation change its
//! fault set mid-flight (the `fault_churn` scenario axis) — packets
//! admitted at epoch `e` replay epoch-`e` routes while new packets
//! compile against the current epoch.
//!
//! The fabric asks a [`HopRouter`] for a fresh `(output port, VC
//! class)` decision whenever a head flit is parked at a router. Two hop
//! routers are provided:
//!
//! * [`ReplayHop`] — always follows the compiled route on the adaptive
//!   VC class. Functionally identical to the old source-routed fabric.
//! * [`EscapeHop`] — follows the compiled route on the adaptive class;
//!   when the head has been blocked for `patience` cycles it re-routes
//!   the packet onto a reserved escape class and finishes the trip
//!   there. Two escape classes exist, tried in order:
//!
//!   1. the **XY escape class** ([`VcClass::EscapeXy`]): strict
//!      dimension-order XY, entered only when the XY walk from the
//!      current node to the destination crosses no faulty node (under
//!      the packet's epoch). Every XY hop strictly decreases the
//!      dimension-order distance, so the class's channel-dependency
//!      graph is acyclic (the classic DOR argument) and it drains under
//!      any load.
//!   2. the **tree escape class** ([`VcClass::EscapeTree`]): up*/down*
//!      routing on a BFS spanning forest ([`EscapeForest`]). Tree
//!      routes go child-to-root ("up") then root-to-child ("down");
//!      forbidding down-to-up transitions totally orders the tree
//!      channels, so this class is acyclic *regardless of the fault
//!      pattern*. Under fault churn the forest is provisioned against
//!      the **union of every scheduled epoch's faults**, so one
//!      epoch-invariant acyclic substrate serves the whole run — the
//!      deadlock-freedom argument survives reconfiguration.
//!
//!   Per Duato's methodology, a blocked head that always has an
//!   eventual path onto a draining escape network cannot participate in
//!   a wormhole interlock: the XY class serves the common case with
//!   minimal paths, and the tree class closes the faulty-mesh hole
//!   (XY runs blocked by faults) with a guaranteed — if possibly long —
//!   last resort.
//!
//! Under **online churn** (unscheduled events published mid-run via
//! [`HopRouter::publish`]) no fault union exists at startup, so the
//! escape substrate instead tracks the *current* fault set: each
//! published event incrementally re-provisions the forest
//! ([`EscapeForest::update`] — component-scoped rebuilds with a
//! full-rebuild fallback on component merge/split), repaired nodes
//! regain the tree class, and packets stranded by a fresh fault are
//! replanned under the new epoch or killed (the `churn_killed` stat)
//! instead of wedging.

use std::rc::Rc;

use meshpath_mesh::{Coord, Dir, FaultSet, FxHashMap};
use meshpath_route::{NetView, RouteResult, Router};
use serde::{Deserialize, Serialize};

use crate::config::ChurnOp;
use crate::fabric::PacketState;

// The per-hop substrate is defined once, in `meshpath-route`; re-export
// the names this crate historically owned so downstream code keeps
// compiling while the two layers share one implementation.
pub use meshpath_route::{xy_next, xy_path_clear, RoutingKind, XyRouter};

/// The virtual-channel classes of the fabric.
///
/// The fabric partitions each output port's `vcs` virtual channels into
/// `vcs - escape_vcs` *adaptive* channels (the low indices, usable by
/// any compiled route) and `escape_vcs` reserved *escape* channels (the
/// top indices). The topmost escape channel is the tree class; any
/// remaining escape channels form the XY class. Restricting each escape
/// class to one acyclic routing function (strict dimension-order XY,
/// up*/down* tree order) keeps its channel-dependency graph
/// cycle-free, which is what lets escape traffic drain under any load;
/// keeping the two classes on disjoint channels keeps their dependency
/// graphs from composing into a cycle.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum VcClass {
    /// The unrestricted class: compiled (possibly detouring) routes.
    Adaptive,
    /// The reserved XY escape class: strict dimension-order XY only,
    /// entered only past a fault-free XY run.
    EscapeXy,
    /// The reserved tree escape class: up*/down* spanning-forest routes
    /// only — the always-available last resort.
    EscapeTree,
}

/// One output option for a parked head flit.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct HopChoice {
    /// The output direction to request.
    pub dir: Dir,
    /// The VC class to allocate on that output.
    pub class: VcClass,
}

/// An ordered, fixed-capacity candidate list for one head flit: the
/// fabric tries the choices front to back and the first one with an
/// allocatable VC this cycle wins (committing the packet — wormhole).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct HopCandidates {
    len: u8,
    arr: [Option<HopChoice>; 3],
}

impl HopCandidates {
    /// An empty candidate list (the head waits this cycle).
    pub fn new() -> Self {
        HopCandidates::default()
    }

    /// Appends a candidate (capacity 3: adaptive, XY escape, tree
    /// escape).
    ///
    /// # Panics
    /// Panics when the list is full.
    pub fn push(&mut self, c: HopChoice) {
        assert!((self.len as usize) < self.arr.len(), "candidate list full");
        self.arr[self.len as usize] = Some(c);
        self.len += 1;
    }

    /// The candidates in preference order.
    pub fn iter(&self) -> impl Iterator<Item = HopChoice> + '_ {
        self.arr[..self.len as usize].iter().map(|c| c.expect("filled up to len"))
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether no candidate was offered.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl FromIterator<HopChoice> for HopCandidates {
    fn from_iter<T: IntoIterator<Item = HopChoice>>(iter: T) -> Self {
        let mut c = HopCandidates::new();
        for x in iter {
            c.push(x);
        }
        c
    }
}

/// A per-hop routing decision for one head flit.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HopDecision {
    /// The packet is at its destination: take the ejection port.
    Eject,
    /// Request an output link: candidates in preference order.
    Route(HopCandidates),
}

impl HopDecision {
    /// A single-candidate route decision.
    pub fn route1(c: HopChoice) -> Self {
        HopDecision::Route([c].into_iter().collect())
    }
}

/// The fabric-facing adapter over the unified [`Router`] trait: the
/// object the fabric consults for every parked head flit, adding the
/// VC-class dimension (adaptive vs escape) the offline engine does not
/// have. Implementations decide from *local* state — the packet's
/// endpoints and progress ([`PacketState`], including its admission
/// epoch) plus whatever the adapter knows about the network — mirroring
/// how the paper's distributed algorithms run on real NoC hardware.
pub trait HopRouter {
    /// Network-interface admission: the hop count of the compiled route
    /// for `(s, d)` under the **current epoch**, or `None` when the
    /// routing function does not deliver the pair (XY across a fault,
    /// disconnected endpoints). Called once per generated packet; the
    /// result backs the TTL check.
    fn admit(&mut self, s: Coord, d: Coord) -> Option<u32>;

    /// The decision for the head flit of `pk` parked at `here`. Called
    /// every cycle the head is unrouted (possibly several times, once
    /// per output port scanned), so it must be cheap: a table lookup
    /// plus a VC-class choice. Routes are resolved under the packet's
    /// admission epoch (`pk.epoch`). The packet state is mutable so an
    /// online router can re-key a stranded packet onto the current
    /// epoch (replan) or mark it killed; any mutation must be
    /// idempotent, because the reference stepper re-asks per output
    /// port within one cycle.
    fn decide(&mut self, here: Coord, pk: &mut PacketState) -> HopDecision;

    /// Advances the *admission* epoch (fault churn): subsequent
    /// [`admit`](HopRouter::admit) calls compile against the next
    /// scheduled snapshot. In-flight packets keep their epoch.
    fn advance_epoch(&mut self) {}

    /// Publishes an *online* (unscheduled) epoch: appends `view` to the
    /// epoch schedule and re-provisions escape structures for `op`.
    /// The first publish switches the router into online mode —
    /// degradation checks (kill/replan around fresh faults) activate
    /// from that point on. Routers that cannot serve online churn
    /// ignore the call.
    fn publish(&mut self, view: &NetView, op: ChurnOp) {
        let _ = (view, op);
    }
}

/// A compiled route: the hop sequence, or `None` for an undeliverable
/// pair, cached per `(epoch, source, destination)`.
type CachedRoute = Option<Rc<[Dir]>>;

/// A memoizing compiled-route table for one routing function over a
/// **schedule of epoch snapshots**: the per-pair backing store of the
/// hop routers. Routes are keyed `(epoch, source, destination)`, so a
/// table serves mixed-epoch traffic during fault churn; without churn
/// it degenerates to the classic per-pair cache at epoch 0.
pub struct PathTable {
    kind: RoutingKind,
    router: Box<dyn Router + Send + Sync>,
    /// The scheduled snapshots, admission-epoch order (index 0 = the
    /// initial configuration).
    views: Vec<NetView>,
    /// The current admission epoch (index into `views`).
    current: usize,
    cache: FxHashMap<(u32, Coord, Coord), CachedRoute>,
    misses: u64,
    hits: u64,
}

impl PathTable {
    /// Creates an empty single-epoch table for `kind` over `view`.
    pub fn new(view: &NetView, kind: RoutingKind) -> Self {
        PathTable {
            kind,
            router: kind.router(),
            views: vec![view.clone()],
            current: 0,
            cache: FxHashMap::default(),
            misses: 0,
            hits: 0,
        }
    }

    /// The routing function this table compiles.
    pub fn kind(&self) -> RoutingKind {
        self.kind
    }

    /// The snapshot of the current admission epoch.
    pub fn view(&self) -> &NetView {
        &self.views[self.current]
    }

    /// The snapshot of a specific epoch.
    ///
    /// # Panics
    /// Panics when `epoch` is beyond the schedule.
    pub fn view_at(&self, epoch: u32) -> &NetView {
        &self.views[epoch as usize]
    }

    /// Every scheduled snapshot, epoch order.
    pub fn views(&self) -> &[NetView] {
        &self.views
    }

    /// The current admission epoch (index into [`views`](PathTable::views)).
    pub fn current_epoch(&self) -> u32 {
        self.current as u32
    }

    /// Installs the post-initial epoch schedule (fault churn) and
    /// rewinds to epoch 0. Cached routes of the initial epoch survive
    /// (they stay valid across runs over the same network); later-epoch
    /// entries are dropped, since the schedule may have changed.
    pub fn set_schedule(&mut self, later: impl IntoIterator<Item = NetView>) {
        self.views.truncate(1);
        self.views.extend(later);
        self.current = 0;
        self.cache.retain(|&(epoch, _, _), _| epoch == 0);
    }

    /// Rewinds the admission epoch to 0 (run start).
    pub fn rewind(&mut self) {
        self.current = 0;
    }

    /// Advances the admission epoch; `false` when the schedule is
    /// exhausted.
    pub fn advance_epoch(&mut self) -> bool {
        if self.current + 1 < self.views.len() {
            self.current += 1;
            true
        } else {
            false
        }
    }

    /// The direction sequence from `s` to `d` under the current
    /// admission epoch, or `None` when the router does not deliver this
    /// pair (XY hitting a fault, disconnected endpoints, hop-budget
    /// exhaustion).
    pub fn path(&mut self, s: Coord, d: Coord) -> Option<Rc<[Dir]>> {
        self.path_at(self.current as u32, s, d)
    }

    /// The direction sequence from `s` to `d` under a specific epoch.
    pub fn path_at(&mut self, epoch: u32, s: Coord, d: Coord) -> Option<Rc<[Dir]>> {
        if let Some(p) = self.cache.get(&(epoch, s, d)) {
            self.hits += 1;
            return p.clone();
        }
        self.misses += 1;
        let res: RouteResult = self.router.route(&self.views[epoch as usize], s, d);
        let dirs = res.delivered.then(|| {
            res.path
                .windows(2)
                .map(|w| w[0].dir_to(w[1]).expect("router paths move between neighbors"))
                .collect::<Rc<[Dir]>>()
        });
        self.cache.insert((epoch, s, d), dirs.clone());
        dirs
    }

    /// Appends an *online* (unscheduled) epoch snapshot to the end of
    /// the schedule without touching the current admission epoch.
    /// Unlike [`set_schedule`](PathTable::set_schedule) this keeps
    /// every existing epoch and cached route: online churn extends the
    /// schedule while the run is in flight, and the next
    /// [`advance_epoch`](PathTable::advance_epoch) steps into the new
    /// snapshot.
    pub fn push_epoch(&mut self, view: &NetView) {
        self.views.push(view.clone());
    }

    /// `(cache hits, cache misses)` — the miss count is the number of
    /// full routing-algorithm executions performed.
    pub fn cache_stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

/// Deterministic per-hop replay of the compiled route, adaptive class
/// only — the paper's routers exactly as the source-routed fabric ran
/// them, now phrased as per-hop decisions.
pub struct ReplayHop<'p> {
    paths: &'p mut PathTable,
    /// Set by the first [`publish`](HopRouter::publish): faults may now
    /// appear that admitted routes did not know about, so every hop
    /// checks the next step against the current fault set and replans
    /// (or kills) stranded packets.
    online: bool,
}

impl<'p> ReplayHop<'p> {
    /// A replay router over `paths`' compiled routes.
    pub fn new(paths: &'p mut PathTable) -> Self {
        ReplayHop { paths, online: false }
    }
}

impl HopRouter for ReplayHop<'_> {
    fn admit(&mut self, s: Coord, d: Coord) -> Option<u32> {
        self.paths.path(s, d).map(|p| p.len() as u32)
    }

    fn decide(&mut self, here: Coord, pk: &mut PacketState) -> HopDecision {
        if self.online {
            let faults = self.paths.view().faults();
            if !faults.is_healthy(here) || !faults.is_healthy(pk.dst) {
                // The packet sits on, or heads to, a node that failed
                // after admission: drain it out of the fabric.
                pk.killed = true;
                return HopDecision::Eject;
            }
        }
        if here == pk.dst {
            return HopDecision::Eject;
        }
        let path = self
            .paths
            .path_at(pk.epoch, pk.src, pk.dst)
            .expect("admitted packets have compiled routes");
        let mut dir = path[pk.head_hop as usize];
        if self.online && !self.paths.view().faults().is_healthy(here.step(dir)) {
            // The compiled route runs into a fresh fault: replan from
            // here under the current epoch (idempotent — the re-keyed
            // route avoids current faults, so a second decide this
            // cycle takes the clean path below), or kill the packet
            // when no current-epoch route exists.
            let cur = self.paths.current_epoch();
            match self.paths.path_at(cur, here, pk.dst) {
                Some(p) => {
                    pk.src = here;
                    pk.head_hop = 0;
                    pk.epoch = cur;
                    dir = p[0];
                }
                None => {
                    pk.killed = true;
                    return HopDecision::Eject;
                }
            }
        }
        HopDecision::route1(HopChoice { dir, class: VcClass::Adaptive })
    }

    fn advance_epoch(&mut self) {
        self.paths.advance_epoch();
    }

    fn publish(&mut self, view: &NetView, _op: ChurnOp) {
        self.online = true;
        self.paths.push_epoch(view);
    }
}

/// One BFS over the healthy nodes from `start`: distance per node id,
/// `u32::MAX` when unreached (faulty, or another component).
/// Deterministic: neighbors expand in [`Dir::ALL`] order.
fn healthy_bfs(faults: &FaultSet, start: Coord) -> Vec<u32> {
    let mesh = faults.mesh();
    let mut dist = vec![u32::MAX; mesh.len()];
    let mut queue = std::collections::VecDeque::new();
    dist[mesh.id(start).index()] = 0;
    queue.push_back(start);
    while let Some(c) = queue.pop_front() {
        let dc = dist[mesh.id(c).index()];
        for dir in Dir::ALL {
            let nb = c.step(dir);
            if !mesh.contains(nb) || !faults.is_healthy(nb) {
                continue;
            }
            let ni = mesh.id(nb).index();
            if dist[ni] == u32::MAX {
                dist[ni] = dc + 1;
                queue.push_back(nb);
            }
        }
    }
    dist
}

/// Membership mask (by node id) of the healthy component containing
/// `start`, optionally treating `without` as faulty — which recovers
/// the pre-repair component layout when `without` is the node being
/// repaired. Deterministic: BFS in [`Dir::ALL`] order.
fn component_members(faults: &FaultSet, start: Coord, without: Option<Coord>) -> Vec<bool> {
    let mesh = faults.mesh();
    let mut seen = vec![false; mesh.len()];
    if Some(start) == without || !faults.is_healthy(start) {
        return seen;
    }
    let mut queue = std::collections::VecDeque::new();
    seen[mesh.id(start).index()] = true;
    queue.push_back(start);
    while let Some(c) = queue.pop_front() {
        for dir in Dir::ALL {
            let nb = c.step(dir);
            if !mesh.contains(nb) || !faults.is_healthy(nb) || Some(nb) == without {
                continue;
            }
            let ni = mesh.id(nb).index();
            if !seen[ni] {
                seen[ni] = true;
                queue.push_back(nb);
            }
        }
    }
    seen
}

/// The farthest reached node of a BFS distance field (maximum
/// distance, lowest id on ties — determinism) and its distance.
fn farthest(mesh: &meshpath_mesh::Mesh, dist: &[u32]) -> (Coord, u32) {
    let mut best: Option<(u32, usize)> = None;
    for (i, &d) in dist.iter().enumerate() {
        if d != u32::MAX && best.is_none_or(|(bd, _)| d > bd) {
            best = Some((d, i));
        }
    }
    let (d, i) = best.expect("BFS reaches at least its start");
    (mesh.coord(meshpath_mesh::NodeId(i as u32)), d)
}

/// The reached node minimizing the maximum distance over several BFS
/// witness fields (lowest id on ties).
fn argmin_witness(mesh: &meshpath_mesh::Mesh, witnesses: &[&[u32]]) -> Coord {
    let mut best: Option<(u32, usize)> = None;
    for i in 0..mesh.len() {
        let Some(score) = witnesses
            .iter()
            .map(|w| w[i])
            .try_fold(0u32, |m, d| (d != u32::MAX).then_some(m.max(d)))
        else {
            continue;
        };
        if best.is_none_or(|(bs, _)| score < bs) {
            best = Some((score, i));
        }
    }
    let (_, i) = best.expect("non-empty component");
    mesh.coord(meshpath_mesh::NodeId(i as u32))
}

/// The analytic distance field of a **fault-free** mesh: every node is
/// reachable and a BFS hop count equals the Manhattan distance, so this
/// produces exactly [`healthy_bfs`]'s output without touching a queue.
fn manhattan_field(mesh: &meshpath_mesh::Mesh, start: Coord) -> Vec<u32> {
    let mut dist = vec![0u32; mesh.len()];
    for c in mesh.iter() {
        dist[mesh.id(c).index()] = c.manhattan(start);
    }
    dist
}

/// A (near-)center of `start`'s connected component: the classic
/// double sweep (farthest node `u` from `start`, farthest node `v`
/// from `u`) plus one witness-refinement round — grids have many
/// diameter pairs, so minimizing over the `u`/`v` fields alone can
/// land on a boundary node; adding the first candidate's own farthest
/// point as a third witness pins the interior. Every candidate's true
/// eccentricity is then measured with a real BFS and the best (lowest
/// eccentricity, lowest id on ties) wins. O(component) — seven BFS
/// passes — and a pure function of the fault configuration.
///
/// On a **fault-free** configuration the seven BFS passes are replaced
/// by analytic Manhattan fields ([`manhattan_field`]): the farthest /
/// argmin scans are unchanged, so the refinement walks through exactly
/// the same candidates and the chosen center is bit-identical to the
/// BFS path (pinned by `fault_free_center_matches_bfs_path`) — it only
/// stops paying the faulty-mesh queue cost on fault-free publications.
fn component_center(faults: &FaultSet, start: Coord) -> Coord {
    component_center_with(faults, start, faults.count() == 0)
}

fn component_center_with(faults: &FaultSet, start: Coord, analytic: bool) -> Coord {
    let mesh = faults.mesh();
    let field = |s: Coord| -> Vec<u32> {
        if analytic {
            manhattan_field(mesh, s)
        } else {
            healthy_bfs(faults, s)
        }
    };
    let d0 = field(start);
    let (u, ecc0) = farthest(mesh, &d0);
    let du = field(u);
    let (v, _) = farthest(mesh, &du);
    let dv = field(v);
    let c1 = argmin_witness(mesh, &[&du, &dv]);
    let dc1 = field(c1);
    let (w, ecc1) = farthest(mesh, &dc1);
    let dw = field(w);
    let c2 = argmin_witness(mesh, &[&du, &dv, &dw]);
    let dc2 = field(c2);
    let (_, ecc2) = farthest(mesh, &dc2);
    let id = |c: Coord| mesh.id(c).index();
    [(ecc0, id(start), start), (ecc1, id(c1), c1), (ecc2, id(c2), c2)]
        .into_iter()
        .min_by_key(|&(ecc, i, _)| (ecc, i))
        .expect("three candidates")
        .2
}

/// A BFS spanning forest over the healthy nodes: the substrate of the
/// tree escape class.
///
/// Each connected component is rooted at (an approximation of) its
/// **BFS center** — the healthy node of minimum eccentricity within
/// the component, found by double sweep + witness refinement — rather
/// than at its lowest id: up*/down*
/// routes detour through the root's neighborhood, so a central root
/// halves the worst-case tree depth (radius instead of diameter — 16
/// instead of 30 on a fault-free 16x16) and spreads escape hot-spots
/// away from the mesh corner. BFS expands neighbors in [`Dir::ALL`]
/// order and all tie-breaks are lowest-id, so the forest remains a
/// pure function of the fault configuration (determinism). An
/// up*/down* route climbs from the source to the lowest common
/// ancestor and descends to the destination; since every route takes
/// all its "up" (child-to-parent) hops before any "down" hop, and
/// depth is strictly monotone within each phase, the tree channels
/// admit a total order that every route respects — no cyclic channel
/// dependency, for any fault pattern.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EscapeForest {
    /// `(parent direction, depth)` per node id; `None` for faulty nodes
    /// and roots (roots have depth 0).
    parent: Vec<Option<Dir>>,
    depth: Vec<u32>,
}

impl EscapeForest {
    /// Builds the forest for a fault configuration.
    pub fn new(faults: &FaultSet) -> Self {
        let mesh = faults.mesh();
        let n = mesh.len();
        let mut parent: Vec<Option<Dir>> = vec![None; n];
        let mut depth = vec![0u32; n];
        let mut seen = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        for first in 0..n {
            let fc = mesh.coord(meshpath_mesh::NodeId(first as u32));
            if seen[first] || !faults.is_healthy(fc) {
                continue;
            }
            // `first` is the lowest unvisited id of a fresh component;
            // root the component's tree at its BFS center instead.
            let root = component_center(faults, fc);
            seen[mesh.id(root).index()] = true;
            queue.push_back(root);
            while let Some(c) = queue.pop_front() {
                let ci = mesh.id(c).index();
                for dir in Dir::ALL {
                    let nb = c.step(dir);
                    if !mesh.contains(nb) || !faults.is_healthy(nb) {
                        continue;
                    }
                    let ni = mesh.id(nb).index();
                    if seen[ni] {
                        continue;
                    }
                    seen[ni] = true;
                    parent[ni] = Some(dir.opposite());
                    depth[ni] = depth[ci] + 1;
                    queue.push_back(nb);
                }
            }
            debug_assert!(seen[first], "center BFS must cover the discovering node");
        }
        EscapeForest { parent, depth }
    }

    /// Incrementally re-provisions the forest after one online churn
    /// event, `faults` being the post-event configuration. Only the
    /// dirty component — the one gaining or losing the event's node —
    /// is rebuilt, rooted at its BFS center exactly as
    /// [`EscapeForest::new`] would root it, so the result is
    /// bit-identical to a from-scratch build over `faults`. A component
    /// split (a failure disconnecting its component) or merge (a repair
    /// bridging two components) falls back to the full rebuild,
    /// mirroring the incremental relabeling strategy of `NetState`.
    pub fn update(&mut self, faults: &FaultSet, op: ChurnOp) {
        let mesh = faults.mesh();
        let healthy_neighbors = |c: Coord| -> Vec<Coord> {
            Dir::ALL
                .into_iter()
                .map(|d| c.step(d))
                .filter(|&nb| mesh.contains(nb) && faults.is_healthy(nb))
                .collect()
        };
        match op {
            ChurnOp::Fail(c) => {
                let ci = mesh.id(c).index();
                self.parent[ci] = None;
                self.depth[ci] = 0;
                let neighbors = healthy_neighbors(c);
                let Some(&seed) = neighbors.first() else {
                    // The failed node had no healthy neighbors: its
                    // component was the singleton `{c}`; nothing else
                    // changes.
                    return;
                };
                let members = component_members(faults, seed, None);
                if neighbors.iter().any(|&nb| !members[mesh.id(nb).index()]) {
                    // The failure split its component.
                    *self = EscapeForest::new(faults);
                    return;
                }
                self.rebuild_component(faults, &members);
            }
            ChurnOp::Repair(c) => {
                // Count the distinct pre-repair components adjacent to
                // `c` (BFS with `c` still treated as faulty): more than
                // one means the repair merged them.
                let mut covered = vec![false; mesh.len()];
                let mut distinct = 0;
                for &nb in &healthy_neighbors(c) {
                    if covered[mesh.id(nb).index()] {
                        continue;
                    }
                    distinct += 1;
                    if distinct > 1 {
                        break;
                    }
                    for (i, &m) in component_members(faults, nb, Some(c)).iter().enumerate() {
                        covered[i] |= m;
                    }
                }
                if distinct > 1 {
                    *self = EscapeForest::new(faults);
                    return;
                }
                let members = component_members(faults, c, None);
                self.rebuild_component(faults, &members);
            }
        }
    }

    /// Rebuilds one component's tree exactly as [`EscapeForest::new`]
    /// does. The center search starts from the component's lowest node
    /// id — the id `new`'s discovery scan would find the component by —
    /// so the subtree is identical to the one a from-scratch build
    /// produces.
    fn rebuild_component(&mut self, faults: &FaultSet, members: &[bool]) {
        let Some(first) = members.iter().position(|&m| m) else {
            return;
        };
        for (i, &m) in members.iter().enumerate() {
            if m {
                self.parent[i] = None;
                self.depth[i] = 0;
            }
        }
        let mesh = faults.mesh();
        let fc = mesh.coord(meshpath_mesh::NodeId(first as u32));
        let root = component_center(faults, fc);
        let mut seen = vec![false; mesh.len()];
        let mut queue = std::collections::VecDeque::new();
        seen[mesh.id(root).index()] = true;
        queue.push_back(root);
        while let Some(c) = queue.pop_front() {
            let ci = mesh.id(c).index();
            for dir in Dir::ALL {
                let nb = c.step(dir);
                if !mesh.contains(nb) || !faults.is_healthy(nb) {
                    continue;
                }
                let ni = mesh.id(nb).index();
                if seen[ni] {
                    continue;
                }
                seen[ni] = true;
                self.parent[ni] = Some(dir.opposite());
                self.depth[ni] = self.depth[ci] + 1;
                queue.push_back(nb);
            }
        }
    }

    /// Tree depth of a node (0 for roots and faulty nodes).
    pub fn depth(&self, mesh: &meshpath_mesh::Mesh, c: Coord) -> u32 {
        self.depth[mesh.id(c).index()]
    }

    /// The next hop of the up*/down* route from `here` to `dst`, or
    /// `None` when the two are in different components (an unroutable
    /// pair — never admitted into the fabric).
    ///
    /// # Panics
    /// Panics when `here == dst`.
    pub fn next_hop(&self, mesh: &meshpath_mesh::Mesh, here: Coord, dst: Coord) -> Option<Dir> {
        assert!(here != dst, "tree next hop queried at the destination");
        // Climb dst's ancestor chain to here's depth, remembering the
        // hop below; if the chain passes through `here`, descend.
        let hi = mesh.id(here).index();
        let mut c = dst;
        let mut below: Option<Coord> = None;
        while self.depth[mesh.id(c).index()] > self.depth[hi] {
            below = Some(c);
            c = c.step(self.parent[mesh.id(c).index()]?);
        }
        if c == here {
            let child = below.expect("depth(dst) > depth(here) when here is a proper ancestor");
            return here.dir_to(child);
        }
        // Not an ancestor of dst: go up. A root with no parent means
        // dst sits in a different component.
        self.parent[hi]
    }
}

/// The union of every scheduled epoch's faults: the substrate the
/// escape classes are provisioned against under churn, so the escape
/// networks never route through any node that is faulty at *any*
/// scheduled epoch and stay epoch-invariant (acyclicity needs one
/// fixed structure). Without churn this is just the current fault set.
fn union_faults(views: &[NetView]) -> FaultSet {
    let mut faults = views[0].faults().clone();
    for v in &views[1..] {
        for c in v.faults().iter() {
            faults.inject(c);
        }
    }
    faults
}

/// The Duato-style adaptive wrapper: compiled routes on the adaptive
/// class; once a head has been blocked `patience` consecutive cycles it
/// is offered the reserved escape classes — dimension-order XY when the
/// XY walk to the destination is fault-free under the packet's epoch,
/// and the up*/down* tree route as the always-available last resort.
///
/// A packet that takes an escape channel is committed: it stays on that
/// escape class until delivery, so escape packets only ever wait on
/// channels of their own (acyclic) class and are guaranteed to drain.
pub struct EscapeHop<'p> {
    paths: &'p mut PathTable,
    patience: u32,
    /// Whether the fabric has a non-empty XY escape class
    /// (`escape_vcs >= 2`): with only the tree channel reserved, XY
    /// candidates could never allocate, so offering them (and paying
    /// the clearance walks) would be pure waste.
    xy_class: bool,
    /// The escape-substrate faults: the union of every scheduled
    /// epoch's faults ([`union_faults`]) — or, once online churn starts
    /// publishing, the *current* fault set (the forest is then
    /// re-provisioned incrementally per event).
    substrate: FaultSet,
    forest: EscapeForest,
    /// Set by the first [`publish`](HopRouter::publish): the substrate
    /// now tracks the current epoch, and decide kills or replans
    /// packets stranded by unscheduled faults.
    online: bool,
    /// Memoized [`xy_path_clear`] per `(epoch, node, destination)`.
    clear: FxHashMap<(u32, Coord, Coord), bool>,
    /// Memoized tree next hop per `(node, destination)` — the
    /// ancestor climb is O(tree depth) and `decide` runs on the
    /// congested path, up to once per output-port scan per cycle.
    /// `None`: the pair is disconnected on the union substrate (only
    /// possible under churn), so the tree class cannot serve it.
    tree_next: FxHashMap<(Coord, Coord), Option<Dir>>,
}

impl<'p> EscapeHop<'p> {
    /// An escape-adaptive router over `paths`' compiled routes.
    /// `xy_class` says whether the fabric reserves XY escape channels
    /// in addition to the tree channel (`escape_vcs >= 2`). The escape
    /// forest is built over the union of every scheduled epoch's
    /// faults, so it is valid (and acyclic) at every epoch.
    pub fn new(paths: &'p mut PathTable, patience: u32, xy_class: bool) -> Self {
        let substrate = union_faults(paths.views());
        let forest = EscapeForest::new(&substrate);
        EscapeHop {
            paths,
            patience,
            xy_class,
            substrate,
            forest,
            online: false,
            clear: FxHashMap::default(),
            tree_next: FxHashMap::default(),
        }
    }

    /// The spanning forest backing the tree escape class.
    pub fn forest(&self) -> &EscapeForest {
        &self.forest
    }

    fn xy_clear(&mut self, epoch: u32, here: Coord, dst: Coord) -> bool {
        let faults = self.paths.view_at(epoch).faults();
        *self.clear.entry((epoch, here, dst)).or_insert_with(|| xy_path_clear(faults, here, dst))
    }

    /// The tree-class candidate, or `None` when the union substrate
    /// cannot serve the pair — possible only under churn: the packet
    /// sits at or heads to a node that is faulty at *some* scheduled
    /// epoch (e.g. repaired mid-run — the node carries traffic again
    /// but stays decommissioned from the epoch-invariant escape
    /// forest), or a scheduled fault cuts the pair's substrate
    /// component. Such packets keep the adaptive route and, when
    /// clear, the XY escape; the deadlock detector remains the
    /// liveness assertion for this deliberately narrowed corner.
    fn tree_choice(&mut self, here: Coord, dst: Coord) -> Option<HopChoice> {
        if !self.substrate.is_healthy(here) || !self.substrate.is_healthy(dst) {
            return None;
        }
        let forest = &self.forest;
        let substrate = &self.substrate;
        let dir = *self
            .tree_next
            .entry((here, dst))
            .or_insert_with(|| forest.next_hop(substrate.mesh(), here, dst));
        dir.map(|dir| HopChoice { dir, class: VcClass::EscapeTree })
    }
}

impl HopRouter for EscapeHop<'_> {
    fn admit(&mut self, s: Coord, d: Coord) -> Option<u32> {
        self.paths.path(s, d).map(|p| p.len() as u32)
    }

    fn decide(&mut self, here: Coord, pk: &mut PacketState) -> HopDecision {
        if self.online {
            let faults = self.paths.view().faults();
            if !faults.is_healthy(here) || !faults.is_healthy(pk.dst) {
                // The packet sits on, or heads to, a node that failed
                // after admission: drain it out of the fabric.
                pk.killed = true;
                return HopDecision::Eject;
            }
        }
        if here == pk.dst {
            return HopDecision::Eject;
        }
        match pk.mode {
            // Committed to an escape network: ride it to the end.
            VcClass::EscapeXy => {
                let dir = xy_next(here, pk.dst);
                if self.online && !self.paths.view().faults().is_healthy(here.step(dir)) {
                    // A fresh fault landed on the committed XY run; the
                    // class cannot deviate, so drain the packet.
                    pk.killed = true;
                    return HopDecision::Eject;
                }
                HopDecision::route1(HopChoice { dir, class: VcClass::EscapeXy })
            }
            VcClass::EscapeTree => match self.tree_choice(here, pk.dst) {
                Some(c) => HopDecision::route1(c),
                None => {
                    // Only reachable online: a fresh fault cut the pair
                    // off the re-provisioned forest.
                    assert!(self.online, "tree commitment implies a substrate route");
                    pk.killed = true;
                    HopDecision::Eject
                }
            },
            VcClass::Adaptive => {
                let path = self
                    .paths
                    .path_at(pk.epoch, pk.src, pk.dst)
                    .expect("admitted packets have compiled routes");
                let mut dir = path[pk.head_hop as usize];
                if self.online && !self.paths.view().faults().is_healthy(here.step(dir)) {
                    // The compiled route runs into a fresh fault:
                    // replan from here under the current epoch
                    // (idempotent — the re-keyed route avoids current
                    // faults), fall back to the tree, or kill.
                    let cur = self.paths.current_epoch();
                    match self.paths.path_at(cur, here, pk.dst) {
                        Some(p) => {
                            pk.src = here;
                            pk.head_hop = 0;
                            pk.epoch = cur;
                            dir = p[0];
                        }
                        None => {
                            return match self.tree_choice(here, pk.dst) {
                                Some(tree) => HopDecision::route1(tree),
                                None => {
                                    pk.killed = true;
                                    HopDecision::Eject
                                }
                            };
                        }
                    }
                }
                let mut c = HopCandidates::new();
                c.push(HopChoice { dir, class: VcClass::Adaptive });
                if pk.stalled >= self.patience {
                    // Online, escape clearance must hold under the
                    // *current* faults (the packet's admission epoch
                    // may predate them).
                    let clear_epoch =
                        if self.online { self.paths.current_epoch() } else { pk.epoch };
                    if self.xy_class && self.xy_clear(clear_epoch, here, pk.dst) {
                        c.push(HopChoice { dir: xy_next(here, pk.dst), class: VcClass::EscapeXy });
                    }
                    if let Some(tree) = self.tree_choice(here, pk.dst) {
                        c.push(tree);
                    }
                }
                HopDecision::Route(c)
            }
        }
    }

    fn advance_epoch(&mut self) {
        self.paths.advance_epoch();
    }

    fn publish(&mut self, view: &NetView, op: ChurnOp) {
        self.online = true;
        self.paths.push_epoch(view);
        self.substrate = view.faults().clone();
        self.forest.update(&self.substrate, op);
        // Tree next-hops are keyed per (node, destination) only — the
        // forest changed, so the memo is stale. The XY-clearance memo
        // is epoch-keyed and survives.
        self.tree_next.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meshpath_mesh::{FaultSet, Mesh};
    use meshpath_route::Rb2;

    #[test]
    fn path_table_memoizes() {
        let net = NetView::build(FaultSet::none(Mesh::square(8)));
        let mut t = PathTable::new(&net, RoutingKind::Rb2);
        let a = t.path(Coord::new(0, 0), Coord::new(5, 5)).expect("delivered");
        let b = t.path(Coord::new(0, 0), Coord::new(5, 5)).expect("delivered");
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
        assert_eq!(t.cache_stats(), (1, 1));
    }

    #[test]
    fn all_kinds_instantiate_and_route() {
        let mesh = Mesh::square(10);
        let net = NetView::build(FaultSet::from_coords(mesh, [Coord::new(4, 4)]));
        for kind in RoutingKind::ALL {
            let mut t = PathTable::new(&net, kind);
            let p = t.path(Coord::new(0, 0), Coord::new(9, 9));
            let p = p.unwrap_or_else(|| panic!("{} must route around one fault", kind.name()));
            // Replay the dirs: must land on the destination through
            // healthy nodes.
            let mut cur = Coord::new(0, 0);
            for &d in p.iter() {
                cur = cur.step(d);
                assert!(net.faults().is_healthy(cur));
            }
            assert_eq!(cur, Coord::new(9, 9), "{}", kind.name());
        }
    }

    #[test]
    fn path_table_keys_routes_by_epoch() {
        // Epoch 0: clear row. Epoch 1: a fault on the row forces a
        // detour. The same (s, d) pair must resolve differently per
        // epoch, with old-epoch routes surviving the advance.
        let mesh = Mesh::square(8);
        let mut state = meshpath_route::NetState::new(FaultSet::none(mesh));
        let v0 = state.view();
        let v1 = state.add_fault(Coord::new(3, 1)).expect("valid");
        let mut t = PathTable::new(&v0, RoutingKind::Rb2);
        t.set_schedule([v1]);
        let (s, d) = (Coord::new(1, 1), Coord::new(6, 1));
        let p0 = t.path(s, d).expect("clear row");
        assert_eq!(p0.len(), 5, "epoch 0 routes straight");
        assert!(t.advance_epoch());
        assert!(!t.advance_epoch(), "schedule exhausted");
        let p1 = t.path(s, d).expect("detour exists");
        assert_eq!(p1.len(), 7, "epoch 1 routes around the fault");
        // Old-epoch lookups still replay the old route.
        assert_eq!(t.path_at(0, s, d).expect("cached").len(), 5);
    }

    #[test]
    fn replay_hop_follows_the_compiled_route() {
        let net = NetView::build(FaultSet::none(Mesh::square(8)));
        let mut t = PathTable::new(&net, RoutingKind::Rb2);
        let (s, d) = (Coord::new(0, 0), Coord::new(3, 2));
        let mut hop = ReplayHop::new(&mut t);
        let hops = hop.admit(s, d).expect("routable");
        assert_eq!(hops, 5);
        let mut pk = PacketState::new(s, d, 0, 1);
        let mut here = s;
        for _ in 0..hops {
            match hop.decide(here, &mut pk) {
                HopDecision::Route(c) => {
                    assert_eq!(c.len(), 1);
                    let first = c.iter().next().unwrap();
                    assert_eq!(first.class, VcClass::Adaptive);
                    here = here.step(first.dir);
                    pk.head_hop += 1;
                }
                HopDecision::Eject => panic!("ejected before the destination"),
            }
        }
        assert_eq!(here, d);
        assert_eq!(hop.decide(here, &mut pk), HopDecision::Eject);
    }

    /// The candidate classes of a `Route` decision, in order.
    fn classes(d: HopDecision) -> Vec<VcClass> {
        match d {
            HopDecision::Route(c) => c.iter().map(|x| x.class).collect(),
            HopDecision::Eject => panic!("expected a route decision"),
        }
    }

    #[test]
    fn escape_hop_offers_classes_by_patience_and_clearance() {
        let mesh = Mesh::square(8);
        let net = NetView::build(FaultSet::from_coords(mesh, [Coord::new(5, 3)]));
        let mut t = PathTable::new(&net, RoutingKind::Rb2);
        let mut hop = EscapeHop::new(&mut t, 4, true);
        // XY from (2,3) to (7,3) crosses the fault at (5,3).
        let (s, d) = (Coord::new(2, 3), Coord::new(7, 3));
        hop.admit(s, d).expect("RB2 routes around the fault");
        let mut fresh = PacketState::new(s, d, 0, 1);
        // Below patience: adaptive only.
        assert_eq!(classes(hop.decide(s, &mut fresh)), vec![VcClass::Adaptive]);
        // Past patience but XY blocked by (5,3): adaptive + tree, no XY.
        let mut stalled = fresh;
        stalled.stalled = 10;
        assert_eq!(
            classes(hop.decide(s, &mut stalled)),
            vec![VcClass::Adaptive, VcClass::EscapeTree],
            "blocked XY run must not be offered"
        );
        // Past patience with a clear XY run: all three, XY before tree.
        let (s2, d2) = (Coord::new(2, 0), Coord::new(2, 6));
        hop.admit(s2, d2).expect("clear pair");
        let mut stalled2 = PacketState::new(s2, d2, 0, 1);
        stalled2.stalled = 10;
        match hop.decide(s2, &mut stalled2) {
            HopDecision::Route(c) => {
                let v: Vec<_> = c.iter().collect();
                assert_eq!(
                    v.iter().map(|x| x.class).collect::<Vec<_>>(),
                    vec![VcClass::Adaptive, VcClass::EscapeXy, VcClass::EscapeTree]
                );
                assert_eq!(v[1].dir, Dir::PlusY, "XY escape corrects Y on a clear column");
            }
            HopDecision::Eject => panic!("not at destination"),
        }
        // Once committed to XY escape: that class only, strict XY.
        let mut escaped = stalled2;
        escaped.mode = VcClass::EscapeXy;
        assert_eq!(classes(hop.decide(s2, &mut escaped)), vec![VcClass::EscapeXy]);
        // Once committed to the tree: that class only.
        let mut treed = stalled2;
        treed.mode = VcClass::EscapeTree;
        assert_eq!(classes(hop.decide(s2, &mut treed)), vec![VcClass::EscapeTree]);
    }

    #[test]
    fn escape_hop_without_xy_class_never_offers_xy() {
        // escape_vcs == 1 fabric: only the tree channel is reserved, so
        // the router must not offer (or evaluate clearance for) XY.
        let net = NetView::build(FaultSet::none(Mesh::square(8)));
        let mut t = PathTable::new(&net, RoutingKind::Rb2);
        let mut hop = EscapeHop::new(&mut t, 4, false);
        let (s, d) = (Coord::new(1, 1), Coord::new(6, 6));
        hop.admit(s, d).expect("clear pair");
        let mut stalled = PacketState::new(s, d, 0, 1);
        stalled.stalled = 10;
        assert_eq!(
            classes(hop.decide(s, &mut stalled)),
            vec![VcClass::Adaptive, VcClass::EscapeTree],
            "XY candidate requires a reserved XY channel"
        );
    }

    #[test]
    fn escape_substrate_unions_scheduled_faults() {
        // With a scheduled epoch-1 fault, the tree class must avoid
        // that node from the very start (the substrate is
        // epoch-invariant), while adaptive epoch-0 routes may still
        // cross it.
        let mesh = Mesh::square(8);
        let mut state = meshpath_route::NetState::new(FaultSet::none(mesh));
        let v0 = state.view();
        let doomed = Coord::new(4, 4);
        let v1 = state.add_fault(doomed).expect("valid");
        let mut t = PathTable::new(&v0, RoutingKind::Rb2);
        t.set_schedule([v1]);
        let hop = EscapeHop::new(&mut t, 4, true);
        let forest = hop.forest();
        // Every healthy neighbor pair routes on the tree without ever
        // stepping onto the doomed node.
        for s in mesh.iter() {
            if s == doomed {
                continue;
            }
            let mut cur = s;
            let dst = Coord::new(0, 0);
            if cur == dst {
                continue;
            }
            let mut hops = 0;
            while cur != dst {
                let dir = forest.next_hop(&mesh, cur, dst).expect("connected");
                cur = cur.step(dir);
                assert_ne!(cur, doomed, "tree route crosses a scheduled fault");
                hops += 1;
                assert!(hops <= 2 * mesh.len(), "tree walk too long");
            }
        }
    }

    #[test]
    fn escape_forest_roots_at_component_centers() {
        // Fault-free 16x16: the old lowest-id rule rooted the tree at
        // the corner (0,0), giving depth = diameter = 30; a BFS-center
        // root drops the worst-case depth to the grid radius, 16.
        let mesh = Mesh::square(16);
        let faults = FaultSet::none(mesh);
        let forest = EscapeForest::new(&faults);
        let max_depth = mesh.iter().map(|c| forest.depth(&mesh, c)).max().unwrap();
        assert_eq!(max_depth, 16, "tree depth must drop from the diameter to the radius");

        // Two components split by a fault wall: each gets its own
        // center — depth stays within the larger half's radius (the
        // 16x8 half has radius 8 + 4 = 12, far below the 22-hop depth
        // a corner root would give it).
        let wall: Vec<Coord> = (0..16).map(|x| Coord::new(x, 7)).collect();
        let split = FaultSet::from_coords(mesh, wall);
        let split_forest = EscapeForest::new(&split);
        let split_depth = mesh
            .iter()
            .filter(|&c| split.is_healthy(c))
            .map(|c| split_forest.depth(&mesh, c))
            .max()
            .unwrap();
        assert!(split_depth <= 12, "per-component centers, got depth {split_depth}");
    }

    #[test]
    fn fault_free_center_matches_bfs_path() {
        // The analytic Manhattan-field fast path must pick exactly the
        // center the seven-BFS refinement picks — the farthest/argmin
        // scans are shared, so any divergence is a field mismatch.
        for n in [2u32, 3, 4, 5, 8, 15, 16, 17, 31] {
            let mesh = Mesh::square(n);
            let faults = FaultSet::none(mesh);
            for start in [Coord::new(0, 0), Coord::new(n as i32 - 1, 0), Coord::new(1, 1)] {
                if !mesh.contains(start) {
                    continue;
                }
                assert_eq!(
                    manhattan_field(&mesh, start),
                    healthy_bfs(&faults, start),
                    "field mismatch on {n}x{n} from {start:?}"
                );
                assert_eq!(
                    component_center_with(&faults, start, true),
                    component_center_with(&faults, start, false),
                    "center diverged on {n}x{n} from {start:?}"
                );
            }
        }
        // Hand-verified 16x16 refinement from (0,0): u=(15,15) at ecc 30,
        // v=(0,0), c1=(15,0), w=(0,15), c2=(7,8) with eccentricity 16 —
        // the winning candidate.
        let mesh = Mesh::square(16);
        let faults = FaultSet::none(mesh);
        assert_eq!(component_center(&faults, Coord::new(0, 0)), Coord::new(7, 8));
        // And the forest built through the fast path roots there.
        let forest = EscapeForest::new(&faults);
        assert_eq!(forest.depth(&mesh, Coord::new(7, 8)), 0);
    }

    #[test]
    fn escape_forest_routes_every_connected_pair_up_then_down() {
        let mesh = Mesh::square(8);
        let faults = FaultSet::from_coords(
            mesh,
            [Coord::new(3, 3), Coord::new(4, 3), Coord::new(3, 4), Coord::new(6, 1)],
        );
        let forest = EscapeForest::new(&faults);
        let healthy: Vec<Coord> = mesh.iter().filter(|&c| faults.is_healthy(c)).collect();
        for &s in &healthy {
            for &d in &healthy {
                if s == d {
                    continue;
                }
                // Walk the tree route; it must reach d with all "up"
                // (depth-decreasing) hops before any "down" hop.
                let mut cur = s;
                let mut went_down = false;
                let mut hops = 0;
                while cur != d {
                    let dir = forest
                        .next_hop(&mesh, cur, d)
                        .unwrap_or_else(|| panic!("{s:?}->{d:?}: connected pair must route"));
                    let next = cur.step(dir);
                    assert!(faults.is_healthy(next), "{s:?}->{d:?} steps onto a fault");
                    let (dc, dn) = (forest.depth(&mesh, cur), forest.depth(&mesh, next));
                    assert_eq!(dc.abs_diff(dn), 1, "tree hops move between tree levels");
                    if dn > dc {
                        went_down = true;
                    } else {
                        assert!(!went_down, "{s:?}->{d:?}: up hop after a down hop");
                    }
                    cur = next;
                    hops += 1;
                    assert!(hops <= 2 * mesh.len(), "{s:?}->{d:?}: tree walk too long");
                }
            }
        }
    }

    #[test]
    fn unified_router_and_path_table_agree() {
        // The compiled route IS the offline engine's route: one
        // decision substrate serving both consumers.
        let mesh = Mesh::square(10);
        let net = NetView::build(FaultSet::from_coords(mesh, [Coord::new(5, 5)]));
        let mut t = PathTable::new(&net, RoutingKind::Rb2);
        let (s, d) = (Coord::new(5, 1), Coord::new(5, 8));
        let compiled = t.path(s, d).expect("delivered");
        use meshpath_route::Router as _;
        let offline = Rb2::default().route(&net, s, d);
        let offline_dirs: Vec<Dir> =
            offline.path.windows(2).map(|w| w[0].dir_to(w[1]).unwrap()).collect();
        assert_eq!(compiled.as_ref(), offline_dirs.as_slice());
    }

    #[test]
    fn incremental_forest_update_matches_from_scratch() {
        // A scripted sequence covering the interesting shapes: interior
        // failures, a wall that splits the mesh (full-rebuild
        // fallback), a repair that merges the halves back, and repair
        // of an isolated corner.
        let mesh = Mesh::square(8);
        let mut faults = FaultSet::none(mesh);
        let mut forest = EscapeForest::new(&faults);
        let wall: Vec<ChurnOp> = (0..8).map(|x| ChurnOp::Fail(Coord::new(x, 3))).collect();
        let mut script = vec![
            ChurnOp::Fail(Coord::new(4, 5)),
            ChurnOp::Fail(Coord::new(0, 1)),
            ChurnOp::Fail(Coord::new(1, 0)), // corner (0,0) split off
            ChurnOp::Repair(Coord::new(0, 1)), // merge it back
            ChurnOp::Repair(Coord::new(4, 5)),
        ];
        script.extend(wall); // split into two halves
        script.push(ChurnOp::Repair(Coord::new(5, 3))); // merge the halves
        for op in script {
            match op {
                ChurnOp::Fail(c) => assert!(faults.inject(c)),
                ChurnOp::Repair(c) => assert!(faults.repair(c)),
            }
            forest.update(&faults, op);
            assert_eq!(forest, EscapeForest::new(&faults), "diverged after {op:?}");
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::ProptestConfig::with_cases(24))]

        /// The incremental update must be **bit-identical** to a
        /// from-scratch build after every event of a random valid
        /// fault/repair sequence — the property the online escape
        /// substrate's determinism (and hence cross-shard bit-identity)
        /// rests on.
        #[test]
        fn incremental_forest_update_is_bit_identical_over_random_churn(
            draw in (5u32..9, proptest::collection::vec(0usize..1000, 1..40))
        ) {
            let (n, picks) = draw;
            let mesh = Mesh::square(n);
            let mut faults = FaultSet::none(mesh);
            let mut forest = EscapeForest::new(&faults);
            for pick in picks {
                let c = mesh.coord(meshpath_mesh::NodeId((pick % mesh.len()) as u32));
                // Toggle: healthy nodes fail, faulty nodes repair —
                // every event is valid by construction.
                let op = if faults.is_healthy(c) {
                    if faults.healthy_count() == 1 {
                        continue; // keep at least one healthy node
                    }
                    faults.inject(c);
                    ChurnOp::Fail(c)
                } else {
                    faults.repair(c);
                    ChurnOp::Repair(c)
                };
                forest.update(&faults, op);
                proptest::prop_assert_eq!(
                    &forest,
                    &EscapeForest::new(&faults),
                    "diverged after {:?} on {}x{}",
                    op,
                    n,
                    n
                );
            }
        }
    }

    #[test]
    fn online_publish_reprovisions_forest_and_repair_restores_tree_class() {
        let mesh = Mesh::square(8);
        let mut state = meshpath_route::NetState::new(FaultSet::none(mesh));
        let v0 = state.view();
        let mut t = PathTable::new(&v0, RoutingKind::Rb2);
        let mut hop = EscapeHop::new(&mut t, 4, true);
        let node = Coord::new(4, 4);
        assert!(hop.tree_choice(node, Coord::new(0, 0)).is_some(), "on the initial forest");

        let v1 = state.add_fault(node).expect("valid");
        hop.publish(&v1, ChurnOp::Fail(node));
        hop.advance_epoch();
        assert!(
            hop.tree_choice(node, Coord::new(0, 0)).is_none(),
            "failed node leaves the substrate"
        );
        assert_eq!(hop.forest(), &EscapeForest::new(v1.faults()));

        let v2 = state.remove_fault(node).expect("valid");
        hop.publish(&v2, ChurnOp::Repair(node));
        hop.advance_epoch();
        // Union provisioning would decommission the node for the rest
        // of the run; online re-provisioning restores the tree class.
        let choice = hop
            .tree_choice(node, Coord::new(0, 0))
            .expect("repaired node regains escape-tree membership");
        assert_eq!(choice.class, VcClass::EscapeTree);
        assert_eq!(hop.forest(), &EscapeForest::new(v2.faults()));
    }

    #[test]
    fn online_decide_replans_around_fresh_faults_and_kills_stranded_packets() {
        let mesh = Mesh::square(8);
        let mut state = meshpath_route::NetState::new(FaultSet::none(mesh));
        let v0 = state.view();
        let mut t = PathTable::new(&v0, RoutingKind::Rb2);
        let mut hop = EscapeHop::new(&mut t, 4, true);
        let (s, d) = (Coord::new(1, 1), Coord::new(6, 1));
        hop.admit(s, d).expect("clear row");
        let mut pk = PacketState::new(s, d, 0, 1);

        // An unscheduled fault lands on the compiled row route.
        let blocker = Coord::new(3, 1);
        let v1 = state.add_fault(blocker).expect("valid");
        hop.publish(&v1, ChurnOp::Fail(blocker));
        hop.advance_epoch();

        // Parked at (2,1), the old route's next step is the fresh
        // fault: the packet is re-keyed onto the current epoch and the
        // offered hop avoids the blocker.
        let here = Coord::new(2, 1);
        pk.head_hop = 1;
        match hop.decide(here, &mut pk) {
            HopDecision::Route(c) => {
                let first = c.iter().next().expect("replanned route");
                assert_ne!(here.step(first.dir), blocker, "replan must avoid the fresh fault");
            }
            HopDecision::Eject => panic!("replannable packet must not be dropped"),
        }
        assert_eq!(pk.epoch, 1, "replan re-keys the packet onto the current epoch");
        assert_eq!(pk.src, here);
        assert_eq!(pk.head_hop, 0);
        assert!(!pk.killed);
        // Idempotent: the reference stepper asks once per output port.
        let again = hop.decide(here, &mut pk);
        assert_eq!((pk.epoch, pk.src, pk.head_hop), (1, here, 0));
        assert!(matches!(again, HopDecision::Route(_)));

        // The destination itself fails: the packet is killed (drained
        // out of the fabric), never wedged.
        let v2 = state.add_fault(d).expect("valid");
        hop.publish(&v2, ChurnOp::Fail(d));
        hop.advance_epoch();
        assert_eq!(hop.decide(here, &mut pk), HopDecision::Eject);
        assert!(pk.killed, "a packet to a failed destination is accounted as churn-killed");
    }
}
