//! Per-hop routing functions for the wormhole fabric: the [`HopRouter`]
//! trait, the compiled-route replay adapter, and the Duato-style
//! adaptive wrapper with a dimension-order XY escape class.
//!
//! ## Architecture
//!
//! The paper's routers make per-hop local decisions. Re-running the
//! full decision procedure at every router every cycle would swamp the
//! flit-level simulation, so the adapters compile the hop sequence once
//! per distinct `(source, destination)` pair into a [`PathTable`]
//! (every router in this workspace is *deterministic* per network, so
//! the walk is a pure function of the pair). Unlike the source-routed
//! design this crate started with, the compiled route is **not**
//! attached to the packet and replayed blindly by the fabric: the
//! fabric asks a [`HopRouter`] for a fresh `(output port, VC class)`
//! decision whenever a head flit is parked at a router, and the router
//! consults the table — which means the decision can *change* based on
//! local state, which is what makes escape routing possible.
//!
//! Two hop routers are provided:
//!
//! * [`ReplayHop`] — always follows the compiled route on the adaptive
//!   VC class. Functionally identical to the old source-routed fabric.
//! * [`EscapeHop`] — follows the compiled route on the adaptive class;
//!   when the head has been blocked for `patience` cycles it re-routes
//!   the packet onto a reserved escape class and finishes the trip
//!   there. Two escape classes exist, tried in order:
//!
//!   1. the **XY escape class** ([`VcClass::EscapeXy`]): strict
//!      dimension-order XY, entered only when the XY walk from the
//!      current node to the destination crosses no faulty node. Every
//!      XY hop strictly decreases the dimension-order distance, so the
//!      class's channel-dependency graph is acyclic (the classic DOR
//!      argument) and it drains under any load.
//!   2. the **tree escape class** ([`VcClass::EscapeTree`]): up*/down*
//!      routing on a BFS spanning forest of the healthy nodes
//!      ([`EscapeForest`]). Tree routes go child-to-root ("up") then
//!      root-to-child ("down"); forbidding down-to-up transitions
//!      totally orders the tree channels, so this class is acyclic
//!      *regardless of the fault pattern* — and a tree route exists for
//!      every connected pair, so unlike XY it is available from every
//!      node a routable packet can be parked at.
//!
//!   Per Duato's methodology, a blocked head that always has an
//!   eventual path onto a draining escape network cannot participate in
//!   a wormhole interlock: the XY class serves the common case with
//!   minimal paths, and the tree class closes the faulty-mesh hole
//!   (XY runs blocked by faults) with a guaranteed — if possibly long —
//!   last resort.

use std::rc::Rc;

use meshpath_mesh::{Coord, Dir, FaultSet, FxHashMap};
use meshpath_route::{ECube, Network, Rb1, Rb2, Rb3, RouteResult, Router};
use serde::{Deserialize, Serialize};

use crate::fabric::PacketState;

/// The routing functions the traffic simulator can drive.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum RoutingKind {
    /// Dimension-order XY: minimal and deadlock-free, but fault-oblivious
    /// (packets whose row/column path hits a fault are unroutable). The
    /// sanity baseline.
    Xy,
    /// Fault-tolerant E-cube over rectangular fault blocks
    /// (Boppana & Chalasani).
    ECube,
    /// Algorithm 3 over the B1 information model.
    Rb1,
    /// Algorithm 5 over the B2 model (the paper's shortest-path routing).
    Rb2,
    /// Algorithm 7 over the B3 model.
    Rb3,
}

impl RoutingKind {
    /// All routing functions, in reporting order.
    pub const ALL: [RoutingKind; 5] =
        [RoutingKind::Xy, RoutingKind::ECube, RoutingKind::Rb1, RoutingKind::Rb2, RoutingKind::Rb3];

    /// Display name used in tables.
    pub fn name(self) -> &'static str {
        match self {
            RoutingKind::Xy => "XY",
            RoutingKind::ECube => "E-cube",
            RoutingKind::Rb1 => "RB1",
            RoutingKind::Rb2 => "RB2",
            RoutingKind::Rb3 => "RB3",
        }
    }

    /// Instantiates the underlying router (default policies).
    pub fn router(self) -> Box<dyn Router> {
        match self {
            RoutingKind::Xy => Box::new(XyRouter),
            RoutingKind::ECube => Box::new(ECube),
            RoutingKind::Rb1 => Box::new(Rb1::default()),
            RoutingKind::Rb2 => Box::new(Rb2::default()),
            RoutingKind::Rb3 => Box::new(Rb3::default()),
        }
    }
}

/// Deterministic dimension-order routing: correct X first, then Y.
///
/// Fault-oblivious: the walk stops (undelivered) at the first faulty
/// node on the dimension-ordered path. In a fault-free mesh this is the
/// textbook minimal deadlock-free routing, which is why it serves as
/// the simulator's sanity baseline.
pub struct XyRouter;

impl Router for XyRouter {
    fn name(&self) -> &'static str {
        "XY"
    }

    fn route(&self, net: &Network, s: Coord, d: Coord) -> RouteResult {
        let mut path = vec![s];
        let mut cur = s;
        let mut blocked = false;
        while cur != d {
            let next = cur.step(xy_next(cur, d));
            if !net.faults().is_healthy(next) {
                blocked = true;
                break;
            }
            path.push(next);
            cur = next;
        }
        RouteResult { path, delivered: !blocked, replans: 0, fallbacks: 0, detour_hops: 0 }
    }
}

/// The dimension-order next hop from `here` towards `dst`: correct X
/// first, then Y. The escape class routes exclusively with this
/// function, so every escape hop strictly decreases the lexicographic
/// potential `(|dx|, |dy|)` — the invariant the escape property tests
/// pin.
///
/// # Panics
/// Panics when `here == dst` (a delivered packet has no next hop).
#[inline]
pub fn xy_next(here: Coord, dst: Coord) -> Dir {
    if here.x != dst.x {
        if dst.x > here.x {
            Dir::PlusX
        } else {
            Dir::MinusX
        }
    } else if dst.y > here.y {
        Dir::PlusY
    } else {
        assert!(dst.y < here.y, "xy_next called at the destination");
        Dir::MinusY
    }
}

/// Whether the dimension-order XY walk from `here` to `dst` crosses
/// only healthy nodes — the escape-entry precondition. `here == dst`
/// is trivially clear.
pub fn xy_path_clear(faults: &FaultSet, here: Coord, dst: Coord) -> bool {
    let mut cur = here;
    while cur != dst {
        cur = cur.step(xy_next(cur, dst));
        if !faults.is_healthy(cur) {
            return false;
        }
    }
    true
}

/// The virtual-channel classes of the fabric.
///
/// The fabric partitions each output port's `vcs` virtual channels into
/// `vcs - escape_vcs` *adaptive* channels (the low indices, usable by
/// any compiled route) and `escape_vcs` reserved *escape* channels (the
/// top indices). The topmost escape channel is the tree class; any
/// remaining escape channels form the XY class. Restricting each escape
/// class to one acyclic routing function (strict dimension-order XY,
/// up*/down* tree order) keeps its channel-dependency graph
/// cycle-free, which is what lets escape traffic drain under any load;
/// keeping the two classes on disjoint channels keeps their dependency
/// graphs from composing into a cycle.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum VcClass {
    /// The unrestricted class: compiled (possibly detouring) routes.
    Adaptive,
    /// The reserved XY escape class: strict dimension-order XY only,
    /// entered only past a fault-free XY run.
    EscapeXy,
    /// The reserved tree escape class: up*/down* spanning-forest routes
    /// only — the always-available last resort.
    EscapeTree,
}

/// One output option for a parked head flit.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct HopChoice {
    /// The output direction to request.
    pub dir: Dir,
    /// The VC class to allocate on that output.
    pub class: VcClass,
}

/// An ordered, fixed-capacity candidate list for one head flit: the
/// fabric tries the choices front to back and the first one with an
/// allocatable VC this cycle wins (committing the packet — wormhole).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct HopCandidates {
    len: u8,
    arr: [Option<HopChoice>; 3],
}

impl HopCandidates {
    /// An empty candidate list (the head waits this cycle).
    pub fn new() -> Self {
        HopCandidates::default()
    }

    /// Appends a candidate (capacity 3: adaptive, XY escape, tree
    /// escape).
    ///
    /// # Panics
    /// Panics when the list is full.
    pub fn push(&mut self, c: HopChoice) {
        assert!((self.len as usize) < self.arr.len(), "candidate list full");
        self.arr[self.len as usize] = Some(c);
        self.len += 1;
    }

    /// The candidates in preference order.
    pub fn iter(&self) -> impl Iterator<Item = HopChoice> + '_ {
        self.arr[..self.len as usize].iter().map(|c| c.expect("filled up to len"))
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether no candidate was offered.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl FromIterator<HopChoice> for HopCandidates {
    fn from_iter<T: IntoIterator<Item = HopChoice>>(iter: T) -> Self {
        let mut c = HopCandidates::new();
        for x in iter {
            c.push(x);
        }
        c
    }
}

/// A per-hop routing decision for one head flit.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HopDecision {
    /// The packet is at its destination: take the ejection port.
    Eject,
    /// Request an output link: candidates in preference order.
    Route(HopCandidates),
}

impl HopDecision {
    /// A single-candidate route decision.
    pub fn route1(c: HopChoice) -> Self {
        HopDecision::Route([c].into_iter().collect())
    }
}

/// A per-hop routing function: the object the fabric consults for every
/// parked head flit, every cycle, instead of replaying a source route.
///
/// Implementations decide from *local* state — the packet's endpoints
/// and progress ([`PacketState`]) plus whatever the router itself knows
/// about the network — mirroring how the paper's distributed algorithms
/// run on real NoC hardware.
pub trait HopRouter {
    /// Network-interface admission: the hop count of the compiled route
    /// for `(s, d)`, or `None` when the routing function does not
    /// deliver the pair (XY across a fault, disconnected endpoints).
    /// Called once per generated packet; the result backs the TTL check.
    fn admit(&mut self, s: Coord, d: Coord) -> Option<u32>;

    /// The decision for the head flit of `pk` parked at `here`. Called
    /// every cycle the head is unrouted (possibly several times, once
    /// per output port scanned), so it must be cheap: a table lookup
    /// plus a VC-class choice.
    fn decide(&mut self, here: Coord, pk: &PacketState) -> HopDecision;
}

/// A memoizing compiled-route table for one `(network, routing
/// function)` pair: the per-pair backing store of the hop routers.
pub struct PathTable<'a> {
    net: &'a Network,
    kind: RoutingKind,
    router: Box<dyn Router>,
    cache: FxHashMap<(Coord, Coord), Option<Rc<[Dir]>>>,
    misses: u64,
    hits: u64,
}

impl<'a> PathTable<'a> {
    /// Creates an empty table for `kind` over `net`.
    pub fn new(net: &'a Network, kind: RoutingKind) -> Self {
        PathTable {
            net,
            kind,
            router: kind.router(),
            cache: FxHashMap::default(),
            misses: 0,
            hits: 0,
        }
    }

    /// The routing function this table compiles.
    pub fn kind(&self) -> RoutingKind {
        self.kind
    }

    /// The network the routes are compiled against.
    pub fn network(&self) -> &'a Network {
        self.net
    }

    /// The direction sequence from `s` to `d`, or `None` when the router
    /// does not deliver this pair (XY hitting a fault, disconnected
    /// endpoints, hop-budget exhaustion).
    pub fn path(&mut self, s: Coord, d: Coord) -> Option<Rc<[Dir]>> {
        if let Some(p) = self.cache.get(&(s, d)) {
            self.hits += 1;
            return p.clone();
        }
        self.misses += 1;
        let res = self.router.route(self.net, s, d);
        let dirs = res.delivered.then(|| {
            res.path
                .windows(2)
                .map(|w| w[0].dir_to(w[1]).expect("router paths move between neighbors"))
                .collect::<Rc<[Dir]>>()
        });
        self.cache.insert((s, d), dirs.clone());
        dirs
    }

    /// `(cache hits, cache misses)` — the miss count is the number of
    /// full routing-algorithm executions performed.
    pub fn cache_stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

/// Deterministic per-hop replay of the compiled route, adaptive class
/// only — the paper's routers exactly as the source-routed fabric ran
/// them, now phrased as per-hop decisions.
pub struct ReplayHop<'net, 'p> {
    paths: &'p mut PathTable<'net>,
}

impl<'net, 'p> ReplayHop<'net, 'p> {
    /// A replay router over `paths`' compiled routes.
    pub fn new(paths: &'p mut PathTable<'net>) -> Self {
        ReplayHop { paths }
    }
}

impl HopRouter for ReplayHop<'_, '_> {
    fn admit(&mut self, s: Coord, d: Coord) -> Option<u32> {
        self.paths.path(s, d).map(|p| p.len() as u32)
    }

    fn decide(&mut self, here: Coord, pk: &PacketState) -> HopDecision {
        if here == pk.dst {
            return HopDecision::Eject;
        }
        let path = self.paths.path(pk.src, pk.dst).expect("admitted packets have compiled routes");
        let dir = path[pk.head_hop as usize];
        HopDecision::route1(HopChoice { dir, class: VcClass::Adaptive })
    }
}

/// One BFS over the healthy nodes from `start`: distance per node id,
/// `u32::MAX` when unreached (faulty, or another component).
/// Deterministic: neighbors expand in [`Dir::ALL`] order.
fn healthy_bfs(faults: &FaultSet, start: Coord) -> Vec<u32> {
    let mesh = faults.mesh();
    let mut dist = vec![u32::MAX; mesh.len()];
    let mut queue = std::collections::VecDeque::new();
    dist[mesh.id(start).index()] = 0;
    queue.push_back(start);
    while let Some(c) = queue.pop_front() {
        let dc = dist[mesh.id(c).index()];
        for dir in Dir::ALL {
            let nb = c.step(dir);
            if !mesh.contains(nb) || !faults.is_healthy(nb) {
                continue;
            }
            let ni = mesh.id(nb).index();
            if dist[ni] == u32::MAX {
                dist[ni] = dc + 1;
                queue.push_back(nb);
            }
        }
    }
    dist
}

/// The farthest reached node of a BFS distance field (maximum
/// distance, lowest id on ties — determinism) and its distance.
fn farthest(mesh: &meshpath_mesh::Mesh, dist: &[u32]) -> (Coord, u32) {
    let mut best: Option<(u32, usize)> = None;
    for (i, &d) in dist.iter().enumerate() {
        if d != u32::MAX && best.is_none_or(|(bd, _)| d > bd) {
            best = Some((d, i));
        }
    }
    let (d, i) = best.expect("BFS reaches at least its start");
    (mesh.coord(meshpath_mesh::NodeId(i as u32)), d)
}

/// The reached node minimizing the maximum distance over several BFS
/// witness fields (lowest id on ties).
fn argmin_witness(mesh: &meshpath_mesh::Mesh, witnesses: &[&[u32]]) -> Coord {
    let mut best: Option<(u32, usize)> = None;
    for i in 0..mesh.len() {
        let Some(score) = witnesses
            .iter()
            .map(|w| w[i])
            .try_fold(0u32, |m, d| (d != u32::MAX).then_some(m.max(d)))
        else {
            continue;
        };
        if best.is_none_or(|(bs, _)| score < bs) {
            best = Some((score, i));
        }
    }
    let (_, i) = best.expect("non-empty component");
    mesh.coord(meshpath_mesh::NodeId(i as u32))
}

/// A (near-)center of `start`'s connected component: the classic
/// double sweep (farthest node `u` from `start`, farthest node `v`
/// from `u`) plus one witness-refinement round — grids have many
/// diameter pairs, so minimizing over the `u`/`v` fields alone can
/// land on a boundary node; adding the first candidate's own farthest
/// point as a third witness pins the interior. Every candidate's true
/// eccentricity is then measured with a real BFS and the best (lowest
/// eccentricity, lowest id on ties) wins. O(component) — seven BFS
/// passes — and a pure function of the fault configuration.
fn component_center(faults: &FaultSet, start: Coord) -> Coord {
    let mesh = faults.mesh();
    let d0 = healthy_bfs(faults, start);
    let (u, ecc0) = farthest(mesh, &d0);
    let du = healthy_bfs(faults, u);
    let (v, _) = farthest(mesh, &du);
    let dv = healthy_bfs(faults, v);
    let c1 = argmin_witness(mesh, &[&du, &dv]);
    let dc1 = healthy_bfs(faults, c1);
    let (w, ecc1) = farthest(mesh, &dc1);
    let dw = healthy_bfs(faults, w);
    let c2 = argmin_witness(mesh, &[&du, &dv, &dw]);
    let dc2 = healthy_bfs(faults, c2);
    let (_, ecc2) = farthest(mesh, &dc2);
    let id = |c: Coord| mesh.id(c).index();
    [(ecc0, id(start), start), (ecc1, id(c1), c1), (ecc2, id(c2), c2)]
        .into_iter()
        .min_by_key(|&(ecc, i, _)| (ecc, i))
        .expect("three candidates")
        .2
}

/// A BFS spanning forest over the healthy nodes: the substrate of the
/// tree escape class.
///
/// Each connected component is rooted at (an approximation of) its
/// **BFS center** — the healthy node of minimum eccentricity within
/// the component, found by double sweep + witness refinement — rather
/// than at its lowest id: up*/down*
/// routes detour through the root's neighborhood, so a central root
/// halves the worst-case tree depth (radius instead of diameter — 16
/// instead of 30 on a fault-free 16x16) and spreads escape hot-spots
/// away from the mesh corner. BFS expands neighbors in [`Dir::ALL`]
/// order and all tie-breaks are lowest-id, so the forest remains a
/// pure function of the fault configuration (determinism). An
/// up*/down* route climbs from the source to the lowest common
/// ancestor and descends to the destination; since every route takes
/// all its "up" (child-to-parent) hops before any "down" hop, and
/// depth is strictly monotone within each phase, the tree channels
/// admit a total order that every route respects — no cyclic channel
/// dependency, for any fault pattern.
pub struct EscapeForest {
    /// `(parent direction, depth)` per node id; `None` for faulty nodes
    /// and roots (roots have depth 0).
    parent: Vec<Option<Dir>>,
    depth: Vec<u32>,
}

impl EscapeForest {
    /// Builds the forest for a fault configuration.
    pub fn new(faults: &FaultSet) -> Self {
        let mesh = faults.mesh();
        let n = mesh.len();
        let mut parent: Vec<Option<Dir>> = vec![None; n];
        let mut depth = vec![0u32; n];
        let mut seen = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        for first in 0..n {
            let fc = mesh.coord(meshpath_mesh::NodeId(first as u32));
            if seen[first] || !faults.is_healthy(fc) {
                continue;
            }
            // `first` is the lowest unvisited id of a fresh component;
            // root the component's tree at its BFS center instead.
            let root = component_center(faults, fc);
            seen[mesh.id(root).index()] = true;
            queue.push_back(root);
            while let Some(c) = queue.pop_front() {
                let ci = mesh.id(c).index();
                for dir in Dir::ALL {
                    let nb = c.step(dir);
                    if !mesh.contains(nb) || !faults.is_healthy(nb) {
                        continue;
                    }
                    let ni = mesh.id(nb).index();
                    if seen[ni] {
                        continue;
                    }
                    seen[ni] = true;
                    parent[ni] = Some(dir.opposite());
                    depth[ni] = depth[ci] + 1;
                    queue.push_back(nb);
                }
            }
            debug_assert!(seen[first], "center BFS must cover the discovering node");
        }
        EscapeForest { parent, depth }
    }

    /// Tree depth of a node (0 for roots and faulty nodes).
    pub fn depth(&self, mesh: &meshpath_mesh::Mesh, c: Coord) -> u32 {
        self.depth[mesh.id(c).index()]
    }

    /// The next hop of the up*/down* route from `here` to `dst`, or
    /// `None` when the two are in different components (an unroutable
    /// pair — never admitted into the fabric).
    ///
    /// # Panics
    /// Panics when `here == dst`.
    pub fn next_hop(&self, mesh: &meshpath_mesh::Mesh, here: Coord, dst: Coord) -> Option<Dir> {
        assert!(here != dst, "tree next hop queried at the destination");
        // Climb dst's ancestor chain to here's depth, remembering the
        // hop below; if the chain passes through `here`, descend.
        let hi = mesh.id(here).index();
        let mut c = dst;
        let mut below: Option<Coord> = None;
        while self.depth[mesh.id(c).index()] > self.depth[hi] {
            below = Some(c);
            c = c.step(self.parent[mesh.id(c).index()]?);
        }
        if c == here {
            let child = below.expect("depth(dst) > depth(here) when here is a proper ancestor");
            return here.dir_to(child);
        }
        // Not an ancestor of dst: go up. A root with no parent means
        // dst sits in a different component.
        self.parent[hi]
    }
}

/// The Duato-style adaptive wrapper: compiled routes on the adaptive
/// class; once a head has been blocked `patience` consecutive cycles it
/// is offered the reserved escape classes — dimension-order XY when the
/// XY walk to the destination is fault-free, and the up*/down* tree
/// route as the always-available last resort.
///
/// A packet that takes an escape channel is committed: it stays on that
/// escape class until delivery, so escape packets only ever wait on
/// channels of their own (acyclic) class and are guaranteed to drain.
pub struct EscapeHop<'net, 'p> {
    paths: &'p mut PathTable<'net>,
    patience: u32,
    /// Whether the fabric has a non-empty XY escape class
    /// (`escape_vcs >= 2`): with only the tree channel reserved, XY
    /// candidates could never allocate, so offering them (and paying
    /// the clearance walks) would be pure waste.
    xy_class: bool,
    forest: EscapeForest,
    /// Memoized [`xy_path_clear`] per `(node, destination)`.
    clear: FxHashMap<(Coord, Coord), bool>,
    /// Memoized tree next hop per `(node, destination)` — the
    /// ancestor climb is O(tree depth) and `decide` runs on the
    /// congested path, up to once per output-port scan per cycle.
    tree_next: FxHashMap<(Coord, Coord), Dir>,
}

impl<'net, 'p> EscapeHop<'net, 'p> {
    /// An escape-adaptive router over `paths`' compiled routes.
    /// `xy_class` says whether the fabric reserves XY escape channels
    /// in addition to the tree channel (`escape_vcs >= 2`).
    pub fn new(paths: &'p mut PathTable<'net>, patience: u32, xy_class: bool) -> Self {
        let forest = EscapeForest::new(paths.network().faults());
        EscapeHop {
            paths,
            patience,
            xy_class,
            forest,
            clear: FxHashMap::default(),
            tree_next: FxHashMap::default(),
        }
    }

    /// The spanning forest backing the tree escape class.
    pub fn forest(&self) -> &EscapeForest {
        &self.forest
    }

    fn xy_clear(&mut self, here: Coord, dst: Coord) -> bool {
        let faults = self.paths.network().faults();
        *self.clear.entry((here, dst)).or_insert_with(|| xy_path_clear(faults, here, dst))
    }

    fn tree_choice(&mut self, here: Coord, dst: Coord) -> HopChoice {
        let forest = &self.forest;
        let mesh = self.paths.network().mesh();
        let dir = *self.tree_next.entry((here, dst)).or_insert_with(|| {
            forest
                .next_hop(mesh, here, dst)
                .expect("admitted packets connect; tree escape must cover them")
        });
        HopChoice { dir, class: VcClass::EscapeTree }
    }
}

impl HopRouter for EscapeHop<'_, '_> {
    fn admit(&mut self, s: Coord, d: Coord) -> Option<u32> {
        self.paths.path(s, d).map(|p| p.len() as u32)
    }

    fn decide(&mut self, here: Coord, pk: &PacketState) -> HopDecision {
        if here == pk.dst {
            return HopDecision::Eject;
        }
        match pk.mode {
            // Committed to an escape network: ride it to the end.
            VcClass::EscapeXy => HopDecision::route1(HopChoice {
                dir: xy_next(here, pk.dst),
                class: VcClass::EscapeXy,
            }),
            VcClass::EscapeTree => HopDecision::route1(self.tree_choice(here, pk.dst)),
            VcClass::Adaptive => {
                let path =
                    self.paths.path(pk.src, pk.dst).expect("admitted packets have compiled routes");
                let mut c = HopCandidates::new();
                c.push(HopChoice { dir: path[pk.head_hop as usize], class: VcClass::Adaptive });
                if pk.stalled >= self.patience {
                    if self.xy_class && self.xy_clear(here, pk.dst) {
                        c.push(HopChoice { dir: xy_next(here, pk.dst), class: VcClass::EscapeXy });
                    }
                    c.push(self.tree_choice(here, pk.dst));
                }
                HopDecision::Route(c)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meshpath_mesh::{FaultSet, Mesh};

    #[test]
    fn xy_routes_dimension_ordered() {
        let net = Network::build(FaultSet::none(Mesh::square(8)));
        let res = XyRouter.route(&net, Coord::new(1, 1), Coord::new(4, 6));
        assert!(res.delivered);
        assert_eq!(res.hops(), 3 + 5);
        // X corrections strictly precede Y corrections.
        let dirs: Vec<Dir> = res.path.windows(2).map(|w| w[0].dir_to(w[1]).unwrap()).collect();
        let first_y = dirs.iter().position(|d| d.axis() == meshpath_mesh::Axis::Y).unwrap();
        assert!(dirs[..first_y].iter().all(|d| d.axis() == meshpath_mesh::Axis::X));
        assert!(dirs[first_y..].iter().all(|d| d.axis() == meshpath_mesh::Axis::Y));
    }

    #[test]
    fn xy_blocks_on_faults() {
        let mesh = Mesh::square(8);
        let net = Network::build(FaultSet::from_coords(mesh, [Coord::new(3, 1)]));
        let res = XyRouter.route(&net, Coord::new(1, 1), Coord::new(6, 1));
        assert!(!res.delivered);
        // RB2 routes the same pair around the fault.
        let res2 = Rb2::default().route(&net, Coord::new(1, 1), Coord::new(6, 1));
        assert!(res2.delivered);
    }

    #[test]
    fn path_table_memoizes() {
        let net = Network::build(FaultSet::none(Mesh::square(8)));
        let mut t = PathTable::new(&net, RoutingKind::Rb2);
        let a = t.path(Coord::new(0, 0), Coord::new(5, 5)).expect("delivered");
        let b = t.path(Coord::new(0, 0), Coord::new(5, 5)).expect("delivered");
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
        assert_eq!(t.cache_stats(), (1, 1));
    }

    #[test]
    fn all_kinds_instantiate_and_route() {
        let mesh = Mesh::square(10);
        let net = Network::build(FaultSet::from_coords(mesh, [Coord::new(4, 4)]));
        for kind in RoutingKind::ALL {
            let mut t = PathTable::new(&net, kind);
            let p = t.path(Coord::new(0, 0), Coord::new(9, 9));
            let p = p.unwrap_or_else(|| panic!("{} must route around one fault", kind.name()));
            // Replay the dirs: must land on the destination through
            // healthy nodes.
            let mut cur = Coord::new(0, 0);
            for &d in p.iter() {
                cur = cur.step(d);
                assert!(net.faults().is_healthy(cur));
            }
            assert_eq!(cur, Coord::new(9, 9), "{}", kind.name());
        }
    }

    #[test]
    fn xy_next_decreases_dimension_order_distance() {
        let (s, d) = (Coord::new(7, 2), Coord::new(1, 6));
        let mut cur = s;
        while cur != d {
            let dir = xy_next(cur, d);
            let next = cur.step(dir);
            // X is corrected to completion before any Y move.
            if cur.x != d.x {
                assert_eq!(dir.axis(), meshpath_mesh::Axis::X);
                assert!((next.x - d.x).abs() < (cur.x - d.x).abs());
            } else {
                assert_eq!(dir.axis(), meshpath_mesh::Axis::Y);
                assert!((next.y - d.y).abs() < (cur.y - d.y).abs());
            }
            cur = next;
        }
    }

    #[test]
    fn xy_clear_matches_the_xy_router() {
        let mesh = Mesh::square(8);
        let net = Network::build(FaultSet::from_coords(mesh, [Coord::new(3, 1), Coord::new(5, 5)]));
        for (s, d) in [
            (Coord::new(1, 1), Coord::new(6, 1)), // crosses (3,1)
            (Coord::new(1, 1), Coord::new(1, 6)), // clear column
            (Coord::new(0, 5), Coord::new(7, 5)), // crosses (5,5)
            (Coord::new(2, 0), Coord::new(6, 7)), // clear L
        ] {
            let walked = XyRouter.route(&net, s, d).delivered;
            assert_eq!(xy_path_clear(net.faults(), s, d), walked, "{s:?}->{d:?}");
        }
    }

    #[test]
    fn replay_hop_follows_the_compiled_route() {
        let net = Network::build(FaultSet::none(Mesh::square(8)));
        let mut t = PathTable::new(&net, RoutingKind::Rb2);
        let (s, d) = (Coord::new(0, 0), Coord::new(3, 2));
        let mut hop = ReplayHop::new(&mut t);
        let hops = hop.admit(s, d).expect("routable");
        assert_eq!(hops, 5);
        let mut pk = PacketState::new(s, d, 0, 1);
        let mut here = s;
        for _ in 0..hops {
            match hop.decide(here, &pk) {
                HopDecision::Route(c) => {
                    assert_eq!(c.len(), 1);
                    let first = c.iter().next().unwrap();
                    assert_eq!(first.class, VcClass::Adaptive);
                    here = here.step(first.dir);
                    pk.head_hop += 1;
                }
                HopDecision::Eject => panic!("ejected before the destination"),
            }
        }
        assert_eq!(here, d);
        assert_eq!(hop.decide(here, &pk), HopDecision::Eject);
    }

    /// The candidate classes of a `Route` decision, in order.
    fn classes(d: HopDecision) -> Vec<VcClass> {
        match d {
            HopDecision::Route(c) => c.iter().map(|x| x.class).collect(),
            HopDecision::Eject => panic!("expected a route decision"),
        }
    }

    #[test]
    fn escape_hop_offers_classes_by_patience_and_clearance() {
        let mesh = Mesh::square(8);
        let net = Network::build(FaultSet::from_coords(mesh, [Coord::new(5, 3)]));
        let mut t = PathTable::new(&net, RoutingKind::Rb2);
        let mut hop = EscapeHop::new(&mut t, 4, true);
        // XY from (2,3) to (7,3) crosses the fault at (5,3).
        let (s, d) = (Coord::new(2, 3), Coord::new(7, 3));
        hop.admit(s, d).expect("RB2 routes around the fault");
        let fresh = PacketState::new(s, d, 0, 1);
        // Below patience: adaptive only.
        assert_eq!(classes(hop.decide(s, &fresh)), vec![VcClass::Adaptive]);
        // Past patience but XY blocked by (5,3): adaptive + tree, no XY.
        let mut stalled = fresh;
        stalled.stalled = 10;
        assert_eq!(
            classes(hop.decide(s, &stalled)),
            vec![VcClass::Adaptive, VcClass::EscapeTree],
            "blocked XY run must not be offered"
        );
        // Past patience with a clear XY run: all three, XY before tree.
        let (s2, d2) = (Coord::new(2, 0), Coord::new(2, 6));
        hop.admit(s2, d2).expect("clear pair");
        let mut stalled2 = PacketState::new(s2, d2, 0, 1);
        stalled2.stalled = 10;
        match hop.decide(s2, &stalled2) {
            HopDecision::Route(c) => {
                let v: Vec<_> = c.iter().collect();
                assert_eq!(
                    v.iter().map(|x| x.class).collect::<Vec<_>>(),
                    vec![VcClass::Adaptive, VcClass::EscapeXy, VcClass::EscapeTree]
                );
                assert_eq!(v[1].dir, Dir::PlusY, "XY escape corrects Y on a clear column");
            }
            HopDecision::Eject => panic!("not at destination"),
        }
        // Once committed to XY escape: that class only, strict XY.
        let mut escaped = stalled2;
        escaped.mode = VcClass::EscapeXy;
        assert_eq!(classes(hop.decide(s2, &escaped)), vec![VcClass::EscapeXy]);
        // Once committed to the tree: that class only.
        let mut treed = stalled2;
        treed.mode = VcClass::EscapeTree;
        assert_eq!(classes(hop.decide(s2, &treed)), vec![VcClass::EscapeTree]);
    }

    #[test]
    fn escape_hop_without_xy_class_never_offers_xy() {
        // escape_vcs == 1 fabric: only the tree channel is reserved, so
        // the router must not offer (or evaluate clearance for) XY.
        let net = Network::build(FaultSet::none(Mesh::square(8)));
        let mut t = PathTable::new(&net, RoutingKind::Rb2);
        let mut hop = EscapeHop::new(&mut t, 4, false);
        let (s, d) = (Coord::new(1, 1), Coord::new(6, 6));
        hop.admit(s, d).expect("clear pair");
        let mut stalled = PacketState::new(s, d, 0, 1);
        stalled.stalled = 10;
        assert_eq!(
            classes(hop.decide(s, &stalled)),
            vec![VcClass::Adaptive, VcClass::EscapeTree],
            "XY candidate requires a reserved XY channel"
        );
    }

    #[test]
    fn escape_forest_roots_at_component_centers() {
        // Fault-free 16x16: the old lowest-id rule rooted the tree at
        // the corner (0,0), giving depth = diameter = 30; a BFS-center
        // root drops the worst-case depth to the grid radius, 16.
        let mesh = Mesh::square(16);
        let faults = FaultSet::none(mesh);
        let forest = EscapeForest::new(&faults);
        let max_depth = mesh.iter().map(|c| forest.depth(&mesh, c)).max().unwrap();
        assert_eq!(max_depth, 16, "tree depth must drop from the diameter to the radius");

        // Two components split by a fault wall: each gets its own
        // center — depth stays within the larger half's radius (the
        // 16x8 half has radius 8 + 4 = 12, far below the 22-hop depth
        // a corner root would give it).
        let wall: Vec<Coord> = (0..16).map(|x| Coord::new(x, 7)).collect();
        let split = FaultSet::from_coords(mesh, wall);
        let split_forest = EscapeForest::new(&split);
        let split_depth = mesh
            .iter()
            .filter(|&c| split.is_healthy(c))
            .map(|c| split_forest.depth(&mesh, c))
            .max()
            .unwrap();
        assert!(split_depth <= 12, "per-component centers, got depth {split_depth}");
    }

    #[test]
    fn escape_forest_routes_every_connected_pair_up_then_down() {
        let mesh = Mesh::square(8);
        let faults = FaultSet::from_coords(
            mesh,
            [Coord::new(3, 3), Coord::new(4, 3), Coord::new(3, 4), Coord::new(6, 1)],
        );
        let forest = EscapeForest::new(&faults);
        let healthy: Vec<Coord> = mesh.iter().filter(|&c| faults.is_healthy(c)).collect();
        for &s in &healthy {
            for &d in &healthy {
                if s == d {
                    continue;
                }
                // Walk the tree route; it must reach d with all "up"
                // (depth-decreasing) hops before any "down" hop.
                let mut cur = s;
                let mut went_down = false;
                let mut hops = 0;
                while cur != d {
                    let dir = forest
                        .next_hop(&mesh, cur, d)
                        .unwrap_or_else(|| panic!("{s:?}->{d:?}: connected pair must route"));
                    let next = cur.step(dir);
                    assert!(faults.is_healthy(next), "{s:?}->{d:?} steps onto a fault");
                    let (dc, dn) = (forest.depth(&mesh, cur), forest.depth(&mesh, next));
                    assert_eq!(dc.abs_diff(dn), 1, "tree hops move between tree levels");
                    if dn > dc {
                        went_down = true;
                    } else {
                        assert!(!went_down, "{s:?}->{d:?}: up hop after a down hop");
                    }
                    cur = next;
                    hops += 1;
                    assert!(hops <= 2 * mesh.len(), "{s:?}->{d:?}: tree walk too long");
                }
            }
        }
    }
}
