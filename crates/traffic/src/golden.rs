//! Golden-equivalence suite: the event-driven stepper
//! ([`Fabric::step`](crate::Fabric::step)) — at **every shard/thread
//! count** — must produce **bit-identical** [`TrafficStats`] to the
//! retained scan-order reference stepper (`Fabric::step_reference`) on
//! random draws of simulator configuration, fault pattern, routing
//! function, traffic pattern, injection process, packet-length
//! distribution, churn — both the prescheduled `fault_churn` list
//! and a seeded *online* chaos schedule published mid-run through the
//! live epoch mechanism — **lease window length** (1, 2, 8 and the
//! auto edge-bound) and **tile shape** (row bands and two-column tile
//! grids).
//!
//! The equality is over the *entire* statistics struct — cycle count,
//! per-cycle flit-hop totals, the full latency histogram, saturation
//! and deadlock verdicts — so any divergence in grant order,
//! round-robin fairness, VC selection, escape-patience aging or the
//! shard boundary-exchange protocol shows up as a failure, not as a
//! plausible-looking but different summary.

use meshpath_obs::ObsLevel;
use proptest::prelude::*;
use rand::rngs::StdRng;

use meshpath_mesh::{FaultInjection, FaultSet, Mesh};
use meshpath_route::NetView;

use crate::churn::{ChaosConfig, OnlineChurn};
use crate::config::{RoutePolicy, SimConfig};
use crate::pattern::{InjectionProcess, LengthDist, TrafficPattern};
use crate::routing::{PathTable, RoutingKind};
use crate::sim::TrafficSim;
use crate::stats::TrafficStats;

/// Runs one full simulation on the chosen stepper, optionally under a
/// seeded online-churn chaos schedule.
fn run(
    net: &NetView,
    kind: RoutingKind,
    cfg: &SimConfig,
    reference: bool,
    chaos: Option<ChaosConfig>,
) -> TrafficStats {
    let mut paths = PathTable::new(net, kind);
    let mut sim = TrafficSim::new(&mut paths, cfg.clone());
    if let Some(chaos) = chaos {
        sim = sim.with_online_churn(OnlineChurn::chaos(chaos));
    }
    if reference {
        sim.set_reference_stepper();
    }
    sim.run()
}

/// Regression pin for the router-consultation schedule: under online
/// churn, `decide` has an observable side effect (a replan re-keys the
/// packet onto the *current* epoch), so both steppers must ask the
/// router on exactly the same cycles. The original reference stepper
/// skipped a parked head's `decide` whenever another VC on the same
/// input port had already won the crossbar that cycle; with a churn
/// publication landing in between, the deferred replan re-keyed the
/// packet one epoch late and `epoch_delivered` diverged. This seed
/// reproduced that: a head parked at the boundary cycle replans under
/// epoch 9 in the event-driven plan pass but under epoch 10 in the old
/// per-output-port reference scan.
#[test]
fn reference_stepper_plans_parked_heads_on_the_same_cycles() {
    use rand::SeedableRng;
    let seed = 3108541793u64;
    let mesh = Mesh::square(8);
    let mut frng = StdRng::seed_from_u64(seed);
    let net = NetView::build(FaultSet::random(mesh, 0, FaultInjection::Uniform, &mut frng));
    let chaos = Some(ChaosConfig {
        seed: seed ^ 0x9e37_79b9,
        fail_prob: 0.6,
        repair_prob: 0.5,
        start: 40,
        stop: 220,
        max_faults: 4,
    });
    let cfg = SimConfig {
        vcs: 4,
        vc_depth: 3,
        escape_vcs: 0,
        policy: RoutePolicy::Deterministic,
        packet_len: 4,
        rate: 0.35,
        warmup: 30,
        measure: 150,
        drain: 400,
        seed,
        pattern: TrafficPattern::Permutation,
        route_ttl: None,
        injection: InjectionProcess::Bernoulli,
        length: LengthDist::Fixed,
        threads: 1,
        tile_cols: 1,
        lease: 1,
        stats_window: 100,
        fault_churn: Vec::new(),
        obs: ObsLevel::Off,
        record_trace: false,
    };
    let kind = RoutingKind::ECube;
    let reference = run(&net, kind, &cfg, true, chaos);
    let sharded = run(&net, kind, &cfg, false, chaos);
    assert_eq!(sharded, reference);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn event_driven_sharded_stepping_is_bit_identical_to_scan_order(
        draw in (
            (4u32..9, 0usize..5, 0usize..5, 0u64..0xffff_ffff),
            (2usize..5, 0usize..3, 1u32..7, 0usize..5),
            (0usize..4, 1u32..5, 0usize..2, 0usize..2),
            (0usize..3, 0usize..2, 0usize..4, 0usize..2),
        )
    ) {
        let (
            (mesh_n, faults, kind_ix, seed),
            (vcs, escape_raw, patience, rate_ix),
            (pattern_ix, packet_len, injection_ix, length_ix),
            (churn_ix, online_ix, lease_ix, tile_ix),
        ) = draw;
        let mesh = Mesh::square(mesh_n);
        let mut frng = StdRng::seed_from_u64(seed);
        let net = NetView::build(FaultSet::random(mesh, faults, FaultInjection::Uniform, &mut frng));
        // Optional mid-run churn (1 = one failure, 2 = failure + later
        // repair of the same node), on a deterministically-chosen
        // healthy coordinate: the equivalence must hold across epoch
        // boundaries too.
        let churn_node = mesh.iter().filter(|&c| net.faults().is_healthy(c)).nth(seed as usize % 7);
        let fault_churn = match (churn_ix, churn_node) {
            (1, Some(c)) => vec![crate::config::ChurnEvent::fail(60, c)],
            (2, Some(c)) => vec![
                crate::config::ChurnEvent::fail(60, c),
                crate::config::ChurnEvent::repair(140, c),
            ],
            _ => Vec::new(),
        };
        // Optional *online* churn: a seeded chaos schedule applied at
        // quantum boundaries through the live epoch-publication path
        // (mutually exclusive with the prescheduled list above). The
        // equivalence must hold for dynamically-published epochs too.
        let chaos = (online_ix == 1).then_some(ChaosConfig {
            seed: seed ^ 0x9e37_79b9,
            fail_prob: 0.6,
            repair_prob: 0.5,
            start: 40,
            stop: 220,
            max_faults: 4,
        });
        let fault_churn = if chaos.is_some() { Vec::new() } else { fault_churn };
        let kind = RoutingKind::ALL[kind_ix];
        // The policy/escape knobs must agree (TrafficSim asserts it):
        // no reserved channel means deterministic replay.
        let escape_vcs = escape_raw.min(vcs - 1);
        let policy = if escape_vcs > 0 {
            RoutePolicy::EscapeAdaptive { patience }
        } else {
            RoutePolicy::Deterministic
        };
        let pattern = [
            TrafficPattern::UniformRandom,
            TrafficPattern::Transpose,
            TrafficPattern::BitComplement,
            TrafficPattern::Permutation,
        ][pattern_ix].clone();
        let injection = [
            InjectionProcess::Bernoulli,
            InjectionProcess::MarkovOnOff { on_to_off: 0.25, off_to_on: 0.1 },
        ][injection_ix];
        let length = [LengthDist::Fixed, LengthDist::Geometric { max: 12 }][length_ix];
        // Rates from near-idle through past saturation: the equivalence
        // must hold when the fabric is empty, contended and wedged.
        let rate = [0.02, 0.05, 0.1, 0.2, 0.35][rate_ix];
        let cfg = SimConfig {
            vcs,
            vc_depth: 3,
            escape_vcs,
            policy,
            packet_len,
            rate,
            warmup: 30,
            measure: 150,
            drain: 400,
            seed,
            pattern,
            route_ttl: None,
            injection,
            length,
            threads: 1,
            tile_cols: 1,
            lease: 1,
            stats_window: 100,
            fault_churn,
            obs: ObsLevel::Off,
            record_trace: false,
        };
        // Lease window (1, 2, 8, or 0 = the auto tile-edge bound with
        // occupancy adaptation) and tile shape (1 = row bands, 2 = a
        // two-column tile grid) for the sharded runs: results must be
        // bit-identical to the lease=1 lockstep reference at every
        // drawn combination.
        let lease = [1u64, 2, 8, 0][lease_ix];
        let tile_cols = [1usize, 2][tile_ix];
        let reference = run(&net, kind, &cfg, true, chaos);
        // Shard counts 1, 2 and 4: the event-driven stepper must match
        // the scan-order reference bit for bit at every partitioning
        // (threads > 1 also exercises the worker-thread transport, the
        // channel-based boundary exchange and the free-running lease
        // protocol).
        for threads in [1usize, 2, 4] {
            let sharded = run(
                &net,
                kind,
                &SimConfig { threads, tile_cols, lease, ..cfg.clone() },
                false,
                chaos,
            );
            prop_assert_eq!(
                &sharded,
                &reference,
                "stepper diverged at {} threads: {:?} {} faults={} seed={:#x}",
                threads,
                cfg,
                kind.name(),
                faults,
                seed
            );
            // Observability must be provably non-perturbing: the fully
            // instrumented run (metrics + flight recorder) must stay
            // bit-identical to the bare reference at every shard count.
            let observed = run(
                &net,
                kind,
                &SimConfig { threads, tile_cols, lease, obs: ObsLevel::Trace, ..cfg.clone() },
                false,
                chaos,
            );
            prop_assert_eq!(
                &observed,
                &reference,
                "tracing perturbed the run at {} threads: {:?} {} faults={} seed={:#x}",
                threads,
                cfg,
                kind.name(),
                faults,
                seed
            );
        }
    }
}
