//! Satellite: a DAG under *online* churn never wedges — a flow whose
//! packet is killed by a mid-run fault is aborted, its dependents are
//! cascaded into `flows_aborted`, and the run exits cleanly.

use meshpath_mesh::{Coord, FaultSet, Mesh};
use meshpath_route::NetView;
use meshpath_traffic::{
    ChurnInjector, OnlineChurn, PathTable, RoutingKind, SimConfig, TrafficPattern, TrafficSim,
};
use meshpath_workload::{DagSpec, FlowDag, FlowSpec};

/// Flow `a` crosses the mesh to (7,7); its destination is failed by
/// the churn injector while the packet is in flight, so the fabric
/// kills it (`churn_killed`). Flow `b` depends on `a` and must be
/// aborted by cascade — never released, never wedging the run.
fn run_killed_dag(threads: usize) {
    let mesh = Mesh::square(8);
    let net = NetView::build(FaultSet::from_coords(mesh, []));
    let spec = DagSpec {
        flows: vec![
            // 14 hops away, 8 flits: alive well past the churn quantum.
            FlowSpec::root("a", Coord::new(0, 0), Coord::new(7, 7), 8),
            FlowSpec::after("b", Coord::new(7, 7), Coord::new(0, 0), 4, &["a"]),
        ],
    };
    let cfg = SimConfig {
        seed: 5,
        rate: 0.0,
        pattern: TrafficPattern::UniformRandom,
        warmup: 20,
        measure: 100,
        drain: 600,
        threads,
        ..SimConfig::default()
    };
    let injector = ChurnInjector::new();
    injector.fail(Coord::new(7, 7));
    let mut paths = PathTable::new(&net, RoutingKind::Rb2);
    let out = TrafficSim::new(&mut paths, cfg)
        .with_workload(Box::new(FlowDag::new(spec).expect("valid DAG")))
        .with_online_churn(OnlineChurn::new(injector).with_quantum(8))
        .run_full(&mut ());

    assert_eq!(out.stats.churn_killed, 1, "a's packet was killed in flight ({threads} threads)");
    assert!(!out.stats.deadlocked);
    let wl = out.workload.expect("workload run");
    assert_eq!(wl.flows_delivered, 0);
    assert_eq!(wl.flows_aborted, 2, "a aborted, b cascaded ({threads} threads)");
    assert_eq!(wl.released, 1, "b was never released");
    assert!(wl.completions.is_empty());
    assert!(wl.critical_path.is_empty());
}

#[test]
fn killed_predecessor_cascades_and_never_wedges_in_process() {
    run_killed_dag(1);
}

#[test]
fn killed_predecessor_cascades_and_never_wedges_sharded() {
    run_killed_dag(4);
}
