//! Golden-equivalence suite for the workload subsystem.
//!
//! Two properties, both proptest-pinned:
//!
//! * **Trace round-trip** — recording any seeded synthetic run and
//!   replaying the trace through [`TraceSource`] reproduces the
//!   original [`TrafficStats`] bit-identically, at every shard count,
//!   and re-recording the replay reproduces the trace itself.
//! * **DAG determinism** — a flow-DAG run (stats, per-flow completion
//!   cycles, critical path — the whole `WorkloadOutcome`) is
//!   bit-identical at 1/2/4 shards and across tile shapes, even though
//!   the DAG scheduler's delivery feedback crosses the coordinator
//!   boundary every cycle.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use meshpath_mesh::{Coord, FaultInjection, FaultSet, Mesh};
use meshpath_route::NetView;
use meshpath_traffic::{
    InjectionProcess, LengthDist, PathTable, RoutingKind, RunOutput, SimConfig, TraceEntry,
    TrafficPattern, TrafficSim, WorkloadSource,
};
use meshpath_workload::{DagSpec, FlowDag, FlowSpec, TraceSource, WorkloadSpec};

fn base_cfg(seed: u64, rate: f64, pattern: TrafficPattern) -> SimConfig {
    SimConfig { rate, seed, pattern, warmup: 20, measure: 100, drain: 600, ..SimConfig::default() }
}

fn run_with(
    net: &NetView,
    kind: RoutingKind,
    cfg: &SimConfig,
    source: Option<Box<dyn WorkloadSource>>,
) -> RunOutput {
    let mut paths = PathTable::new(net, kind);
    let mut sim = TrafficSim::new(&mut paths, cfg.clone());
    if let Some(source) = source {
        sim = sim.with_workload(source);
    }
    sim.run_full(&mut ())
}

fn net_with_faults(side: u32, faults: usize, seed: u64) -> NetView {
    let mesh = Mesh::square(side);
    let mut rng = StdRng::seed_from_u64(seed);
    NetView::build(FaultSet::random(mesh, faults, FaultInjection::Uniform, &mut rng))
}

/// A layered DAG over the mesh corners and edges: `layers` waves where
/// every flow depends on the two flows "above" it in the previous
/// layer — enough fan-in/fan-out to make release order and the
/// critical path non-trivial.
fn layered_dag(net: &NetView, layers: usize, width: usize, len: u32) -> DagSpec {
    let healthy: Vec<Coord> = net.mesh().iter().filter(|&c| net.faults().is_healthy(c)).collect();
    let n = healthy.len();
    let mut flows = Vec::new();
    for layer in 0..layers {
        for w in 0..width {
            let idx = flows.len();
            let src = healthy[(idx * 7 + layer) % n];
            let mut dst = healthy[(idx * 13 + w + n / 2) % n];
            if src == dst {
                dst = healthy[(idx * 13 + w + n / 2 + 1) % n];
            }
            let name = format!("f{layer}_{w}");
            let mut deps = Vec::new();
            if layer > 0 {
                deps.push(format!("f{}_{w}", layer - 1));
                deps.push(format!("f{}_{}", layer - 1, (w + 1) % width));
            }
            flows.push(FlowSpec { name, src, dst, len, deps, earliest: 0 });
        }
    }
    // Dedup deps that collapsed to the same name at width 1.
    for f in &mut flows {
        f.deps.dedup();
    }
    DagSpec { flows }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Satellite: record-trace of a seeded synthetic run, replayed
    /// through `TraceSource`, reproduces the identical `TrafficStats`
    /// at 1/2/4 shards — and re-recording the replay reproduces the
    /// trace bit-for-bit.
    #[test]
    fn recorded_traces_replay_bit_identically(
        (pattern_ix, rate_ix, faults, seed) in (0usize..4, 0usize..3, 0usize..5, 0u64..u64::MAX)
    ) {
        let pattern = [
            TrafficPattern::UniformRandom,
            TrafficPattern::Transpose,
            TrafficPattern::BitComplement,
            TrafficPattern::Permutation,
        ][pattern_ix].clone();
        let rate = [0.05, 0.12, 0.25][rate_ix];
        let net = net_with_faults(8, faults, seed ^ 0xface);
        let cfg = SimConfig {
            injection: InjectionProcess::Bernoulli,
            length: if seed % 2 == 0 {
                LengthDist::Fixed
            } else {
                LengthDist::Geometric { max: 12 }
            },
            ..base_cfg(seed, rate, pattern)
        }
        .with_record_trace();
        let recorded = run_with(&net, RoutingKind::Rb2, &cfg, None);
        let trace: Vec<TraceEntry> = recorded.trace.clone().expect("record_trace was set");
        let horizon = cfg.warmup + cfg.measure;

        for threads in [1usize, 2, 4] {
            let replay_cfg = SimConfig {
                threads,
                tile_cols: if threads == 4 { 2 } else { 1 },
                record_trace: false,
                ..cfg.clone()
            };
            let spec = WorkloadSpec::Trace { entries: trace.clone(), horizon };
            let replayed = run_with(&net, RoutingKind::Rb2, &replay_cfg, Some(spec.build(&net)));
            prop_assert_eq!(
                &replayed.stats, &recorded.stats,
                "replay diverged at {} threads", threads
            );
        }

        // Re-recording the replay reproduces the trace itself (flow
        // ids aside: synthetic packets record NO_FLOW, replays tag
        // entries with their trace index — so compare the fabric-
        // visible fields).
        let rerecord_cfg = SimConfig { threads: 2, ..cfg.clone() };
        let rerecorded = run_with(
            &net,
            RoutingKind::Rb2,
            &rerecord_cfg,
            Some(Box::new(TraceSource::new(trace.clone(), horizon))),
        );
        let rerecorded_trace = rerecorded.trace.expect("record_trace was set");
        prop_assert_eq!(rerecorded_trace.len(), trace.len());
        for (a, b) in rerecorded_trace.iter().zip(&trace) {
            prop_assert_eq!(
                (a.cycle, a.src, a.dst, a.len, a.drop),
                (b.cycle, b.src, b.dst, b.len, b.drop)
            );
        }
    }

    /// Tentpole acceptance: a DAG run is deterministic at every shard
    /// count and tile shape — stats AND the whole `WorkloadOutcome`
    /// (per-flow completion cycles, critical path, abort ledger).
    #[test]
    fn dag_runs_are_bit_identical_across_shard_counts(
        ((layers, width), (len, faults, seed)) in ((1usize..4, 1usize..4), (1u32..7, 0usize..5, 0u64..u64::MAX))
    ) {
        let net = net_with_faults(8, faults, seed);
        let spec = layered_dag(&net, layers, width, len);
        let cfg = base_cfg(seed, 0.0, TrafficPattern::UniformRandom);

        let reference = run_with(
            &net,
            RoutingKind::Rb2,
            &cfg,
            Some(Box::new(FlowDag::new(spec.clone()).expect("layered DAG is valid"))),
        );
        let ref_outcome = reference.workload.as_ref().expect("workload run");
        // Every flow resolves — delivered, or aborted (a random fault
        // draw can disconnect a corner) with its dependents cascaded.
        prop_assert_eq!(
            (ref_outcome.flows_delivered + ref_outcome.flows_aborted) as usize,
            spec.flows.len()
        );

        for (threads, tile_cols, lease) in [(2usize, 1usize, 1u64), (4, 2, 4), (4, 1, 8)] {
            let sharded_cfg = SimConfig { threads, tile_cols, lease, ..cfg.clone() };
            let sharded = run_with(
                &net,
                RoutingKind::Rb2,
                &sharded_cfg,
                Some(Box::new(FlowDag::new(spec.clone()).expect("layered DAG is valid"))),
            );
            prop_assert_eq!(&sharded.stats, &reference.stats,
                "stats diverged at threads={} tile_cols={} lease={}", threads, tile_cols, lease);
            prop_assert_eq!(sharded.workload.as_ref().expect("workload run"), ref_outcome,
                "outcome diverged at threads={} tile_cols={} lease={}", threads, tile_cols, lease);
        }
    }
}

/// The DAG completion metrics are self-consistent: completions are
/// (cycle, flow)-sorted, the critical path ends at the last delivery,
/// and the makespan spans first release to last delivery.
#[test]
fn dag_outcome_metrics_are_coherent() {
    let net = net_with_faults(8, 0, 11);
    let spec = layered_dag(&net, 3, 3, 4);
    let cfg = base_cfg(11, 0.0, TrafficPattern::UniformRandom);
    let out = run_with(
        &net,
        RoutingKind::Rb3,
        &cfg,
        Some(Box::new(FlowDag::new(spec.clone()).expect("valid"))),
    );
    let wl = out.workload.expect("workload run");
    assert_eq!(wl.flows_delivered as usize, spec.flows.len());
    assert_eq!(wl.flows_aborted, 0);
    assert!(wl
        .completions
        .windows(2)
        .all(|w| { (w[0].delivered_at, w[0].flow) <= (w[1].delivered_at, w[1].flow) }));
    let last = wl.completions.last().expect("flows completed");
    assert_eq!(
        wl.critical_path.last().copied(),
        Some(last.flow),
        "critical path ends at the last delivery"
    );
    assert!(wl.critical_path.len() >= 3, "layered DAG has a multi-flow critical path");
    let first_release = wl.completions.iter().map(|c| c.released_at).min().expect("nonempty");
    assert_eq!(wl.makespan, last.delivered_at - first_release);
    assert!(wl.flow_p50() <= wl.flow_p99());
}
