//! Collective phases: scheduled all-to-all and (l,k)-permutation
//! rounds with a phase barrier between rounds.

use meshpath_mesh::{derive_seed, Coord};
use meshpath_route::NetView;
use meshpath_traffic::{PhaseOutcome, WorkloadMsg, WorkloadSource};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Which collective each round of a [`CollectivePhases`] runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CollectiveKind {
    /// Round `r`: participant `i` sends to participant
    /// `(i + r + 1) mod n` — the classic shifted all-to-all schedule,
    /// covering every ordered pair over `n - 1` rounds.
    AllToAll,
    /// Round `r`: an (l,k)-routing instance built from `l` seeded
    /// random permutations of the participants (each participant
    /// sources `l` messages and sinks `l <= k`; fixed points are
    /// skipped). Requires `1 <= l <= k`.
    Permutation {
        /// Messages sourced per participant per round.
        l: u32,
        /// Receive bound (`l <= k`); the instance built here sinks at
        /// most `l` per participant, so `k` only bounds `l`.
        k: u32,
        /// Seed for the per-round permutation draws.
        seed: u64,
    },
}

/// State of the round currently in flight.
struct Round {
    index: u32,
    released_at: u64,
    completed_at: u64,
    outstanding: u64,
    delivered: u64,
    aborted: u64,
}

/// A barrier-synchronised collective workload: `rounds` rounds of the
/// chosen [`CollectiveKind`] over the mesh's healthy nodes, where round
/// `r + 1` is released only once every round-`r` flow has resolved
/// (delivered or aborted). Per-phase completion times come back as
/// [`PhaseOutcome`]s in the run's `WorkloadOutcome`, which is what lets
/// RB1/RB2/RB3 be compared against XY/E-cube on collective traffic.
///
/// The schedule is a pure function of the participant list and (for
/// permutations) the seed, and the barrier depends only on the *set* of
/// resolved flows — so collective runs are bit-identical at every shard
/// count.
pub struct CollectivePhases {
    kind: CollectiveKind,
    /// Healthy nodes in row-major order at workload-build time.
    participants: Vec<Coord>,
    rounds: u32,
    len: u32,
    started: u32,
    next_flow: u32,
    cur: Option<Round>,
    done: Vec<PhaseOutcome>,
}

impl CollectivePhases {
    /// A collective over the healthy nodes of `view` (row-major order).
    ///
    /// Panics if `len == 0`, or on a `Permutation` kind violating
    /// `1 <= l <= k`.
    pub fn new(view: &NetView, kind: CollectiveKind, rounds: u32, len: u32) -> Self {
        assert!(len > 0, "zero-flit collective packets");
        if let CollectiveKind::Permutation { l, k, .. } = kind {
            assert!(1 <= l && l <= k, "(l,k)-permutation requires 1 <= l <= k, got ({l},{k})");
        }
        let participants: Vec<Coord> =
            view.mesh().iter().filter(|&c| view.faults().is_healthy(c)).collect();
        CollectivePhases {
            kind,
            participants,
            rounds,
            len,
            started: 0,
            next_flow: 0,
            cur: None,
            done: Vec::new(),
        }
    }

    /// The participant list (healthy nodes, row-major).
    pub fn participants(&self) -> &[Coord] {
        &self.participants
    }

    /// Source → destination pairs of round `r` (fixed points already
    /// skipped), in release order.
    fn round_pairs(&self, r: u32) -> Vec<(Coord, Coord)> {
        let n = self.participants.len();
        let mut pairs = Vec::new();
        if n < 2 {
            return pairs;
        }
        match self.kind {
            CollectiveKind::AllToAll => {
                let shift = (r as usize + 1) % n;
                for (i, &src) in self.participants.iter().enumerate() {
                    let dst = self.participants[(i + shift) % n];
                    if dst != src {
                        pairs.push((src, dst));
                    }
                }
            }
            CollectiveKind::Permutation { l, seed, .. } => {
                for j in 0..l {
                    let mut rng =
                        StdRng::seed_from_u64(derive_seed(seed, u64::from(r), u64::from(j)));
                    let mut perm: Vec<usize> = (0..n).collect();
                    perm.shuffle(&mut rng);
                    for (i, &p) in perm.iter().enumerate() {
                        if p != i {
                            pairs.push((self.participants[i], self.participants[p]));
                        }
                    }
                }
            }
        }
        pairs
    }

    fn resolve_one(&mut self, at: u64, delivered: bool) {
        let round = self.cur.as_mut().expect("delivery for a round not in flight");
        debug_assert!(round.outstanding > 0);
        round.outstanding -= 1;
        round.completed_at = round.completed_at.max(at);
        if delivered {
            round.delivered += 1;
        } else {
            round.aborted += 1;
        }
        if round.outstanding == 0 {
            let round = self.cur.take().expect("just borrowed");
            self.done.push(PhaseOutcome {
                index: round.index,
                released_at: round.released_at,
                completed_at: round.completed_at,
                delivered: round.delivered,
                aborted: round.aborted,
            });
        }
    }
}

impl WorkloadSource for CollectivePhases {
    fn release(&mut self, cycle: u64) -> Vec<WorkloadMsg> {
        // The barrier: nothing releases while a round is in flight.
        while self.cur.is_none() && self.started < self.rounds {
            let r = self.started;
            self.started += 1;
            let pairs = self.round_pairs(r);
            if pairs.is_empty() {
                // A degenerate round (n < 2) completes instantly.
                self.done.push(PhaseOutcome {
                    index: r,
                    released_at: cycle,
                    completed_at: cycle,
                    delivered: 0,
                    aborted: 0,
                });
                continue;
            }
            let msgs: Vec<WorkloadMsg> = pairs
                .into_iter()
                .map(|(src, dst)| {
                    let flow = self.next_flow;
                    self.next_flow += 1;
                    WorkloadMsg { at: cycle, flow, src, dst, len: self.len, drop: 0 }
                })
                .collect();
            self.cur = Some(Round {
                index: r,
                released_at: cycle,
                completed_at: cycle,
                outstanding: msgs.len() as u64,
                delivered: 0,
                aborted: 0,
            });
            return msgs;
        }
        Vec::new()
    }

    fn on_delivered(&mut self, _flow: u32, at: u64) {
        self.resolve_one(at, true);
    }

    fn on_aborted(&mut self, _flow: u32) -> Vec<u32> {
        // An aborted flow resolves its round slot (the barrier must not
        // wedge on a dead participant); collectives have no dependents.
        let at = self.cur.as_ref().map_or(0, |r| r.completed_at);
        self.resolve_one(at, false);
        Vec::new()
    }

    fn exhausted(&self, _cycle: u64) -> bool {
        self.started == self.rounds && self.cur.is_none()
    }

    fn phases(&self) -> Vec<PhaseOutcome> {
        self.done.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meshpath_mesh::{FaultSet, Mesh};

    fn view(side: u32, faults: &[Coord]) -> NetView {
        let mesh = Mesh::new(side, side);
        NetView::build(FaultSet::from_coords(mesh, faults.iter().copied()))
    }

    #[test]
    fn all_to_all_rounds_cover_every_ordered_pair_once() {
        let v = view(3, &[]);
        let n = 9usize;
        let mut phases = CollectivePhases::new(&v, CollectiveKind::AllToAll, (n - 1) as u32, 4);
        assert_eq!(phases.participants().len(), n);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..n - 1 {
            let msgs = phases.release(0);
            assert_eq!(msgs.len(), n, "each participant sends once per round");
            let flows: Vec<u32> = msgs.iter().map(|m| m.flow).collect();
            for m in &msgs {
                assert_ne!(m.src, m.dst);
                assert!(seen.insert((m.src, m.dst)), "pair repeated");
            }
            assert!(phases.release(1).is_empty(), "barrier holds while in flight");
            for f in flows {
                phases.on_delivered(f, 3);
            }
        }
        assert_eq!(seen.len(), n * (n - 1), "all ordered pairs covered");
        assert!(phases.exhausted(4));
        assert_eq!(phases.phases().len(), n - 1);
        assert!(phases.phases().iter().all(|p| p.delivered == n as u64 && p.aborted == 0));
    }

    #[test]
    fn permutation_rounds_are_seeded_and_respect_the_l_bound() {
        let v = view(4, &[Coord::new(1, 1)]);
        let kind = CollectiveKind::Permutation { l: 2, k: 3, seed: 7 };
        let mut a = CollectivePhases::new(&v, kind, 2, 4);
        let mut b = CollectivePhases::new(&v, kind, 2, 4);
        assert_eq!(a.participants().len(), 15);
        let ra = a.release(0);
        let rb = b.release(0);
        assert_eq!(ra.len(), rb.len(), "same seed, same schedule");
        assert!(ra.iter().zip(&rb).all(|(x, y)| (x.src, x.dst, x.len) == (y.src, y.dst, y.len)));
        // Each participant sources at most l and sinks at most l.
        let mut sourced = std::collections::HashMap::new();
        let mut sunk = std::collections::HashMap::new();
        for m in &ra {
            *sourced.entry(m.src).or_insert(0u32) += 1;
            *sunk.entry(m.dst).or_insert(0u32) += 1;
            assert!(v.faults().is_healthy(m.src) && v.faults().is_healthy(m.dst));
        }
        assert!(sourced.values().all(|&c| c <= 2));
        assert!(sunk.values().all(|&c| c <= 2));
    }

    #[test]
    fn aborts_do_not_wedge_the_barrier() {
        let v = view(2, &[]);
        let mut phases = CollectivePhases::new(&v, CollectiveKind::AllToAll, 2, 2);
        let msgs = phases.release(0);
        assert_eq!(msgs.len(), 4);
        phases.on_delivered(msgs[0].flow, 6);
        assert!(phases.on_aborted(msgs[1].flow).is_empty());
        phases.on_delivered(msgs[2].flow, 9);
        phases.on_aborted(msgs[3].flow);
        assert!(!phases.exhausted(9), "round 1 not yet released");
        let next = phases.release(10);
        assert_eq!(next.len(), 4, "barrier released after the aborts resolved");
        let p = phases.phases();
        assert_eq!(p.len(), 1);
        assert_eq!((p[0].delivered, p[0].aborted), (2, 2));
        assert_eq!(p[0].cycles(), 9, "completion spans release to last resolution");
    }

    #[test]
    #[should_panic(expected = "1 <= l <= k")]
    fn permutation_bounds_are_enforced() {
        let v = view(2, &[]);
        let _ =
            CollectivePhases::new(&v, CollectiveKind::Permutation { l: 3, k: 2, seed: 0 }, 1, 1);
    }
}
