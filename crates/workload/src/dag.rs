//! Dependency-driven flow DAGs: named messages released only once all
//! their predecessors have delivered.

use std::collections::HashMap;
use std::fmt;

use meshpath_mesh::Coord;
use meshpath_traffic::{WorkloadMsg, WorkloadSource};

/// One flow of a [`DagSpec`]: a named message plus the names of the
/// flows that must deliver before it may be injected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlowSpec {
    /// Flow name (referenced by dependents; restricted to
    /// `[A-Za-z0-9_.-]` so it survives the JSONL tooling).
    pub name: String,
    /// Source node.
    pub src: Coord,
    /// Destination node.
    pub dst: Coord,
    /// Packet length in flits (>= 1).
    pub len: u32,
    /// Names of the flows that must deliver first.
    pub deps: Vec<String>,
    /// Earliest release cycle (0 = as soon as the dependencies allow).
    pub earliest: u64,
}

impl FlowSpec {
    /// A dependency-free flow releasing at cycle 0.
    pub fn root(name: &str, src: Coord, dst: Coord, len: u32) -> Self {
        FlowSpec { name: name.to_string(), src, dst, len, deps: Vec::new(), earliest: 0 }
    }

    /// A flow releasing once every flow in `deps` has delivered.
    pub fn after(name: &str, src: Coord, dst: Coord, len: u32, deps: &[&str]) -> Self {
        FlowSpec {
            name: name.to_string(),
            src,
            dst,
            len,
            deps: deps.iter().map(|d| d.to_string()).collect(),
            earliest: 0,
        }
    }
}

/// A flow DAG: the declarative form [`FlowDag`] is built (and
/// validated) from.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DagSpec {
    /// The flows, in declaration order; a flow's id in the run's
    /// `WorkloadOutcome` is its index here.
    pub flows: Vec<FlowSpec>,
}

impl DagSpec {
    /// The name of flow `id` (its index), for reporting.
    pub fn name(&self, id: u32) -> &str {
        &self.flows[id as usize].name
    }
}

/// Why a [`DagSpec`] is not a runnable DAG.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DagError {
    /// Two flows share a name.
    DuplicateName(String),
    /// A dependency names no declared flow.
    UnknownDep {
        /// The flow declaring the dependency.
        flow: String,
        /// The name that resolves to nothing.
        dep: String,
    },
    /// The dependency graph has a cycle through this flow.
    Cycle(String),
    /// A flow has a zero-flit packet.
    EmptyPacket(String),
}

impl fmt::Display for DagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DagError::DuplicateName(n) => write!(f, "duplicate flow name {n:?}"),
            DagError::UnknownDep { flow, dep } => {
                write!(f, "flow {flow:?} depends on unknown flow {dep:?}")
            }
            DagError::Cycle(n) => write!(f, "dependency cycle through flow {n:?}"),
            DagError::EmptyPacket(n) => write!(f, "flow {n:?} has a zero-flit packet"),
        }
    }
}

impl std::error::Error for DagError {}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum FlowState {
    /// Waiting on dependencies (or its earliest-release cycle).
    Pending,
    /// Released to the fabric, packet not yet resolved.
    Released,
    Delivered,
    Aborted,
}

struct Flow {
    src: Coord,
    dst: Coord,
    len: u32,
    earliest: u64,
    /// Flow ids that depend on this one.
    dependents: Vec<u32>,
    /// Unresolved dependency count; releasable at 0.
    waiting_on: u32,
    state: FlowState,
    delivered_at: u64,
    /// The latest-delivering predecessor `(delivered_at, id)` — the
    /// critical-path back-pointer. The id tiebreak makes the path
    /// independent of same-cycle feedback order.
    cp_parent: Option<(u64, u32)>,
}

/// The dependency-driven scheduler: releases each flow's message once
/// all its predecessors have delivered (and `earliest` has passed),
/// cascades aborts through the dependency edges so a dead predecessor
/// never wedges the schedule, and tracks the delivery critical path.
///
/// Scheduling is coordinator-side and order-insensitive over
/// same-cycle feedback (ready flows are released in id order, the
/// critical-path tiebreak is by id), so a DAG run is bit-identical at
/// every shard count.
pub struct FlowDag {
    spec: DagSpec,
    flows: Vec<Flow>,
}

impl FlowDag {
    /// Builds and validates the scheduler: names must be unique,
    /// dependencies declared, packets non-empty and the graph acyclic.
    pub fn new(spec: DagSpec) -> Result<Self, DagError> {
        let mut ids: HashMap<&str, u32> = HashMap::with_capacity(spec.flows.len());
        for (i, f) in spec.flows.iter().enumerate() {
            if f.len == 0 {
                return Err(DagError::EmptyPacket(f.name.clone()));
            }
            if ids.insert(f.name.as_str(), i as u32).is_some() {
                return Err(DagError::DuplicateName(f.name.clone()));
            }
        }
        let mut flows: Vec<Flow> = spec
            .flows
            .iter()
            .map(|f| Flow {
                src: f.src,
                dst: f.dst,
                len: f.len,
                earliest: f.earliest,
                dependents: Vec::new(),
                waiting_on: 0,
                state: FlowState::Pending,
                delivered_at: 0,
                cp_parent: None,
            })
            .collect();
        for (i, f) in spec.flows.iter().enumerate() {
            for dep in &f.deps {
                let Some(&d) = ids.get(dep.as_str()) else {
                    return Err(DagError::UnknownDep { flow: f.name.clone(), dep: dep.clone() });
                };
                flows[d as usize].dependents.push(i as u32);
                flows[i].waiting_on += 1;
            }
        }
        // Acyclicity: Kahn's algorithm over the waiting_on counts.
        let mut indeg: Vec<u32> = flows.iter().map(|f| f.waiting_on).collect();
        let mut queue: Vec<u32> =
            (0..flows.len() as u32).filter(|&i| indeg[i as usize] == 0).collect();
        let mut seen = 0usize;
        while let Some(i) = queue.pop() {
            seen += 1;
            for &d in &flows[i as usize].dependents {
                indeg[d as usize] -= 1;
                if indeg[d as usize] == 0 {
                    queue.push(d);
                }
            }
        }
        if seen != flows.len() {
            let stuck = indeg.iter().position(|&d| d > 0).expect("a cycle leaves indegrees");
            return Err(DagError::Cycle(spec.flows[stuck].name.clone()));
        }
        Ok(FlowDag { spec, flows })
    }

    /// The validated spec (flow `id` = index, for name lookups).
    pub fn spec(&self) -> &DagSpec {
        &self.spec
    }

    fn abort_cascade(&mut self, id: u32, out: &mut Vec<u32>) {
        // Depth-first over dependents; every flow is aborted at most
        // once (state check), so the cascade is idempotent and
        // insensitive to the order aborts arrive in.
        let mut stack = vec![id];
        while let Some(i) = stack.pop() {
            for k in 0..self.flows[i as usize].dependents.len() {
                let d = self.flows[i as usize].dependents[k];
                if self.flows[d as usize].state == FlowState::Pending {
                    self.flows[d as usize].state = FlowState::Aborted;
                    out.push(d);
                    stack.push(d);
                }
            }
        }
    }
}

impl WorkloadSource for FlowDag {
    fn release(&mut self, cycle: u64) -> Vec<WorkloadMsg> {
        let mut out = Vec::new();
        // Id order: the ready set may have been assembled from
        // same-cycle feedback in any order.
        for id in 0..self.flows.len() as u32 {
            let f = &mut self.flows[id as usize];
            if f.state == FlowState::Pending && f.waiting_on == 0 && f.earliest <= cycle {
                f.state = FlowState::Released;
                out.push(WorkloadMsg {
                    at: cycle,
                    flow: id,
                    src: f.src,
                    dst: f.dst,
                    len: f.len,
                    drop: 0,
                });
            }
        }
        out
    }

    fn on_delivered(&mut self, flow: u32, at: u64) {
        let f = &mut self.flows[flow as usize];
        debug_assert_eq!(f.state, FlowState::Released);
        f.state = FlowState::Delivered;
        f.delivered_at = at;
        for k in 0..self.flows[flow as usize].dependents.len() {
            let d = self.flows[flow as usize].dependents[k];
            let dep = &mut self.flows[d as usize];
            dep.waiting_on -= 1;
            // Latest predecessor wins; id breaks same-cycle ties.
            if dep.cp_parent.is_none_or(|(t, i)| (at, flow) > (t, i)) {
                dep.cp_parent = Some((at, flow));
            }
        }
    }

    fn on_aborted(&mut self, flow: u32) -> Vec<u32> {
        let mut out = Vec::new();
        if self.flows[flow as usize].state == FlowState::Aborted {
            return out;
        }
        self.flows[flow as usize].state = FlowState::Aborted;
        self.abort_cascade(flow, &mut out);
        out
    }

    fn exhausted(&self, _cycle: u64) -> bool {
        // Released-but-unresolved flows hold the run open: a DAG run
        // measures flow completion, so it drains to the last delivery
        // (unlike a synthetic run, which abandons unmeasured
        // stragglers at its horizon).
        self.flows.iter().all(|f| matches!(f.state, FlowState::Delivered | FlowState::Aborted))
    }

    fn critical_path(&self) -> Vec<u32> {
        let last = self
            .flows
            .iter()
            .enumerate()
            .filter(|(_, f)| f.state == FlowState::Delivered)
            .max_by_key(|(i, f)| (f.delivered_at, *i as u32));
        let Some((last, _)) = last else {
            return Vec::new();
        };
        let mut path = vec![last as u32];
        let mut cur = last;
        while let Some((_, p)) = self.flows[cur].cp_parent {
            path.push(p);
            cur = p as usize;
        }
        path.reverse();
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(x: i32, y: i32) -> Coord {
        Coord::new(x, y)
    }

    fn diamond() -> DagSpec {
        DagSpec {
            flows: vec![
                FlowSpec::root("a", c(0, 0), c(3, 3), 2),
                FlowSpec::after("b", c(3, 3), c(0, 3), 2, &["a"]),
                FlowSpec::after("c", c(3, 3), c(3, 0), 2, &["a"]),
                FlowSpec::after("d", c(0, 3), c(0, 0), 2, &["b", "c"]),
            ],
        }
    }

    #[test]
    fn validation_rejects_bad_specs() {
        let mut dup = diamond();
        dup.flows[2].name = "b".into();
        assert_eq!(FlowDag::new(dup).err(), Some(DagError::DuplicateName("b".into())));

        let mut unknown = diamond();
        unknown.flows[3].deps.push("ghost".into());
        assert_eq!(
            FlowDag::new(unknown).err(),
            Some(DagError::UnknownDep { flow: "d".into(), dep: "ghost".into() })
        );

        let mut cyclic = diamond();
        cyclic.flows[0].deps.push("d".into());
        assert!(matches!(FlowDag::new(cyclic), Err(DagError::Cycle(_))));

        let mut empty = diamond();
        empty.flows[1].len = 0;
        assert_eq!(FlowDag::new(empty).err(), Some(DagError::EmptyPacket("b".into())));
    }

    #[test]
    fn releases_follow_delivery_feedback() {
        let mut dag = FlowDag::new(diamond()).expect("valid");
        let r0 = dag.release(0);
        assert_eq!(r0.len(), 1, "only the root is ready");
        assert_eq!(r0[0].flow, 0);
        assert!(dag.release(1).is_empty());
        dag.on_delivered(0, 9);
        let r9 = dag.release(9);
        assert_eq!(r9.iter().map(|m| m.flow).collect::<Vec<_>>(), vec![1, 2], "id order");
        dag.on_delivered(2, 15);
        dag.on_delivered(1, 17);
        let r17 = dag.release(17);
        assert_eq!(r17.len(), 1);
        assert_eq!(r17[0].flow, 3);
        assert!(!dag.exhausted(17), "flow d is still in flight");
        dag.on_delivered(3, 25);
        assert!(dag.exhausted(25));
        assert_eq!(dag.critical_path(), vec![0, 1, 3], "through the later-delivering branch");
    }

    #[test]
    fn aborts_cascade_transitively_and_idempotently() {
        let mut dag = FlowDag::new(diamond()).expect("valid");
        let _ = dag.release(0);
        // The root dies: everything downstream aborts with it.
        let deps = dag.on_aborted(0);
        assert_eq!(deps, vec![1, 2, 3]);
        assert!(dag.on_aborted(0).is_empty(), "idempotent");
        assert!(dag.exhausted(1), "a fully-aborted DAG never wedges the run");
        assert!(dag.critical_path().is_empty());
        assert!(dag.release(5).is_empty(), "aborted flows never release");
    }

    #[test]
    fn partial_abort_keeps_the_live_branch() {
        let mut dag = FlowDag::new(diamond()).expect("valid");
        let _ = dag.release(0);
        dag.on_delivered(0, 5);
        let _ = dag.release(5);
        // Branch b dies; c still delivers, d (needs both) aborts.
        let deps = dag.on_aborted(1);
        assert_eq!(deps, vec![3]);
        dag.on_delivered(2, 12);
        assert!(dag.exhausted(12));
        assert_eq!(dag.critical_path(), vec![0, 2]);
    }
}
