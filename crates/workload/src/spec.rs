//! [`WorkloadSpec`]: the declarative, cloneable descriptor the
//! analysis CLI (and sweep configs) build [`WorkloadSource`]s from.

use meshpath_route::NetView;
use meshpath_traffic::{TraceEntry, WorkloadSource};

use crate::dag::{DagSpec, FlowDag};
use crate::phases::{CollectiveKind, CollectivePhases};
use crate::trace::TraceSource;

/// A workload, described declaratively so sweep configs can clone one
/// per sweep point and hand each run its own [`WorkloadSource`].
#[derive(Clone, Debug)]
pub enum WorkloadSpec {
    /// Replay a recorded packet trace up to the recording run's
    /// generation horizon.
    Trace {
        /// The recorded entries (any order; replay sorts stably by
        /// cycle).
        entries: Vec<TraceEntry>,
        /// The recording run's generation horizon (its
        /// `warmup + measure` for synthetic recordings).
        horizon: u64,
    },
    /// A dependency-driven flow DAG.
    Dag(DagSpec),
    /// `rounds` barrier-separated all-to-all rounds of `len`-flit
    /// packets over the healthy nodes.
    AllToAll {
        /// Number of rounds.
        rounds: u32,
        /// Packet length in flits.
        len: u32,
    },
    /// `rounds` barrier-separated (l,k)-permutation rounds of
    /// `len`-flit packets over the healthy nodes.
    Permutation {
        /// Messages sourced per participant per round (`1 <= l <= k`).
        l: u32,
        /// Receive bound.
        k: u32,
        /// Number of rounds.
        rounds: u32,
        /// Packet length in flits.
        len: u32,
        /// Seed for the per-round permutation draws.
        seed: u64,
    },
}

impl WorkloadSpec {
    /// Short display name for tables and `--json` output.
    pub fn name(&self) -> &'static str {
        match self {
            WorkloadSpec::Trace { .. } => "trace",
            WorkloadSpec::Dag(_) => "dag",
            WorkloadSpec::AllToAll { .. } => "alltoall",
            WorkloadSpec::Permutation { .. } => "permutation",
        }
    }

    /// Builds the runnable source against the run's epoch-0 view
    /// (collectives draw their participant list from it).
    ///
    /// Panics if a [`WorkloadSpec::Dag`] spec fails validation — specs
    /// reaching a run are expected to have been validated at parse
    /// time (`FlowDag::new` is the validating constructor).
    pub fn build(&self, view: &NetView) -> Box<dyn WorkloadSource> {
        match self {
            WorkloadSpec::Trace { entries, horizon } => {
                Box::new(TraceSource::new(entries.clone(), *horizon))
            }
            WorkloadSpec::Dag(spec) => {
                Box::new(FlowDag::new(spec.clone()).expect("invalid DAG spec reached a run"))
            }
            WorkloadSpec::AllToAll { rounds, len } => {
                Box::new(CollectivePhases::new(view, CollectiveKind::AllToAll, *rounds, *len))
            }
            WorkloadSpec::Permutation { l, k, rounds, len, seed } => {
                Box::new(CollectivePhases::new(
                    view,
                    CollectiveKind::Permutation { l: *l, k: *k, seed: *seed },
                    *rounds,
                    *len,
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::FlowSpec;
    use meshpath_mesh::{Coord, FaultSet, Mesh};

    #[test]
    fn every_variant_builds_a_source() {
        let view = NetView::build(FaultSet::from_coords(Mesh::square(4), []));
        let specs = [
            WorkloadSpec::Trace { entries: Vec::new(), horizon: 5 },
            WorkloadSpec::Dag(DagSpec {
                flows: vec![FlowSpec::root("a", Coord::new(0, 0), Coord::new(3, 3), 2)],
            }),
            WorkloadSpec::AllToAll { rounds: 2, len: 4 },
            WorkloadSpec::Permutation { l: 1, k: 1, rounds: 2, len: 4, seed: 3 },
        ];
        for spec in &specs {
            let mut src = spec.clone().build(&view);
            // A fresh source is never exhausted before cycle 0's
            // release (except the empty trace, which still waits for
            // its horizon).
            assert!(!src.exhausted(0));
            let _ = src.release(0);
        }
    }
}
