//! Trace replay: feed a recorded packet trace back through the fabric.

use meshpath_traffic::{TraceEntry, WorkloadMsg, WorkloadSource};

/// Replays a recorded packet trace: every entry is released at exactly
/// its recorded cycle, drop markers reproduce the original run's
/// rejection counters, and [`exhausted`](WorkloadSource::exhausted)
/// holds until the recorded horizon so the replayed run terminates on
/// exactly the original's cycle — together that makes the replay
/// bit-identical (`TrafficStats` and all) to the recording run under
/// the same `SimConfig`, at every shard count.
pub struct TraceSource {
    /// Entries sorted by cycle (stable, so one node's same-cycle
    /// releases keep their recorded order).
    entries: Vec<TraceEntry>,
    idx: usize,
    /// The recording run's generation horizon (its `warmup + measure`
    /// for synthetic recordings): the replay must not report
    /// exhaustion before it, or the two runs' termination cycles —
    /// and with them the drained-delivery ledgers — would diverge.
    horizon: u64,
}

impl TraceSource {
    /// A replay source over `entries` with the recording run's
    /// generation `horizon`. Entries may arrive in any order; they are
    /// stably sorted by cycle (per-node relative order is preserved,
    /// which is the only intra-cycle order the fabric can observe).
    pub fn new(mut entries: Vec<TraceEntry>, horizon: u64) -> Self {
        entries.sort_by_key(|e| e.cycle);
        TraceSource { entries, idx: 0, horizon }
    }

    /// Number of trace entries not yet released.
    pub fn remaining(&self) -> usize {
        self.entries.len() - self.idx
    }
}

impl WorkloadSource for TraceSource {
    fn release(&mut self, cycle: u64) -> Vec<WorkloadMsg> {
        debug_assert!(
            self.idx == self.entries.len() || self.entries[self.idx].cycle >= cycle,
            "trace entries in the past (release skipped a cycle?)"
        );
        let mut out = Vec::new();
        while self.idx < self.entries.len() && self.entries[self.idx].cycle == cycle {
            out.push(self.entries[self.idx].to_msg());
            self.idx += 1;
        }
        out
    }

    fn exhausted(&self, cycle: u64) -> bool {
        self.idx == self.entries.len() && cycle >= self.horizon
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meshpath_mesh::Coord;
    use meshpath_traffic::NO_FLOW;

    fn entry(cycle: u64, x: i32, len: u32, drop: u8) -> TraceEntry {
        TraceEntry { cycle, src: Coord::new(x, 0), dst: Coord::new(x, 3), len, flow: NO_FLOW, drop }
    }

    #[test]
    fn releases_at_recorded_cycles_in_stable_order() {
        let mut src = TraceSource::new(
            vec![entry(5, 2, 4, 0), entry(1, 1, 4, 0), entry(5, 2, 3, 0), entry(5, 0, 1, 1)],
            10,
        );
        assert!(src.release(0).is_empty());
        let c1 = src.release(1);
        assert_eq!(c1.len(), 1);
        assert_eq!(c1[0].at, 1);
        for cycle in 2..5 {
            assert!(src.release(cycle).is_empty());
        }
        let c5 = src.release(5);
        assert_eq!(c5.len(), 3);
        // Stable: node 2's two releases keep their recorded order.
        assert_eq!((c5[0].src.x, c5[0].len), (2, 4));
        assert_eq!((c5[1].src.x, c5[1].len), (2, 3));
        assert_eq!((c5[2].src.x, c5[2].drop), (0, 1));
        assert_eq!(src.remaining(), 0);
    }

    #[test]
    fn exhaustion_waits_for_the_recorded_horizon() {
        let mut src = TraceSource::new(vec![entry(0, 1, 2, 0)], 7);
        assert!(!src.exhausted(0));
        let _ = src.release(0);
        assert!(!src.exhausted(6), "all entries released, but the horizon is not reached");
        assert!(src.exhausted(7));
    }
}
