//! # meshpath-workload
//!
//! Application workloads for the `meshpath-traffic` wormhole simulator:
//! the three [`WorkloadSource`] implementations that replace the
//! synthetic injection processes with *scheduled* traffic, plus the
//! [`WorkloadSpec`] descriptor the analysis CLI builds them from.
//!
//! * [`TraceSource`] — replays a recorded packet trace
//!   (`cycle, src, dst, len` entries, rejections kept as drop markers)
//!   bit-identically: same `TrafficStats`, same cycle count as the run
//!   that recorded it, at every shard count. Record any run with
//!   [`SimConfig::record_trace`], replay it here.
//! * [`FlowDag`] — dependency-driven flows: each named message is
//!   released only once all its predecessors have delivered. The
//!   scheduler lives coordinator-side (delivery feedback closes the
//!   loop each cycle), so the DAG schedule is deterministic at every
//!   shard count; aborted predecessors cascade so the run never
//!   wedges. Per-flow completion times and the critical path come back
//!   in the run's `WorkloadOutcome`.
//! * [`CollectivePhases`] — scheduled all-to-all and
//!   (l,k)-permutation rounds with a phase barrier: round `r + 1`
//!   starts only when every round-`r` flow has resolved. Per-phase
//!   completion times let RB1/RB2/RB3 be compared against XY/E-cube on
//!   collective traffic, with and without faults.
//!
//! The simulator-side substrate (the [`WorkloadSource`] trait, the
//! message/trace types, the feedback discipline and its determinism
//! argument) lives in `meshpath_traffic::source`; this crate is pure
//! scheduling policy on top of it.
//!
//! [`SimConfig::record_trace`]: meshpath_traffic::SimConfig::record_trace

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dag;
pub mod phases;
pub mod spec;
pub mod trace;

pub use dag::{DagError, DagSpec, FlowDag, FlowSpec};
pub use phases::{CollectiveKind, CollectivePhases};
pub use spec::WorkloadSpec;
pub use trace::TraceSource;

// The substrate types a workload consumer needs, re-exported so
// downstream code can speak to this crate alone.
pub use meshpath_traffic::{
    FlowCompletion, PhaseOutcome, TraceEntry, WorkloadMsg, WorkloadOutcome, WorkloadSource, NO_FLOW,
};
