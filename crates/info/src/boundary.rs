//! Per-MCC boundary polylines, hit relations and merge lists.
//!
//! For every MCC `F` with a usable initialization corner `c` and opposite
//! corner `c'`, four boundary walks exist (paper Algorithms 1, 4 and 6):
//!
//! * `west_y` — the `-X` boundary: from `c` south along `x = x_c`,
//!   turning **right** around intervening MCCs (joining their `-X`
//!   boundary at their corner);
//! * `east_y` — the `+X` boundary: from `c'` south along `x = x_{c'}`,
//!   turning **left** (joining `+X` boundaries at opposite corners);
//! * `south_x` — the `-Y` boundary: from `c` west along `y = y_c`,
//!   turning **left**;
//! * `north_x` — the `+Y` boundary: from `c'` west along `y = y_{c'}`,
//!   turning **right**.
//!
//! The walks double as the merge machinery: the MCCs hit by the Y-walks
//! are exactly those whose forbidden regions merge into `F`'s (the walk
//! continues along their boundary), giving the `merged_y`/`merged_x`
//! shadow lists the routing layer pairs with `F`'s critical region.
//!
//! B3's split propagations and the Eq.-4 relation records are derived from
//! the same walks.

use meshpath_fault::{Mcc, MccId, MccSet};
use meshpath_mesh::Coord;

use crate::walker::{walk, walk_until, Walk, WalkConfig};

/// The boundary structures of one MCC.
#[derive(Clone, Debug)]
pub struct MccBoundaries {
    /// The MCC these boundaries belong to.
    pub id: MccId,
    /// `-X` boundary (empty when the initialization corner is unusable).
    pub west_y: Walk,
    /// `+X` boundary (empty when the opposite corner is unusable).
    pub east_y: Walk,
    /// `-Y` boundary.
    pub south_x: Walk,
    /// `+Y` boundary.
    pub north_x: Walk,
    /// B3 split propagations spawned at `west_y` hits (each rounds the hit
    /// MCC once and merges into its `+X` boundary).
    pub splits_y: Vec<Walk>,
    /// B3 split propagations spawned at `south_x` hits.
    pub splits_x: Vec<Walk>,
    /// Safe nodes adjacent to the MCC's cells (the identification contour
    /// traversed by the clockwise/counter-clockwise shape messages).
    pub edge_nodes: Vec<Coord>,
    /// MCC ids whose Y-shadows merge into this MCC's Y-region
    /// (self + transitive hits of both Y-walks).
    pub merged_y: Vec<MccId>,
    /// MCC ids whose X-shadows merge into this MCC's X-region.
    pub merged_x: Vec<MccId>,
}

/// All boundaries of one [`MccSet`], plus Eq.-4 relation records.
#[derive(Clone, Debug)]
pub struct BoundarySet {
    boundaries: Vec<MccBoundaries>,
    /// Per MCC `v`: the recorded type-I relations `F(v) -> F(c)` (the
    /// candidates for `v`'s succeeding MCC, Eq. 4).
    succ_candidates_y: Vec<Vec<MccId>>,
    /// Per MCC `v`: the type-II relation candidates.
    succ_candidates_x: Vec<Vec<MccId>>,
}

impl MccBoundaries {
    /// Every coordinate this boundary record stores (walk nodes, split
    /// nodes, hit points, contour nodes) — the footprint used by the
    /// incremental layer's dirty test: a record whose footprint stays
    /// clear of all relabeled cells was derived from unchanged reads
    /// and can be reused verbatim.
    pub fn footprint(&self) -> impl Iterator<Item = Coord> + '_ {
        let walks = [&self.west_y, &self.east_y, &self.south_x, &self.north_x];
        walks
            .into_iter()
            .chain(self.splits_y.iter())
            .chain(self.splits_x.iter())
            .flat_map(|w| w.nodes.iter().copied().chain(w.hits.iter().map(|&(_, h)| h)))
            .chain(self.edge_nodes.iter().copied())
    }

    /// Clone with every stored [`MccId`] remapped through `map` (used
    /// when a snapshot's components were re-extracted and re-numbered).
    /// Returns `None` when any referenced component no longer exists —
    /// the record is then stale and must be rebuilt.
    pub fn remapped(&self, new_id: MccId, map: impl Fn(MccId) -> Option<MccId>) -> Option<Self> {
        let map = &map;
        let remap_walk = |w: &Walk| -> Option<Walk> {
            let hits = w.hits.iter().map(|&(v, h)| Some((map(v)?, h))).collect::<Option<_>>()?;
            Some(Walk { nodes: w.nodes.clone(), hits, reached_edge: w.reached_edge })
        };
        let remap_walks =
            |ws: &[Walk]| -> Option<Vec<Walk>> { ws.iter().map(remap_walk).collect() };
        let remap_ids =
            |ids: &[MccId]| -> Option<Vec<MccId>> { ids.iter().map(|&v| map(v)).collect() };
        let mut merged_y = remap_ids(&self.merged_y)?;
        let mut merged_x = remap_ids(&self.merged_x)?;
        merged_y.sort_unstable();
        merged_y.dedup();
        merged_x.sort_unstable();
        merged_x.dedup();
        Some(MccBoundaries {
            id: new_id,
            west_y: remap_walk(&self.west_y)?,
            east_y: remap_walk(&self.east_y)?,
            south_x: remap_walk(&self.south_x)?,
            north_x: remap_walk(&self.north_x)?,
            splits_y: remap_walks(&self.splits_y)?,
            splits_x: remap_walks(&self.splits_x)?,
            edge_nodes: self.edge_nodes.clone(),
            merged_y,
            merged_x,
        })
    }
}

/// All boundary structures of one MCC (walks, splits, contour, merge
/// lists) — everything except the Eq.-4 relation records, which are
/// derived from the finished walks in a second pass.
fn boundaries_of(set: &MccSet, mcc: &Mcc) -> MccBoundaries {
    // A corner that is itself a cell of another MCC (diagonally
    // touching components) cannot start a walk; per the merge
    // semantics the boundary *joins* that component's boundary,
    // so redirect the start to its corner (resp. opposite corner)
    // transitively and absorb the crossed components.
    let (west_start, absorbed_w) = resolve_start(set, mcc.corner(), false);
    let (east_start, absorbed_e) = resolve_start(set, mcc.opposite(), true);
    let west_y = west_start.map(|c| walk(set, c, WalkConfig::WEST_Y)).unwrap_or_default();
    let east_y = east_start.map(|c| walk(set, c, WalkConfig::EAST_Y)).unwrap_or_default();
    let south_x = west_start.map(|c| walk(set, c, WalkConfig::SOUTH_X)).unwrap_or_default();
    let north_x = east_start.map(|c| walk(set, c, WalkConfig::NORTH_X)).unwrap_or_default();

    // B3 split propagations: at every Y-walk hit, the shape
    // information also rounds the obstacle the other way and
    // merges into its +X boundary (one disengagement).
    let splits_y =
        west_y.hits.iter().map(|&(_, hit)| walk_until(set, hit, WalkConfig::EAST_Y, 1)).collect();
    let splits_x =
        south_x.hits.iter().map(|&(_, hit)| walk_until(set, hit, WalkConfig::NORTH_X, 1)).collect();

    // Merge lists: self, every MCC absorbed while resolving the
    // corner starts, plus every MCC the Y-walks (X-walks) hit.
    let mut merged_y = vec![mcc.id()];
    merged_y.extend(absorbed_w.iter().copied());
    merged_y.extend(absorbed_e.iter().copied());
    merged_y.extend(west_y.hits.iter().map(|&(v, _)| v));
    merged_y.extend(east_y.hits.iter().map(|&(v, _)| v));
    merged_y.sort_unstable();
    merged_y.dedup();
    let mut merged_x = vec![mcc.id()];
    merged_x.extend(absorbed_w.iter().copied());
    merged_x.extend(absorbed_e.iter().copied());
    merged_x.extend(south_x.hits.iter().map(|&(v, _)| v));
    merged_x.extend(north_x.hits.iter().map(|&(v, _)| v));
    merged_x.sort_unstable();
    merged_x.dedup();

    MccBoundaries {
        id: mcc.id(),
        west_y,
        east_y,
        south_x,
        north_x,
        splits_y,
        splits_x,
        edge_nodes: edge_nodes_of(set, mcc),
        merged_y,
        merged_x,
    }
}

impl BoundarySet {
    /// Builds all four boundary walks (plus splits and relations) for
    /// every MCC in `set`.
    pub fn build(set: &MccSet) -> Self {
        Self::build_reusing(set, |_| None)
    }

    /// Like [`BoundarySet::build`], but asking `reuse` for an
    /// already-valid (remapped) record per component first — the
    /// incremental-update path: components whose boundary footprint and
    /// interacting components are untouched by a fault delta keep their
    /// walks, everything else is recomputed. The Eq.-4 relation records
    /// are always re-derived from the final walks (they are cheap and
    /// global).
    pub fn build_reusing(
        set: &MccSet,
        mut reuse: impl FnMut(MccId) -> Option<MccBoundaries>,
    ) -> Self {
        let n = set.len();
        let mut boundaries = Vec::with_capacity(n);
        let mut succ_candidates_y = vec![Vec::new(); n];
        let mut succ_candidates_x = vec![Vec::new(); n];

        for mcc in set.iter() {
            let b = match reuse(mcc.id()) {
                Some(b) => {
                    debug_assert_eq!(b.id, mcc.id());
                    b
                }
                None => boundaries_of(set, mcc),
            };

            // Eq. 4 relation record: when the FIRST intersection of the
            // -X boundary of F(c) is with F(v) and F(c)'s corner sits
            // strictly east of F(v)'s, F(c) is a candidate succeeding MCC
            // of F(v) in a type-I sequence. (The paper writes the guard as
            // `x_c > x_{v'}`, which is geometrically unsatisfiable for a
            // first hit — Eq. 1 requires `x_c <= x_{c'_v}` for chain
            // overlap — so we read it as the corner comparison
            // `x_c > x_v`; the chain builder re-validates the full Eq. 1
            // conditions at routing time. See DESIGN.md §3.)
            if let Some(&(v, _)) = b.west_y.hits.first() {
                if mcc.corner().x > set.get(v).corner().x {
                    succ_candidates_y[v.index()].push(mcc.id());
                }
            }
            // Symmetric type-II record from the -Y boundary.
            if let Some(&(v, _)) = b.south_x.hits.first() {
                if mcc.corner().y > set.get(v).corner().y {
                    succ_candidates_x[v.index()].push(mcc.id());
                }
            }

            boundaries.push(b);
        }

        BoundarySet { boundaries, succ_candidates_y, succ_candidates_x }
    }

    /// Boundaries of one MCC.
    #[inline]
    pub fn get(&self, id: MccId) -> &MccBoundaries {
        &self.boundaries[id.index()]
    }

    /// All boundaries, in MCC id order.
    pub fn iter(&self) -> impl Iterator<Item = &MccBoundaries> {
        self.boundaries.iter()
    }

    /// The succeeding MCC of `v` in a type-I sequence (Eq. 4): among the
    /// recorded candidates, the one with the lowest corner `y`.
    pub fn succ_y(&self, set: &MccSet, v: MccId) -> Option<MccId> {
        self.succ_candidates_y[v.index()]
            .iter()
            .copied()
            .min_by_key(|&g| (set.get(g).corner().y, g.index()))
    }

    /// The succeeding MCC of `v` in a type-II sequence.
    pub fn succ_x(&self, set: &MccSet, v: MccId) -> Option<MccId> {
        self.succ_candidates_x[v.index()]
            .iter()
            .copied()
            .min_by_key(|&g| (set.get(g).corner().x, g.index()))
    }

    /// All recorded type-I successor candidates of `v`.
    pub fn succ_candidates_y(&self, v: MccId) -> &[MccId] {
        &self.succ_candidates_y[v.index()]
    }

    /// All recorded type-II successor candidates of `v`.
    pub fn succ_candidates_x(&self, v: MccId) -> &[MccId] {
        &self.succ_candidates_x[v.index()]
    }
}

/// Resolves a walk start that may sit on another MCC's cell: follow that
/// component's corresponding corner transitively until a safe node (or
/// give up at the mesh border). Returns the start and the absorbed MCCs.
fn resolve_start(set: &MccSet, mut start: Coord, opposite: bool) -> (Option<Coord>, Vec<MccId>) {
    let mut absorbed = Vec::new();
    loop {
        if !set.mesh().contains(start) {
            return (None, absorbed);
        }
        if set.labeling().is_safe_node(start) {
            return (Some(start), absorbed);
        }
        match set.mcc_at(start) {
            Some(g) if !absorbed.contains(&g) => {
                absorbed.push(g);
                start = if opposite { set.get(g).opposite() } else { set.get(g).corner() };
            }
            _ => return (None, absorbed),
        }
    }
}

/// The identification contour: safe nodes adjacent to the MCC's cells.
fn edge_nodes_of(set: &MccSet, mcc: &Mcc) -> Vec<Coord> {
    let labeling = set.labeling();
    let mut nodes: Vec<Coord> =
        mcc.cells().flat_map(|c| c.neighbors()).filter(|&n| labeling.is_safe_node(n)).collect();
    nodes.sort_unstable();
    nodes.dedup();
    nodes
}

#[cfg(test)]
mod tests {
    use super::*;
    use meshpath_fault::BorderPolicy;
    use meshpath_mesh::{FaultSet, Mesh, Orientation};

    fn set(mesh: Mesh, faults: &[(i32, i32)]) -> MccSet {
        let fs = FaultSet::from_coords(mesh, faults.iter().map(|&(x, y)| Coord::new(x, y)));
        MccSet::build(&fs, Orientation::IDENTITY, BorderPolicy::Open)
    }

    #[test]
    fn single_mcc_boundaries_descend_from_corners() {
        let s = set(Mesh::square(10), &[(5, 5)]);
        let b = BoundarySet::build(&s);
        let mb = b.get(MccId(0));
        // -X boundary: from c = (4,4) straight south.
        assert_eq!(mb.west_y.nodes.first(), Some(&Coord::new(4, 4)));
        assert!(mb.west_y.reached_edge);
        assert!(mb.west_y.nodes.contains(&Coord::new(4, 0)));
        // +X boundary: from c' = (6,6) straight south.
        assert_eq!(mb.east_y.nodes.first(), Some(&Coord::new(6, 6)));
        assert!(mb.east_y.nodes.contains(&Coord::new(6, 0)));
        // -Y boundary: from c west; +Y from c' west.
        assert!(mb.south_x.nodes.contains(&Coord::new(0, 4)));
        assert!(mb.north_x.nodes.contains(&Coord::new(0, 6)));
        // Four edge nodes around a single cell plus diagonal-adjacent ones
        // are not included (edge = 4-neighbors only).
        assert_eq!(mb.edge_nodes.len(), 4);
        assert_eq!(mb.merged_y, vec![MccId(0)]);
    }

    #[test]
    fn border_touching_mcc_has_empty_west_boundary() {
        let s = set(Mesh::square(8), &[(0, 3)]);
        let b = BoundarySet::build(&s);
        let mb = b.get(MccId(0));
        assert!(mb.west_y.nodes.is_empty()); // corner (-1,2) out of mesh
        assert!(!mb.east_y.nodes.is_empty());
    }

    #[test]
    fn y_walk_records_hits_and_merges() {
        // F at (5,8); V at (4,3): F's -X boundary descends column 4 and
        // hits V, merging V into F's Y-region.
        let s = set(Mesh::square(12), &[(5, 8), (4, 3)]);
        let b = BoundarySet::build(&s);
        let f = s.iter().find(|m| m.contains(Coord::new(5, 8))).expect("F").id();
        let v = s.iter().find(|m| m.contains(Coord::new(4, 3))).expect("V").id();
        let fb = b.get(f);
        assert_eq!(fb.west_y.hits.len(), 1);
        assert_eq!(fb.west_y.hits[0].0, v);
        assert!(fb.merged_y.contains(&v));
        assert_eq!(fb.splits_y.len(), 1);
        assert!(!fb.splits_y[0].nodes.is_empty());
    }

    #[test]
    fn relation_recorded_when_geometry_matches() {
        // F at (5,8) has corner c=(4,7); V at (4,3) has corner (3,2).
        // F's -X boundary descends column 4 and first hits V, and
        // x_c = 4 > x_v = 3, so F is recorded as a chain successor of V —
        // consistent with Eq. 1 (x-spans overlap, F strictly higher).
        let s = set(Mesh::square(12), &[(5, 8), (4, 3)]);
        let b = BoundarySet::build(&s);
        let f = s.iter().find(|m| m.contains(Coord::new(5, 8))).expect("F").id();
        let v = s.iter().find(|m| m.contains(Coord::new(4, 3))).expect("V").id();
        assert_eq!(b.succ_candidates_y(v), &[f]);
        assert_eq!(b.succ_y(&s, v), Some(f));

        // A component whose -X boundary never touches V records nothing:
        // F at (4,8) descends column 3 while V occupies only column 4.
        let s2 = set(Mesh::square(12), &[(4, 8), (4, 3)]);
        let b2 = BoundarySet::build(&s2);
        let v2 = s2.iter().find(|m| m.contains(Coord::new(4, 3))).expect("V").id();
        assert!(b2.succ_candidates_y(v2).is_empty());
    }

    #[test]
    fn succ_picks_lowest_corner() {
        // Two candidates above V: the one with the lower corner wins.
        let s = set(
            Mesh::square(16),
            // V spans columns 3..=8 on row 2; F1 at (8,6); F2 at (7,10).
            &[(3, 2), (4, 2), (5, 2), (6, 2), (7, 2), (8, 2), (8, 6), (7, 10)],
        );
        let b = BoundarySet::build(&s);
        let v = s.iter().find(|m| m.contains(Coord::new(3, 2))).expect("V").id();
        let f1 = s.iter().find(|m| m.contains(Coord::new(8, 6))).expect("F1").id();
        let cands = b.succ_candidates_y(v);
        assert!(cands.contains(&f1), "F1's -X walk (column 7) first hits V");
        if cands.len() > 1 {
            assert_eq!(b.succ_y(&s, v), Some(f1), "lower corner must win");
        }
    }

    #[test]
    fn x_walks_mirror_y_walks() {
        // Same geometry rotated: F at (8,5) hit by its -Y walk on V at
        // (3,4) while heading west.
        let s = set(Mesh::square(12), &[(8, 5), (3, 4)]);
        let b = BoundarySet::build(&s);
        let f = s.iter().find(|m| m.contains(Coord::new(8, 5))).expect("F").id();
        let v = s.iter().find(|m| m.contains(Coord::new(3, 4))).expect("V").id();
        let fb = b.get(f);
        assert_eq!(fb.south_x.hits.len(), 1);
        assert_eq!(fb.south_x.hits[0].0, v);
        assert!(fb.merged_x.contains(&v));
    }
}
