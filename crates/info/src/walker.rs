//! The wall-following boundary walker.
//!
//! The paper's boundary construction descends a straight line until it
//! "intersects with another MCC", then "make\[s\] a right/left turn" and
//! "go\[es\] along the edges" of the obstacle to its initialization or
//! opposite corner, where it rejoins the straight descent. This module
//! implements that as a wall follower over the safe-node grid: descend in
//! a main direction; on hitting an unsafe cell, rotate (engage), hug the
//! obstacle with the hand-on-wall rule, and disengage back into descent
//! once the wall falls away while heading in the main direction.
//!
//! The walker is shape-agnostic (it only queries safe/unsafe), which makes
//! it robust to obstacle clusters that the shape-based contour of a single
//! MCC would not describe (e.g. diagonally touching components). Where
//! such clusters force a different detour than the idealized per-MCC
//! contour, the walk stays conservative (hugging the union), a deviation
//! documented in DESIGN.md §3.

use meshpath_fault::{Labeling, MccId, MccSet};
use meshpath_mesh::{Coord, Dir, FxHashSet};

/// Which way the walk turns when it hits an obstacle.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Turn {
    /// Rotate clockwise on engage (wall ends up on the walk's left).
    Right,
    /// Rotate counter-clockwise on engage (wall ends up on the right).
    Left,
}

impl Turn {
    #[inline]
    fn rotate(self, d: Dir) -> Dir {
        match self {
            Turn::Right => d.clockwise(),
            Turn::Left => d.counter_clockwise(),
        }
    }

    /// The wall-side direction relative to heading `d`.
    #[inline]
    fn wall_side(self, d: Dir) -> Dir {
        match self {
            // Engaging right puts the wall on the left: left = ccw.
            Turn::Right => d.counter_clockwise(),
            Turn::Left => d.clockwise(),
        }
    }
}

/// Parameters of one boundary walk.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct WalkConfig {
    /// Straight descent direction (`-Y` for the X-boundaries of the
    /// Y-forbidden region, `-X` for the Y-boundaries of the X-region).
    pub main: Dir,
    /// Turn made on hitting an obstacle. The paper's `-X` boundary turns
    /// right; the `+X` boundary turns left (and the `-Y`/`+Y` boundaries
    /// turn left/right respectively).
    pub turn: Turn,
}

impl WalkConfig {
    /// The `-X` boundary of the Y-forbidden region: descend south, turn
    /// right, hug obstacles on the left.
    pub const WEST_Y: WalkConfig = WalkConfig { main: Dir::MinusY, turn: Turn::Right };
    /// The `+X` boundary: descend south, turn left.
    pub const EAST_Y: WalkConfig = WalkConfig { main: Dir::MinusY, turn: Turn::Left };
    /// The `-Y` boundary of the X-forbidden region: head west, turn left.
    pub const SOUTH_X: WalkConfig = WalkConfig { main: Dir::MinusX, turn: Turn::Left };
    /// The `+Y` boundary: head west, turn right.
    pub const NORTH_X: WalkConfig = WalkConfig { main: Dir::MinusX, turn: Turn::Right };
}

/// The result of a boundary walk.
#[derive(Clone, Debug, Default)]
pub struct Walk {
    /// Every safe node visited, in walk order (starting node first).
    pub nodes: Vec<Coord>,
    /// MCCs hit during straight descent, in hit order, with the position
    /// the walk occupied when it hit.
    pub hits: Vec<(MccId, Coord)>,
    /// True when the walk ended by leaving the mesh in the main direction
    /// (normal termination at the mesh edge).
    pub reached_edge: bool,
}

/// Runs a boundary walk from `start`.
///
/// Returns an empty walk when `start` is not a safe in-mesh node (e.g.
/// the corner of a border-touching MCC).
pub fn walk(set: &MccSet, start: Coord, cfg: WalkConfig) -> Walk {
    walk_until(set, start, cfg, usize::MAX)
}

/// Like [`walk`], but stops after `max_disengage` disengagements (used for
/// the B3 split propagations, which merge into the obstacle's own
/// boundary after rounding it once).
pub fn walk_until(set: &MccSet, start: Coord, cfg: WalkConfig, max_disengage: usize) -> Walk {
    let labeling: &Labeling = set.labeling();
    let mesh = *set.mesh();
    let mut out = Walk::default();
    if !labeling.is_safe_node(start) {
        return out;
    }

    let free = |c: Coord| labeling.is_safe_node(c);
    let mut pos = start;
    let mut heading = cfg.main;
    let mut following = false;
    let mut disengagements = 0usize;
    let mut seen: FxHashSet<(Coord, Dir, bool)> = FxHashSet::default();
    out.nodes.push(pos);

    // Generous cap: every (pos, heading, mode) triple visited at most once.
    let cap = mesh.len() * 8;
    for _ in 0..cap {
        if !seen.insert((pos, heading, following)) {
            break; // closed loop (fully enclosed walk)
        }
        if !following {
            let next = pos.step(cfg.main);
            if !mesh.contains(next) {
                out.reached_edge = true;
                break;
            }
            if free(next) {
                pos = next;
                out.nodes.push(pos);
                continue;
            }
            // Hit an obstacle: record which MCC (unsafe in-mesh cell).
            if let Some(id) = set.mcc_at(next) {
                out.hits.push((id, pos));
            }
            // Engage: rotate until a free direction appears.
            let mut d = cfg.turn.rotate(cfg.main);
            let mut rotations = 1;
            while !free(pos.step(d)) {
                d = cfg.turn.rotate(d);
                rotations += 1;
                if rotations == 4 {
                    return out; // enclosed on all sides
                }
            }
            heading = d;
            pos = pos.step(d);
            out.nodes.push(pos);
            following = true;
            continue;
        }

        // Following a wall. Disengage back into descent when heading in
        // the main direction with the wall side open.
        if heading == cfg.main && free(pos.step(cfg.turn.wall_side(cfg.main))) {
            following = false;
            disengagements += 1;
            if disengagements >= max_disengage {
                break;
            }
            continue;
        }
        // Hand-on-wall preference: wall side, straight, away, back.
        let prefs =
            [cfg.turn.wall_side(heading), heading, cfg.turn.rotate(heading), heading.opposite()];
        let mut moved = false;
        for d in prefs {
            if free(pos.step(d)) {
                heading = d;
                pos = pos.step(d);
                out.nodes.push(pos);
                moved = true;
                break;
            }
        }
        if !moved {
            break; // isolated pocket
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use meshpath_fault::{BorderPolicy, MccSet};
    use meshpath_mesh::{FaultSet, Mesh, Orientation};

    fn set(mesh: Mesh, faults: &[(i32, i32)]) -> MccSet {
        let fs = FaultSet::from_coords(mesh, faults.iter().map(|&(x, y)| Coord::new(x, y)));
        MccSet::build(&fs, Orientation::IDENTITY, BorderPolicy::Open)
    }

    #[test]
    fn straight_descent_to_edge() {
        let s = set(Mesh::square(8), &[(4, 6)]);
        let w = walk(&s, Coord::new(2, 5), WalkConfig::WEST_Y);
        assert!(w.reached_edge);
        assert!(w.hits.is_empty());
        let expect: Vec<Coord> = (0..=5).rev().map(|y| Coord::new(2, y)).collect();
        assert_eq!(w.nodes, expect);
    }

    #[test]
    fn west_walk_rounds_a_single_cell() {
        // Obstacle at (5,5); descend column 5 from (5,7). The walk must
        // turn right (west), hug to the obstacle's corner (4,4), and
        // resume descent on column 4.
        let s = set(Mesh::square(10), &[(5, 5)]);
        let w = walk(&s, Coord::new(5, 7), WalkConfig::WEST_Y);
        assert!(w.reached_edge);
        assert_eq!(w.hits.len(), 1);
        assert!(w.nodes.contains(&Coord::new(4, 6)));
        assert!(w.nodes.contains(&Coord::new(4, 4))); // the corner v
        assert!(w.nodes.contains(&Coord::new(4, 0)));
        assert!(!w.nodes.contains(&Coord::new(5, 4))); // never east of wall
    }

    #[test]
    fn east_walk_rounds_via_opposite_corner() {
        let s = set(Mesh::square(10), &[(5, 5)]);
        let w = walk(&s, Coord::new(5, 7), WalkConfig::EAST_Y);
        assert!(w.reached_edge);
        assert!(w.nodes.contains(&Coord::new(6, 6))); // the opposite corner v'
        assert!(w.nodes.contains(&Coord::new(6, 0)));
        assert!(!w.nodes.contains(&Coord::new(4, 4)));
    }

    #[test]
    fn east_walk_climbs_a_staircase_top() {
        // Obstacle cells (5,5),(6,5),(6,6): the east walk from (5,7) must
        // round the NE corner (7,7) and descend column 7.
        let s = set(Mesh::square(10), &[(5, 5), (6, 5), (6, 6)]);
        let w = walk(&s, Coord::new(5, 7), WalkConfig::EAST_Y);
        assert!(w.reached_edge);
        assert!(w.nodes.contains(&Coord::new(7, 7)));
        assert!(w.nodes.contains(&Coord::new(7, 4)));
        assert!(w.nodes.contains(&Coord::new(7, 0)));
    }

    #[test]
    fn south_x_walk_heads_west_and_hugs_south() {
        // Obstacle at (4,5); walk west along row 5 from (7,5): left turn
        // (south), hug to the obstacle's corner (3,4), resume west on row 4.
        let s = set(Mesh::square(10), &[(4, 5)]);
        let w = walk(&s, Coord::new(7, 5), WalkConfig::SOUTH_X);
        assert!(w.reached_edge);
        assert!(w.nodes.contains(&Coord::new(5, 4)));
        assert!(w.nodes.contains(&Coord::new(3, 4))); // corner v
        assert!(w.nodes.contains(&Coord::new(0, 4)));
    }

    #[test]
    fn north_x_walk_rounds_via_opposite_corner() {
        let s = set(Mesh::square(10), &[(4, 5)]);
        let w = walk(&s, Coord::new(7, 5), WalkConfig::NORTH_X);
        assert!(w.reached_edge);
        assert!(w.nodes.contains(&Coord::new(5, 6)));
        assert!(w.nodes.contains(&Coord::new(3, 6))); // past v' = (5,6)
        assert!(w.nodes.contains(&Coord::new(0, 6)));
    }

    #[test]
    fn unsafe_start_yields_empty_walk() {
        let s = set(Mesh::square(8), &[(3, 3)]);
        let w = walk(&s, Coord::new(3, 3), WalkConfig::WEST_Y);
        assert!(w.nodes.is_empty());
        assert!(!w.reached_edge);
    }

    #[test]
    fn split_walk_stops_after_one_disengage() {
        // Two obstacles stacked: the bounded walk rounds only the first.
        let s = set(Mesh::square(12), &[(5, 8), (4, 3)]);
        let w = walk_until(&s, Coord::new(5, 10), WalkConfig::WEST_Y, 1);
        assert!(!w.reached_edge);
        assert_eq!(w.hits.len(), 1);
        // It rounded (5,8) to its corner (4,7) and stopped there.
        assert!(w.nodes.contains(&Coord::new(4, 7)));
        assert!(!w.nodes.contains(&Coord::new(3, 2)));
    }

    #[test]
    fn walls_of_the_mesh_do_not_trap_the_walker() {
        // Obstacle touching the west edge: the west walk cannot pass on
        // the west side and must terminate without looping forever.
        let s = set(Mesh::square(8), &[(0, 4), (1, 4)]);
        let w = walk(&s, Coord::new(0, 6), WalkConfig::WEST_Y);
        assert!(!w.nodes.is_empty());
        // Termination is the property under test; the exact path may hug
        // around the east side of the obstacle.
    }
}
