//! The three information models as per-node knowledge tables.
//!
//! [`InfoModel::build`] materializes, for one [`MccSet`] (i.e. one fault
//! configuration under one orientation), *which nodes hold which MCC's
//! shape information* under B1, B2 or B3, together with the Fig. 5(c)
//! cost metric: the set of nodes involved in the propagation.
//!
//! | model | knowledge carriers |
//! |-------|--------------------|
//! | B1 | identification contour, `-X` and `-Y` boundary polylines |
//! | B2 | B1 + `+X`/`+Y` polylines + **every node inside the forbidden regions** (the Algorithm 4 broadcast) |
//! | B3 | B1 + `+X`/`+Y` polylines + split propagations + relation records |
//!
//! Knowledge is stored as one bit-set per MCC, so `knows(node, mcc)` is
//! O(1) and the routing layer can scan candidates cheaply.

use meshpath_fault::{Mcc, MccId, MccSet};
use meshpath_mesh::{BitGrid, Coord, FxHashSet, Mesh};
use serde::{Deserialize, Serialize};

use crate::boundary::BoundarySet;
use crate::walker::Walk;

/// One carrier set (the nodes holding one MCC's triple): dense bits on
/// small meshes, a hash set of node ids on large ones. Knowledge is sparse
/// at scale — carriers cluster around the component — so per-MCC `BitGrid`s
/// would cost `O(nodes)` each (the dominant memory term of a large-mesh
/// `Network::build`). The representation follows the labeling's own mask
/// storage, so sparse labelings never materialize dense knowledge tables.
#[derive(Clone, Debug)]
enum NodeSet {
    Dense(BitGrid),
    Sparse { mesh: Mesh, set: FxHashSet<u32> },
}

impl NodeSet {
    fn new(mesh: Mesh, sparse: bool) -> Self {
        if sparse {
            NodeSet::Sparse { mesh, set: FxHashSet::default() }
        } else {
            NodeSet::Dense(BitGrid::new(mesh))
        }
    }

    /// Inserts the node at `c`; returns whether it was newly inserted.
    fn insert(&mut self, c: Coord) -> bool {
        match self {
            NodeSet::Dense(g) => g.insert(c),
            NodeSet::Sparse { mesh, set } => set.insert(mesh.id(c).0),
        }
    }

    /// True when the node at `c` is in the set (false out of mesh).
    #[inline]
    fn contains(&self, c: Coord) -> bool {
        match self {
            NodeSet::Dense(g) => g.contains(c),
            NodeSet::Sparse { mesh, set } => {
                matches!(mesh.try_id(c), Some(id) if set.contains(&id.0))
            }
        }
    }

    fn count(&self) -> usize {
        match self {
            NodeSet::Dense(g) => g.count(),
            NodeSet::Sparse { set, .. } => set.len(),
        }
    }

    /// In-place union; both sets share a mesh and a representation.
    fn union_with(&mut self, other: &NodeSet) {
        match (self, other) {
            (NodeSet::Dense(a), NodeSet::Dense(b)) => a.union_with(b),
            (NodeSet::Sparse { set: a, .. }, NodeSet::Sparse { set: b, .. }) => {
                a.extend(b.iter().copied());
            }
            _ => unreachable!("NodeSet representations diverged within one model"),
        }
    }
}

/// Which information model a table was built under.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum ModelKind {
    /// Boundary lines only (prior work, Algorithm 1).
    B1,
    /// Boundaries + broadcast into the forbidden regions (Algorithm 4).
    B2,
    /// Boundaries + relation records, no broadcast (Algorithm 6).
    B3,
}

impl ModelKind {
    /// All three models, in paper order.
    pub const ALL: [ModelKind; 3] = [ModelKind::B1, ModelKind::B2, ModelKind::B3];

    /// Display name used in tables and plots.
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::B1 => "B1",
            ModelKind::B2 => "B2",
            ModelKind::B3 => "B3",
        }
    }
}

/// Cost of one propagation (one configuration, one orientation).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PropagationStats {
    /// Distinct nodes that carried at least one message (union over MCCs).
    pub involved_nodes: usize,
    /// Safe nodes in the mesh (the denominator of Fig. 5c).
    pub safe_nodes: usize,
    /// Estimated messages (every node forwards each triple it relays once).
    pub messages: u64,
    /// Carriers of the single most widely propagated MCC.
    pub per_mcc_max: usize,
    /// Mean carriers per MCC.
    pub per_mcc_avg: f64,
}

impl PropagationStats {
    /// Percentage of involved nodes to total safe nodes — the system-wide
    /// union cost.
    pub fn involved_pct(&self) -> f64 {
        if self.safe_nodes == 0 {
            0.0
        } else {
            100.0 * self.involved_nodes as f64 / self.safe_nodes as f64
        }
    }

    /// Percentage of safe nodes carrying the *most expensive single MCC*'s
    /// triple — the paper's "the information only needs to broadcast to
    /// 20% of the safe nodes" reading of Fig. 5(c).
    pub fn per_mcc_max_pct(&self) -> f64 {
        if self.safe_nodes == 0 {
            0.0
        } else {
            100.0 * self.per_mcc_max as f64 / self.safe_nodes as f64
        }
    }

    /// Mean percentage of safe nodes carrying one MCC's triple.
    pub fn per_mcc_avg_pct(&self) -> f64 {
        if self.safe_nodes == 0 {
            0.0
        } else {
            100.0 * self.per_mcc_avg / self.safe_nodes as f64
        }
    }
}

/// Per-node knowledge tables of one information model.
#[derive(Clone, Debug)]
pub struct InfoModel {
    kind: ModelKind,
    mesh: Mesh,
    /// One carrier set per MCC: the nodes holding that MCC's triple.
    knowledge: Vec<NodeSet>,
    /// Union of all carriers (Fig. 5c numerator).
    involved: NodeSet,
    /// Eq.-4 successor per MCC (type-I), resolved at build time; `None`
    /// for B1/B2 (which do not record relations) and for chain tails.
    succ_y: Vec<Option<MccId>>,
    /// Eq.-4 successor per MCC (type-II).
    succ_x: Vec<Option<MccId>>,
    /// Y-region merge lists (self + transitive boundary hits).
    merged_y: Vec<Vec<MccId>>,
    /// X-region merge lists.
    merged_x: Vec<Vec<MccId>>,
    stats: PropagationStats,
}

impl InfoModel {
    /// Builds the knowledge tables of `kind` for `set`, reusing an
    /// already-constructed [`BoundarySet`].
    pub fn build_with(set: &MccSet, bounds: &BoundarySet, kind: ModelKind) -> Self {
        let mesh = *set.mesh();
        let sparse = set.labeling().mask_is_sparse();
        let mut knowledge: Vec<NodeSet> = Vec::with_capacity(set.len());
        let mut involved = NodeSet::new(mesh, sparse);
        let mut messages = 0u64;

        for mcc in set.iter() {
            let b = bounds.get(mcc.id());
            let mut grid = NodeSet::new(mesh, sparse);
            let mut absorb = |walk_nodes: &[Coord], messages: &mut u64| {
                for &c in walk_nodes {
                    grid.insert(c);
                    *messages += 1;
                }
            };

            // Identification contour (all models run Algorithm 1 step 1).
            absorb(&b.edge_nodes, &mut messages);
            // -X / -Y boundaries (all models).
            absorb(&b.west_y.nodes, &mut messages);
            absorb(&b.south_x.nodes, &mut messages);

            if kind != ModelKind::B1 {
                // +X / +Y boundaries (B2 and B3).
                absorb(&b.east_y.nodes, &mut messages);
                absorb(&b.north_x.nodes, &mut messages);
            }
            if kind == ModelKind::B3 {
                for w in b.splits_y.iter().chain(&b.splits_x) {
                    absorb(&w.nodes, &mut messages);
                }
            }
            if kind == ModelKind::B2 {
                // Algorithm 4 step 5: broadcast into the forbidden region
                // enclosed between the two boundary polylines...
                for c in funnel_y(set, mcc, &b.west_y, &b.east_y) {
                    if grid.insert(c) {
                        messages += 1;
                    }
                }
                for c in funnel_x(set, mcc, &b.south_x, &b.north_x) {
                    if grid.insert(c) {
                        messages += 1;
                    }
                }
                // ...and into the shadows of every MCC whose region merged
                // into this one ("R_Y(v) merges into R_Y(c)"): a node
                // blocked by a merged member must know the root's triple
                // even where the boundary walks could not pass (clusters
                // wedged against the mesh rim).
                for &g in &b.merged_y {
                    let gm = set.get(g);
                    for (i, span) in gm.cols().iter().enumerate() {
                        let x = gm.x0() + i as i32;
                        for y in 0..span.lo {
                            let c = Coord::new(x, y);
                            if set.labeling().is_safe_node(c) && grid.insert(c) {
                                messages += 1;
                            }
                        }
                    }
                }
                for &g in &b.merged_x {
                    let gm = set.get(g);
                    let ymin = gm.cols()[0].lo;
                    let ymax = gm.opposite().y - 1;
                    for y in ymin..=ymax {
                        if let Some((w, _)) = gm.row_range(y) {
                            for x in 0..w {
                                let c = Coord::new(x, y);
                                if set.labeling().is_safe_node(c) && grid.insert(c) {
                                    messages += 1;
                                }
                            }
                        }
                    }
                }
            }

            involved.union_with(&grid);
            knowledge.push(grid);
        }

        if kind == ModelKind::B2 {
            // Region-merge fixpoint: "R_Y(v) merges into R_Y(c)" makes
            // the root's triple known throughout every merged member's
            // region, transitively (the broadcast carries the merged
            // triple along the joint boundaries). Iterate to a fixpoint —
            // the merge graph can contain cycles via opposite-side walks.
            for _pass in 0..8 {
                let mut changed = false;
                for c in 0..set.len() {
                    let members: Vec<usize> = bounds
                        .get(MccId(c as u32))
                        .merged_y
                        .iter()
                        .chain(&bounds.get(MccId(c as u32)).merged_x)
                        .map(|id| id.index())
                        .filter(|&v| v != c)
                        .collect();
                    for v in members {
                        let before = knowledge[c].count();
                        let src = knowledge[v].clone();
                        knowledge[c].union_with(&src);
                        if knowledge[c].count() != before {
                            changed = true;
                        }
                    }
                }
                if !changed {
                    break;
                }
            }
            for g in &knowledge {
                involved.union_with(g);
            }
        }

        let n = set.len();
        let (succ_y, succ_x) = if kind == ModelKind::B3 {
            (
                (0..n).map(|i| bounds.succ_y(set, MccId(i as u32))).collect(),
                (0..n).map(|i| bounds.succ_x(set, MccId(i as u32))).collect(),
            )
        } else {
            (vec![None; n], vec![None; n])
        };

        let per_mcc_max = knowledge.iter().map(|g| g.count()).max().unwrap_or(0);
        let per_mcc_avg = if knowledge.is_empty() {
            0.0
        } else {
            knowledge.iter().map(|g| g.count()).sum::<usize>() as f64 / knowledge.len() as f64
        };
        let stats = PropagationStats {
            involved_nodes: involved.count(),
            safe_nodes: set.labeling().safe_count(),
            messages,
            per_mcc_max,
            per_mcc_avg,
        };

        InfoModel {
            kind,
            mesh,
            knowledge,
            involved,
            succ_y,
            succ_x,
            merged_y: bounds.iter().map(|b| b.merged_y.clone()).collect(),
            merged_x: bounds.iter().map(|b| b.merged_x.clone()).collect(),
            stats,
        }
    }

    /// Builds boundaries and the knowledge tables in one go.
    pub fn build(set: &MccSet, kind: ModelKind) -> Self {
        let bounds = BoundarySet::build(set);
        Self::build_with(set, &bounds, kind)
    }

    /// The model kind.
    #[inline]
    pub fn kind(&self) -> ModelKind {
        self.kind
    }

    /// True when the node at oriented coordinate `oc` holds `mcc`'s triple.
    #[inline]
    pub fn knows(&self, oc: Coord, mcc: MccId) -> bool {
        self.mesh.contains(oc) && self.knowledge[mcc.index()].contains(oc)
    }

    /// The MCCs known at `oc` (O(#MCC) scan over bit-sets).
    pub fn known_at(&self, oc: Coord) -> Vec<MccId> {
        (0..self.knowledge.len() as u32).map(MccId).filter(|&id| self.knows(oc, id)).collect()
    }

    /// Eq.-4 successor of `v` in a type-I sequence (B3 only).
    #[inline]
    pub fn succ_y(&self, v: MccId) -> Option<MccId> {
        self.succ_y[v.index()]
    }

    /// Eq.-4 successor of `v` in a type-II sequence (B3 only).
    #[inline]
    pub fn succ_x(&self, v: MccId) -> Option<MccId> {
        self.succ_x[v.index()]
    }

    /// MCCs whose Y-shadows merged into `f`'s Y-region (includes `f`).
    #[inline]
    pub fn merged_y(&self, f: MccId) -> &[MccId] {
        &self.merged_y[f.index()]
    }

    /// MCCs whose X-shadows merged into `f`'s X-region (includes `f`).
    #[inline]
    pub fn merged_x(&self, f: MccId) -> &[MccId] {
        &self.merged_x[f.index()]
    }

    /// Propagation cost (Fig. 5c).
    #[inline]
    pub fn stats(&self) -> PropagationStats {
        self.stats
    }

    /// Number of distinct carrier nodes (the Fig. 5c numerator).
    #[inline]
    pub fn involved_count(&self) -> usize {
        self.involved.count()
    }
}

/// The Y-forbidden region of `mcc`: safe nodes enclosed between the
/// `-X`/`+X` boundary polylines, south of the component (paper Fig. 4(b)).
///
/// Row scan: for every row, the west limit is the westmost `-X` polyline
/// node (or the lower-staircase edge within the component's band), the
/// east limit the eastmost `+X` polyline node. Rows not covered by a
/// polyline (early-terminated walks around border-touching clusters) are
/// skipped — a conservative under-approximation noted in DESIGN.md §3.
pub fn funnel_y(set: &MccSet, mcc: &Mcc, west: &Walk, east: &Walk) -> Vec<Coord> {
    let mesh = *set.mesh();
    let labeling = set.labeling();
    let height = mesh.height() as i32;
    let yc = mcc.corner().y;
    let yct = mcc.opposite().y.min(height - 1);
    if yct < 0 {
        return Vec::new();
    }

    let mut wbx = vec![i32::MAX; height as usize];
    for &c in &west.nodes {
        if (0..height).contains(&c.y) {
            wbx[c.y as usize] = wbx[c.y as usize].min(c.x);
        }
    }
    let mut ebx = vec![i32::MIN; height as usize];
    for &c in &east.nodes {
        if (0..height).contains(&c.y) {
            ebx[c.y as usize] = ebx[c.y as usize].max(c.x);
        }
    }
    let mut out = Vec::new();
    for y in 0..=yct {
        let west_limit = if y <= yc {
            wbx[y as usize]
        } else {
            // Band rows: the region starts at the lower staircase edge.
            staircase_west_limit(mcc, y)
        };
        let east_limit = if ebx[y as usize] != i32::MIN {
            ebx[y as usize]
        } else {
            // No +X polyline (unusable opposite corner): fall back to the
            // component's east flank.
            mcc.x1() + 1
        };
        if west_limit == i32::MAX || west_limit > east_limit {
            continue;
        }
        for x in west_limit..=east_limit {
            let c = Coord::new(x, y);
            if labeling.is_safe_node(c) {
                out.push(c);
            }
        }
    }
    out
}

/// West limit of the Y-region inside the component's vertical band: the
/// first column whose cells start strictly above `y`.
fn staircase_west_limit(mcc: &Mcc, y: i32) -> i32 {
    for (i, s) in mcc.cols().iter().enumerate() {
        if s.lo > y {
            return mcc.x0() + i as i32;
        }
    }
    mcc.x1() + 1
}

/// The X-forbidden region: the 90-degree analogue of [`funnel_y`].
pub fn funnel_x(set: &MccSet, mcc: &Mcc, south: &Walk, north: &Walk) -> Vec<Coord> {
    let mesh = *set.mesh();
    let labeling = set.labeling();
    let width = mesh.width() as i32;
    let xc = mcc.corner().x;
    let xct = mcc.opposite().x.min(width - 1);
    if xct < 0 {
        return Vec::new();
    }

    let mut sby = vec![i32::MAX; width as usize];
    for &c in &south.nodes {
        if (0..width).contains(&c.x) {
            sby[c.x as usize] = sby[c.x as usize].min(c.y);
        }
    }
    let mut nby = vec![i32::MIN; width as usize];
    for &c in &north.nodes {
        if (0..width).contains(&c.x) {
            nby[c.x as usize] = nby[c.x as usize].max(c.y);
        }
    }
    let mut out = Vec::new();
    for x in 0..=xct {
        let south_limit = if x <= xc { sby[x as usize] } else { staircase_south_limit(mcc, x) };
        let north_limit =
            if nby[x as usize] != i32::MIN { nby[x as usize] } else { mcc.opposite().y };
        if south_limit == i32::MAX || south_limit > north_limit {
            continue;
        }
        for y in south_limit..=north_limit {
            let c = Coord::new(x, y);
            if labeling.is_safe_node(c) {
                out.push(c);
            }
        }
    }
    out
}

/// South limit of the X-region inside the component's horizontal band:
/// the first row whose cells start strictly east of `x`.
fn staircase_south_limit(mcc: &Mcc, x: i32) -> i32 {
    let ymin = mcc.cols()[0].lo;
    let ymax = mcc.opposite().y - 1;
    for y in ymin..=ymax {
        if let Some((w, _)) = mcc.row_range(y) {
            if w > x {
                return y;
            }
        }
    }
    ymax + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use meshpath_fault::BorderPolicy;
    use meshpath_mesh::{FaultSet, Orientation};

    fn set(mesh: Mesh, faults: &[(i32, i32)]) -> MccSet {
        let fs = FaultSet::from_coords(mesh, faults.iter().map(|&(x, y)| Coord::new(x, y)));
        MccSet::build(&fs, Orientation::IDENTITY, BorderPolicy::Open)
    }

    #[test]
    fn b1_knowledge_lives_on_minus_boundaries() {
        let s = set(Mesh::square(10), &[(5, 5)]);
        let m = InfoModel::build(&s, ModelKind::B1);
        let id = MccId(0);
        assert!(m.knows(Coord::new(4, 4), id)); // corner c
        assert!(m.knows(Coord::new(4, 0), id)); // -X boundary
        assert!(m.knows(Coord::new(0, 4), id)); // -Y boundary
        assert!(m.knows(Coord::new(5, 4), id)); // edge node
        assert!(!m.knows(Coord::new(6, 0), id)); // +X boundary: B2/B3 only
        assert!(!m.knows(Coord::new(5, 2), id)); // shadow interior: B2 only
    }

    #[test]
    fn b3_adds_plus_boundaries_but_no_interior() {
        let s = set(Mesh::square(10), &[(5, 5)]);
        let m = InfoModel::build(&s, ModelKind::B3);
        let id = MccId(0);
        assert!(m.knows(Coord::new(6, 0), id)); // +X boundary
        assert!(m.knows(Coord::new(0, 6), id)); // +Y boundary
        assert!(!m.knows(Coord::new(5, 2), id)); // interior still unknown
    }

    #[test]
    fn b2_broadcasts_into_the_shadow() {
        let s = set(Mesh::square(10), &[(5, 5)]);
        let m = InfoModel::build(&s, ModelKind::B2);
        let id = MccId(0);
        // Every safe node in the column shadow below the fault now knows.
        for y in 0..5 {
            assert!(m.knows(Coord::new(5, y), id), "(5,{y}) must know");
        }
        // And the row shadow west of it (X-region broadcast).
        for x in 0..5 {
            assert!(m.knows(Coord::new(x, 5), id), "({x},5) must know");
        }
        // But not arbitrary far-away nodes.
        assert!(!m.knows(Coord::new(9, 9), id));
    }

    #[test]
    fn cost_ordering_matches_the_paper() {
        // B2 involves the most nodes; B1 the fewest; B3 close to B1.
        let s = set(Mesh::square(20), &[(5, 5), (12, 9), (9, 14), (15, 3), (3, 12), (7, 7)]);
        let b1 = InfoModel::build(&s, ModelKind::B1).stats();
        let b2 = InfoModel::build(&s, ModelKind::B2).stats();
        let b3 = InfoModel::build(&s, ModelKind::B3).stats();
        assert!(b1.involved_nodes <= b3.involved_nodes);
        assert!(b3.involved_nodes <= b2.involved_nodes);
        assert!(b2.involved_nodes < b2.safe_nodes, "B2 must stay below flooding");
        assert!(b1.involved_pct() > 0.0);
    }

    #[test]
    fn merged_lists_track_boundary_hits() {
        let s = set(Mesh::square(12), &[(5, 8), (4, 3)]);
        let m = InfoModel::build(&s, ModelKind::B2);
        let f = s.iter().find(|mc| mc.contains(Coord::new(5, 8))).expect("F").id();
        let v = s.iter().find(|mc| mc.contains(Coord::new(4, 3))).expect("V").id();
        assert!(m.merged_y(f).contains(&v));
        assert!(m.merged_y(f).contains(&f));
        assert_eq!(m.merged_y(v), &[v]);
    }

    #[test]
    fn known_at_collects_all_carriers() {
        let s = set(Mesh::square(12), &[(5, 8), (4, 3)]);
        let m = InfoModel::build(&s, ModelKind::B2);
        // A node deep in both shadows knows both MCCs.
        let known = m.known_at(Coord::new(4, 1));
        assert_eq!(known.len(), 2);
    }

    #[test]
    fn empty_mesh_has_empty_model() {
        let s = set(Mesh::square(8), &[]);
        let m = InfoModel::build(&s, ModelKind::B2);
        assert_eq!(m.stats().involved_nodes, 0);
        assert_eq!(m.stats().involved_pct(), 0.0);
        assert!(m.known_at(Coord::new(3, 3)).is_empty());
    }

    mod representation_equivalence {
        use super::*;
        use meshpath_fault::Labeling;
        use meshpath_mesh::{FaultInjection, Orientation};
        use proptest::prelude::*;
        use rand::rngs::StdRng;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            /// An `InfoModel` built over a sparse labeling (hash-set
            /// carrier sets) must agree bit for bit with one built over
            /// the dense labeling: same knowledge, same propagation stats.
            #[test]
            fn sparse_knowledge_matches_dense(
                ((n, faults), (seed, o_ix, kind_ix)) in
                    ((5u32..16, 0usize..8), (0u64..u64::MAX, 0usize..4, 0usize..3))
            ) {
                let mesh = Mesh::square(n);
                let mut rng = StdRng::seed_from_u64(seed);
                let fs = FaultSet::random(mesh, faults, FaultInjection::Uniform, &mut rng);
                let o = Orientation::ALL[o_ix];
                let kind = ModelKind::ALL[kind_ix];
                let dense = MccSet::from_labeling(
                    Labeling::compute_forced(&fs, o, meshpath_fault::BorderPolicy::Open, false),
                    &fs,
                );
                let sparse = MccSet::from_labeling(
                    Labeling::compute_forced(&fs, o, meshpath_fault::BorderPolicy::Open, true),
                    &fs,
                );
                let dm = InfoModel::build(&dense, kind);
                let sm = InfoModel::build(&sparse, kind);
                prop_assert_eq!(dm.stats(), sm.stats());
                prop_assert_eq!(dm.involved_count(), sm.involved_count());
                for oc in mesh.iter() {
                    for id in (0..dense.len() as u32).map(MccId) {
                        prop_assert_eq!(
                            dm.knows(oc, id),
                            sm.knows(oc, id),
                            "knows({:?}, {:?}) diverged", oc, id
                        );
                    }
                    prop_assert_eq!(dm.known_at(oc), sm.known_at(oc));
                }
            }
        }
    }
}
