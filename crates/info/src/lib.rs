//! # meshpath-info
//!
//! The fault-information models of Jiang & Wu (IPDPS 2007):
//!
//! * **B1** (prior work, Algorithm 1): per MCC, the identified shape
//!   propagates along one boundary line per axis — the `-X` boundary
//!   descending from the initialization corner `c` and the `-Y` boundary
//!   heading west from `c` — turning around intervening MCCs and joining
//!   their boundaries.
//! * **B2** (proposed, Algorithm 4): additionally builds the `+X`/`+Y`
//!   boundaries from the opposite corner `c'` and **broadcasts** the
//!   triple into the forbidden region enclosed between the two boundary
//!   polylines, so that every node inside the region can make
//!   shortest-path decisions.
//! * **B3** (practical extension, Algorithm 6): both boundaries plus
//!   *relation records* (`F(v) -> F(c)`, Eq. 4) that let boundary nodes
//!   reconstruct blocking sequences without any interior broadcast.
//!
//! The construction machinery:
//!
//! * [`walker`] — a wall-following polyline walker implementing the
//!   paper's "make a right/left turn and go along the edges of `F(v)`".
//! * [`boundary`] — the four per-MCC boundary polylines, hit records and
//!   merge lists.
//! * [`model`] — [`InfoModel`]: per-node knowledge tables, involved-node
//!   accounting (Fig. 5c), and Eq.-4 successor resolution.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod boundary;
pub mod model;
pub mod walker;

pub use boundary::{BoundarySet, MccBoundaries};
pub use model::{InfoModel, ModelKind, PropagationStats};
pub use walker::{Walk, WalkConfig};
