//! The discrete-event kernel.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use meshpath_mesh::{BitGrid, Coord, Grid, Mesh};

/// Virtual time in hops: every neighbor link has unit latency.
pub type VirtualTime = u64;

/// The per-node behaviour of a distributed protocol.
///
/// A process reacts to a start signal and to incoming messages, and may
/// send messages to mesh neighbors through [`Outbox`]. Processes never see
/// global state: everything they learn arrives in messages, exactly like
/// the paper's "information exchanges among neighbors".
pub trait Process {
    /// The message type exchanged by this protocol.
    type Msg: Clone;

    /// Called once at time zero for every node.
    fn on_start(&mut self, at: Coord, out: &mut Outbox<'_, Self::Msg>);

    /// Called when a message from neighbor `from` arrives at `at`.
    fn on_message(
        &mut self,
        at: Coord,
        from: Coord,
        msg: &Self::Msg,
        out: &mut Outbox<'_, Self::Msg>,
    );
}

/// Send handle passed to process callbacks.
pub struct Outbox<'a, M> {
    from: Coord,
    now: VirtualTime,
    mesh: Mesh,
    queue: &'a mut BinaryHeap<Reverse<PendingKey>>,
    payloads: &'a mut Vec<Option<Pending<M>>>,
    sent: &'a mut u64,
}

impl<M> Outbox<'_, M> {
    /// Sends `msg` to the neighbor at `to` with unit latency.
    ///
    /// # Panics
    /// Panics if `to` is not an in-mesh neighbor of the sending node
    /// (the mesh has no other links).
    pub fn send(&mut self, to: Coord, msg: M) {
        assert!(
            self.mesh.contains(to) && self.from.is_neighbor(to),
            "{:?} cannot send to non-neighbor {:?}",
            self.from,
            to
        );
        let seq = self.payloads.len() as u64;
        self.payloads.push(Some(Pending { to, from: self.from, msg }));
        self.queue.push(Reverse(PendingKey { at: self.now + 1, seq }));
        *self.sent += 1;
    }

    /// The sending node's coordinate.
    pub fn this(&self) -> Coord {
        self.from
    }

    /// Current virtual time.
    pub fn now(&self) -> VirtualTime {
        self.now
    }

    /// The mesh (for bounds checks when choosing neighbors).
    pub fn mesh(&self) -> Mesh {
        self.mesh
    }
}

#[derive(PartialEq, Eq, PartialOrd, Ord)]
struct PendingKey {
    at: VirtualTime,
    seq: u64,
}

struct Pending<M> {
    to: Coord,
    from: Coord,
    msg: M,
}

/// Statistics of one simulation run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Total messages delivered.
    pub messages: u64,
    /// Virtual time of the last delivery.
    pub finish_time: VirtualTime,
    /// Number of distinct nodes that sent or received at least one
    /// message — the paper's "nodes involved in the information
    /// propagation".
    pub nodes_involved: usize,
}

/// The simulator: owns one process instance per node.
pub struct Simulator<P: Process> {
    mesh: Mesh,
    nodes: Grid<P>,
    involved: BitGrid,
    queue: BinaryHeap<Reverse<PendingKey>>,
    payloads: Vec<Option<Pending<P::Msg>>>,
    now: VirtualTime,
    sent: u64,
    delivered: u64,
    budget: u64,
}

impl<P: Process> Simulator<P> {
    /// Builds a simulator with one process per node, produced by `init`.
    pub fn new(mesh: Mesh, init: impl FnMut(Coord) -> P) -> Self {
        Simulator {
            mesh,
            nodes: Grid::from_fn(mesh, init),
            involved: BitGrid::new(mesh),
            queue: BinaryHeap::new(),
            payloads: Vec::new(),
            now: 0,
            sent: 0,
            delivered: 0,
            // Generous default: protocols here terminate in O(n^2) messages.
            budget: (mesh.len() as u64).saturating_mul(64).max(1 << 20),
        }
    }

    /// Overrides the delivery budget (guard against non-terminating
    /// protocols in tests).
    pub fn with_budget(mut self, budget: u64) -> Self {
        self.budget = budget;
        self
    }

    /// Runs `on_start` everywhere, then delivers messages until the queue
    /// drains (or the budget trips, which panics: a protocol bug).
    pub fn run(&mut self) -> SimStats {
        // Start phase at t = 0.
        for c in self.mesh.iter() {
            let mut out = Outbox {
                from: c,
                now: self.now,
                mesh: self.mesh,
                queue: &mut self.queue,
                payloads: &mut self.payloads,
                sent: &mut self.sent,
            };
            Self::dispatch_start(&mut self.nodes, c, &mut out);
        }
        let mut finish = 0;
        while let Some(Reverse(PendingKey { at, seq })) = self.queue.pop() {
            let Pending { to, from, msg } =
                self.payloads[seq as usize].take().expect("message delivered twice");
            self.now = at;
            finish = at;
            self.delivered += 1;
            assert!(
                self.delivered <= self.budget,
                "simulation exceeded its delivery budget ({}): protocol not terminating?",
                self.budget
            );
            self.involved.insert(to);
            self.involved.insert(from);
            let mut out = Outbox {
                from: to,
                now: self.now,
                mesh: self.mesh,
                queue: &mut self.queue,
                payloads: &mut self.payloads,
                sent: &mut self.sent,
            };
            Self::dispatch_message(&mut self.nodes, to, from, &msg, &mut out);
        }
        SimStats {
            messages: self.delivered,
            finish_time: finish,
            nodes_involved: self.involved.count(),
        }
    }

    fn dispatch_start(nodes: &mut Grid<P>, c: Coord, out: &mut Outbox<'_, P::Msg>) {
        nodes[c].on_start(c, out);
    }

    fn dispatch_message(
        nodes: &mut Grid<P>,
        to: Coord,
        from: Coord,
        msg: &P::Msg,
        out: &mut Outbox<'_, P::Msg>,
    ) {
        nodes[to].on_message(to, from, msg, out);
    }

    /// Immutable access to a node's process (post-run inspection).
    pub fn node(&self, c: Coord) -> &P {
        &self.nodes[c]
    }

    /// The set of nodes that touched a message.
    pub fn involved(&self) -> &BitGrid {
        &self.involved
    }

    /// The mesh.
    pub fn mesh(&self) -> Mesh {
        self.mesh
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meshpath_mesh::Dir;

    /// Flood protocol: one seed broadcasts a token; everyone forwards once.
    struct Flood {
        seed: bool,
        seen: bool,
    }

    impl Process for Flood {
        type Msg = ();

        fn on_start(&mut self, at: Coord, out: &mut Outbox<'_, ()>) {
            if self.seed {
                self.seen = true;
                for d in Dir::ALL {
                    let n = at.step(d);
                    if out.mesh().contains(n) {
                        out.send(n, ());
                    }
                }
            }
        }

        fn on_message(&mut self, at: Coord, _from: Coord, _msg: &(), out: &mut Outbox<'_, ()>) {
            if !self.seen {
                self.seen = true;
                for d in Dir::ALL {
                    let n = at.step(d);
                    if out.mesh().contains(n) {
                        out.send(n, ());
                    }
                }
            }
        }
    }

    #[test]
    fn flood_reaches_every_node_in_manhattan_time() {
        let mesh = Mesh::square(9);
        let seed = Coord::new(0, 0);
        let mut sim = Simulator::new(mesh, |c| Flood { seed: c == seed, seen: false });
        let stats = sim.run();
        assert_eq!(stats.nodes_involved, mesh.len());
        // Farthest node is at Manhattan distance 16 and forwards once more
        // (a redundant echo delivered at t = 17, the last delivery).
        assert_eq!(stats.finish_time, 17);
        for c in mesh.iter() {
            assert!(sim.node(c).seen, "{c:?} not reached");
        }
    }

    #[test]
    fn no_seed_means_no_traffic() {
        let mesh = Mesh::square(4);
        let mut sim = Simulator::new(mesh, |_| Flood { seed: false, seen: false });
        let stats = sim.run();
        assert_eq!(stats.messages, 0);
        assert_eq!(stats.nodes_involved, 0);
        assert_eq!(stats.finish_time, 0);
    }

    #[test]
    fn determinism_across_runs() {
        let mesh = Mesh::square(7);
        let run = || {
            let mut sim =
                Simulator::new(mesh, |c| Flood { seed: c == Coord::new(3, 3), seen: false });
            sim.run()
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "non-neighbor")]
    fn sending_to_non_neighbor_panics() {
        struct Bad;
        impl Process for Bad {
            type Msg = ();
            fn on_start(&mut self, at: Coord, out: &mut Outbox<'_, ()>) {
                if at == Coord::new(0, 0) {
                    out.send(Coord::new(2, 2), ());
                }
            }
            fn on_message(&mut self, _: Coord, _: Coord, _: &(), _: &mut Outbox<'_, ()>) {}
        }
        let mut sim = Simulator::new(Mesh::square(3), |_| Bad);
        sim.run();
    }
}
