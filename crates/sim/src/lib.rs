//! # meshpath-sim
//!
//! A deterministic discrete-event, message-passing simulator for
//! *distributed* mesh protocols.
//!
//! The paper's information models are "fully distributed process\[es\]":
//! nodes exchange messages with their four mesh neighbors, and the cost
//! metric of Fig. 5(c) is the number of nodes that participate. This crate
//! provides the substrate those protocols execute on:
//!
//! * [`Simulator`] — an event queue with unit-latency neighbor links,
//!   virtual time, and deterministic FIFO tie-breaking;
//! * [`Process`] — the per-node state machine trait;
//! * [`SimStats`] — messages sent, distinct nodes involved, rounds.
//!
//! The kernel is intentionally small: protocols are pure functions of
//! `(local state, incoming message)` and the simulator owns scheduling.
//! Determinism is a hard requirement (experiments must be reproducible
//! bit-for-bit), so ties are broken by `(time, sequence number)`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod kernel;

pub use kernel::{Outbox, Process, SimStats, Simulator, VirtualTime};
