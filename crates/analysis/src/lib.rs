//! # meshpath-analysis
//!
//! The experiment harness reproducing the paper's evaluation (Fig. 5).
//!
//! The paper's simulator runs on a 100x100 mesh with randomly generated
//! fault counts swept from 0 to 3000 and reports, per fault count:
//!
//! * **(a)** percentage of disabled area (MAX / AVG over configurations),
//! * **(b)** number of MCCs (MAX / AVG),
//! * **(c)** percentage of safe nodes involved in information propagation
//!   for B1 / B2 / B3 (Maximum / Average),
//! * **(d)** percentage of routings that found a true shortest path for
//!   RB1 / RB2 / RB3,
//! * **(e)** relative error of the achieved path length to the optimum
//!   for E-cube / RB1 / RB2 / RB3.
//!
//! [`sweep::run_sweep`] executes the whole grid in parallel (one fault
//! configuration per task, crossbeam scoped threads) and the `fig5*`
//! binaries render each figure as an aligned table plus CSV.
//!
//! Beyond the paper, [`traffic::run_load_sweep`] drives the wormhole
//! traffic simulator (`meshpath-traffic`) over a
//! `(router, fault density, injection rate)` grid, producing the
//! latency-vs-load and accepted-throughput curves the NoC literature
//! evaluates routing functions with (`traffic_sweep` binary).
//!
//! Methodology notes (also in DESIGN.md): endpoints are drawn uniformly
//! among nodes that are healthy *and* safe for the pair's orientation,
//! and a pair is kept when the source can reach the destination (the
//! paper's "we assume that the source has the path to the destination";
//! whole-mesh connectivity would leave the high-fault sweep empty).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod fig5;
pub mod jsonl;
pub mod sweep;
pub mod table;
pub mod traffic;
pub mod workload_io;

pub use fig5::{fig5a, fig5b, fig5c, fig5d, fig5e, Fig5Data};
pub use sweep::{run_sweep, ConfigRecord, RouterAgg, SweepConfig, SweepResult};
pub use table::Table;
pub use traffic::{run_load_sweep, LoadPoint, LoadSweepConfig, LoadSweepResult};
