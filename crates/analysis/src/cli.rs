//! A dependency-free argument parser shared by the `fig5*` binaries.

use crate::sweep::SweepConfig;

/// Parses `--key value` style arguments into a [`SweepConfig`] plus an
/// optional `--out` directory for the CSV files.
///
/// Supported keys: `--mesh`, `--configs`, `--pairs`, `--seed`,
/// `--max-faults`, `--step`, `--threads`, `--out`, `--quick`.
pub fn parse_args(
    args: impl Iterator<Item = String>,
) -> Result<(SweepConfig, Option<String>), String> {
    let mut cfg = SweepConfig::default();
    let mut out = None;
    let mut max_faults = 3000usize;
    let mut step = 250usize;
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        let mut take = |name: &str| -> Result<String, String> {
            args.next().ok_or_else(|| format!("missing value for {name}"))
        };
        match arg.as_str() {
            "--mesh" => cfg.mesh = take("--mesh")?.parse().map_err(|e| format!("--mesh: {e}"))?,
            "--configs" => {
                cfg.configs_per_point =
                    take("--configs")?.parse().map_err(|e| format!("--configs: {e}"))?
            }
            "--pairs" => {
                cfg.pairs_per_config =
                    take("--pairs")?.parse().map_err(|e| format!("--pairs: {e}"))?
            }
            "--seed" => cfg.seed = take("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--max-faults" => {
                max_faults =
                    take("--max-faults")?.parse().map_err(|e| format!("--max-faults: {e}"))?
            }
            "--step" => step = take("--step")?.parse().map_err(|e| format!("--step: {e}"))?,
            "--threads" => {
                cfg.threads = take("--threads")?.parse().map_err(|e| format!("--threads: {e}"))?
            }
            "--out" => out = Some(take("--out")?),
            "--quick" => {
                cfg.mesh = 40;
                cfg.configs_per_point = 4;
                cfg.pairs_per_config = 20;
                max_faults = 480;
                step = 60;
            }
            "--help" | "-h" => {
                return Err("usage: fig5x [--mesh N] [--configs N] [--pairs N] [--seed N] \
                            [--max-faults N] [--step N] [--threads N] [--out DIR] [--quick]"
                    .into())
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if step == 0 {
        return Err("--step must be positive".into());
    }
    cfg.fault_counts = (0..=max_faults).step_by(step).collect();
    Ok((cfg, out))
}

/// Prints a table and optionally writes its CSV next to `out`.
/// The "wrote file" notice is `MESHPATH_LOG=info` chatter; write
/// *failures* stay unconditional.
pub fn emit(table: &crate::table::Table, out: &Option<String>, name: &str) {
    println!("{}", table.to_text());
    if let Some(dir) = out {
        let path = std::path::Path::new(dir).join(format!("{name}.csv"));
        if let Err(e) = std::fs::create_dir_all(dir).and_then(|()| table.write_csv(&path)) {
            eprintln!("warning: could not write {}: {e}", path.display());
        } else if meshpath_obs::enabled(meshpath_obs::LogLevel::Info) {
            eprintln!("wrote {}", path.display());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs<'a>(v: &'a [&'a str]) -> impl Iterator<Item = String> + 'a {
        v.iter().map(|s| s.to_string())
    }

    #[test]
    fn default_parse() {
        let (cfg, out) = parse_args(strs(&[])).expect("ok");
        assert_eq!(cfg.mesh, 100);
        assert_eq!(cfg.fault_counts.last(), Some(&3000));
        assert!(out.is_none());
    }

    #[test]
    fn custom_parse() {
        let (cfg, out) = parse_args(strs(&[
            "--mesh",
            "40",
            "--configs",
            "5",
            "--pairs",
            "7",
            "--max-faults",
            "100",
            "--step",
            "50",
            "--out",
            "/tmp/x",
        ]))
        .expect("ok");
        assert_eq!(cfg.mesh, 40);
        assert_eq!(cfg.configs_per_point, 5);
        assert_eq!(cfg.pairs_per_config, 7);
        assert_eq!(cfg.fault_counts, vec![0, 50, 100]);
        assert_eq!(out.as_deref(), Some("/tmp/x"));
    }

    #[test]
    fn quick_profile() {
        let (cfg, _) = parse_args(strs(&["--quick"])).expect("ok");
        assert_eq!(cfg.mesh, 40);
        assert_eq!(cfg.fault_counts.last(), Some(&480));
    }

    #[test]
    fn rejects_unknown() {
        assert!(parse_args(strs(&["--bogus"])).is_err());
        assert!(parse_args(strs(&["--mesh"])).is_err());
    }
}
