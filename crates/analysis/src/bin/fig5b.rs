//! Regenerates the paper's Fig. 5(b) series. See `--help` for knobs.

use meshpath_analysis::cli::{emit, parse_args};
use meshpath_analysis::{fig5b, run_sweep};

fn main() {
    let (cfg, out) = match parse_args(std::env::args().skip(1)) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let res = run_sweep(&cfg);
    emit(&fig5b(&res), &out, "fig5b");
}
