//! Traffic load sweep: latency-vs-injection-rate curves per router and
//! fault density.
//!
//! Usage: `traffic_sweep [--quick] [--json] [--obs] [--trace]
//! [--mesh N] [--faults A,B,..] [--rates A,B,..] [--seed N]
//! [--threads N] [--sim-threads N] [--out DIR] [--no-early-exit]
//! [--workload SPEC] [--record-trace FILE]`.
//!
//! `--workload SPEC` replaces the synthetic injection processes with a
//! scheduled workload (see `meshpath-workload`); `rate` is then
//! ignored, so sweep a single rate. SPEC is one of:
//!
//! * `trace:FILE` — replay a recorded packet trace (the format
//!   `--record-trace` writes);
//! * `dag:FILE` — a dependency-driven flow DAG file;
//! * `alltoall[:ROUNDS]` — barrier-synchronised all-to-all rounds
//!   (default 4) of `packet_len`-flit messages;
//! * `perm:L,K[,ROUNDS]` — (L,K)-permutation rounds (default 4),
//!   seeded from `--seed`.
//!
//! `--record-trace FILE` records the packet trace of the sweep's
//! single grid point (it refuses multi-point grids) and writes it to
//! FILE, replayable bit-identically with `--workload trace:FILE`.
//!
//! `--faults` and `--rates` override the sweep axes (comma-separated),
//! the knobs the large-mesh bench ladders use to bound their point
//! budget: a 256x256 `--quick` run keeps the smoke windows but sweeps
//! only the low rates that such a mesh can accept (uniform-traffic
//! bisection capacity shrinks as `4*side/nodes`, so the 16x16 smoke
//! rates would all saturate).
//!
//! `--obs` instruments every simulated point with the `meshpath-obs`
//! metrics probe (link counters, stall/occupancy histograms, phase
//! timings) and adds an `obs_report` section to the `--json` document;
//! `--trace` additionally records the packet-lifecycle flight recorder.
//! Either level leaves the simulation statistics bit-identical (pinned
//! by the golden suite).
//!
//! `--threads` sizes the sweep-level pool (simulations run in
//! parallel, one per point); `--sim-threads` shards each *single*
//! simulation across worker threads with bit-identical results — the
//! right knob for large meshes (64x64+), where one run should use all
//! cores. The two multiply, so set `--threads 1` when forcing
//! `--sim-threads` past 1.
//!
//! `--no-early-exit` disables the rate-ladder early exit (post-
//! saturation rates marked `sat` without simulating, wedged drains cut
//! short) when the full post-saturation curves are wanted.
//!
//! By default the sweep prints aligned text tables (and CSV next to
//! `--out`). With `--json` it instead emits one machine-readable JSON
//! document of flat sweep rows on stdout — the format meant for
//! recording `BENCH_*.json` trajectories across commits — and, when
//! `--out DIR` is given, also writes it to `DIR/traffic_sweep.json`.

use meshpath_analysis::cli::emit;
use meshpath_analysis::traffic::{run_load_sweep, LoadSweepConfig};
use meshpath_analysis::workload_io::{read_dag, read_trace, write_trace};
use meshpath_traffic::{ObsLevel, RoutingKind};
use meshpath_workload::WorkloadSpec;

/// Parses a `--workload` SPEC (see the module docs). `len` and `seed`
/// come from the sweep configuration.
fn parse_workload(spec: &str, len: u32, seed: u64) -> Result<WorkloadSpec, String> {
    let (kind, rest) = spec.split_once(':').unwrap_or((spec, ""));
    let read =
        |path: &str| std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"));
    match kind {
        "trace" => {
            let (entries, horizon) = read_trace(&read(rest)?).map_err(|e| e.to_string())?;
            Ok(WorkloadSpec::Trace { entries, horizon })
        }
        "dag" => Ok(WorkloadSpec::Dag(read_dag(&read(rest)?).map_err(|e| e.to_string())?)),
        "alltoall" => {
            let rounds = if rest.is_empty() {
                4
            } else {
                rest.parse().map_err(|_| format!("alltoall rounds: {rest:?}"))?
            };
            Ok(WorkloadSpec::AllToAll { rounds, len })
        }
        "perm" => {
            let parts: Vec<&str> = rest.split(',').collect();
            let num = |s: &str| s.trim().parse::<u32>().map_err(|_| format!("perm spec: {rest:?}"));
            match parts.as_slice() {
                [l, k] => {
                    Ok(WorkloadSpec::Permutation { l: num(l)?, k: num(k)?, rounds: 4, len, seed })
                }
                [l, k, rounds] => Ok(WorkloadSpec::Permutation {
                    l: num(l)?,
                    k: num(k)?,
                    rounds: num(rounds)?,
                    len,
                    seed,
                }),
                _ => Err(format!("perm spec wants L,K[,ROUNDS]: {rest:?}")),
            }
        }
        other => Err(format!(
            "unknown workload {other:?} (trace:FILE | dag:FILE | alltoall[:R] | perm:L,K[,R])"
        )),
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    // `--quick` selects the base configuration; every other flag is an
    // override applied afterwards, so argument order never matters.
    let mut cfg = if argv.iter().any(|a| a == "--quick") {
        LoadSweepConfig::smoke()
    } else {
        LoadSweepConfig::default()
    };
    let mut out: Option<String> = None;
    let mut json = false;
    let mut workload_arg: Option<String> = None;
    let mut record_trace: Option<String> = None;
    let mut args = argv.into_iter();
    while let Some(arg) = args.next() {
        let mut take = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--quick" => {}
            "--json" => json = true,
            "--obs" => cfg.sim.obs = ObsLevel::Metrics,
            "--trace" => cfg.sim.obs = ObsLevel::Trace,
            "--no-early-exit" => cfg.early_exit = false,
            "--mesh" => {
                cfg.mesh = take("--mesh").parse().unwrap_or(0);
                if cfg.mesh == 0 {
                    eprintln!("--mesh must be a positive integer");
                    std::process::exit(2);
                }
            }
            "--faults" => {
                cfg.fault_counts = take("--faults")
                    .split(',')
                    .map(|v| v.trim().parse().expect("--faults: comma-separated integers"))
                    .collect();
            }
            "--rates" => {
                cfg.rates = take("--rates")
                    .split(',')
                    .map(|v| v.trim().parse().expect("--rates: comma-separated floats"))
                    .collect();
            }
            "--routers" => {
                cfg.routers = take("--routers")
                    .split(',')
                    .map(|v| match v.trim().to_ascii_lowercase().as_str() {
                        "xy" => RoutingKind::Xy,
                        "ecube" | "e-cube" => RoutingKind::ECube,
                        "rb1" => RoutingKind::Rb1,
                        "rb2" => RoutingKind::Rb2,
                        "rb3" => RoutingKind::Rb3,
                        other => {
                            eprintln!("--routers: unknown router {other:?}");
                            std::process::exit(2);
                        }
                    })
                    .collect();
            }
            "--seed" => cfg.seed = take("--seed").parse().expect("--seed: integer"),
            "--threads" => cfg.threads = take("--threads").parse().expect("--threads: integer"),
            "--sim-threads" => {
                cfg.sim.threads = take("--sim-threads").parse().expect("--sim-threads: integer");
            }
            "--out" => out = Some(take("--out")),
            "--workload" => workload_arg = Some(take("--workload")),
            "--record-trace" => record_trace = Some(take("--record-trace")),
            "--help" | "-h" => {
                eprintln!(
                    "usage: traffic_sweep [--quick] [--json] [--obs] [--trace] [--mesh N] \
                     [--faults A,B,..] [--rates A,B,..] [--seed N] [--threads N] \
                     [--sim-threads N] [--out DIR] [--no-early-exit] [--routers A,B,..] \
                     [--workload trace:FILE|dag:FILE|alltoall[:R]|perm:L,K[,R]] \
                     [--record-trace FILE]"
                );
                return;
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    let nodes = u64::from(cfg.mesh) * u64::from(cfg.mesh);
    if let Some(&worst) = cfg.fault_counts.iter().max() {
        if worst as u64 >= nodes {
            eprintln!(
                "--mesh {} gives {nodes} nodes, fewer than the sweep's {worst} faults; \
                 use a larger mesh",
                cfg.mesh
            );
            std::process::exit(2);
        }
    }

    if let Some(spec) = &workload_arg {
        match parse_workload(spec, cfg.sim.packet_len, cfg.seed) {
            Ok(w) => cfg.workload = Some(w),
            Err(e) => {
                eprintln!("--workload: {e}");
                std::process::exit(2);
            }
        }
    }
    let grid_points = cfg.fault_counts.len() * cfg.rates.len() * cfg.routers.len();
    if record_trace.is_some() {
        if grid_points != 1 {
            eprintln!(
                "--record-trace wants exactly one grid point (one fault count, one rate, one \
                 router), this sweep has {grid_points}"
            );
            std::process::exit(2);
        }
        cfg.sim.record_trace = true;
    }

    let res = run_load_sweep(&cfg);
    if let Some(path) = &record_trace {
        let entries = res.points[0].trace.as_deref().unwrap_or(&[]);
        let horizon = cfg.sim.warmup + cfg.sim.measure;
        if let Err(e) = std::fs::write(path, write_trace(entries, horizon)) {
            eprintln!("could not write {path}: {e}");
            std::process::exit(1);
        } else if meshpath_obs::enabled(meshpath_obs::LogLevel::Info) {
            eprintln!("recorded {} trace entries to {path}", entries.len());
        }
    }
    if json {
        let doc = res.to_json();
        print!("{doc}");
        if let Some(dir) = &out {
            let path = std::path::Path::new(dir).join("traffic_sweep.json");
            if let Err(e) = std::fs::create_dir_all(dir).and_then(|()| std::fs::write(&path, &doc))
            {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else if meshpath_obs::enabled(meshpath_obs::LogLevel::Info) {
                eprintln!("wrote {}", path.display());
            }
        }
        return;
    }
    for (i, t) in res.latency_tables().iter().enumerate() {
        emit(t, &out, &format!("traffic_latency_{}", res.config.fault_counts[i]));
    }
    for (i, t) in res.throughput_tables().iter().enumerate() {
        emit(t, &out, &format!("traffic_throughput_{}", res.config.fault_counts[i]));
    }
}
