//! Traffic load sweep: latency-vs-injection-rate curves per router and
//! fault density.
//!
//! Usage: `traffic_sweep [--quick] [--json] [--obs] [--trace]
//! [--mesh N] [--faults A,B,..] [--rates A,B,..] [--seed N]
//! [--threads N] [--sim-threads N] [--out DIR] [--no-early-exit]`.
//!
//! `--faults` and `--rates` override the sweep axes (comma-separated),
//! the knobs the large-mesh bench ladders use to bound their point
//! budget: a 256x256 `--quick` run keeps the smoke windows but sweeps
//! only the low rates that such a mesh can accept (uniform-traffic
//! bisection capacity shrinks as `4*side/nodes`, so the 16x16 smoke
//! rates would all saturate).
//!
//! `--obs` instruments every simulated point with the `meshpath-obs`
//! metrics probe (link counters, stall/occupancy histograms, phase
//! timings) and adds an `obs_report` section to the `--json` document;
//! `--trace` additionally records the packet-lifecycle flight recorder.
//! Either level leaves the simulation statistics bit-identical (pinned
//! by the golden suite).
//!
//! `--threads` sizes the sweep-level pool (simulations run in
//! parallel, one per point); `--sim-threads` shards each *single*
//! simulation across worker threads with bit-identical results — the
//! right knob for large meshes (64x64+), where one run should use all
//! cores. The two multiply, so set `--threads 1` when forcing
//! `--sim-threads` past 1.
//!
//! `--no-early-exit` disables the rate-ladder early exit (post-
//! saturation rates marked `sat` without simulating, wedged drains cut
//! short) when the full post-saturation curves are wanted.
//!
//! By default the sweep prints aligned text tables (and CSV next to
//! `--out`). With `--json` it instead emits one machine-readable JSON
//! document of flat sweep rows on stdout — the format meant for
//! recording `BENCH_*.json` trajectories across commits — and, when
//! `--out DIR` is given, also writes it to `DIR/traffic_sweep.json`.

use meshpath_analysis::cli::emit;
use meshpath_analysis::traffic::{run_load_sweep, LoadSweepConfig};
use meshpath_traffic::ObsLevel;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    // `--quick` selects the base configuration; every other flag is an
    // override applied afterwards, so argument order never matters.
    let mut cfg = if argv.iter().any(|a| a == "--quick") {
        LoadSweepConfig::smoke()
    } else {
        LoadSweepConfig::default()
    };
    let mut out: Option<String> = None;
    let mut json = false;
    let mut args = argv.into_iter();
    while let Some(arg) = args.next() {
        let mut take = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--quick" => {}
            "--json" => json = true,
            "--obs" => cfg.sim.obs = ObsLevel::Metrics,
            "--trace" => cfg.sim.obs = ObsLevel::Trace,
            "--no-early-exit" => cfg.early_exit = false,
            "--mesh" => {
                cfg.mesh = take("--mesh").parse().unwrap_or(0);
                if cfg.mesh == 0 {
                    eprintln!("--mesh must be a positive integer");
                    std::process::exit(2);
                }
            }
            "--faults" => {
                cfg.fault_counts = take("--faults")
                    .split(',')
                    .map(|v| v.trim().parse().expect("--faults: comma-separated integers"))
                    .collect();
            }
            "--rates" => {
                cfg.rates = take("--rates")
                    .split(',')
                    .map(|v| v.trim().parse().expect("--rates: comma-separated floats"))
                    .collect();
            }
            "--seed" => cfg.seed = take("--seed").parse().expect("--seed: integer"),
            "--threads" => cfg.threads = take("--threads").parse().expect("--threads: integer"),
            "--sim-threads" => {
                cfg.sim.threads = take("--sim-threads").parse().expect("--sim-threads: integer");
            }
            "--out" => out = Some(take("--out")),
            "--help" | "-h" => {
                eprintln!(
                    "usage: traffic_sweep [--quick] [--json] [--obs] [--trace] [--mesh N] \
                     [--faults A,B,..] [--rates A,B,..] [--seed N] [--threads N] \
                     [--sim-threads N] [--out DIR] [--no-early-exit]"
                );
                return;
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    let nodes = u64::from(cfg.mesh) * u64::from(cfg.mesh);
    if let Some(&worst) = cfg.fault_counts.iter().max() {
        if worst as u64 >= nodes {
            eprintln!(
                "--mesh {} gives {nodes} nodes, fewer than the sweep's {worst} faults; \
                 use a larger mesh",
                cfg.mesh
            );
            std::process::exit(2);
        }
    }

    let res = run_load_sweep(&cfg);
    if json {
        let doc = res.to_json();
        print!("{doc}");
        if let Some(dir) = &out {
            let path = std::path::Path::new(dir).join("traffic_sweep.json");
            if let Err(e) = std::fs::create_dir_all(dir).and_then(|()| std::fs::write(&path, &doc))
            {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else if meshpath_obs::enabled(meshpath_obs::LogLevel::Info) {
                eprintln!("wrote {}", path.display());
            }
        }
        return;
    }
    for (i, t) in res.latency_tables().iter().enumerate() {
        emit(t, &out, &format!("traffic_latency_{}", res.config.fault_counts[i]));
    }
    for (i, t) in res.throughput_tables().iter().enumerate() {
        emit(t, &out, &format!("traffic_throughput_{}", res.config.fault_counts[i]));
    }
}
