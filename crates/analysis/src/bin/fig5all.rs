//! Regenerates every Fig. 5 series from a single sweep (cheaper than
//! running the per-figure binaries separately).

use meshpath_analysis::cli::{emit, parse_args};
use meshpath_analysis::fig5::diagnostics;
use meshpath_analysis::{run_sweep, Fig5Data};

fn main() {
    let (cfg, out) = match parse_args(std::env::args().skip(1)) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    if meshpath_obs::enabled(meshpath_obs::LogLevel::Info) {
        eprintln!(
            "sweep: {}x{} mesh, {} fault levels x {} configs x {} pairs",
            cfg.mesh,
            cfg.mesh,
            cfg.fault_counts.len(),
            cfg.configs_per_point,
            cfg.pairs_per_config
        );
    }
    let res = run_sweep(&cfg);
    let figs = Fig5Data::from_sweep(&res);
    emit(&figs.a, &out, "fig5a");
    emit(&figs.b, &out, "fig5b");
    emit(&figs.c, &out, "fig5c");
    emit(&figs.d, &out, "fig5d");
    emit(&figs.e, &out, "fig5e");
    emit(&diagnostics(&res), &out, "diagnostics");
}
