//! Per-figure aggregation: turns a [`SweepResult`] into the five tables
//! of the paper's Fig. 5.

use crate::sweep::{RouterAgg, SweepResult};
use crate::table::{f1, f3, Table};

/// All five figures derived from one sweep.
#[derive(Clone, Debug)]
pub struct Fig5Data {
    /// Fig. 5(a): percentage of disabled area.
    pub a: Table,
    /// Fig. 5(b): number of MCCs.
    pub b: Table,
    /// Fig. 5(c): propagation cost.
    pub c: Table,
    /// Fig. 5(d): shortest-path success rate.
    pub d: Table,
    /// Fig. 5(e): relative error.
    pub e: Table,
}

impl Fig5Data {
    /// Builds every figure from a sweep result.
    pub fn from_sweep(res: &SweepResult) -> Self {
        Fig5Data { a: fig5a(res), b: fig5b(res), c: fig5c(res), d: fig5d(res), e: fig5e(res) }
    }
}

fn max_avg(values: impl Iterator<Item = f64> + Clone) -> (f64, f64) {
    let mut max = f64::MIN;
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in values {
        max = max.max(v);
        sum += v;
        n += 1;
    }
    if n == 0 {
        (0.0, 0.0)
    } else {
        (max, sum / n as f64)
    }
}

/// Fig. 5(a): percentage of disabled area to the total area (MAX, AVG).
pub fn fig5a(res: &SweepResult) -> Table {
    let mut t = Table::new(
        "Fig 5(a) - percentage of disabled area to the total area",
        &["faults", "max_pct", "avg_pct"],
    );
    for (fc, recs) in res.by_count() {
        let (max, avg) = max_avg(recs.iter().map(|r| r.fault_stats.disabled_pct()));
        t.push_row(vec![fc.to_string(), f1(max), f1(avg)]);
    }
    t
}

/// Fig. 5(b): number of MCCs (MAX, AVG).
pub fn fig5b(res: &SweepResult) -> Table {
    let mut t = Table::new("Fig 5(b) - number of MCCs", &["faults", "max", "avg"]);
    for (fc, recs) in res.by_count() {
        let (max, avg) = max_avg(recs.iter().map(|r| r.fault_stats.mcc_count as f64));
        t.push_row(vec![fc.to_string(), f1(max), f1(avg)]);
    }
    t
}

/// Fig. 5(c): percentage of nodes involved in information propagation to
/// the total safe nodes, per model.
///
/// Two readings are reported: the **union** columns count every node that
/// carried *any* triple (the system-wide cost), the **1mcc** columns the
/// carriers of a single MCC's triple (max over MCCs, then max/avg over
/// configurations) — the reading under which the paper's "broadcast to
/// 20% of the safe nodes" remark is consistent; see EXPERIMENTS.md.
pub fn fig5c(res: &SweepResult) -> Table {
    let mut t = Table::new(
        "Fig 5(c) - percentage of nodes involved in information propagation",
        &[
            "faults",
            "union_B1",
            "union_B2",
            "union_B3",
            "max1mcc_B1",
            "avg1mcc_B1",
            "max1mcc_B2",
            "avg1mcc_B2",
            "max1mcc_B3",
            "avg1mcc_B3",
        ],
    );
    for (fc, recs) in res.by_count() {
        let mut row = vec![fc.to_string()];
        for k in 0..3 {
            let (_, avg) = max_avg(recs.iter().map(|r| r.prop[k].involved_pct()));
            row.push(f1(avg));
        }
        for k in 0..3 {
            let (max, _) = max_avg(recs.iter().map(|r| r.prop[k].per_mcc_max_pct()));
            let (_, avg) = max_avg(recs.iter().map(|r| r.prop[k].per_mcc_avg_pct()));
            row.push(f1(max));
            row.push(f1(avg));
        }
        t.push_row(row);
    }
    t
}

/// Merges router aggregates across all configurations at one fault count.
fn merged_router(recs: &[crate::sweep::ConfigRecord], idx: usize) -> RouterAgg {
    let mut acc = RouterAgg::default();
    for r in recs {
        acc.merge(&r.routing[idx]);
    }
    acc
}

/// Fig. 5(d): percentage of success in finding the shortest path, for
/// RB1 / RB2 / RB3 (E-cube is not plotted in the paper's 5(d)).
pub fn fig5d(res: &SweepResult) -> Table {
    let mut t = Table::new(
        "Fig 5(d) - percentage of success in finding the shortest path",
        &["faults", "RB1", "RB2", "RB3"],
    );
    for (fc, recs) in res.by_count() {
        let mut row = vec![fc.to_string()];
        for idx in 1..4 {
            row.push(f1(merged_router(recs, idx).shortest_pct()));
        }
        t.push_row(row);
    }
    t
}

/// Fig. 5(e): relative error of the achieved routing path length to the
/// shortest-path length, for E-cube / RB1 / RB2 / RB3.
pub fn fig5e(res: &SweepResult) -> Table {
    let mut t = Table::new(
        "Fig 5(e) - relative error of routing path to the shortest path",
        &["faults", "E-cube", "RB1", "RB2", "RB3"],
    );
    for (fc, recs) in res.by_count() {
        let mut row = vec![fc.to_string()];
        for idx in 0..4 {
            row.push(f3(merged_router(recs, idx).rel_err()));
        }
        t.push_row(row);
    }
    t
}

/// Extra (not in the paper): delivery rate and fallback counters, used by
/// EXPERIMENTS.md to report reproduction internals.
pub fn diagnostics(res: &SweepResult) -> Table {
    let mut t = Table::new(
        "Diagnostics - delivery and planner internals",
        &[
            "faults",
            "pairs",
            "ecube_del",
            "rb1_del",
            "rb2_del",
            "rb3_del",
            "rb2_fallbacks",
            "rb3_fallbacks",
        ],
    );
    for (fc, recs) in res.by_count() {
        let m: Vec<RouterAgg> = (0..4).map(|i| merged_router(recs, i)).collect();
        t.push_row(vec![
            fc.to_string(),
            m[0].pairs.to_string(),
            m[0].delivered.to_string(),
            m[1].delivered.to_string(),
            m[2].delivered.to_string(),
            m[3].delivered.to_string(),
            m[2].fallbacks.to_string(),
            m[3].fallbacks.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{run_sweep, SweepConfig};

    #[test]
    fn figures_from_smoke_sweep() {
        let cfg = SweepConfig { threads: 2, ..SweepConfig::smoke() };
        let res = run_sweep(&cfg);
        let figs = Fig5Data::from_sweep(&res);
        assert_eq!(figs.a.len(), cfg.fault_counts.len());
        assert_eq!(figs.b.len(), cfg.fault_counts.len());
        assert_eq!(figs.c.len(), cfg.fault_counts.len());
        assert_eq!(figs.d.len(), cfg.fault_counts.len());
        assert_eq!(figs.e.len(), cfg.fault_counts.len());
        // Zero-fault row: no disabled area, 100% success, zero error.
        let a_csv = figs.a.to_csv();
        let a0: Vec<&str> = a_csv.lines().nth(1).unwrap().split(',').collect();
        assert_eq!(a0[1], "0.0");
        let d_csv = figs.d.to_csv();
        let d0: Vec<&str> = d_csv.lines().nth(1).unwrap().split(',').collect();
        assert_eq!(d0[1], "100.0");
        assert_eq!(d0[2], "100.0");
        let e_csv = figs.e.to_csv();
        let e0: Vec<&str> = e_csv.lines().nth(1).unwrap().split(',').collect();
        assert_eq!(e0[1], "0.000");
    }

    #[test]
    fn diagnostics_table_shape() {
        let cfg = SweepConfig { threads: 2, ..SweepConfig::smoke() };
        let res = run_sweep(&cfg);
        let diag = diagnostics(&res);
        assert_eq!(diag.len(), cfg.fault_counts.len());
    }
}
