//! The one hand-rolled JSON emitter behind every machine-readable
//! output path (`traffic_sweep --json`, the `route_bench` rows, the
//! fault-churn example): a tiny object/document builder so the format
//! lives in exactly one place.
//!
//! The workspace's `serde` is an offline no-op derive stub (see
//! `crates/compat/serde`), so the derives mark intent but cannot
//! serialize; when a crates.io mirror is reachable and the real serde
//! lands (ROADMAP "real registry deps"), this module is the single
//! swap-over point. Until then the emitter enforces the invariant the
//! hand-rolled format relies on: every emitted string is plain
//! `[A-Za-z0-9_.-]`, so no escaping is ever required.

use std::fmt::Display;
use std::fmt::Write as _;

/// A flat JSON object under construction (one row, or one config
/// header). Keys are emitted in insertion order.
#[derive(Clone, Debug, Default)]
pub struct JsonObject {
    buf: String,
}

impl JsonObject {
    /// An empty object.
    pub fn new() -> Self {
        JsonObject::default()
    }

    fn key(&mut self, key: &str) {
        debug_assert!(
            key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
            "JSON keys stay snake_case: {key:?}"
        );
        if !self.buf.is_empty() {
            self.buf.push_str(", ");
        }
        let _ = write!(self.buf, "\"{key}\": ");
    }

    /// A raw (unquoted) value: integers, booleans, or floats whose
    /// `Display` form is already the wanted JSON.
    pub fn field(&mut self, key: &str, value: impl Display) -> &mut Self {
        self.key(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// A float rendered with a fixed number of decimals. Non-finite
    /// values (a zero-duration rate, an empty-histogram mean) emit
    /// `null` — `NaN`/`inf` are not JSON and would corrupt the
    /// document.
    pub fn float(&mut self, key: &str, value: f64, decimals: usize) -> &mut Self {
        self.key(key);
        if value.is_finite() {
            let _ = write!(self.buf, "{value:.decimals$}");
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// A quoted string value. Only plain `[A-Za-z0-9_.-]` strings are
    /// accepted (panics otherwise) — the emitter has no escaping on
    /// purpose; see the module docs.
    pub fn string(&mut self, key: &str, value: &str) -> &mut Self {
        assert!(
            value.chars().all(|c| c.is_ascii_alphanumeric() || "_-.".contains(c)),
            "JSON string needs escaping, which this emitter refuses: {value:?}"
        );
        self.key(key);
        let _ = write!(self.buf, "\"{value}\"");
        self
    }

    /// An array of unsigned integers.
    pub fn array_u64(&mut self, key: &str, values: &[u64]) -> &mut Self {
        self.key(key);
        self.buf.push('[');
        for (i, v) in values.iter().enumerate() {
            if i > 0 {
                self.buf.push_str(", ");
            }
            let _ = write!(self.buf, "{v}");
        }
        self.buf.push(']');
        self
    }

    /// The object as `{...}`.
    pub fn render(&self) -> String {
        format!("{{{}}}", self.buf)
    }
}

/// The standard two-part document every `BENCH_*.json` artifact uses:
/// a `config` summary object plus one flat `rows` object per record.
/// Renders as
///
/// ```json
/// {
///   "config": {...},
///   "rows": [
///     {...},
///     {...}
///   ]
/// }
/// ```
pub fn document(config: &JsonObject, rows: &[JsonObject]) -> String {
    document_with(config, rows, &[])
}

/// [`document`] plus named extra top-level sections, each an array of
/// flat objects — how the observability report (`obs_report`) rides
/// along in `traffic_sweep --json` and `route_bench --json` without
/// disturbing the `rows` trajectory format.
pub fn document_with(
    config: &JsonObject,
    rows: &[JsonObject],
    sections: &[(&str, &[JsonObject])],
) -> String {
    let mut s = String::with_capacity(64 + 256 * rows.len());
    s.push_str("{\n  \"config\": ");
    s.push_str(&config.render());
    s.push_str(",\n  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        s.push_str("    ");
        s.push_str(&row.render());
        s.push_str(if i + 1 == rows.len() { "\n" } else { ",\n" });
    }
    s.push_str("  ]");
    for (name, objs) in sections {
        debug_assert!(
            name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
            "section names stay snake_case: {name:?}"
        );
        let _ = write!(s, ",\n  \"{name}\": [\n");
        for (i, o) in objs.iter().enumerate() {
            s.push_str("    ");
            s.push_str(&o.render());
            s.push_str(if i + 1 == objs.len() { "\n" } else { ",\n" });
        }
        s.push_str("  ]");
    }
    s.push_str("\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn objects_render_flat_and_ordered() {
        let mut o = JsonObject::new();
        o.field("a", 1).string("b", "x-y.z").float("c", 1.5, 3).array_u64("d", &[3, 4]);
        assert_eq!(o.render(), r#"{"a": 1, "b": "x-y.z", "c": 1.500, "d": [3, 4]}"#);
    }

    #[test]
    fn documents_have_no_trailing_comma() {
        let mut c = JsonObject::new();
        c.field("mesh", 8);
        let mut r = JsonObject::new();
        r.field("v", true);
        let doc = document(&c, &[r.clone(), r]);
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
        assert!(!doc.contains(",\n  ]"), "{doc}");
        assert!(doc.ends_with("  ]\n}\n"));
    }

    #[test]
    #[should_panic(expected = "needs escaping")]
    fn strings_requiring_escapes_are_refused() {
        JsonObject::new().string("k", "a\"b");
    }

    #[test]
    fn non_finite_floats_emit_null() {
        let mut o = JsonObject::new();
        o.float("nan", f64::NAN, 2).float("inf", f64::INFINITY, 2).float("ok", 2.0, 1);
        assert_eq!(o.render(), r#"{"nan": null, "inf": null, "ok": 2.0}"#);
    }

    #[test]
    fn sections_append_after_rows() {
        let mut c = JsonObject::new();
        c.field("mesh", 8);
        let mut r = JsonObject::new();
        r.field("v", 1);
        let mut s = JsonObject::new();
        s.field("events", 7);
        let doc = document_with(&c, &[r], &[("obs_report", &[s])]);
        assert!(doc.contains("\"obs_report\": [\n    {\"events\": 7}\n  ]"), "{doc}");
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
        assert_eq!(doc.matches('[').count(), doc.matches(']').count());
        assert!(!doc.contains(",\n  ]"), "{doc}");
        // The plain document is byte-identical to the sectionless call.
        let mut c2 = JsonObject::new();
        c2.field("mesh", 8);
        let mut r2 = JsonObject::new();
        r2.field("v", 1);
        assert_eq!(document(&c2, &[r2.clone()]), document_with(&c2, &[r2], &[]));
    }
}
