//! The one hand-rolled JSON emitter behind every machine-readable
//! output path (`traffic_sweep --json`, the `route_bench` rows, the
//! fault-churn example): a tiny object/document builder so the format
//! lives in exactly one place.
//!
//! The workspace's `serde` is an offline no-op derive stub (see
//! `crates/compat/serde`), so the derives mark intent but cannot
//! serialize; when a crates.io mirror is reachable and the real serde
//! lands (ROADMAP "real registry deps"), this module is the single
//! swap-over point. Until then the emitter enforces the invariant the
//! hand-rolled format relies on: every emitted string is plain
//! `[A-Za-z0-9_.-]`, so no escaping is ever required.

use std::fmt::Display;
use std::fmt::Write as _;

/// A flat JSON object under construction (one row, or one config
/// header). Keys are emitted in insertion order.
#[derive(Clone, Debug, Default)]
pub struct JsonObject {
    buf: String,
}

impl JsonObject {
    /// An empty object.
    pub fn new() -> Self {
        JsonObject::default()
    }

    fn key(&mut self, key: &str) {
        debug_assert!(
            key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
            "JSON keys stay snake_case: {key:?}"
        );
        if !self.buf.is_empty() {
            self.buf.push_str(", ");
        }
        let _ = write!(self.buf, "\"{key}\": ");
    }

    /// A raw (unquoted) value: integers, booleans, or floats whose
    /// `Display` form is already the wanted JSON.
    pub fn field(&mut self, key: &str, value: impl Display) -> &mut Self {
        self.key(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// A float rendered with a fixed number of decimals. Non-finite
    /// values (a zero-duration rate, an empty-histogram mean) emit
    /// `null` — `NaN`/`inf` are not JSON and would corrupt the
    /// document.
    pub fn float(&mut self, key: &str, value: f64, decimals: usize) -> &mut Self {
        self.key(key);
        if value.is_finite() {
            let _ = write!(self.buf, "{value:.decimals$}");
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// A quoted string value. Only plain `[A-Za-z0-9_.-]` strings are
    /// accepted (panics otherwise) — the emitter has no escaping on
    /// purpose; see the module docs.
    pub fn string(&mut self, key: &str, value: &str) -> &mut Self {
        assert!(
            value.chars().all(|c| c.is_ascii_alphanumeric() || "_-.".contains(c)),
            "JSON string needs escaping, which this emitter refuses: {value:?}"
        );
        self.key(key);
        let _ = write!(self.buf, "\"{value}\"");
        self
    }

    /// An array of unsigned integers.
    pub fn array_u64(&mut self, key: &str, values: &[u64]) -> &mut Self {
        self.key(key);
        self.buf.push('[');
        for (i, v) in values.iter().enumerate() {
            if i > 0 {
                self.buf.push_str(", ");
            }
            let _ = write!(self.buf, "{v}");
        }
        self.buf.push(']');
        self
    }

    /// The object as `{...}`.
    pub fn render(&self) -> String {
        format!("{{{}}}", self.buf)
    }
}

/// The standard two-part document every `BENCH_*.json` artifact uses:
/// a `config` summary object plus one flat `rows` object per record.
/// Renders as
///
/// ```json
/// {
///   "config": {...},
///   "rows": [
///     {...},
///     {...}
///   ]
/// }
/// ```
pub fn document(config: &JsonObject, rows: &[JsonObject]) -> String {
    document_with(config, rows, &[])
}

/// [`document`] plus named extra top-level sections, each an array of
/// flat objects — how the observability report (`obs_report`) rides
/// along in `traffic_sweep --json` and `route_bench --json` without
/// disturbing the `rows` trajectory format.
pub fn document_with(
    config: &JsonObject,
    rows: &[JsonObject],
    sections: &[(&str, &[JsonObject])],
) -> String {
    let mut s = String::with_capacity(64 + 256 * rows.len());
    s.push_str("{\n  \"config\": ");
    s.push_str(&config.render());
    s.push_str(",\n  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        s.push_str("    ");
        s.push_str(&row.render());
        s.push_str(if i + 1 == rows.len() { "\n" } else { ",\n" });
    }
    s.push_str("  ]");
    for (name, objs) in sections {
        debug_assert!(
            name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
            "section names stay snake_case: {name:?}"
        );
        let _ = write!(s, ",\n  \"{name}\": [\n");
        for (i, o) in objs.iter().enumerate() {
            s.push_str("    ");
            s.push_str(&o.render());
            s.push_str(if i + 1 == objs.len() { "\n" } else { ",\n" });
        }
        s.push_str("  ]");
    }
    s.push_str("\n}\n");
    s
}

/// A value parsed from a flat JSON object line — the subset
/// [`JsonObject`] can emit (numbers, restricted strings, booleans,
/// `null`, arrays of numbers or restricted strings).
#[derive(Clone, Debug, PartialEq)]
pub enum FlatValue {
    /// An integer or float (floats are representable losslessly enough
    /// for every field this workspace round-trips).
    Num(f64),
    /// A quoted string (same restricted charset the emitter enforces).
    Str(String),
    /// `true` / `false`.
    Bool(bool),
    /// `null`.
    Null,
    /// An array of numbers.
    Nums(Vec<f64>),
    /// An array of strings.
    Strs(Vec<String>),
}

impl FlatValue {
    /// The value as a `u64`, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            FlatValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            FlatValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a string array, if it is one (an empty array
    /// parses as `Nums`; it is accepted here too).
    pub fn as_strs(&self) -> Option<&[String]> {
        match self {
            FlatValue::Strs(v) => Some(v),
            FlatValue::Nums(v) if v.is_empty() => Some(&[]),
            _ => None,
        }
    }
}

/// Parses one flat JSON object line (`{"k": v, ...}`) into its
/// `(key, value)` pairs, in order — the reader for the formats
/// [`JsonObject`] writes (trace files, DAG files). Nested objects are
/// not supported; strings must use the emitter's restricted charset
/// (no escapes).
pub fn parse_flat(line: &str) -> Result<Vec<(String, FlatValue)>, String> {
    let s = line.trim();
    let inner = s
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| format!("not a flat object: {line:?}"))?
        .trim();
    let mut pairs = Vec::new();
    let mut rest = inner;
    while !rest.is_empty() {
        let (key, after_key) = take_string(rest)?;
        let after_colon = after_key
            .trim_start()
            .strip_prefix(':')
            .ok_or_else(|| format!("expected ':' after key {key:?}"))?
            .trim_start();
        let (value, after_value) = take_value(after_colon)?;
        pairs.push((key, value));
        rest = after_value.trim_start();
        match rest.strip_prefix(',') {
            Some(r) => rest = r.trim_start(),
            None if rest.is_empty() => break,
            None => return Err(format!("expected ',' before {rest:?}")),
        }
    }
    Ok(pairs)
}

/// Reads a leading quoted string; returns it and the remaining input.
fn take_string(s: &str) -> Result<(String, &str), String> {
    let body = s.strip_prefix('"').ok_or_else(|| format!("expected a string at {s:?}"))?;
    let end = body.find('"').ok_or_else(|| format!("unterminated string at {s:?}"))?;
    let text = &body[..end];
    if !text.chars().all(|c| c.is_ascii_alphanumeric() || "_-.".contains(c)) {
        return Err(format!("string outside the restricted charset: {text:?}"));
    }
    Ok((text.to_string(), &body[end + 1..]))
}

/// Reads a leading scalar or array value; returns it and the rest.
fn take_value(s: &str) -> Result<(FlatValue, &str), String> {
    if let Some(rest) = s.strip_prefix("true") {
        return Ok((FlatValue::Bool(true), rest));
    }
    if let Some(rest) = s.strip_prefix("false") {
        return Ok((FlatValue::Bool(false), rest));
    }
    if let Some(rest) = s.strip_prefix("null") {
        return Ok((FlatValue::Null, rest));
    }
    if s.starts_with('"') {
        let (text, rest) = take_string(s)?;
        return Ok((FlatValue::Str(text), rest));
    }
    if let Some(mut rest) = s.strip_prefix('[') {
        rest = rest.trim_start();
        let mut nums = Vec::new();
        let mut strs = Vec::new();
        loop {
            rest = rest.trim_start();
            if let Some(after) = rest.strip_prefix(']') {
                break if !strs.is_empty() {
                    Ok((FlatValue::Strs(strs), after))
                } else {
                    Ok((FlatValue::Nums(nums), after))
                };
            }
            match take_value(rest)? {
                (FlatValue::Num(n), after) if strs.is_empty() => {
                    nums.push(n);
                    rest = after;
                }
                (FlatValue::Str(t), after) if nums.is_empty() => {
                    strs.push(t);
                    rest = after;
                }
                _ => return Err(format!("mixed or nested array at {s:?}")),
            }
            rest = rest.trim_start();
            if let Some(after) = rest.strip_prefix(',') {
                rest = after;
            } else if !rest.starts_with(']') {
                return Err(format!("expected ',' or ']' in array at {s:?}"));
            }
        }
    } else {
        let end = s.find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c))).unwrap_or(s.len());
        let (num, rest) = s.split_at(end);
        let n: f64 = num.parse().map_err(|_| format!("expected a value at {s:?}"))?;
        Ok((FlatValue::Num(n), rest))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn objects_render_flat_and_ordered() {
        let mut o = JsonObject::new();
        o.field("a", 1).string("b", "x-y.z").float("c", 1.5, 3).array_u64("d", &[3, 4]);
        assert_eq!(o.render(), r#"{"a": 1, "b": "x-y.z", "c": 1.500, "d": [3, 4]}"#);
    }

    #[test]
    fn documents_have_no_trailing_comma() {
        let mut c = JsonObject::new();
        c.field("mesh", 8);
        let mut r = JsonObject::new();
        r.field("v", true);
        let doc = document(&c, &[r.clone(), r]);
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
        assert!(!doc.contains(",\n  ]"), "{doc}");
        assert!(doc.ends_with("  ]\n}\n"));
    }

    #[test]
    #[should_panic(expected = "needs escaping")]
    fn strings_requiring_escapes_are_refused() {
        JsonObject::new().string("k", "a\"b");
    }

    #[test]
    fn parse_flat_round_trips_the_emitter() {
        let mut o = JsonObject::new();
        o.field("a", 3)
            .string("b", "x-y.z")
            .float("c", 1.5, 3)
            .array_u64("d", &[3, 4])
            .field("e", true)
            .float("f", f64::NAN, 2);
        let pairs = parse_flat(&o.render()).expect("parses");
        assert_eq!(pairs.len(), 6);
        assert_eq!(pairs[0], ("a".into(), FlatValue::Num(3.0)));
        assert_eq!(pairs[0].1.as_u64(), Some(3));
        assert_eq!(pairs[1].1.as_str(), Some("x-y.z"));
        assert_eq!(pairs[2].1, FlatValue::Num(1.5));
        assert_eq!(pairs[3].1, FlatValue::Nums(vec![3.0, 4.0]));
        assert_eq!(pairs[4].1, FlatValue::Bool(true));
        assert_eq!(pairs[5].1, FlatValue::Null);
    }

    #[test]
    fn parse_flat_reads_string_arrays_and_rejects_garbage() {
        let pairs = parse_flat(r#"{"deps": ["a", "b-2"], "none": []}"#).expect("parses");
        assert_eq!(pairs[0].1.as_strs(), Some(&["a".to_string(), "b-2".to_string()][..]));
        assert_eq!(pairs[1].1.as_strs(), Some(&[][..]), "empty arrays act as string arrays");
        assert!(parse_flat("not json").is_err());
        assert!(parse_flat(r#"{"k": }"#).is_err());
        assert!(parse_flat(r#"{"k": [1, "x"]}"#).is_err(), "mixed arrays refused");
        assert!(parse_flat(r#"{"k": "a b"}"#).is_err(), "unrestricted strings refused");
    }

    #[test]
    fn non_finite_floats_emit_null() {
        let mut o = JsonObject::new();
        o.float("nan", f64::NAN, 2).float("inf", f64::INFINITY, 2).float("ok", 2.0, 1);
        assert_eq!(o.render(), r#"{"nan": null, "inf": null, "ok": 2.0}"#);
    }

    #[test]
    fn sections_append_after_rows() {
        let mut c = JsonObject::new();
        c.field("mesh", 8);
        let mut r = JsonObject::new();
        r.field("v", 1);
        let mut s = JsonObject::new();
        s.field("events", 7);
        let doc = document_with(&c, &[r], &[("obs_report", &[s])]);
        assert!(doc.contains("\"obs_report\": [\n    {\"events\": 7}\n  ]"), "{doc}");
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
        assert_eq!(doc.matches('[').count(), doc.matches(']').count());
        assert!(!doc.contains(",\n  ]"), "{doc}");
        // The plain document is byte-identical to the sectionless call.
        let mut c2 = JsonObject::new();
        c2.field("mesh", 8);
        let mut r2 = JsonObject::new();
        r2.field("v", 1);
        assert_eq!(document(&c2, &[r2.clone()]), document_with(&c2, &[r2], &[]));
    }
}
