//! Traffic load sweeps: latency-vs-injection-rate curves per routing
//! function and fault density.
//!
//! This is the macro-level benchmark of the workspace: where the Fig. 5
//! harness measures per-packet routing quality, the load sweep measures
//! what those routing decisions cost a *network under contention* —
//! mean/p95 latency, accepted throughput and saturation onset, per
//! router, per fault density, per injection rate.

use crossbeam::channel;
use meshpath_mesh::{FaultInjection, FaultSet, Mesh};
use meshpath_route::Network;
use meshpath_traffic::{run_traffic_reusing, PathTable, RoutingKind, SimConfig, TrafficStats};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::num::NonZeroUsize;

use crate::sweep::derive_seed;
use crate::table::{f1, f3, Table};

/// Parameters of one load sweep.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LoadSweepConfig {
    /// Mesh side length.
    pub mesh: u32,
    /// Fault counts to evaluate (each gets one seeded configuration).
    pub fault_counts: Vec<usize>,
    /// Injection rates (packets/node/cycle) to evaluate.
    pub rates: Vec<f64>,
    /// Routing functions to drive.
    pub routers: Vec<RoutingKind>,
    /// Simulator template; `rate` and `seed` are overridden per point.
    pub sim: SimConfig,
    /// Base seed for fault placement and traffic streams.
    pub seed: u64,
    /// Worker threads (0 = all available cores).
    pub threads: usize,
    /// Fault placement model.
    pub injection: FaultInjection,
}

impl Default for LoadSweepConfig {
    fn default() -> Self {
        LoadSweepConfig {
            mesh: 16,
            fault_counts: vec![0, 8, 25],
            rates: vec![0.002, 0.005, 0.01, 0.02, 0.05],
            routers: RoutingKind::ALL.to_vec(),
            sim: SimConfig::default(),
            seed: 0x6e6f_6321, // "noc!"
            threads: 0,
            injection: FaultInjection::Uniform,
        }
    }
}

impl LoadSweepConfig {
    /// A fast configuration for tests and smoke runs.
    pub fn smoke() -> Self {
        LoadSweepConfig {
            mesh: 8,
            fault_counts: vec![0, 3],
            rates: vec![0.005, 0.02],
            routers: vec![RoutingKind::Xy, RoutingKind::Rb2],
            sim: SimConfig::smoke(),
            ..Default::default()
        }
    }
}

/// One measured `(router, fault count, rate)` grid point.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LoadPoint {
    /// The routing function driven.
    pub router: RoutingKind,
    /// Faults injected into the configuration.
    pub faults: usize,
    /// Offered injection rate (packets/node/cycle).
    pub rate: f64,
    /// Full simulator statistics.
    pub stats: TrafficStats,
}

/// The full sweep outcome.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LoadSweepResult {
    /// The configuration that produced this result.
    pub config: LoadSweepConfig,
    /// Grid points in `(fault, rate, router)` lexicographic order.
    pub points: Vec<LoadPoint>,
}

impl LoadSweepResult {
    /// The point for `(router, faults, rate)`, if it was swept. The
    /// rate is matched with a small relative tolerance so that
    /// programmatically constructed rates (e.g. `3.0 * 0.01`) resolve
    /// to the grid point they produced despite f64 rounding.
    pub fn point(&self, router: RoutingKind, faults: usize, rate: f64) -> Option<&LoadPoint> {
        let close = |a: f64, b: f64| (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0);
        self.points.iter().find(|p| p.router == router && p.faults == faults && close(p.rate, rate))
    }

    /// One latency table per fault density: rows = injection rates,
    /// columns = routers (mean latency in cycles, `sat`/`dead` markers
    /// past the saturation point).
    pub fn latency_tables(&self) -> Vec<Table> {
        self.config
            .fault_counts
            .iter()
            .map(|&fc| {
                let mut headers = vec!["rate".to_string()];
                headers.extend(self.config.routers.iter().map(|r| r.name().to_string()));
                let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
                let mut t = Table::new(
                    format!(
                        "mean latency (cycles) vs injection rate — {}x{} mesh, {} faults",
                        self.config.mesh, self.config.mesh, fc
                    ),
                    &header_refs,
                );
                for &rate in &self.config.rates {
                    let mut row = vec![f3(rate)];
                    for &r in &self.config.routers {
                        row.push(match self.point(r, fc, rate) {
                            Some(p) if p.stats.deadlocked => "dead".to_string(),
                            Some(p) if p.stats.saturated => "sat".to_string(),
                            Some(p) => f1(p.stats.mean_latency()),
                            None => "-".to_string(),
                        });
                    }
                    t.push_row(row);
                }
                t
            })
            .collect()
    }

    /// Serializes the sweep as a JSON document: a `config` summary plus
    /// one flat `rows` object per grid point, suitable for recording
    /// `BENCH_*.json` trajectories across commits.
    ///
    /// The JSON is emitted by hand: the workspace's `serde` is an
    /// offline no-op derive stub (see `crates/compat/serde`), so the
    /// derives mark intent but cannot serialize. Every emitted value is
    /// a number, boolean or plain `[A-Za-z0-9_-]` string, so no string
    /// escaping is required.
    pub fn to_json(&self) -> String {
        let c = &self.config;
        let mut s = String::with_capacity(256 + 256 * self.points.len());
        s.push_str("{\n  \"config\": {");
        s.push_str(&format!(
            "\"mesh\": {}, \"seed\": {}, \"pattern\": \"{}\", \"vcs\": {}, \
             \"escape_vcs\": {}, \"vc_depth\": {}, \"packet_len\": {}, \
             \"warmup\": {}, \"measure\": {}, \"drain\": {}",
            c.mesh,
            c.seed,
            c.sim.pattern.name(),
            c.sim.vcs,
            c.sim.escape_vcs,
            c.sim.vc_depth,
            c.sim.packet_len,
            c.sim.warmup,
            c.sim.measure,
            c.sim.drain,
        ));
        s.push_str("},\n  \"rows\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            let st = &p.stats;
            s.push_str(&format!(
                "    {{\"router\": \"{}\", \"faults\": {}, \"rate\": {}, \
                 \"mean_latency\": {:.3}, \"p95_latency\": {}, \"max_latency\": {}, \
                 \"accepted_flits_per_node_cycle\": {:.6}, \"delivered_pct\": {:.3}, \
                 \"generated\": {}, \"measured_generated\": {}, \"measured_delivered\": {}, \
                 \"unroutable\": {}, \"ttl_dropped\": {}, \"escape_packets\": {}, \
                 \"cycles\": {}, \"saturated\": {}, \"deadlocked\": {}}}{}\n",
                p.router.name(),
                p.faults,
                p.rate,
                st.mean_latency(),
                st.latency.percentile(0.95),
                st.latency.max(),
                st.accepted_flits_per_node_cycle(),
                st.delivered_pct(),
                st.generated,
                st.measured_generated,
                st.measured_delivered,
                st.unroutable,
                st.ttl_dropped,
                st.escape_packets,
                st.cycles,
                st.saturated,
                st.deadlocked,
                if i + 1 == self.points.len() { "" } else { "," },
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Accepted-throughput table (flits/node/cycle) per fault density.
    pub fn throughput_tables(&self) -> Vec<Table> {
        self.config
            .fault_counts
            .iter()
            .map(|&fc| {
                let mut headers = vec!["rate".to_string()];
                headers.extend(self.config.routers.iter().map(|r| r.name().to_string()));
                let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
                let mut t = Table::new(
                    format!(
                        "accepted throughput (flits/node/cycle) — {}x{} mesh, {} faults",
                        self.config.mesh, self.config.mesh, fc
                    ),
                    &header_refs,
                );
                for &rate in &self.config.rates {
                    let mut row = vec![f3(rate)];
                    for &r in &self.config.routers {
                        row.push(match self.point(r, fc, rate) {
                            Some(p) => f3(p.stats.accepted_flits_per_node_cycle()),
                            None => "-".to_string(),
                        });
                    }
                    t.push_row(row);
                }
                t
            })
            .collect()
    }
}

/// Executes the sweep on a worker pool. The fault configuration for a
/// given fault count derives from the seed alone, so every router and
/// rate sees the *same* faults — the comparison is paired. The
/// expensive per-fault-count network analysis (MCC labeling + info
/// models across four orientations) runs once up front; `Network` is
/// `Send + Sync`, so the workers share the results by reference (each
/// task still builds its own router and path table, which are not
/// `Send`).
pub fn run_load_sweep(config: &LoadSweepConfig) -> LoadSweepResult {
    let mesh = Mesh::square(config.mesh);
    let threads = if config.threads == 0 {
        std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(4)
    } else {
        config.threads
    };

    // One analyzed network per fault count, shared across workers.
    let nets: Vec<Network> = config
        .fault_counts
        .iter()
        .enumerate()
        .map(|(fi, &faults)| {
            let mut frng = StdRng::seed_from_u64(derive_seed(config.seed, fi as u64, 0));
            Network::build(FaultSet::random(mesh, faults, config.injection, &mut frng))
        })
        .collect();

    // One task per (fault, router): a task sweeps every injection rate
    // through a single path table, so route compilation happens once
    // per (network, routing function) instead of once per rate.
    let (tx_task, rx_task) = channel::unbounded::<(usize, usize)>();
    for fi in 0..config.fault_counts.len() {
        for ki in 0..config.routers.len() {
            tx_task.send((fi, ki)).expect("queue open");
        }
    }
    drop(tx_task);

    let (n_rates, n_routers) = (config.rates.len(), config.routers.len());
    let (tx_res, rx_res) = channel::unbounded::<(usize, LoadPoint)>();
    crossbeam::thread::scope(|scope| {
        for _ in 0..threads {
            let rx_task = rx_task.clone();
            let tx_res = tx_res.clone();
            let cfg = config.clone();
            let nets = &nets;
            scope.spawn(move |_| {
                while let Ok((fi, ki)) = rx_task.recv() {
                    let faults = cfg.fault_counts[fi];
                    let router = cfg.routers[ki];
                    let mut paths = PathTable::new(&nets[fi], router);
                    for (ri, &rate) in cfg.rates.iter().enumerate() {
                        let sim = SimConfig {
                            rate,
                            seed: derive_seed(cfg.seed, fi as u64, ri as u64 + 1),
                            ..cfg.sim.clone()
                        };
                        let stats = run_traffic_reusing(&mut paths, &sim);
                        let point = LoadPoint { router, faults, rate, stats };
                        let idx = (fi * n_rates + ri) * n_routers + ki;
                        tx_res.send((idx, point)).expect("result channel open");
                    }
                }
            });
        }
        drop(tx_res);
    })
    .expect("worker panicked");

    let total = config.fault_counts.len() * n_rates * n_routers;
    let mut slots: Vec<Option<LoadPoint>> = (0..total).map(|_| None).collect();
    while let Ok((idx, p)) = rx_res.recv() {
        slots[idx] = Some(p);
    }
    let points = slots.into_iter().map(|p| p.expect("all tasks completed")).collect();
    LoadSweepResult { config: config.clone(), points }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_completes_and_is_deterministic() {
        let cfg = LoadSweepConfig { threads: 2, ..LoadSweepConfig::smoke() };
        let a = run_load_sweep(&cfg);
        let b = run_load_sweep(&cfg);
        assert_eq!(a.points.len(), cfg.fault_counts.len() * cfg.rates.len() * cfg.routers.len());
        for (pa, pb) in a.points.iter().zip(&b.points) {
            assert_eq!(pa.stats, pb.stats, "parallel scheduling must not change results");
            assert_eq!(pa.router, pb.router);
        }
    }

    #[test]
    fn tables_render_every_grid_point() {
        let cfg = LoadSweepConfig { threads: 2, ..LoadSweepConfig::smoke() };
        let res = run_load_sweep(&cfg);
        let lat = res.latency_tables();
        assert_eq!(lat.len(), cfg.fault_counts.len());
        for t in &lat {
            assert_eq!(t.len(), cfg.rates.len());
            let text = t.to_text();
            assert!(text.contains("XY") && text.contains("RB2"), "{text}");
        }
        let thr = res.throughput_tables();
        assert_eq!(thr.len(), cfg.fault_counts.len());
    }

    #[test]
    fn json_rows_cover_every_grid_point() {
        let cfg = LoadSweepConfig { threads: 2, ..LoadSweepConfig::smoke() };
        let res = run_load_sweep(&cfg);
        let json = res.to_json();
        // Structural sanity without a JSON parser: balanced braces and
        // brackets, one row object per grid point, key fields present.
        assert_eq!(json.matches('{').count(), json.matches('}').count(), "{json}");
        assert_eq!(json.matches('[').count(), json.matches(']').count(), "{json}");
        assert_eq!(json.matches("\"router\"").count(), res.points.len());
        for key in ["\"mean_latency\"", "\"escape_packets\"", "\"deadlocked\"", "\"escape_vcs\""] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // No trailing comma before the closing bracket.
        assert!(!json.contains(",\n  ]"), "trailing comma: {json}");
    }

    #[test]
    fn low_load_latency_orders_sanely_under_faults() {
        // At low load with faults, RB2 (shortest paths) must not be
        // slower on average than the block-detouring E-cube.
        let cfg = LoadSweepConfig {
            mesh: 16,
            fault_counts: vec![12],
            rates: vec![0.005],
            routers: vec![RoutingKind::ECube, RoutingKind::Rb2],
            sim: SimConfig::smoke(),
            threads: 2,
            ..Default::default()
        };
        let res = run_load_sweep(&cfg);
        let ecube = res.point(RoutingKind::ECube, 12, 0.005).unwrap();
        let rb2 = res.point(RoutingKind::Rb2, 12, 0.005).unwrap();
        assert!(!rb2.stats.saturated && !ecube.stats.saturated);
        assert!(
            rb2.stats.mean_latency() <= ecube.stats.mean_latency() + 1e-9,
            "RB2 {} vs E-cube {}",
            rb2.stats.mean_latency(),
            ecube.stats.mean_latency()
        );
    }
}
